//! The paper's real-world application: rank a corpus of documents against
//! a template, comparing all the approaches the paper measures, on both
//! simulated devices. This is Figure 3e in miniature — including the
//! OpenACC compile failure.
//!
//! ```text
//! cargo run --release --example document_ranking
//! ```

use ensemble_repro::baselines::acc::AccTarget;
use ensemble_repro::ensemble_apps::docrank;
use ensemble_repro::ensemble_ocl::{DeviceSel, ProfileSink};
use ensemble_repro::oclsim::DeviceType;

fn main() {
    let docs = 1024;
    let (corpus, tpl) = docrank::generate(docs);
    let threshold = docrank::threshold();
    let expected = docrank::reference(&corpus, &tpl, threshold);
    let wanted: i32 = expected.iter().sum();
    println!(
        "{docs} documents, {} terms each; {wanted} match the template",
        docrank::TERMS
    );
    println!(
        "each approach runs the ranking kernel {} times\n",
        docrank::ROUNDS
    );

    // Ensemble: mov channels keep the corpus on the device across rounds.
    let p = ProfileSink::new();
    let got = docrank::run_ensemble(
        corpus.clone(),
        tpl.clone(),
        threshold,
        DeviceSel::gpu(),
        p.clone(),
    );
    assert_eq!(got, expected);
    let ens = p.snapshot();
    println!(
        "Ensemble-OpenCL GPU : kernel {:>9.1} µs, transfers {:>9.1} µs   (scalar kernel, resident data)",
        ens.kernel_ns / 1000.0,
        (ens.to_device_ns + ens.from_device_ns) / 1000.0
    );

    // C-OpenCL: float4 kernel, but copies the corpus every round.
    let p = ProfileSink::new();
    let got = docrank::run_copencl(
        corpus.clone(),
        tpl.clone(),
        threshold,
        DeviceType::Gpu,
        p.clone(),
    );
    assert_eq!(got, expected);
    let c = p.snapshot();
    println!(
        "C-OpenCL GPU       : kernel {:>9.1} µs, transfers {:>9.1} µs   (float4 kernel, per-round copies)",
        c.kernel_ns / 1000.0,
        (c.to_device_ns + c.from_device_ns) / 1000.0
    );

    // The paper's two Figure 3e observations:
    println!();
    println!(
        "→ Ensemble kernel is {:.1}x slower (no short vectors, mandatory init, bool/int split)",
        ens.kernel_ns / c.kernel_ns
    );
    println!(
        "→ but Ensemble moves {:.1}x less data (the unexpected consequence of movability)",
        (c.to_device_ns + c.from_device_ns) / (ens.to_device_ns + ens.from_device_ns)
    );

    // OpenACC: fails to compile, exactly like PGI did in the paper.
    match docrank::run_openacc(
        corpus.clone(),
        tpl.clone(),
        threshold,
        AccTarget::gpu(),
        ProfileSink::new(),
    ) {
        Err(e) => println!("\nC-OpenACC          : {e}"),
        Ok(_) => println!("\nC-OpenACC          : unexpectedly compiled"),
    }
    let p = ProfileSink::new();
    let got = docrank::run_openmp_cpu(corpus, tpl, threshold, p.clone()).expect("omp fallback");
    assert_eq!(got, expected);
    println!(
        "OpenMP-gcc CPU     : kernel {:>9.1} µs (the paper's CPU fallback)",
        p.snapshot().kernel_ns / 1000.0
    );
}
