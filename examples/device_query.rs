//! Enumerate the simulated OpenCL platforms and devices — the `clinfo`
//! of this repository — and show the runtime device matrix the Ensemble
//! runtime builds over them (§6.2.1: one context + one queue per device).
//!
//! ```text
//! cargo run --example device_query
//! ```

use ensemble_repro::ensemble_ocl::device_matrix;
use ensemble_repro::oclsim::Platform;

fn main() {
    for (pi, platform) in Platform::all().iter().enumerate() {
        println!(
            "Platform #{pi}: {} ({})",
            platform.name(),
            platform.vendor()
        );
        for device in platform.devices(None) {
            println!(
                "  Device #{}: {} [{}]",
                device.id(),
                device.name(),
                device.device_type()
            );
            println!(
                "    {} CUs x {} lanes = {} total lanes, {} MiB global, {} KiB local, wg <= {}",
                device.compute_units(),
                device.simd_width(),
                device.lanes(),
                device.global_mem_size() >> 20,
                device.local_mem_size() >> 10,
                device.max_work_group_size()
            );
            let c = device.cost_model();
            println!(
                "    timing model: {:.0} ns/transfer + {:.3} ns/B, launch {:.0} ns, {:.2} ns/op at {:.0}% efficiency",
                c.transfer_latency_ns,
                c.transfer_ns_per_byte,
                c.launch_overhead_ns,
                c.ns_per_op,
                c.efficiency * 100.0
            );
        }
    }
    println!("\nEnsemble runtime device matrix (one context + one queue per device):");
    for entry in device_matrix().entries() {
        println!(
            "  [{}] {} → context #{}",
            entry.device.device_type(),
            entry.device.name(),
            entry.context.id()
        );
    }
}
