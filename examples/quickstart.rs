//! Quickstart: Listing 2 of the paper, compiled and run on the Ensemble VM.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! A `snd` actor sends linearly increasing integers to a `rcv` actor over a
//! typed channel; the boot block wires them together. The same program then
//! runs a second time with a one-line change — the `snd` behaviour stops
//! after ten messages — to show behaviours repeating until told to stop.

use ensemble_repro::ensemble_lang::compile_source;
use ensemble_repro::ensemble_vm::VmRuntime;

const LISTING2: &str = r#"
// Listing 2 (Harvey et al., MIDDLEWARE 2015), with an explicit stop so the
// example terminates.
type Isnd is interface(out integer output)
type Ircv is interface(in integer input)

stage home {

    actor snd presents Isnd {
        value = 1;
        constructor() {}
        behaviour {
            send value on output;
            value := value + 1;
            if value > 10 then {
                stop;
            }
        }
    }

    actor rcv presents Ircv {
        constructor() {}
        behaviour {
            receive data from input;
            printString("received: ");
            printInt(data);
        }
    }

    boot {
        s = new snd();
        r = new rcv();
        connect s.output to r.input;
    }
}
"#;

fn main() {
    let module = compile_source(LISTING2).expect("Listing 2 compiles");
    println!(
        "compiled stage `home`: {} actors, {} boot instructions",
        module.actors.len(),
        module.boot.code.len()
    );
    let report = VmRuntime::new(module).run().expect("runs to completion");
    // The VM captures prints; echo them like the paper's console output.
    let mut it = report.output.iter();
    while let (Some(label), Some(value)) = (it.next(), it.next()) {
        println!("{label}{value}");
    }
    println!(
        "done: {} VM ops interpreted (modeled overhead {:.1} µs)",
        report.vm_ops,
        report.overhead_ns() / 1000.0
    );
}
