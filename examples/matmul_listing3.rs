//! Listing 3 of the paper — matrix multiplication through a kernel actor —
//! in both of this repository's forms:
//!
//! 1. the programmatic Rust API (`ensemble-ocl`): a `Dispatch` actor sends
//!    a settings struct and the matrices to a `Multiply` kernel actor;
//! 2. the actual `.ens` source, compiled by `ensemble-lang` and executed by
//!    the Ensemble VM.
//!
//! ```text
//! cargo run --example matmul_listing3
//! ```

use ensemble_repro::ensemble_actors::{buffered_channel, In, Out, Stage};
use ensemble_repro::ensemble_apps::matmul;
use ensemble_repro::ensemble_lang::compile_source;
use ensemble_repro::ensemble_ocl::{
    Array2, DeviceSel, KernelActor, KernelSpec, ProfileSink, RecoveryPolicy, Settings,
};
use ensemble_repro::ensemble_vm::VmRuntime;

type MmIn = (Array2, Array2, Array2);

fn programmatic(n: usize) {
    println!("— programmatic kernel actor (n = {n}) —");
    let profile = ProfileSink::new();
    let spec = KernelSpec {
        source: matmul::KERNEL_SRC.to_string(),
        kernel_name: "multiply".to_string(),
        device: DeviceSel::gpu(), // the `<device_type=GPU>` annotation
        out_segs: vec![2],        // send `result` onward
        out_dims: vec![4, 5],
        profile: profile.clone(),
        recovery: RecoveryPolicy::default(),
    };
    let (req_out, req_in) = buffered_channel::<Settings<MmIn, Array2>>(1);
    let mut stage = Stage::new("home");
    stage.spawn("Multiply", KernelActor::<MmIn, Array2>::new(spec, req_in));
    let (result_out, result_in) = buffered_channel::<Array2>(1);
    stage.spawn_once("Dispatch", move |_| {
        let i = In::with_buffer(1);
        let o = Out::new();
        o.connect(&i);
        req_out
            .send_moved(Settings::new(vec![n, n], vec![16, 16], i, result_out))
            .unwrap();
        let (a, b) = matmul::generate(n);
        o.send_moved((a, b, Array2::zeros(n, n))).unwrap();
    });
    let result = result_in.receive().unwrap();
    stage.join();

    let (a, b) = matmul::generate(n);
    let expected = matmul::reference(&a, &b);
    let max_err = result
        .as_slice()
        .iter()
        .zip(expected.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max);
    let p = profile.snapshot();
    println!(
        "  result[0][0] = {:.4}, max |err| vs reference = {max_err:.2e}",
        result[(0, 0)]
    );
    println!(
        "  virtual time: to-device {:.1} µs, kernel {:.1} µs, from-device {:.1} µs",
        p.to_device_ns / 1000.0,
        p.kernel_ns / 1000.0,
        p.from_device_ns / 1000.0
    );
}

fn through_the_compiler(n: usize) {
    println!("— the .ens source through compiler + VM (n = {n}) —");
    // Only the problem size changes; the `of 16` group size already divides n.
    let src =
        include_str!("../crates/apps/src/assets/matmul/ocl.ens").replace("1024", &n.to_string());
    let module = compile_source(&src).expect("Listing 3 compiles");
    // The compiler generated real OpenCL C for the kernel actor:
    for actor in &module.actors {
        if let ensemble_repro::ensemble_lang::ActorCode::Kernel(plan) = &actor.code {
            println!("  generated kernel for actor `{}`:", actor.name);
            for line in plan.source.lines().take(6) {
                println!("    {line}");
            }
            println!("    ...");
        }
    }
    let report = VmRuntime::new(module).run().expect("runs");
    println!("  program output: {:?}", report.output.concat());
    println!(
        "  kernel time {:.1} µs, VM overhead {:.1} µs",
        report.profile.kernel_ns / 1000.0,
        report.overhead_ns() / 1000.0
    );
}

fn main() {
    programmatic(64);
    println!();
    through_the_compiler(64);
}
