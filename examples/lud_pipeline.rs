//! The Figure 4 topology: a controller actor plumbing three kernel actors
//! into a ring, with `mov` channels keeping the matrix on the device for
//! the whole decomposition — and the same run with copying channels, to
//! show what movability buys (the paper's ≈3 min → ≈5 s observation).
//!
//! ```text
//! cargo run --release --example lud_pipeline
//! ```

use ensemble_repro::ensemble_apps::lud;
use ensemble_repro::ensemble_ocl::{DeviceSel, ProfileSink};

fn main() {
    let n = 64;
    let m = lud::generate(n);
    let expected = lud::reference(m.clone());

    println!("LUD {n}x{n}: controller → diag → col → sub → controller (Figure 4)");

    let p_mov = ProfileSink::new();
    let got = lud::run_ensemble(m.clone(), DeviceSel::gpu(), p_mov.clone());
    let max_err = got
        .as_slice()
        .iter()
        .zip(expected.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max);
    let mov = p_mov.snapshot();
    println!("with mov channels:");
    println!("  max |err| vs sequential reference: {max_err:.2e}");
    println!(
        "  {} dispatches; transfers {:.1} µs up / {:.1} µs down",
        mov.dispatches,
        mov.to_device_ns / 1000.0,
        mov.from_device_ns / 1000.0
    );

    let p_nomov = ProfileSink::new();
    let _ = lud::run_ensemble_nomov(m, DeviceSel::gpu(), p_nomov.clone());
    let nomov = p_nomov.snapshot();
    println!("with copying channels (the ablation):");
    println!(
        "  {} dispatches; transfers {:.1} µs up / {:.1} µs down",
        nomov.dispatches,
        nomov.to_device_ns / 1000.0,
        nomov.from_device_ns / 1000.0
    );
    println!(
        "movability keeps {:.0}x of the transfer traffic off the bus",
        (nomov.to_device_ns + nomov.from_device_ns) / (mov.to_device_ns + mov.from_device_ns)
    );
}
