//! # ensemble-repro — actor-based OpenCL, reproduced in Rust
//!
//! The facade crate of the reproduction of *Parallel Programming in
//! Actor-Based Applications via OpenCL* (Harvey, Hentschel, Sventek —
//! MIDDLEWARE 2015). It re-exports every subsystem and hosts the
//! repository-level examples and integration tests.
//!
//! | crate | role |
//! |---|---|
//! | [`oclsim`] | OpenCL framework simulator + mini OpenCL-C compiler/interpreter |
//! | [`trace`] | unified tracing: spans from every layer, figure segments, Chrome JSON export |
//! | [`ensemble_actors`] | the actor runtime: stages, behaviours, typed channels, `mov` |
//! | [`ensemble_ocl`] | **the paper's contribution**: kernel actors, device matrix, flattening, lazy residency |
//! | [`ensemble_lang`] | the mini-Ensemble compiler (Listings 2 & 3 and the five apps) |
//! | [`ensemble_vm`] | the Ensemble VM: bytecode interpretation + native kernel-actor protocol |
//! | [`ensemble_serve`] | multi-tenant serving: admission control, fair arbitration, deadlines, eviction |
//! | [`baselines`] | C-OpenCL API style + the OpenACC pragma engine |
//! | [`ensemble_apps`] | the five evaluation applications in all three forms |
//! | [`code_metrics`] | Table 1 analyzers (LoC, cyclomatic, ABC) |
//!
//! Start with `examples/quickstart.rs`, then `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use baselines;
pub use code_metrics;
pub use ensemble_actors;
pub use ensemble_apps;
pub use ensemble_lang;
pub use ensemble_ocl;
pub use ensemble_serve;
pub use ensemble_vm;
pub use oclsim;
pub use trace;
