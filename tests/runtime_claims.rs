//! Tests for the §6 runtime claims that are not tied to one figure:
//! dynamic retargeting by reconnecting the configuration channel, multiple
//! kernels sharing one device, and the multi-queue read race the device
//! matrix exists to prevent.

use ensemble_repro::ensemble_actors::{buffered_channel, In, Out, Stage};
use ensemble_repro::ensemble_ocl::{
    device_matrix, DeviceSel, KernelActor, KernelSpec, ProfileSink, RecoveryPolicy, Settings,
};
use ensemble_repro::oclsim::{CommandQueue, MemFlags, NdRange, Program};
use std::time::Duration;

/// The tests below assert on the global device-matrix queue clocks, so
/// they must not interleave with each other.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

const SCALE_SRC: &str = "__kernel void scale(__global float* data, const int n) {
    int i = get_global_id(0);
    if (i < n) { data[i] = data[i] * 2.0f; }
}";

fn scale_spec(device: DeviceSel) -> KernelSpec {
    KernelSpec {
        source: SCALE_SRC.to_string(),
        kernel_name: "scale".to_string(),
        device,
        out_segs: vec![0],
        out_dims: vec![0],
        profile: ProfileSink::new(),
        recovery: RecoveryPolicy::default(),
    }
}

type Req = Settings<Vec<f32>, Vec<f32>>;

fn drive(requests_out: &Out<Req>, input: Vec<f32>) -> Vec<f32> {
    let data_in = In::with_buffer(1);
    let data_out = Out::new();
    data_out.connect(&data_in);
    let (result_out, result_in) = buffered_channel(1);
    let n = input.len();
    requests_out
        .send_moved(Settings::new(vec![n], vec![2], data_in, result_out))
        .unwrap();
    data_out.send(&input).unwrap();
    result_in.receive().unwrap()
}

/// §6.1.1: "should the developer wish to use a different kernel or a
/// different device at runtime, all that is required is to reconnect the
/// configuration channel to an appropriate kernel actor's configuration
/// channel." One dispatcher-side `Out` is disconnected from the GPU actor
/// and reconnected to the CPU actor mid-run; the device-queue clocks show
/// which device actually served each request.
#[test]
fn reconnecting_the_requests_channel_retargets_at_runtime() {
    let _serial = SERIAL.lock().unwrap();
    let gpu_requests = In::with_buffer(1);
    let cpu_requests = In::with_buffer(1);
    let cpu_connector = cpu_requests.connector();
    let requests_out: Out<Req> = Out::new();
    requests_out.connect(&gpu_requests);

    let mut stage = Stage::new("home");
    stage.spawn(
        "gpu_kernel",
        KernelActor::<Vec<f32>, Vec<f32>>::new(scale_spec(DeviceSel::gpu()), gpu_requests),
    );
    stage.spawn(
        "cpu_kernel",
        KernelActor::<Vec<f32>, Vec<f32>>::new(scale_spec(DeviceSel::cpu()), cpu_requests),
    );

    let gpu_clock = || {
        device_matrix()
            .select(DeviceSel::gpu())
            .unwrap()
            .queue
            .now_ns()
    };
    let cpu_clock = || {
        device_matrix()
            .select(DeviceSel::cpu())
            .unwrap()
            .queue
            .now_ns()
    };

    let g0 = gpu_clock();
    assert_eq!(drive(&requests_out, vec![1.0, 2.0]), vec![2.0, 4.0]);
    assert!(gpu_clock() > g0, "first request must run on the GPU");

    // The runtime reconnect: same Out endpoint, new target.
    requests_out.disconnect_all();
    requests_out.connect_via(&cpu_connector);

    let g1 = gpu_clock();
    let c1 = cpu_clock();
    assert_eq!(drive(&requests_out, vec![3.0, 4.0]), vec![6.0, 8.0]);
    assert_eq!(gpu_clock(), g1, "GPU must be idle after the reconnect");
    assert!(cpu_clock() > c1, "second request must run on the CPU");

    drop(requests_out);
    stage.join();
}

/// §6.1.3: "multiple kernels [can] execute on a single device. This
/// includes multiple kernels being scheduled for execution at the same
/// time." Two kernel actors share the GPU through the single matrix queue;
/// both requests complete correctly.
#[test]
fn two_kernel_actors_share_one_device() {
    let _serial = SERIAL.lock().unwrap();
    let mut stage = Stage::new("home");
    let mut outs = Vec::new();
    for name in ["k1", "k2"] {
        let requests = In::with_buffer(1);
        let requests_out: Out<Req> = Out::new();
        requests_out.connect(&requests);
        stage.spawn(
            name,
            KernelActor::<Vec<f32>, Vec<f32>>::new(scale_spec(DeviceSel::gpu()), requests),
        );
        outs.push(requests_out);
    }
    // Issue both requests before collecting either result, so the two
    // kernel actors are in flight on the same device concurrently.
    let mut pending = Vec::new();
    for (i, req) in outs.iter().enumerate() {
        let data_in = In::with_buffer(1);
        let data_out = Out::new();
        data_out.connect(&data_in);
        let (result_out, result_in) = buffered_channel(1);
        req.send_moved(Settings::new(vec![2], vec![2], data_in, result_out))
            .unwrap();
        data_out.send(&vec![i as f32 + 1.0, 0.0]).unwrap();
        pending.push(result_in);
    }
    assert_eq!(pending[0].receive().unwrap()[0], 2.0);
    assert_eq!(pending[1].receive().unwrap()[0], 4.0);
    drop(outs);
    stage.join();
}

/// §6.2.1: the paper adopted one command queue per device after observing
/// races "with multiple command_queues per device when reading data". With
/// raw `oclsim`, a second queue reading a buffer while a dispatch on the
/// first queue holds it fails; the Ensemble device matrix hands every
/// actor the *same* queue, so the hazard cannot arise.
#[test]
fn multi_queue_read_race_is_real_and_the_matrix_prevents_it() {
    let _serial = SERIAL.lock().unwrap();
    let entry = device_matrix().select(DeviceSel::gpu()).unwrap();
    let racing_queue = CommandQueue::new(&entry.context, &entry.device).unwrap();

    // A long-running kernel to hold the buffer checked out for a while.
    let src = "__kernel void spin(__global float* data, const int n) {
        int i = get_global_id(0);
        float x = data[i];
        for (int k = 0; k < 20000; k++) { x = x * 1.0001f + 0.5f; }
        data[i] = x;
    }";
    let program = Program::build(&entry.context, src).unwrap();
    let kernel = program.create_kernel("spin").unwrap();
    let buf = entry
        .context
        .create_buffer(MemFlags::ReadWrite, 256 * 4)
        .unwrap();
    entry.queue.write_f32(&buf, &vec![1.0; 256]).unwrap();
    kernel.set_arg_buffer(0, &buf).unwrap();
    kernel.set_arg_i32(1, 256).unwrap();

    let q1 = entry.queue.clone();
    let buf2 = buf.clone();
    let dispatcher = std::thread::spawn(move || {
        q1.enqueue_nd_range(&kernel, &NdRange::d1(256, 64)).unwrap();
    });

    // Poll from the second queue while the dispatch is in flight.
    let mut saw_race = false;
    while !dispatcher.is_finished() {
        if racing_queue.read_f32(&buf2).is_err() {
            saw_race = true;
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    dispatcher.join().unwrap();
    assert!(
        saw_race,
        "a second command queue must observe the mid-dispatch read race"
    );

    // After the dispatch, single-queue access is consistent again — and
    // the matrix path (same queue everywhere) never raced at all.
    let (vals, _) = entry.queue.read_f32(&buf).unwrap();
    assert!(vals.iter().all(|&v| v > 1.0));
    entry.context.release_bytes(256 * 4);
}
