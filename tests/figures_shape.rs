//! The claims of §7.4, asserted as tests over the regenerated figures.
//!
//! These run the same builders as `cargo run -p bench --bin figures`, at
//! reduced sizes, and check the *shapes* the paper reports: who wins, by
//! roughly what factor, and which bars are missing. Absolute values are
//! not asserted — the substrate is a simulator, not the 2015 testbed.

use bench::figures;
use bench::{Sizes, TraceSink};

fn sizes() -> Sizes {
    // Slightly smaller than the bench defaults: these run in debug CI.
    Sizes {
        matmul_n: 48,
        mandel_n: 48,
        mandel_iters: 100,
        lud_n: 32,
        // Reduction and docrank need enough work per dispatch for the
        // kernel segment to dominate launch overheads, as at paper scale.
        reduction_n: 1 << 16,
        docrank_docs: 1024,
        docrank_rounds: 10,
    }
}

#[test]
fn fig3a_ensemble_is_commensurate_with_c_opencl() {
    let f = figures::fig3a(&sizes(), &TraceSink::disabled());
    let ens = f.bar("Ensemble GPU").unwrap();
    let c = f.bar("C-OpenCL GPU").unwrap();
    // "commensurate performance": within 2x, same kernel time.
    assert!(
        ens.total() < 2.0 * c.total(),
        "{} vs {}",
        ens.total(),
        c.total()
    );
    assert!((ens.kernel - c.kernel).abs() < 0.2 * c.kernel);
    // The Ensemble overhead (VM interpretation) exceeds C's host overhead.
    assert!(ens.overhead > c.overhead);
    // GPU beats CPU for this compute-heavy kernel, for both approaches.
    assert!(f.bar("Ensemble CPU").unwrap().kernel > ens.kernel);
    assert!(f.bar("C-OpenCL CPU").unwrap().kernel > c.kernel);
}

#[test]
fn fig3b_openacc_is_much_worse_on_gpu() {
    let f = figures::fig3b(&sizes(), &TraceSink::disabled());
    let ens = f.bar("Ensemble GPU").unwrap();
    let acc = f.bar("C-OpenACC GPU").unwrap();
    // The pragma abstraction cannot use the 2-D layout: row-mapped items
    // under-fill the device and inherit the row-cost imbalance.
    assert!(
        acc.kernel > 2.0 * ens.kernel,
        "ACC kernel {} not ≫ Ensemble {}",
        acc.kernel,
        ens.kernel
    );
}

#[test]
fn fig3c_pipeline_with_mov_matches_handwritten_c() {
    let f = figures::fig3c(&sizes(), &TraceSink::disabled());
    let ens = f.bar("Ensemble GPU").unwrap();
    let c = f.bar("C-OpenCL GPU").unwrap();
    // Kernel and transfer segments match the hand-optimised C host;
    // the Ensemble bar is taller only by interpretation overhead.
    assert!((ens.kernel - c.kernel).abs() < 0.1 * c.kernel);
    assert!(ens.to_device < 3.0 * c.to_device);
    assert!(ens.overhead > c.overhead);
}

#[test]
fn fig3c_movability_ablation_matches_the_papers_story() {
    let f = figures::ablation_mov(&sizes(), &TraceSink::disabled());
    let mov = f.bar("mov channels").unwrap();
    let nomov = f.bar("copying channels").unwrap();
    // Same kernels; transfers explode without movability.
    assert!((mov.kernel - nomov.kernel).abs() < 0.05 * mov.kernel.max(nomov.kernel));
    assert!(
        nomov.to_device > 10.0 * mov.to_device,
        "copying {} not ≫ mov {}",
        nomov.to_device,
        mov.to_device
    );
    assert!(nomov.total() > 2.0 * mov.total());
}

#[test]
fn fig3d_openacc_reduction_loses_on_the_gpu() {
    let f = figures::fig3d(&sizes(), &TraceSink::disabled());
    let acc = f.bar("C-OpenACC GPU").unwrap();
    let c = f.bar("C-OpenCL GPU").unwrap();
    assert!(
        acc.total() > 1.2 * c.total(),
        "ACC {} not worse than explicit {}",
        acc.total(),
        c.total()
    );
    // And its kernel segment specifically (gang-serial chunks).
    assert!(acc.kernel > 2.0 * c.kernel);
}

#[test]
fn fig3e_kernel_and_transfer_inversions_hold() {
    let f = figures::fig3e(&sizes(), &TraceSink::disabled());
    let ens = f.bar("Ensemble GPU").unwrap();
    let c = f.bar("C-OpenCL GPU").unwrap();
    // Ensemble kernel slower (scalar + init + bool/int split vs float4)…
    assert!(
        ens.kernel > 1.5 * c.kernel,
        "Ensemble kernel {} not slower than C {}",
        ens.kernel,
        c.kernel
    );
    // …but Ensemble communication smaller (mov keeps data resident).
    assert!(
        ens.to_device + ens.from_device < 0.5 * (c.to_device + c.from_device),
        "Ensemble transfers {} not ≪ C transfers {}",
        ens.to_device + ens.from_device,
        c.to_device + c.from_device
    );
    // No ACC GPU bar — the compile failed, and the figure says so.
    assert!(f.bar("C-OpenACC GPU").is_none());
    assert!(f.notes.iter().any(|n| n.contains("compile failure")));
    // The OpenMP CPU fallback exists and is slower than C-OpenCL CPU.
    let omp = f.bar("OpenMP-gcc CPU").unwrap();
    let c_cpu = f.bar("C-OpenCL CPU").unwrap();
    assert!(omp.kernel > c_cpu.kernel);
}

#[test]
fn every_figure_normalises_to_ensemble_gpu() {
    let s = sizes();
    for (name, f) in figures::ALL {
        let fig = f(&s, &TraceSink::disabled());
        let reference = fig.bar(figures::REFERENCE).unwrap_or_else(|| {
            panic!("{name}: missing reference bar");
        });
        assert!(
            (reference.total() - 1.0).abs() < 1e-9,
            "{name}: reference bar not normalised ({})",
            reference.total()
        );
    }
}
