//! Shape of the unified trace for a Figure-3c (LUD) Ensemble run.
//!
//! These tests pin the properties EXPERIMENTS.md derives the figure
//! segments from: which span kinds a pipelined, mov-linked run emits,
//! that the mov channels keep data on the device between kernel actors
//! (no from-device span until the final readback), and that the trace's
//! per-segment aggregation *is* the figure bar — same virtual-ns totals,
//! exactly.

use bench::{apps_ens, ens_bar, Bar, TraceSink};
use trace::{SpanKind, TraceEvent};

const LUD_N: usize = 32;

/// One traced Ensemble-GPU LUD run: the bar plus the exported events.
fn lud_run() -> (Bar, Vec<TraceEvent>) {
    let export = TraceSink::new();
    let bar =
        ens_bar("Ensemble GPU", &apps_ens::lud(LUD_N, "GPU"), &export).expect("ensemble lud run");
    (bar, export.events())
}

#[test]
fn fig3c_run_emits_the_expected_span_kinds() {
    let (_, events) = lud_run();
    // The three LUD kernels, each launched at least once, and nothing else
    // on the kernel tracks.
    let kernel_names: std::collections::BTreeSet<&str> = events
        .iter()
        .filter(|e| e.kind == SpanKind::Kernel)
        .map(|e| e.name.as_str())
        .collect();
    assert_eq!(
        kernel_names.into_iter().collect::<Vec<_>>(),
        vec!["Col", "Diag", "Sub"],
        "expected exactly the three LUD kernels"
    );
    // Every layer reported: device commands (oclsim), interpreter chunks
    // (VM), invokenative boundaries and mov transfers (actors/kernel
    // actors), spawns and channel waits (scheduling context).
    for kind in [
        SpanKind::ToDevice,
        SpanKind::FromDevice,
        SpanKind::Kernel,
        SpanKind::VmChunk,
        SpanKind::InvokeNative,
        SpanKind::MovTransfer,
        SpanKind::Spawn,
        SpanKind::ChannelWait,
    ] {
        assert!(
            events.iter().any(|e| e.kind == kind),
            "no {kind:?} event in the trace"
        );
    }
}

#[test]
fn mov_pipeline_reads_back_only_at_the_end() {
    let (_, events) = lud_run();
    // The three kernel actors are mov-linked: data stays resident across
    // every launch, so no from-device span may start before the last
    // kernel finishes — the only reads are the final readback (one per
    // flattened segment of the result struct: matrix + pivot).
    let last_kernel_end = events
        .iter()
        .filter(|e| e.kind == SpanKind::Kernel)
        .map(|e| e.ts_ns + e.dur_ns)
        .fold(0.0f64, f64::max);
    let reads: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.kind == SpanKind::FromDevice)
        .collect();
    assert_eq!(reads.len(), 2, "final readback = matrix + pivot segments");
    for r in &reads {
        assert!(
            r.ts_ns >= last_kernel_end,
            "from-device span at {} before last kernel end {} — a copy \
             leaked into the mov pipeline",
            r.ts_ns,
            last_kernel_end
        );
    }
    // Symmetrically, the uploads happen before the first kernel.
    let first_kernel_start = events
        .iter()
        .filter(|e| e.kind == SpanKind::Kernel)
        .map(|e| e.ts_ns)
        .fold(f64::INFINITY, f64::min);
    for w in events.iter().filter(|e| e.kind == SpanKind::ToDevice) {
        assert!(w.ts_ns + w.dur_ns <= first_kernel_start);
    }
}

#[test]
fn segment_sums_equal_the_figure_bar_exactly() {
    let (bar, events) = lud_run();
    // The bar was derived from the run's private sink; re-aggregating the
    // exported events must reproduce it bit-for-bit — the acceptance
    // criterion that a `--trace` file and the printed breakdown agree.
    let s = trace::Segments::from_events(&events);
    assert_eq!(s.to_device_ns, bar.to_device);
    assert_eq!(s.from_device_ns, bar.from_device);
    assert_eq!(s.kernel_ns, bar.kernel);
    assert_eq!(s.vm_ns, bar.overhead);
    assert_eq!(s.total_ns(), bar.total());
    // The VM segment is the per-chunk spans' sum, and each span is
    // (retired ops) × the per-op cost — so the overhead bar equals the
    // virtual-clock total of the interpreter's chunks, exactly.
    let chunk_sum: f64 = events
        .iter()
        .filter(|e| e.kind == SpanKind::VmChunk)
        .map(|e| e.dur_ns)
        .sum();
    assert_eq!(chunk_sum, bar.overhead);
    assert!(bar.total() > 0.0);
}

#[test]
fn exported_chrome_trace_is_valid_and_labelled() {
    let (_, events) = lud_run();
    let j = trace::chrome_json(&events);
    trace::json::validate(&j).expect("chrome trace_event output is valid JSON");
    // Named tracks for the device and the run label prefix from ens_bar.
    assert!(j.contains("\"thread_name\""));
    assert!(j.contains("Ensemble GPU"));
    // Wall-clock context events are tagged so figure tooling can ignore
    // them; virtual-clock spans are not.
    assert!(j.contains("\"clock\":\"wall\""));
    assert!(j.contains("\"ph\":\"X\""));
    assert!(j.contains("\"ph\":\"i\""));
}
