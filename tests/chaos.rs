//! Fault injection and supervised recovery, asserted end to end.
//!
//! These drive the bench harness's chaos mode (the same code behind
//! `cargo run -p bench --bin figures -- --chaos-seed N`) as a fast smoke
//! test, plus the specific recovery claims: seeded transient faults are
//! absorbed by retries (one retry per injected fault, reference-correct
//! output), a permanently lost GPU fails over to the CPU matrix entry and
//! still completes, and an *empty* fault plan is byte-for-byte inert.

use bench::apps_ens::{self, Sizes};
use bench::chaos;
use proptest::prelude::*;

fn smoke_sizes() -> Sizes {
    Sizes {
        matmul_n: 16,
        mandel_n: 16,
        mandel_iters: 20,
        lud_n: 16,
        reduction_n: 1 << 10,
        docrank_docs: 128,
        docrank_rounds: 3,
    }
}

/// The `--chaos-seed` run the harness exposes, at smoke sizes: all five
/// applications absorb at least one injected transient each and match
/// their fault-free references.
#[test]
fn chaos_smoke_all_five_apps_recover() {
    let outcomes = chaos::run_chaos(7, &smoke_sizes()).unwrap();
    assert_eq!(outcomes.len(), 5);
    for o in outcomes {
        assert!(o.matches_reference, "{}", o.render());
        assert!(o.injected >= 1, "{}", o.render());
    }
}

/// A permanent `DeviceLost` on the GPU's first dispatch: the kernel actor
/// evacuates its buffers through the rescue read-back, fails over to the
/// CPU, and produces the reference product — with the failover recorded
/// as a trace instant.
#[test]
fn device_lost_mid_pipeline_fails_over_to_cpu() {
    let o = chaos::run_failover_chaos(32).unwrap();
    assert!(o.matches_reference, "{}", o.render());
    assert!(o.failovers >= 1, "{}", o.render());
    assert!(o.injected >= 1, "{}", o.render());
}

/// An empty `FaultPlan` is inert at the byte level: the same command
/// sequence on a pinned-clock queue produces an identical Chrome trace
/// with and without the (empty) injector attached.
#[test]
fn empty_fault_plan_is_byte_identical() {
    let without = chaos::empty_plan_trace(false).unwrap();
    let with = chaos::empty_plan_trace(true).unwrap();
    assert_eq!(without, with);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any seeded transient schedule, matmul and reduction complete
    /// with reference-correct output, and the trace records exactly one
    /// retry per injected fault.
    #[test]
    fn seeded_transients_are_retried_exactly_once_each(seed in 0u64..10_000) {
        for (app, src) in [
            ("matmul", apps_ens::matmul(16, "GPU")),
            ("reduction", apps_ens::reduction(1 << 10, "GPU")),
        ] {
            let o = chaos::run_app_chaos(app, &src, chaos::chaos_plan(seed, 11)).unwrap();
            prop_assert!(o.matches_reference, "{}", o.render());
            prop_assert!(o.injected >= 1, "{}", o.render());
            prop_assert_eq!(o.retries, o.injected, "{}", o.render());
        }
    }
}
