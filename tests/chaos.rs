//! Fault injection and supervised recovery, asserted end to end.
//!
//! These drive the bench harness's chaos mode (the same code behind
//! `cargo run -p bench --bin figures -- --chaos-seed N`) as a fast smoke
//! test, plus the specific recovery claims: seeded transient faults are
//! absorbed by retries (one retry per injected fault, reference-correct
//! output), a permanently lost GPU fails over to the CPU matrix entry and
//! still completes, and an *empty* fault plan is byte-for-byte inert.

use bench::apps_ens::{self, Sizes};
use bench::chaos;
use proptest::prelude::*;

fn smoke_sizes() -> Sizes {
    Sizes {
        matmul_n: 16,
        mandel_n: 16,
        mandel_iters: 20,
        lud_n: 16,
        reduction_n: 1 << 10,
        docrank_docs: 128,
        docrank_rounds: 3,
    }
}

/// The `--chaos-seed` run the harness exposes, at smoke sizes: all five
/// applications absorb at least one injected transient each and match
/// their fault-free references.
#[test]
fn chaos_smoke_all_five_apps_recover() {
    let outcomes = chaos::run_chaos(7, &smoke_sizes()).unwrap();
    assert_eq!(outcomes.len(), 5);
    for o in outcomes {
        assert!(o.matches_reference, "{}", o.render());
        assert!(o.injected >= 1, "{}", o.render());
    }
}

/// A permanent `DeviceLost` on the GPU's first dispatch: the kernel actor
/// evacuates its buffers through the rescue read-back, fails over to the
/// CPU, and produces the reference product — with the failover recorded
/// as a trace instant.
#[test]
fn device_lost_mid_pipeline_fails_over_to_cpu() {
    let o = chaos::run_failover_chaos(32).unwrap();
    assert!(o.matches_reference, "{}", o.render());
    assert!(o.failovers >= 1, "{}", o.render());
    assert!(o.injected >= 1, "{}", o.render());
}

/// An empty `FaultPlan` is inert at the byte level: the same command
/// sequence on a pinned-clock queue produces an identical Chrome trace
/// with and without the (empty) injector attached.
#[test]
fn empty_fault_plan_is_byte_identical() {
    let without = chaos::empty_plan_trace(false).unwrap();
    let with = chaos::empty_plan_trace(true).unwrap();
    assert_eq!(without, with);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any seeded transient schedule, matmul and reduction complete
    /// with reference-correct output, and the trace records exactly one
    /// retry per injected fault.
    #[test]
    fn seeded_transients_are_retried_exactly_once_each(seed in 0u64..10_000) {
        for (app, src) in [
            ("matmul", apps_ens::matmul(16, "GPU")),
            ("reduction", apps_ens::reduction(1 << 10, "GPU")),
        ] {
            let o = chaos::run_app_chaos(app, &src, chaos::chaos_plan(seed, 11)).unwrap();
            prop_assert!(o.matches_reference, "{}", o.render());
            prop_assert!(o.injected >= 1, "{}", o.render());
            prop_assert_eq!(o.retries, o.injected, "{}", o.render());
        }
    }
}

// ---------------------------------------------------------------------------
// Multi-tenant serving: cross-tenant fault isolation and eviction
// transparency (`crates/serve`).
// ---------------------------------------------------------------------------

use ensemble_serve::{Request, ServeConfig, Server};
use ensemble_vm::VmRuntime;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One request through a fresh single-tenant server: the serving-path
/// solo reference (private lanes, no neighbours, no chaos).
fn serve_solo(src: &str) -> ensemble_vm::VmReport {
    let server = Server::new(ServeConfig {
        max_active: 1,
        max_waiting: 1,
        ..ServeConfig::default()
    });
    server.submit(Request::new(0, src)).expect("solo run")
}

/// Seeded kill-chaos in tenant A (LUD, its own supervision tree absorbs
/// the kills) while tenant B runs matmul on the same server: B's output
/// *and* virtual clock are byte-identical to its solo run — chaos never
/// leaks across the tenant boundary.
#[test]
fn kill_chaos_in_one_tenant_leaves_neighbour_byte_identical() {
    let matmul_src = apps_ens::matmul(16, "GPU");
    let lud_src = apps_ens::lud(16, "GPU");
    let reference = serve_solo(&matmul_src);
    for seed in [3u64, 11, 29] {
        let server = Arc::new(Server::new(ServeConfig {
            max_active: 2,
            max_waiting: 2,
            ..ServeConfig::default()
        }));
        let a = {
            let server = Arc::clone(&server);
            let src = lud_src.clone();
            std::thread::spawn(move || {
                let mut req = Request::new(1, src);
                req.chaos = Some(chaos::kill_plan(seed, 17, 3));
                server.submit(req)
            })
        };
        let b = {
            let server = Arc::clone(&server);
            let src = matmul_src.clone();
            std::thread::spawn(move || server.submit(Request::new(2, src)))
        };
        let b_report = b
            .join()
            .unwrap()
            .expect("clean tenant must complete despite neighbour chaos");
        let a_result = a.join().unwrap();
        // The chaotic tenant terminates — recovered by its own
        // supervision tree, never wedged.
        assert!(
            a_result.is_ok(),
            "seed {seed}: chaotic tenant failed: {:?}",
            a_result.err()
        );
        assert_eq!(b_report.output, reference.output, "seed {seed}");
        assert_eq!(
            b_report.total_ns().to_bits(),
            reference.total_ns().to_bits(),
            "seed {seed}: neighbour's virtual clock moved"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Forcibly evicting the resident `mov` value after registrations
    /// (every run re-uploads it lazily, byte-identical, on the next
    /// dispatch) never changes the application's output.
    #[test]
    fn eviction_and_reupload_never_change_outputs(seed in 0u64..1000) {
        let nth = (seed as usize % 3) + 1;
        let src = apps_ens::lud(16, "GPU");
        let opts = ensemble_analysis::Options::default();
        let reference = VmRuntime::new(
            ensemble_analysis::compile_source(&src, &opts).unwrap(),
        )
        .run()
        .unwrap();
        let vm = VmRuntime::new(
            ensemble_analysis::compile_source(&src, &opts).unwrap(),
        );
        let registrations = Arc::new(AtomicUsize::new(0));
        let evictions = Arc::new(AtomicUsize::new(0));
        {
            let registrations = Arc::clone(&registrations);
            let evictions = Arc::clone(&evictions);
            vm.set_resident_hook(Some(Arc::new(move |handle| {
                // The hook runs on the kernel actor's thread with the
                // value's state lock released, so the evict succeeds.
                if registrations
                    .fetch_add(1, Ordering::SeqCst)
                    .is_multiple_of(nth)
                    && matches!(handle.try_evict(), Ok(Some(_)))
                {
                    evictions.fetch_add(1, Ordering::SeqCst);
                }
            })));
        }
        let report = vm.run().unwrap();
        prop_assert!(evictions.load(Ordering::SeqCst) >= 1);
        prop_assert_eq!(report.output, reference.output);
    }

    /// After every session of a loaded, chaos-seeded server tears down,
    /// the pool accountant's resident-byte counter is exactly zero —
    /// clean and chaotic tenants alike return what they took.
    #[test]
    fn pool_counter_returns_to_zero_after_teardown(seed in 0u64..1000) {
        let server = Arc::new(Server::new(ServeConfig {
            max_active: 2,
            max_waiting: 4,
            // Tight watermark: mid-run evictions happen when the two
            // tenants overlap.
            mem_watermark_bytes: 512,
            ..ServeConfig::default()
        }));
        let lud_src = apps_ens::lud(16, "GPU");
        let reference = serve_solo(&lud_src);
        let clean = {
            let server = Arc::clone(&server);
            let src = lud_src.clone();
            std::thread::spawn(move || server.submit(Request::new(0, src)))
        };
        let chaotic = {
            let server = Arc::clone(&server);
            let src = lud_src.clone();
            std::thread::spawn(move || {
                let mut req = Request::new(1, src);
                req.chaos = Some(chaos::kill_plan(seed, 17, 2));
                server.submit(req)
            })
        };
        let clean_report = clean.join().unwrap().expect("clean tenant completes");
        let chaotic_result = chaotic.join().unwrap();
        prop_assert!(chaotic_result.is_ok());
        // Eviction may move the clean tenant's virtual clock (the lazy
        // re-upload is charged to its profile); its data never moves.
        prop_assert_eq!(clean_report.output, reference.output);
        prop_assert_eq!(server.pool().total_used(), 0);
    }
}

// ---------------------------------------------------------------------------
// Beyond fail-stop: silent corruption, the backoff law, straggler hedging.
// ---------------------------------------------------------------------------

use bench::sdc;
use ensemble_ocl::recovery::{with_retry, RecoveryPolicy};
use ensemble_ocl::ProfileSink;
use oclsim::{ClError, CommandQueue, Context, DeviceType, Platform};

/// The `--sdc-seed` run the harness exposes, at smoke sizes: every
/// injected silent bit flip across the five applications is caught by
/// the provenance checksums, repaired from the last checkpoint, and the
/// recovered run's outputs *and* virtual clock end byte-identical to
/// the fault-free reference — with the whole repair cost on the
/// separate repair accounting.
#[test]
fn sdc_corruption_in_all_five_apps_ends_byte_identical() {
    let outcomes = sdc::run_sdc_corruption(5, &smoke_sizes()).unwrap();
    assert_eq!(outcomes.len(), 5);
    for o in outcomes {
        assert!(o.ok(), "{}", o.render());
    }
}

/// Hedged re-dispatch on the serving path: with injected hangs in half
/// the tenants, the hedged wave's p99 is finite and strictly below the
/// unhedged wave's, every request still completes, and at least one
/// speculative secondary wins its race.
#[test]
fn hedged_serving_beats_the_unhedged_straggler_tail() {
    let r = sdc::run_straggler(4, 400, 50);
    assert!(r.ok(), "{}", r.render());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The backoff law of `with_retry`, for arbitrary policies: the op
    /// is attempted exactly `max_retries + 1` times, and the virtual
    /// time charged between consecutive attempts is exactly the
    /// exponential series `b, b·f, b·f², ...` — strictly monotonically
    /// increasing, never exceeding the closed-form total.
    #[test]
    fn retry_backoff_is_exponential_monotone_and_bounded(
        backoff_ns in 100.0f64..10_000.0,
        factor in 1.25f64..3.0,
        max_retries in 1u32..6,
    ) {
        // A private queue pins the clock origin at zero, so the stamps
        // recorded inside the op are exactly the charged backoffs.
        let device = Platform::default_device(DeviceType::Gpu).unwrap();
        let context = Context::new(std::slice::from_ref(&device)).unwrap();
        let queue = CommandQueue::new(&context, &device).unwrap();
        let policy = RecoveryPolicy {
            max_retries,
            backoff_ns,
            backoff_factor: factor,
            failover: false,
        };
        let profile = ProfileSink::new();
        let mut stamps = Vec::new();
        let r: Result<(), ClError> =
            with_retry(&policy, &queue, "GPU", &profile, "op", || {
                stamps.push(queue.now_ns());
                Err(ClError::DeviceBusy { device: "GPU".into() })
            });
        prop_assert!(matches!(r, Err(ClError::DeviceBusy { .. })));
        prop_assert_eq!(stamps.len(), max_retries as usize + 1, "retry bound violated");
        let deltas: Vec<f64> = stamps.windows(2).map(|w| w[1] - w[0]).collect();
        let mut expected = backoff_ns;
        for (i, d) in deltas.iter().enumerate() {
            prop_assert!(
                (d - expected).abs() <= 1e-9 * expected,
                "delta {}: charged {} expected {}", i, d, expected
            );
            if i > 0 {
                prop_assert!(*d > deltas[i - 1], "backoff not strictly increasing");
            }
            expected *= factor;
        }
        let total: f64 = deltas.iter().sum();
        let bound = backoff_ns * (factor.powi(max_retries as i32) - 1.0) / (factor - 1.0);
        prop_assert!(total <= bound * (1.0 + 1e-9), "total {} exceeds bound {}", total, bound);
    }
}
