//! The paper's listings, end to end: Listing 1 (the OpenCL square kernel)
//! through the simulator, Listings 2 and 3 through the Ensemble compiler
//! and VM.

use ensemble_repro::ensemble_lang::{compile_source, ActorCode};
use ensemble_repro::ensemble_vm::VmRuntime;
use ensemble_repro::oclsim::{
    CommandQueue, Context, DeviceType, MemFlags, NdRange, Platform, Program,
};

#[test]
fn listing1_square_kernel_runs_on_the_simulator() {
    // Listing 1 of the paper, verbatim.
    let src = r#"
        __kernel void square(__global float* input,
                             __global float* output,
                             const int count) {
            int i = get_global_id(0);
            if (i < count) {
                output[i] = input[i] * input[i];
            }
        }
    "#;
    let device = Platform::default_device(DeviceType::Gpu).unwrap();
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let queue = CommandQueue::new(&ctx, &device).unwrap();
    let program = Program::build(&ctx, src).unwrap();
    let kernel = program.create_kernel("square").unwrap();
    let input = ctx.create_buffer(MemFlags::ReadOnly, 8 * 4).unwrap();
    let output = ctx.create_buffer(MemFlags::ReadWrite, 8 * 4).unwrap();
    queue
        .write_f32(&input, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
        .unwrap();
    kernel.set_arg_buffer(0, &input).unwrap();
    kernel.set_arg_buffer(1, &output).unwrap();
    kernel.set_arg_i32(2, 8).unwrap();
    queue.enqueue_nd_range(&kernel, &NdRange::d1(8, 4)).unwrap();
    let (result, _) = queue.read_f32(&output).unwrap();
    assert_eq!(result, vec![1.0, 4.0, 9.0, 16.0, 25.0, 36.0, 49.0, 64.0]);
}

#[test]
fn listing2_compiles_and_runs() {
    let src = r#"
        type Isnd is interface(out integer output)
        type Ircv is interface(in integer input)
        stage home {
            actor snd presents Isnd {
                value = 1;
                constructor() {}
                behaviour {
                    send value on output;
                    value := value + 1;
                    if value > 4 then { stop; }
                }
            }
            actor rcv presents Ircv {
                constructor() {}
                behaviour {
                    receive data from input;
                    printString("received: ");
                    printInt(data);
                }
            }
            boot {
                s = new snd();
                r = new rcv();
                connect s.output to r.input;
            }
        }
    "#;
    let module = compile_source(src).unwrap();
    let report = VmRuntime::new(module).run().unwrap();
    assert_eq!(
        report.output,
        vec![
            "received: ",
            "1",
            "received: ",
            "2",
            "received: ",
            "3",
            "received: ",
            "4"
        ]
    );
}

#[test]
fn listing3_matmul_compiles_and_produces_opencl_c() {
    let src = include_str!("../crates/apps/src/assets/matmul/ocl.ens").replace("1024", "16");
    let module = compile_source(&src).unwrap();
    let plan = module
        .actors
        .iter()
        .find_map(|a| match &a.code {
            ActorCode::Kernel(p) => Some(p),
            _ => None,
        })
        .expect("Multiply is a kernel actor");
    // The generated string is real OpenCL C: flattened indexing, dims as
    // trailing int args, the standard work-item builtins.
    assert!(plan.source.contains("__kernel void Multiply"));
    assert!(plan.source.contains("get_global_id(0)"));
    assert!(plan.source.contains("a_dim1"));
    // And the whole program runs, producing the expected checksum 2n³.
    let report = VmRuntime::new(module).run().unwrap();
    assert_eq!(report.output, vec!["checksum: ", "8192"]);
}

#[test]
fn compile_time_kernel_errors_carry_positions() {
    // The paper: errors at Ensemble compile time, not at runtime kernel
    // build. An unknown variable inside the kernel region must be caught.
    let src = r#"
        type s is opencl struct (
            integer [] worksize; integer [] groupsize;
            in real [] input; out real [] output
        )
        type i is interface(in s requests)
        stage home {
            opencl actor K presents i {
                constructor() {}
                behaviour {
                    receive req from requests;
                    receive d from req.input;
                    d[0] := bogus_variable;
                    send d on req.output;
                }
            }
            boot {}
        }
    "#;
    let err = compile_source(src).unwrap_err();
    assert!(err.message.contains("bogus_variable"), "{err}");
    assert!(err.pos.start.line > 1);
}
