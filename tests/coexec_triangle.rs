//! Correctness triangle for proof-guided co-execution.
//!
//! The co-execution scheduler may repartition an NDRange across two
//! devices, batch proven-fusable dispatch chains, or decline and fall
//! back to the plain path — but it must never change *what* a program
//! computes or make the virtual clock non-deterministic. These tests pin
//! that triangle for every application and every policy, plus the fault
//! edge: a secondary device lost mid-split rescues its remaining
//! sub-ranges onto the surviving primary, byte-identically.

use bench::apps_ens;
use ensemble_ocl::{device_matrix, DeviceSel, ProfileSink};
use ensemble_vm::VmRuntime;
use oclsim::fault::{FaultInjector, FaultOp, FaultPlan, InjectedFault};
use oclsim::{CoexecConfig, PolicyKind};
use trace::{SpanKind, TraceEvent, TraceSink};

/// Fault injectors attach to the process-global device matrix, and the
/// kill-chaos test switches co-execution on via `OCLSIM_COEXEC`; every
/// test in this binary serialises on one lock so neither leaks into a
/// concurrent clean run.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// One traced run with an explicit co-execution config: program output,
/// total virtual-clock time, and the exported trace events.
fn run_with(src: &str, cfg: CoexecConfig) -> (Vec<String>, f64, Vec<TraceEvent>) {
    let module = ensemble_analysis::compile_source(src, &ensemble_analysis::Options::default())
        .expect("app source compiles");
    let sink = TraceSink::new();
    let profile = ProfileSink::new().with_trace(sink.clone());
    let vm = VmRuntime::with_profile(module, profile);
    vm.set_coexec(cfg);
    let report = vm.run().expect("app runs");
    let total_ns = report.total_ns();
    (report.output, total_ns, sink.events())
}

/// The most aggressive co-execution config: split policy on, batching
/// on, and no minimum-size floor, so even the tiny triangle-sized
/// dispatches take the co-execution path whenever their proofs allow.
fn eager(policy: PolicyKind) -> CoexecConfig {
    CoexecConfig {
        policy: Some(policy),
        batch: true,
        min_items: 1,
        ..CoexecConfig::default()
    }
}

/// All five applications at triangle sizes (small enough for debug-mode
/// test runs, large enough that every kernel actually dispatches).
fn apps() -> [(&'static str, String); 5] {
    [
        ("matmul", apps_ens::matmul(32, "GPU")),
        ("mandelbrot", apps_ens::mandelbrot(32, 20, "GPU")),
        ("lud", apps_ens::lud(32, "GPU")),
        ("reduction", apps_ens::reduction(1 << 10, "GPU")),
        ("docrank", apps_ens::docrank(128, 3, "GPU")),
    ]
}

const POLICIES: [PolicyKind; 3] = [
    PolicyKind::Static,
    PolicyKind::ChunkedDynamic,
    PolicyKind::Guided,
];

/// All `CoexecSplit` instants' arguments, in order — the scheduler's
/// complete decision record for a run (policy, split dimension, group
/// assignment per lane).
fn split_decisions(events: &[TraceEvent]) -> Vec<Vec<(String, String)>> {
    events
        .iter()
        .filter(|e| e.kind == SpanKind::CoexecSplit)
        .map(|e| e.args.clone())
        .collect()
}

/// Every app × every policy (with batching on and no size floor):
/// output byte-identical to the plain single-device run, scheduler
/// decisions bit-identical across repeated runs, and the virtual clock
/// equal to float-accumulation tolerance. (The device queues are
/// process-global and their clocks advance monotonically across runs,
/// so span durations — `end − start` at ever-larger magnitudes — can
/// differ in the last ULP between otherwise identical runs; whole-ns
/// divergence would still mean a real scheduling difference.)
#[test]
fn every_app_is_byte_identical_and_deterministic_under_every_policy() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    for (app, src) in apps() {
        let (reference, _, _) = run_with(&src, CoexecConfig::default());
        for policy in POLICIES {
            let (out_a, ns_a, ev_a) = run_with(&src, eager(policy));
            let (out_b, ns_b, ev_b) = run_with(&src, eager(policy));
            assert_eq!(
                out_a, reference,
                "{app}/{policy:?}: co-executed output diverged from plain run"
            );
            assert_eq!(out_a, out_b, "{app}/{policy:?}: output not deterministic");
            assert_eq!(
                split_decisions(&ev_a),
                split_decisions(&ev_b),
                "{app}/{policy:?}: split decisions not deterministic"
            );
            assert!(
                (ns_a - ns_b).abs() <= ns_a.abs() * 1e-9,
                "{app}/{policy:?}: virtual clock diverged ({ns_a} vs {ns_b})"
            );
        }
    }
}

/// The proof gate holds at the dispatch seam: reduction's kernel (a
/// cross-group reduction, proof-blocked) must never co-execute even
/// under the most eager config, while matmul's proof-splittable kernel
/// engages the scheduler.
#[test]
fn proof_blocked_kernels_never_split() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (_, _, events) = run_with(&apps_ens::reduction(1 << 12, "GPU"), eager(PolicyKind::Static));
    assert!(
        !events.iter().any(|e| e.kind == SpanKind::CoexecSplit),
        "reduction is proof-blocked; no split instant may appear"
    );
    let (_, _, events) = run_with(&apps_ens::matmul(32, "GPU"), eager(PolicyKind::Static));
    assert!(
        events.iter().any(|e| e.kind == SpanKind::CoexecSplit),
        "matmul is proof-splittable; the scheduler must engage"
    );
}

/// Reads a `u64` argument off the first `CoexecSplit` instant.
fn split_arg(events: &[TraceEvent], key: &str) -> Option<u64> {
    events
        .iter()
        .find(|e| e.kind == SpanKind::CoexecSplit)
        .and_then(|e| e.args.iter().find(|(k, _)| k == key))
        .and_then(|(_, v)| v.parse().ok())
}

/// At a size beyond the sweep's crossover the static policy hands the
/// secondary real groups; losing that device mid-split rescues them
/// onto the primary with byte-identical output, and the rescue is
/// visible in the `CoexecSplit` instant.
#[test]
fn lost_secondary_mid_split_rescues_groups_onto_survivor() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let src = apps_ens::matmul(224, "GPU");
    let cfg = CoexecConfig {
        policy: Some(PolicyKind::Static),
        ..CoexecConfig::default()
    };
    let (reference, _, _) = run_with(&src, CoexecConfig::default());

    // Clean split first: the secondary must genuinely take groups here,
    // otherwise the rescue below would be vacuous.
    let (clean_out, _, clean_events) = run_with(&src, cfg.clone());
    let clean_taken = split_arg(&clean_events, "secondary_groups").unwrap_or(0);
    assert!(clean_taken > 0, "secondary lane must take groups at n=224");
    assert_eq!(clean_out, reference, "clean split output diverged");

    // Same run with the secondary (CPU) lost on its first liveness
    // probe: the scheduler reroutes every piece to the primary.
    let entry = device_matrix()
        .select(DeviceSel::cpu())
        .expect("CPU entry in the device matrix");
    let injector = FaultInjector::new(
        FaultPlan::new().fail(FaultOp::Enqueue, 0, InjectedFault::DeviceLost),
    );
    entry.queue.attach_faults(injector.clone());
    let result = std::panic::catch_unwind(|| run_with(&src, cfg));
    entry.queue.attach_faults(FaultInjector::disabled());
    let (faulted_out, _, faulted_events) = result.expect("faulted run completes");

    assert_eq!(
        faulted_out, reference,
        "device lost mid-split must not change the output"
    );
    let rescued = split_arg(&faulted_events, "rescued_groups").unwrap_or(0);
    assert!(rescued > 0, "lost secondary must rescue its groups");
    assert_eq!(
        split_arg(&faulted_events, "secondary_groups"),
        Some(0),
        "a dead secondary lane ends the run with no groups"
    );
}

/// Seeded kill-chaos with co-execution switched on via `OCLSIM_COEXEC`
/// (the env-var form of the seam): killed actors restart from their
/// checkpoints and the output still matches the fault-free reference —
/// supervision and NDRange splitting compose.
#[test]
fn kill_chaos_composes_with_co_execution() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("OCLSIM_COEXEC", "static,min=1");
    let outcome = bench::chaos::run_app_chaos(
        "matmul",
        &apps_ens::matmul(32, "GPU"),
        bench::chaos::kill_plan(5, 17, 3),
    );
    std::env::remove_var("OCLSIM_COEXEC");
    let o = outcome.expect("kill-chaos run completes");
    assert!(o.matches_reference, "{}", o.render());
    assert!(o.kills >= 1, "{}", o.render());
    assert_eq!(o.exits, o.kills, "{}", o.render());
    assert_eq!(o.restarts, o.kills, "{}", o.render());
}
