//! Property-based tests across the crates: the simulator computes what the
//! reference computes, channels deliver what was sent, flattening is
//! lossless — for *arbitrary* inputs, not just the fixtures.

use ensemble_repro::baselines::acc::AccTarget;
use ensemble_repro::ensemble_actors::{buffered_channel, In, Out};
use ensemble_repro::ensemble_apps::{matmul, reduction};
use ensemble_repro::ensemble_ocl::{Array2, DeviceSel, FlatData, Flatten, ProfileSink};
use ensemble_repro::oclsim::DeviceType;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The interpreted matmul kernel agrees with the sequential reference
    /// for arbitrary matrices, through all three implementations.
    #[test]
    fn matmul_all_paths_agree(
        seed in 0u64..1000,
        n_pow in 2u32..5, // 4..16
    ) {
        let n = 1usize << n_pow;
        let a = Array2::from_vec(n, n,
            ensemble_repro::ensemble_apps::generate::deterministic_f32(n * n, seed));
        let b = Array2::from_vec(n, n,
            ensemble_repro::ensemble_apps::generate::deterministic_f32(n * n, seed + 1));
        let expected = matmul::reference(&a, &b);
        let close = |got: &Array2| {
            got.as_slice()
                .iter()
                .zip(expected.as_slice())
                .all(|(x, y)| (x - y).abs() <= 1e-3 * x.abs().max(1.0))
        };
        let ens = matmul::run_ensemble(a.clone(), b.clone(), DeviceSel::gpu(), ProfileSink::new());
        prop_assert!(close(&ens), "ensemble path diverged");
        let c = matmul::run_copencl(a.clone(), b.clone(), DeviceType::Cpu, ProfileSink::new());
        prop_assert!(close(&c), "copencl path diverged");
        let acc = matmul::run_openacc(a, b, AccTarget::gpu(), ProfileSink::new()).unwrap();
        prop_assert!(close(&acc), "openacc path diverged");
    }

    /// Tree reduction finds the exact minimum of arbitrary data, at sizes
    /// that are deliberately not multiples of the work-group size.
    #[test]
    fn reduction_finds_the_minimum(
        seed in 0u64..1000,
        n in 1usize..5000,
        plant_at_end in proptest::bool::ANY,
    ) {
        let mut data = ensemble_repro::ensemble_apps::generate::deterministic_f32(n, seed);
        if plant_at_end {
            let last = data.len() - 1;
            data[last] = -999.0;
        }
        let expected = reduction::reference(&data);
        let got = reduction::run_copencl(data, DeviceType::Gpu, ProfileSink::new());
        prop_assert_eq!(got, expected);
    }

    /// Channels preserve order and content for arbitrary message sequences.
    #[test]
    fn channels_are_fifo(msgs in proptest::collection::vec(any::<i32>(), 0..64)) {
        let (o, i) = buffered_channel::<i32>(msgs.len().max(1));
        for m in &msgs {
            o.send(m).unwrap();
        }
        let mut got = Vec::new();
        while let Ok(Some(v)) = i.try_receive() {
            got.push(v);
        }
        prop_assert_eq!(got, msgs);
    }

    /// Round-robin fan-out delivers every message exactly once.
    #[test]
    fn fan_out_partitions_messages(count in 1usize..50, receivers in 1usize..5) {
        let ins: Vec<In<i32>> = (0..receivers).map(|_| In::with_buffer(count)).collect();
        let o = Out::new();
        for i in &ins {
            o.connect(i);
        }
        for k in 0..count {
            o.send(&(k as i32)).unwrap();
        }
        let mut got = Vec::new();
        for i in &ins {
            while let Ok(Some(v)) = i.try_receive() {
                got.push(v);
            }
        }
        got.sort_unstable();
        prop_assert_eq!(got, (0..count as i32).collect::<Vec<_>>());
    }

    /// Flattening arbitrary 2-D arrays and rebuilding them is lossless,
    /// including through the byte representation a device buffer uses.
    #[test]
    fn flatten_roundtrips(
        rows in 1usize..20,
        cols in 1usize..20,
        seed in 0u64..1000,
    ) {
        let data = ensemble_repro::ensemble_apps::generate::deterministic_f32(rows * cols, seed);
        let a = Array2::from_vec(rows, cols, data);
        let flat = a.clone().flatten();
        // Through bytes, as a dispatch would do.
        let bytes = flat.segs[0].to_bytes();
        let seg = ensemble_repro::ensemble_ocl::FlatSeg::from_bytes(
            ensemble_repro::ensemble_ocl::SegTy::F32,
            &bytes,
        );
        let rebuilt = Array2::unflatten(FlatData { segs: vec![seg], dims: flat.dims }).unwrap();
        prop_assert_eq!(rebuilt, a);
    }

    /// Struct-like tuples flatten field-wise and rebuild exactly.
    #[test]
    fn tuple_flatten_roundtrips(
        n in 1usize..32,
        seed in 0u64..1000,
        scalar in any::<i32>(),
    ) {
        let v = ensemble_repro::ensemble_apps::generate::deterministic_f32(n, seed);
        let value = (v.clone(), scalar, Array2::from_vec(1, n, v));
        let flat = value.clone().flatten();
        let back = <(Vec<f32>, i32, Array2)>::unflatten(flat).unwrap();
        prop_assert_eq!(back, value);
    }
}

/// The mini OpenCL-C pretty-printer is a fixpoint over all kernel sources
/// in the repository (emit ∘ parse ∘ emit = emit).
#[test]
fn pretty_printer_fixpoint_over_all_kernels() {
    use ensemble_repro::oclsim::minicl::{emit_unit, parse};
    for src in [
        ensemble_repro::ensemble_apps::matmul::KERNEL_SRC,
        ensemble_repro::ensemble_apps::mandelbrot::KERNEL_SRC,
        ensemble_repro::ensemble_apps::lud::KERNEL_SRC,
        ensemble_repro::ensemble_apps::reduction::KERNEL_SRC,
        ensemble_repro::ensemble_apps::docrank::ENSEMBLE_KERNEL_SRC,
        ensemble_repro::ensemble_apps::docrank::C_KERNEL_SRC,
    ] {
        let unit = parse(src).unwrap();
        let emitted = emit_unit(&unit);
        let reparsed = parse(&emitted).unwrap();
        assert_eq!(emitted, emit_unit(&reparsed));
    }
}
