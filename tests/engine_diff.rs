//! Differential tests pinning the three kernel execution engines together.
//!
//! Every kernel the repository can produce — the generated OpenCL C of all
//! five Ensemble applications on both device targets, hand-written trap
//! fixtures, and proptest-generated expression kernels — is run through the
//! full public dispatch path (`Program::build` → `set_arg_*` →
//! `enqueue_nd_range`) once per engine, and all three engines must agree
//! **byte for byte** on every output buffer, on the retired abstract op
//! count, and — when a kernel traps — on the exact trap message and
//! work-item.
//!
//! The stack interpreter is the reference; the register-IR engine
//! (`oclsim::minicl::regir`) and the direct-threaded native engine
//! (`oclsim::minicl::native`) are the ones under test. Each is compared
//! against the stack reference, closing the triangle
//! stack ↔ register ↔ native. See `ARCHITECTURE.md` §11–§12.

use ensemble_repro::ensemble_lang::{self, ActorCode};
use ensemble_repro::oclsim::{
    ClError, CommandQueue, Context, DeviceType, Engine, MemFlags, NdRange, Platform, Program,
};
use proptest::prelude::*;

/// Elements per synthesized `__global` buffer argument.
const BUF_ELEMS: usize = 4096;
/// Launch geometry used for every harvested kernel.
const GLOBAL: [usize; 3] = [16, 16, 1];
const LOCAL: [usize; 3] = [4, 4, 1];

/// Deterministic, engine-independent fill for buffer argument `arg`:
/// small floats in roughly `[-1.3, 1.3]`, so harvested numeric kernels
/// exercise real arithmetic rather than NaN propagation.
fn arg_fill(arg: usize, elems: usize) -> Vec<u8> {
    (0..elems)
        .flat_map(|i| {
            let v = ((i * 7 + arg * 13) % 97) as f32 / 37.0 - 1.3;
            v.to_le_bytes()
        })
        .collect()
}

/// One engine's observable outcome: every buffer argument's final bytes
/// plus the retired abstract op count, or the trap rendered as a string.
type Outcome = Result<(Vec<Vec<u8>>, u64), String>;

/// Run `kernel_name` from `src` on `engine` with synthesized arguments.
///
/// Argument kinds are discovered by trial through the public setters:
/// buffer first (4096 elements, deterministic fill), then `__local`
/// (16 bytes per work-item in the group), then `int` (16), then
/// `float` (0.5). Any error other than a kernel trap is a panic — the
/// fixtures are expected to build and launch.
fn run_on(engine: Engine, src: &str, kernel_name: &str, global: [usize; 3], local: [usize; 3]) -> Outcome {
    let device = Platform::default_device(DeviceType::Gpu).expect("device");
    let ctx = Context::new(std::slice::from_ref(&device)).expect("context");
    let queue = CommandQueue::new(&ctx, &device).expect("queue");
    let program = Program::build(&ctx, src)
        .unwrap_or_else(|e| panic!("build failure for `{kernel_name}`: {e}\n{src}"));
    let kernel = program.create_kernel(kernel_name).expect("kernel");
    kernel.set_engine(Some(engine));
    let local_items: usize = local.iter().product();
    let mut bufs = Vec::new();
    for i in 0..kernel.num_args() {
        let buf = ctx
            .create_buffer(MemFlags::ReadWrite, BUF_ELEMS * 4)
            .expect("buffer");
        if kernel.set_arg_buffer(i, &buf).is_ok() {
            queue
                .enqueue_write_buffer(&buf, &arg_fill(i, BUF_ELEMS))
                .expect("write");
            bufs.push(buf);
        } else if kernel.set_arg_local(i, local_items * 16).is_err()
            && kernel.set_arg_i32(i, 16).is_err()
        {
            kernel
                .set_arg_f32(i, 0.5)
                .unwrap_or_else(|e| panic!("arg {i} of `{kernel_name}` unbindable: {e}"));
        }
    }
    let ops = match queue.enqueue_nd_range(&kernel, &NdRange::d3(global, local)) {
        Ok(ev) => ev.ops(),
        Err(ClError::KernelTrap {
            message, global_id, ..
        }) => return Err(format!("{message} @ {global_id:?}")),
        Err(other) => panic!("`{kernel_name}` failed to launch: {other}"),
    };
    let mut out = Vec::new();
    for buf in &bufs {
        let mut bytes = vec![0u8; BUF_ELEMS * 4];
        queue.enqueue_read_buffer(buf, &mut bytes).expect("read");
        out.push(bytes);
    }
    Ok((out, ops))
}

/// Run on all three engines and assert identical outcomes pairwise
/// against the stack reference (closing the triangle transitively).
fn assert_engines_agree(src: &str, kernel_name: &str, global: [usize; 3], local: [usize; 3]) {
    let stack = run_on(Engine::Stack, src, kernel_name, global, local);
    for (label, engine) in [("register", Engine::Register), ("native", Engine::Native)] {
        let other = run_on(engine, src, kernel_name, global, local);
        match (&stack, &other) {
            (Ok((sb, sops)), Ok((ob, oops))) => {
                assert_eq!(sb, ob, "`{kernel_name}`: {label} output buffers differ from stack");
                assert_eq!(sops, oops, "`{kernel_name}`: {label} retired op count differs from stack");
            }
            (Err(s), Err(o)) => assert_eq!(s, o, "`{kernel_name}`: {label} trap differs from stack"),
            _ => panic!(
                "`{kernel_name}`: engines disagree on success: stack={stack:?} {label}={other:?}"
            ),
        }
    }
}

/// Harvest every distinct generated kernel from the five applications'
/// Ensemble sources, on both device targets.
fn harvested_kernels() -> Vec<(String, String)> {
    let mut found: Vec<(String, String)> = Vec::new();
    for target in ["GPU", "CPU"] {
        let sources = [
            bench::apps_ens::matmul(16, target),
            bench::apps_ens::mandelbrot(16, 8, target),
            bench::apps_ens::lud(16, target),
            bench::apps_ens::reduction(256, target),
            bench::apps_ens::docrank(64, 2, target),
        ];
        for ens_src in sources {
            let module = ensemble_lang::compile_source(&ens_src).expect("compile .ens");
            for actor in &module.actors {
                if let ActorCode::Kernel(plan) = &actor.code {
                    if !found.iter().any(|(_, s)| *s == plan.source) {
                        found.push((plan.kernel_name.clone(), plan.source.clone()));
                    }
                }
            }
        }
    }
    found
}

/// Every kernel the Ensemble compiler generates for the five evaluation
/// applications runs identically on all three engines.
#[test]
fn harvested_app_kernels_agree_on_all_engines() {
    let kernels = harvested_kernels();
    assert!(
        kernels.len() >= 5,
        "expected at least one kernel per application, harvested {}",
        kernels.len()
    );
    for (name, src) in &kernels {
        assert_engines_agree(src, name, GLOBAL, LOCAL);
    }
}

/// Trap fixtures: all three engines must fail identically, through the
/// public dispatch path (not just the minicl unit tests).
#[test]
fn trap_fixtures_agree_on_all_engines() {
    let fixtures: &[(&str, &str)] = &[
        (
            "oob",
            "__kernel void oob(__global float* a) { a[get_global_id(0) + 1000000] = 1.0f; }",
        ),
        (
            "divz",
            "__kernel void divz(__global int* a) { int z = (int)(get_global_id(0) * 0); a[0] = 1 / z; }",
        ),
        (
            "diverge",
            "__kernel void diverge(__global float* a) { \
                if (get_local_id(0) == 0) { barrier(CLK_LOCAL_MEM_FENCE); } \
                a[get_global_id(0)] = 1.0f; }",
        ),
    ];
    for (name, src) in fixtures {
        let stack = run_on(Engine::Stack, src, name, GLOBAL, LOCAL);
        assert!(stack.is_err(), "`{name}` fixture was expected to trap");
        assert_engines_agree(src, name, GLOBAL, LOCAL);
    }
}

/// Build a float expression kernel from a proptest-chosen op/operand
/// script. Each step folds `v = v <op> <operand>` (or a call), covering
/// the register compiler's constant pool, mad fusion in both operand
/// orders, and compare-branch fusion.
fn float_expr_kernel(script: &[(u8, u8)]) -> String {
    let mut body = String::from("float v = a[i];\n");
    for (k, (op, operand)) in script.iter().enumerate() {
        let rhs = match operand % 4 {
            0 => "b[i]".to_string(),
            1 => "x".to_string(),
            2 => format!("{}.0f", (k % 7) + 1),
            _ => "v".to_string(),
        };
        let step = match op % 8 {
            0 => format!("v = v + {rhs};"),
            1 => format!("v = v - {rhs};"),
            2 => format!("v = v * {rhs};"),
            3 => format!("v = v * x + {rhs};"),
            4 => format!("v = {rhs} + v * x;"),
            5 => format!("v = fmin(v, {rhs});"),
            6 => format!("v = fmax(v, {rhs});"),
            _ => format!("if (v > {rhs}) {{ v = v - 0.5f; }}"),
        };
        body.push_str("                ");
        body.push_str(&step);
        body.push('\n');
    }
    format!(
        "__kernel void e(__global float* a, __global float* b, __global float* out, const float x) {{\n\
            int i = get_global_id(1) * get_global_size(0) + get_global_id(0);\n\
            {body}\
            out[i] = v;\n\
        }}"
    )
}

/// Build an integer loop kernel: a bounded accumulation whose body is
/// chosen by proptest — exercises MadI, wrapping arithmetic, guarded
/// division and the fused loop branch.
fn int_loop_kernel(bound: u8, ops: &[u8]) -> String {
    let mut body = String::new();
    for (k, op) in ops.iter().enumerate() {
        let c = (k % 5) as i64 + 2;
        let step = match op % 6 {
            0 => format!("acc = acc + j * {c};"),
            1 => format!("acc = acc * {c} + j;"),
            2 => "acc = acc - j;".to_string(),
            3 => "acc = acc / (j + 1);".to_string(),
            4 => format!("acc = acc % ({c} + j * 0 + 1);"),
            _ => format!("if (acc > {c}) {{ acc = acc - {c}; }}"),
        };
        body.push_str("                ");
        body.push_str(&step);
        body.push('\n');
    }
    format!(
        "__kernel void l(__global int* out) {{\n\
            int i = get_global_id(1) * get_global_size(0) + get_global_id(0);\n\
            int acc = i;\n\
            for (int j = 0; j < {bound}; j++) {{\n\
            {body}\
            }}\n\
            out[i] = acc;\n\
        }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary float expression kernels agree byte for byte on all engines.
    #[test]
    fn random_float_kernels_agree(
        ops in proptest::collection::vec(any::<u8>(), 1..12),
        operands in proptest::collection::vec(any::<u8>(), 1..12),
    ) {
        let script: Vec<(u8, u8)> = ops
            .iter()
            .zip(operands.iter().chain(std::iter::repeat(&0)))
            .map(|(&o, &r)| (o, r))
            .collect();
        let src = float_expr_kernel(&script);
        assert_engines_agree(&src, "e", GLOBAL, LOCAL);
    }

    /// Arbitrary bounded integer loops agree, including op counts.
    #[test]
    fn random_int_loop_kernels_agree(
        bound in 1u8..64,
        ops in proptest::collection::vec(any::<u8>(), 1..6),
    ) {
        let src = int_loop_kernel(bound, &ops);
        assert_engines_agree(&src, "l", GLOBAL, LOCAL);
    }
}
