//! The Ensemble VM instruction set and compiled-module containers.
//!
//! Host actors compile to this stack bytecode; the VM (crate
//! `ensemble-vm`) interprets it with one thread per actor, which is the
//! paper's runtime architecture — and the interpretation cost is exactly
//! the "overhead" component of Figures 3a–3e, so the interpreter counts
//! every opcode it retires.
//!
//! Kernel actors do **not** compile to this bytecode: their behaviour
//! bodies become OpenCL C strings (module [`crate::kernelgen`]), and the
//! VM runs their host-side protocol natively (Figure 2 of the paper).

use crate::ast::{Dir, PrintKind};

/// Element kind of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemKind {
    /// `integer` elements.
    Int,
    /// `real` elements.
    Real,
    /// `boolean` elements.
    Bool,
    /// Nested arrays or structs.
    Cell,
}

/// Native runtime functions — the paper's `generate_data(s)` (Listing 3)
/// and similar helpers are provided by the runtime in C, not interpreted;
/// these are their stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeFn {
    /// `generate_vector(n, seed)` → `real []`, uniform in [0.5, 1.5).
    GenerateVector,
    /// `generate_matrix(rows, cols, seed)` → `real [][]`, uniform in [0, 1).
    GenerateMatrix,
    /// `generate_dominant(n, seed)` → diagonally dominant `real [][]`.
    GenerateDominant,
    /// `checksum(arr)` → `real`: recursive sum of every element.
    Checksum,
}

/// One VM instruction.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // arithmetic/comparison variants are self-describing
pub enum VOp {
    /// Push an integer constant.
    PushI(i64),
    /// Push a real constant.
    PushR(f64),
    /// Push a boolean constant.
    PushB(bool),
    /// Push a string from the module string table.
    PushStr(u16),
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Load local slot.
    Ld(u16),
    /// Store to local slot.
    St(u16),
    /// Allocate an array: pops `ndims` sizes (innermost last) and, when
    /// `has_fill`, a fill value (popped first).
    NewArr {
        /// Number of dimensions.
        ndims: u8,
        /// Leaf element kind.
        elem: ElemKind,
        /// Whether a fill value is on the stack.
        has_fill: bool,
    },
    /// Allocate a struct from `nfields` stack values (first field deepest).
    NewStructV {
        /// Struct type id in the module table.
        type_id: u16,
        /// Field count.
        nfields: u8,
    },
    /// `[struct] -> [field]`.
    GetField(u8),
    /// `[struct, value] -> []`.
    SetField(u8),
    /// `[array, index] -> [value]`.
    IdxLd,
    /// `[array, index, value] -> []`.
    IdxSt,
    // Arithmetic (numeric dispatch on operand kinds).
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Neg,
    // Comparisons: push boolean.
    CmpEq,
    CmpNe,
    CmpLt,
    CmpLe,
    CmpGt,
    CmpGe,
    /// Logical not.
    NotOp,
    /// Boolean and (both operands evaluated).
    AndOp,
    /// Boolean or (both operands evaluated).
    OrOp,
    /// Unconditional jump.
    Jmp(u32),
    /// Jump when the boolean on top of stack is false.
    Jz(u32),
    /// `toReal(x)`.
    ToReal,
    /// `toInt(x)` (truncating).
    ToInt,
    /// `lengthof(a)` — first dimension length.
    LengthOf,
    /// `new in T` — push a fresh input endpoint.
    NewChanIn,
    /// `new out T` — push a fresh output endpoint.
    NewChanOut,
    /// `connect <out> to <in>`: `[out, in] -> []`.
    ConnectOp,
    /// `send v on ch`: `[chan, value] -> []`. `mov` skips the duplicate.
    SendOp {
        /// Whether the conveyed type is movable (§6.2.3).
        mov: bool,
    },
    /// `receive v from ch`: `[chan] -> [value]`.
    RecvOp,
    /// Boot only: instantiate actor `idx`, pushing its port map.
    SpawnActor(u16),
    /// `[actor-ref] -> [endpoint]` — port by name (string table id).
    GetPort(u16),
    /// Call a native runtime function with `argc` stack arguments.
    CallNative(NativeFn, u8),
    /// Print primitive.
    Print(PrintKind),
    /// Stop this actor (behaviour does not repeat).
    StopOp,
}

impl VOp {
    /// Interpreter cost in abstract VM operations. The VM multiplies the
    /// total by its per-op nanosecond cost to model the "Ensemble VM is an
    /// unoptimised interpreter" overhead the paper reports.
    pub fn cost(&self) -> u64 {
        match self {
            VOp::NewArr { .. } | VOp::NewStructV { .. } => 8,
            VOp::SendOp { .. } | VOp::RecvOp | VOp::ConnectOp => 12,
            VOp::SpawnActor(_) => 32,
            // Native functions execute in the runtime, not the interpreter.
            VOp::CallNative(..) => 8,
            VOp::IdxLd | VOp::IdxSt | VOp::GetField(_) | VOp::SetField(_) => 3,
            _ => 1,
        }
    }
}

/// A compiled code block plus its frame size.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Chunk {
    /// Instructions.
    pub code: Vec<VOp>,
    /// Number of local slots the block needs.
    pub nslots: u16,
}

/// Struct metadata kept for runtime construction and mov semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct StructMeta {
    /// Type name.
    pub name: String,
    /// Field names, in order.
    pub fields: Vec<String>,
    /// Per-field mov flags.
    pub movs: Vec<bool>,
    /// True when any field is `mov` — values travel by reference.
    pub any_mov: bool,
}

/// An actor interface port.
#[derive(Debug, Clone, PartialEq)]
pub struct PortMeta {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: Dir,
    /// Buffer capacity for `in` ports (the runtime default).
    pub capacity: usize,
}

/// Shape of the data a kernel actor receives on its settings' input
/// channel.
#[derive(Debug, Clone, PartialEq)]
pub enum DataShape {
    /// A bare array (e.g. Mandelbrot's `integer [][]`).
    Array {
        /// Leaf element kind.
        elem: ElemKind,
        /// Dimensions.
        ndims: usize,
    },
    /// A struct whose array fields become separate buffers.
    Struct {
        /// Struct type id.
        type_id: u16,
    },
}

/// One array field of the kernel's data (in flattening order).
#[derive(Debug, Clone, PartialEq)]
pub struct DataField {
    /// Field name (or the receive binding for a bare array).
    pub name: String,
    /// Leaf element kind (Int or Real).
    pub elem: ElemKind,
    /// Dimension count.
    pub ndims: usize,
}

/// What the kernel actor sends on the output channel.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelOut {
    /// `send d on req.output` — the whole data value.
    Whole,
    /// `send d.<field> on req.output` — one field, read back alone.
    Field(usize),
}

/// Everything the VM needs to run one kernel actor (Figure 2: the
/// bytecode actor is the host; this plan is what the compiler stored in
/// the actor's bytecode — including the generated OpenCL C string).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPlan {
    /// Generated OpenCL C source.
    pub source: String,
    /// Kernel entry-point name.
    pub kernel_name: String,
    /// `device_index` from the actor header.
    pub device_index: usize,
    /// `device_type` from the actor header.
    pub device_type: Option<String>,
    /// The settings port (always the single `in` port).
    pub requests_port: usize,
    /// Shape of the data value.
    pub data_shape: DataShape,
    /// Array fields, in flattening order.
    pub data_fields: Vec<DataField>,
    /// Names of trailing scalar fields of the opencl settings struct
    /// (passed as extra kernel arguments, e.g. the LUD step).
    pub settings_scalars: Vec<String>,
    /// True when the data type carries `mov` fields: leave data on the
    /// device between dispatches (§6.2.3).
    pub mov: bool,
    /// What goes out on the output channel.
    pub out: KernelOut,
    /// Proven by static analysis (`crates/analysis`): every consumer of
    /// this kernel's `mov` data type runs on the same device, so the VM
    /// may skip its runtime cross-context residency bookkeeping.
    pub residency_proven: bool,
    /// Splittability/fusion proofs computed by the analysis suite, when
    /// the compile was driven through it — the VM surfaces these as
    /// `proof_splittable`/`proof_fusable` trace instants at dispatch.
    pub proofs: Option<crate::proof::KernelProof>,
}

/// A compiled actor.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledActor {
    /// Actor type name.
    pub name: String,
    /// Interface ports (slot order: ports first).
    pub ports: Vec<PortMeta>,
    /// Number of persistent field slots after the ports.
    pub nfields: u16,
    /// Field initialiser code (runs once, before the constructor).
    pub field_init: Chunk,
    /// Host bytecode or kernel plan.
    pub code: ActorCode,
}

/// The two kinds of actor body.
#[derive(Debug, Clone, PartialEq)]
pub enum ActorCode {
    /// Interpreted host actor.
    Host {
        /// Constructor (runs once).
        constructor: Chunk,
        /// Behaviour (repeats until `StopOp` or channel closure).
        behaviour: Chunk,
    },
    /// OpenCL kernel actor driven natively by the runtime.
    Kernel(Box<KernelPlan>),
}

/// A fully compiled module.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledModule {
    /// String table.
    pub strings: Vec<String>,
    /// Struct table.
    pub structs: Vec<StructMeta>,
    /// Actor table.
    pub actors: Vec<CompiledActor>,
    /// Boot code (runs on the main runtime thread).
    pub boot: Chunk,
    /// Stage name.
    pub stage_name: String,
    /// Module-level proof inventory (empty unless the compile was driven
    /// through the analysis suite with proofs enabled).
    pub proofs: crate::proof::ProofSet,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_costs_reflect_weight() {
        assert!(VOp::SendOp { mov: false }.cost() > VOp::Add.cost());
        assert!(
            VOp::SpawnActor(0).cost()
                > VOp::NewArr {
                    ndims: 1,
                    elem: ElemKind::Real,
                    has_fill: false
                }
                .cost()
        );
    }
}
