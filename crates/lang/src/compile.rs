//! Module compilation: semantic analysis + VM bytecode + kernel plans.
//!
//! The compiler enforces the paper's structural rules (Figure 1's
//! "Ensemble compiler" box plus the §6.1 extensions):
//!
//! * an `opencl` actor presents an interface with **exactly one** `in`
//!   channel conveying an `opencl struct`;
//! * an `opencl struct` starts with two `integer []` fields (worksize,
//!   groupsize), then an `in` and an `out` channel; trailing scalar
//!   `integer` fields are allowed and become extra kernel arguments;
//! * a kernel behaviour is `receive settings; receive data; <kernel>;
//!   send result` — the kernel region compiles to OpenCL C at *Ensemble*
//!   compile time (errors surface here, not at runtime kernel build);
//! * a value of a `mov` type must not be used again after being sent
//!   until it is reassigned (the use-after-send check of §4).

use crate::ast::*;
use crate::diag::Diagnostic;
use crate::kernelgen::{self, KernelGenInput};
use crate::parser;
use crate::token::{Pos, Span};
use crate::vmops::*;
use std::collections::{BTreeSet, HashMap};

/// A compile failure with position.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// Description.
    pub message: String,
    /// Location in the `.ens` source.
    pub pos: Span,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: compile error: {}", self.pos, self.message)
    }
}

impl From<kernelgen::KernelGenError> for CompileError {
    fn from(e: kernelgen::KernelGenError) -> CompileError {
        CompileError {
            message: e.diag.message,
            pos: e.diag.span,
        }
    }
}

/// Facts an external analysis pass (see `crates/analysis`) may prove
/// about a module and thread into compilation.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// Kernel-actor names whose `mov` data provably never crosses an
    /// OpenCL context (every consumer of the data type runs on one
    /// device). Their [`KernelPlan`]s get `residency_proven = true` and
    /// the VM skips the runtime cross-context residency check (§6.2.3).
    pub residency_proven: BTreeSet<String>,
    /// Per-kernel splittability/fusion proofs keyed by kernel-actor
    /// name; attached to each [`KernelPlan`] so the VM can emit
    /// `proof_splittable`/`proof_fusable` trace instants at dispatch.
    pub kernel_proofs: std::collections::BTreeMap<String, crate::proof::KernelProof>,
    /// The module-level proof inventory, stored whole on the
    /// [`CompiledModule`].
    pub proofs: crate::proof::ProofSet,
}

/// Failure of the analysis-gated compilation pipeline
/// ([`compile_source_gated`]).
#[derive(Debug, Clone)]
pub enum GateError {
    /// The source did not parse.
    Parse(parser::ParseError),
    /// The analysis gate rejected the program (deny-by-default).
    Rejected(Vec<Diagnostic>),
    /// Analysis passed but compilation failed.
    Compile(CompileError),
}

impl std::fmt::Display for GateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateError::Parse(e) => write!(f, "{e}"),
            GateError::Compile(e) => write!(f, "{e}"),
            GateError::Rejected(diags) => {
                write!(f, "rejected by static analysis:")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for GateError {}

/// Parse `src`, run `gate` over the AST, and compile with whatever
/// facts the gate proved. This is the deny-by-default hook the static
/// analysis suite (`crates/analysis`) wires into: the gate returns
/// `Err(diagnostics)` to reject the program before codegen, or
/// `Ok(options)` carrying proofs (e.g. residency) into [`KernelPlan`]s.
pub fn compile_source_gated<F>(src: &str, gate: F) -> Result<CompiledModule, GateError>
where
    F: FnOnce(&Module) -> Result<CompileOptions, Vec<Diagnostic>>,
{
    let module = parser::parse(src).map_err(GateError::Parse)?;
    let opts = gate(&module).map_err(GateError::Rejected)?;
    compile_module_with(&module, &opts).map_err(GateError::Compile)
}

/// Parse and compile an Ensemble source to a [`CompiledModule`].
pub fn compile_source(src: &str) -> Result<CompiledModule, CompileError> {
    let module = parser::parse(src).map_err(|e| CompileError {
        message: e.message,
        pos: Span::point(e.pos),
    })?;
    compile_module(&module)
}

/// Static value kinds tracked for code generation.
#[derive(Debug, Clone, PartialEq)]
enum K {
    Int,
    Real,
    Bool,
    Str,
    Arr,
    Struct(u16),
    Chan(Dir, Box<K>),
    Actor(u16),
    Unknown,
}

fn kind_of_type(ty: &TypeExpr, structs: &HashMap<String, u16>) -> K {
    match ty {
        TypeExpr::Integer => K::Int,
        TypeExpr::Real => K::Real,
        TypeExpr::Boolean => K::Bool,
        TypeExpr::StringT => K::Str,
        TypeExpr::Array(..) => K::Arr,
        TypeExpr::Named(n) => structs.get(n).map(|&i| K::Struct(i)).unwrap_or(K::Unknown),
        TypeExpr::ChanIn(t) => K::Chan(Dir::In, Box::new(kind_of_type(t, structs))),
        TypeExpr::ChanOut(t) => K::Chan(Dir::Out, Box::new(kind_of_type(t, structs))),
    }
}

struct StructInfo {
    meta: StructMeta,
    field_types: Vec<TypeExpr>,
    opencl: bool,
}

/// Compile a parsed module (no analysis facts).
pub fn compile_module(module: &Module) -> Result<CompiledModule, CompileError> {
    compile_module_with(module, &CompileOptions::default())
}

/// Compile a parsed module with facts proven by an analysis pass.
pub fn compile_module_with(
    module: &Module,
    opts: &CompileOptions,
) -> Result<CompiledModule, CompileError> {
    if module.stages.len() != 1 {
        let pos = module
            .stages
            .first()
            .map(|s| s.pos)
            .unwrap_or(Span::point(Pos { line: 1, col: 1 }));
        return Err(CompileError {
            message: format!("expected exactly one stage, found {}", module.stages.len()),
            pos,
        });
    }
    let stage = &module.stages[0];

    // Type tables.
    let mut struct_ids: HashMap<String, u16> = HashMap::new();
    let mut structs: Vec<StructInfo> = Vec::new();
    let mut interfaces: HashMap<String, Vec<Port>> = HashMap::new();
    for t in &module.types {
        match t {
            TypeDecl::Struct {
                name,
                fields,
                opencl,
                pos,
            } => {
                if struct_ids.contains_key(name) {
                    return Err(CompileError {
                        message: format!("duplicate type `{name}`"),
                        pos: *pos,
                    });
                }
                let id = structs.len() as u16;
                struct_ids.insert(name.clone(), id);
                let movs: Vec<bool> = fields.iter().map(|f| f.mov).collect();
                structs.push(StructInfo {
                    meta: StructMeta {
                        name: name.clone(),
                        fields: fields.iter().map(|f| f.name.clone()).collect(),
                        any_mov: movs.iter().any(|&m| m),
                        movs,
                    },
                    field_types: fields.iter().map(|f| f.ty.clone()).collect(),
                    opencl: *opencl,
                });
            }
            TypeDecl::Interface { name, ports, pos } => {
                if interfaces.contains_key(name) {
                    return Err(CompileError {
                        message: format!("duplicate interface `{name}`"),
                        pos: *pos,
                    });
                }
                interfaces.insert(name.clone(), ports.clone());
            }
        }
    }
    // Validate opencl structs.
    for s in &structs {
        if s.opencl {
            validate_opencl_struct(s)?;
        }
    }

    let mut cm = CompiledModule {
        strings: Vec::new(),
        structs: structs.iter().map(|s| s.meta.clone()).collect(),
        actors: Vec::new(),
        boot: Chunk::default(),
        stage_name: stage.name.clone(),
        proofs: opts.proofs.clone(),
    };

    let actor_ids: HashMap<String, u16> = stage
        .actors
        .iter()
        .enumerate()
        .map(|(i, a)| (a.name.clone(), i as u16))
        .collect();

    let mut cx = Cx {
        struct_ids: &struct_ids,
        structs: &structs,
        actor_ids: &actor_ids,
        interfaces: &interfaces,
        strings: Vec::new(),
    };

    for actor in &stage.actors {
        let compiled = if actor.opencl.is_some() {
            compile_kernel_actor(&mut cx, actor, opts)?
        } else {
            compile_host_actor(&mut cx, actor)?
        };
        cm.actors.push(compiled);
    }

    // Boot: knows the actors, has no ports/fields of its own.
    let mut f = FnCx::new(&mut cx, &[]);
    f.in_boot = true;
    for s in &stage.boot {
        f.stmt(s)?;
    }
    cm.boot = Chunk {
        code: f.code,
        nslots: f.max_slot,
    };
    cm.strings = cx.strings;
    Ok(cm)
}

fn validate_opencl_struct(s: &StructInfo) -> Result<(), CompileError> {
    let pos = Span::point(Pos { line: 1, col: 1 });
    let fail = |msg: String| {
        Err(CompileError {
            message: format!("opencl struct `{}`: {msg}", s.meta.name),
            pos,
        })
    };
    if s.field_types.len() < 4 {
        return fail("needs worksize, groupsize, in and out channel fields".into());
    }
    let int_arr = TypeExpr::Array(Box::new(TypeExpr::Integer), 1);
    if s.field_types[0] != int_arr || s.field_types[1] != int_arr {
        return fail("the first two fields must be `integer []` worksize and groupsize".into());
    }
    if !matches!(s.field_types[2], TypeExpr::ChanIn(_)) {
        return fail("the third field must be an `in` channel".into());
    }
    if !matches!(s.field_types[3], TypeExpr::ChanOut(_)) {
        return fail("the fourth field must be an `out` channel".into());
    }
    for t in &s.field_types[4..] {
        if !matches!(t, TypeExpr::Integer) {
            return fail(format!(
                "fields after the channels must be `integer` scalars (found `{t}`); \
                 real-typed extra kernel arguments are not supported"
            ));
        }
    }
    Ok(())
}

struct Cx<'a> {
    struct_ids: &'a HashMap<String, u16>,
    structs: &'a [StructInfo],
    actor_ids: &'a HashMap<String, u16>,
    interfaces: &'a HashMap<String, Vec<Port>>,
    strings: Vec<String>,
}

impl<'a> Cx<'a> {
    fn string_id(&mut self, s: &str) -> u16 {
        if let Some(i) = self.strings.iter().position(|x| x == s) {
            return i as u16;
        }
        self.strings.push(s.to_string());
        (self.strings.len() - 1) as u16
    }
}

fn resolve_ports(cx: &Cx<'_>, actor: &ActorDecl) -> Result<Vec<(PortMeta, K)>, CompileError> {
    let ports = cx.interfaces.get(&actor.interface).ok_or(CompileError {
        message: format!(
            "actor `{}` presents unknown interface `{}`",
            actor.name, actor.interface
        ),
        pos: actor.pos,
    })?;
    Ok(ports
        .iter()
        .map(|p| {
            let elem = kind_of_type(&p.ty, cx.struct_ids);
            (
                PortMeta {
                    name: p.name.clone(),
                    dir: p.dir,
                    capacity: 4,
                },
                K::Chan(p.dir, Box::new(elem)),
            )
        })
        .collect())
}

fn compile_host_actor(cx: &mut Cx<'_>, actor: &ActorDecl) -> Result<CompiledActor, CompileError> {
    let ports = resolve_ports(cx, actor)?;

    // Slot layout: ports, then fields, then block temporaries.
    let mut base: Vec<(String, u16, K)> = Vec::new();
    for (i, (p, k)) in ports.iter().enumerate() {
        base.push((p.name.clone(), i as u16, k.clone()));
    }
    let nports = ports.len() as u16;

    // Field initialisers: run once with only the ports in scope, storing
    // into the persistent field slots.
    let mut field_base = base.clone();
    let mut finit = FnCx::new(cx, &base);
    finit.next_slot = nports + actor.fields.len() as u16;
    finit.max_slot = finit.next_slot;
    for (i, (name, value)) in actor.fields.iter().enumerate() {
        let slot = nports + i as u16;
        let k = finit.expr(value)?;
        finit.code.push(VOp::St(slot));
        field_base.push((name.clone(), slot, k));
    }
    let field_init = Chunk {
        code: finit.code,
        nslots: finit.max_slot,
    };
    let nfields = actor.fields.len() as u16;

    let mut cc = FnCx::new(cx, &field_base);
    cc.next_slot = nports + nfields;
    cc.max_slot = cc.next_slot;
    for s in &actor.constructor {
        cc.stmt(s)?;
    }
    let constructor = Chunk {
        code: cc.code,
        nslots: cc.max_slot,
    };

    let mut bc = FnCx::new(cx, &field_base);
    bc.next_slot = nports + nfields;
    bc.max_slot = bc.next_slot;
    for s in &actor.behaviour {
        bc.stmt(s)?;
    }
    let behaviour = Chunk {
        code: bc.code,
        nslots: bc.max_slot,
    };

    Ok(CompiledActor {
        name: actor.name.clone(),
        ports: ports.into_iter().map(|(p, _)| p).collect(),
        nfields,
        field_init,
        code: ActorCode::Host {
            constructor,
            behaviour,
        },
    })
}

fn elem_kind_of(ty: &TypeExpr) -> Option<(ElemKind, usize)> {
    match ty {
        TypeExpr::Array(elem, nd) => match **elem {
            TypeExpr::Integer => Some((ElemKind::Int, *nd)),
            TypeExpr::Real => Some((ElemKind::Real, *nd)),
            TypeExpr::Boolean => Some((ElemKind::Bool, *nd)),
            _ => None,
        },
        _ => None,
    }
}

fn compile_kernel_actor(
    cx: &mut Cx<'_>,
    actor: &ActorDecl,
    opts: &CompileOptions,
) -> Result<CompiledActor, CompileError> {
    let attrs = actor.opencl.clone().expect("kernel actor");
    let ports = resolve_ports(cx, actor)?;
    // §6.1.1: "the actor's interface should only contain a single channel".
    if ports.len() != 1 || ports[0].0.dir != Dir::In {
        return Err(CompileError {
            message: format!(
                "opencl actor `{}` must present exactly one `in` channel",
                actor.name
            ),
            pos: actor.pos,
        });
    }
    let settings_kind = match &ports[0].1 {
        K::Chan(Dir::In, elem) => (**elem).clone(),
        _ => unreachable!("checked above"),
    };
    let K::Struct(settings_id) = settings_kind else {
        return Err(CompileError {
            message: "the kernel channel must convey an opencl struct".into(),
            pos: actor.pos,
        });
    };
    let sinfo = &cx.structs[settings_id as usize];
    if !sinfo.opencl {
        return Err(CompileError {
            message: format!("`{}` is not declared `opencl struct`", sinfo.meta.name),
            pos: actor.pos,
        });
    }
    let settings_scalars: Vec<String> = sinfo.meta.fields[4..].to_vec();
    let data_type = match &sinfo.field_types[2] {
        TypeExpr::ChanIn(t) => (**t).clone(),
        _ => unreachable!("validated"),
    };

    // Behaviour structure: receive settings; receive data; body; send.
    let b = &actor.behaviour;
    if b.len() < 3 {
        return Err(CompileError {
            message: "kernel behaviour must be: receive settings; receive data; ...; send".into(),
            pos: actor.pos,
        });
    }
    let Stmt::Receive {
        name: req_name,
        chan: Expr::Path(chan_root, chan_path, _),
        ..
    } = &b[0]
    else {
        return Err(CompileError {
            message: "the first statement of a kernel behaviour must receive the settings".into(),
            pos: actor.pos,
        });
    };
    if chan_root != &ports[0].0.name || !chan_path.is_empty() {
        return Err(CompileError {
            message: "the settings must be received from the actor's single channel".into(),
            pos: actor.pos,
        });
    }
    let Stmt::Receive {
        name: data_name,
        chan: Expr::Path(r2, p2, _),
        pos: rpos,
    } = &b[1]
    else {
        return Err(CompileError {
            message: "the second statement of a kernel behaviour must receive the data".into(),
            pos: actor.pos,
        });
    };
    let input_ok = r2 == req_name
        && matches!(p2.as_slice(), [PathSeg::Field(f)] if f == &sinfo.meta.fields[2]);
    if !input_ok {
        return Err(CompileError {
            message: format!(
                "the data must be received from `{req_name}.{}`",
                sinfo.meta.fields[2]
            ),
            pos: *rpos,
        });
    }
    let Stmt::Send {
        value: send_value,
        chan: Expr::Path(sr, sp, _),
        pos: spos,
    } = b.last().expect("len checked")
    else {
        return Err(CompileError {
            message: "the last statement of a kernel behaviour must be a send".into(),
            pos: actor.pos,
        });
    };
    let output_ok = sr == req_name
        && matches!(sp.as_slice(), [PathSeg::Field(f)] if f == &sinfo.meta.fields[3]);
    if !output_ok {
        return Err(CompileError {
            message: format!(
                "the result must be sent on `{req_name}.{}`",
                sinfo.meta.fields[3]
            ),
            pos: *spos,
        });
    }

    // Data shape + fields.
    let (data_shape, data_fields, mov) = match &data_type {
        TypeExpr::Named(n) => {
            let id = *cx.struct_ids.get(n).ok_or(CompileError {
                message: format!("unknown data type `{n}`"),
                pos: actor.pos,
            })?;
            let info = &cx.structs[id as usize];
            let mut fields = Vec::new();
            for (fname, fty) in info.meta.fields.iter().zip(&info.field_types) {
                let (elem, ndims) = elem_kind_of(fty).ok_or(CompileError {
                    message: format!("kernel data field `{fname}` must be an integer/real array"),
                    pos: actor.pos,
                })?;
                fields.push(DataField {
                    name: fname.clone(),
                    elem,
                    ndims,
                });
            }
            (DataShape::Struct { type_id: id }, fields, info.meta.any_mov)
        }
        arr @ TypeExpr::Array(..) => {
            let (elem, ndims) = elem_kind_of(arr).expect("array type");
            (
                DataShape::Array { elem, ndims },
                vec![DataField {
                    name: data_name.clone(),
                    elem,
                    ndims,
                }],
                false,
            )
        }
        other => {
            return Err(CompileError {
                message: format!("unsupported kernel data type `{other}`"),
                pos: actor.pos,
            })
        }
    };

    // What is sent onward?
    let out = match send_value {
        Expr::Path(root, path, _) if root == data_name && path.is_empty() => KernelOut::Whole,
        Expr::Path(root, path, pos) if root == data_name => match path.as_slice() {
            [PathSeg::Field(f)] => {
                let idx = data_fields
                    .iter()
                    .position(|df| &df.name == f)
                    .ok_or(CompileError {
                        message: format!("unknown data field `{f}` in send"),
                        pos: *pos,
                    })?;
                KernelOut::Field(idx)
            }
            _ => {
                return Err(CompileError {
                    message: "a kernel may send the data value or one of its fields".into(),
                    pos: *pos,
                })
            }
        },
        other => {
            return Err(CompileError {
                message: "a kernel may send the data value or one of its fields".into(),
                pos: other.pos(),
            })
        }
    };

    if mov && !matches!(out, KernelOut::Whole) {
        return Err(CompileError {
            message: format!(
                "kernel actor `{}`: a mov data value must be sent whole \
                 (`send {data_name} on ...`); sending a single field of a \
                 device-resident value is not supported",
                actor.name
            ),
            pos: actor.pos,
        });
    }

    // Generate the OpenCL C.
    let body = &b[2..b.len() - 1];
    let source = kernelgen::generate(&KernelGenInput {
        name: &actor.name,
        data_fields: &data_fields,
        settings_scalars: &settings_scalars,
        req_name,
        data_name,
        data_is_struct: matches!(data_shape, DataShape::Struct { .. }),
        body,
    })?;

    Ok(CompiledActor {
        name: actor.name.clone(),
        ports: ports.into_iter().map(|(p, _)| p).collect(),
        nfields: 0,
        field_init: Chunk::default(),
        code: ActorCode::Kernel(Box::new(KernelPlan {
            source,
            kernel_name: actor.name.clone(),
            device_index: attrs.device_index,
            device_type: attrs.device_type,
            requests_port: 0,
            data_shape,
            data_fields,
            settings_scalars,
            mov,
            out,
            residency_proven: mov && opts.residency_proven.contains(&actor.name),
            proofs: opts.kernel_proofs.get(&actor.name).cloned(),
        })),
    })
}

// ---- statement / expression compilation for host code ----

struct Var {
    slot: u16,
    kind: K,
    /// Set after the variable was sent on a mov channel; cleared by
    /// reassignment (the §4 use-after-send analysis).
    moved_away: bool,
}

struct FnCx<'c, 'a> {
    cx: &'c mut Cx<'a>,
    scopes: Vec<HashMap<String, Var>>,
    next_slot: u16,
    max_slot: u16,
    code: Vec<VOp>,
    in_boot: bool,
}

impl<'c, 'a> FnCx<'c, 'a> {
    fn new(cx: &'c mut Cx<'a>, base: &[(String, u16, K)]) -> Self {
        let mut scope = HashMap::new();
        let mut max = 0;
        for (name, slot, kind) in base {
            scope.insert(
                name.clone(),
                Var {
                    slot: *slot,
                    kind: kind.clone(),
                    moved_away: false,
                },
            );
            max = max.max(*slot + 1);
        }
        FnCx {
            cx,
            scopes: vec![scope],
            next_slot: max,
            max_slot: max,
            code: Vec::new(),
            in_boot: false,
        }
    }

    fn err<T>(&self, pos: Span, message: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError {
            message: message.into(),
            pos,
        })
    }

    fn alloc(&mut self) -> u16 {
        let s = self.next_slot;
        self.next_slot += 1;
        self.max_slot = self.max_slot.max(self.next_slot);
        s
    }

    fn bind(&mut self, name: &str, slot: u16, kind: K) {
        self.scopes.last_mut().expect("scope").insert(
            name.to_string(),
            Var {
                slot,
                kind,
                moved_away: false,
            },
        );
    }

    fn lookup(&self, name: &str) -> Option<(u16, K, bool)> {
        for s in self.scopes.iter().rev() {
            if let Some(v) = s.get(name) {
                return Some((v.slot, v.kind.clone(), v.moved_away));
            }
        }
        None
    }

    fn set_moved(&mut self, name: &str, moved: bool) {
        for s in self.scopes.iter_mut().rev() {
            if let Some(v) = s.get_mut(name) {
                v.moved_away = moved;
                return;
            }
        }
    }

    fn push_scope(&mut self) -> u16 {
        self.scopes.push(HashMap::new());
        self.next_slot
    }

    fn pop_scope(&mut self, saved: u16) {
        self.scopes.pop();
        self.next_slot = saved;
    }

    fn emit(&mut self, op: VOp) -> usize {
        self.code.push(op);
        self.code.len() - 1
    }

    fn patch(&mut self, at: usize) {
        let target = self.code.len() as u32;
        match &mut self.code[at] {
            VOp::Jmp(t) | VOp::Jz(t) => *t = target,
            other => panic!("patched non-jump {other:?}"),
        }
    }

    fn field_index(&self, struct_id: u16, name: &str, pos: Span) -> Result<(u8, K), CompileError> {
        let info = &self.cx.structs[struct_id as usize];
        match info.meta.fields.iter().position(|f| f == name) {
            Some(i) => {
                let kind = kind_of_type(&info.field_types[i], self.cx.struct_ids);
                Ok((i as u8, kind))
            }
            None => Err(CompileError {
                message: format!("`{}` has no field `{name}`", info.meta.name),
                pos,
            }),
        }
    }

    /// Compile a path READ. Returns the resulting kind.
    fn path(&mut self, root: &str, segs: &[PathSeg], pos: Span) -> Result<K, CompileError> {
        let (slot, mut kind, moved) = match self.lookup(root) {
            Some(v) => v,
            None => return self.err(pos, format!("unknown variable `{root}`")),
        };
        if moved {
            return self.err(
                pos,
                format!("`{root}` was sent on a mov channel and not reassigned (§4)"),
            );
        }
        self.emit(VOp::Ld(slot));
        for seg in segs {
            match seg {
                PathSeg::Field(f) => match kind.clone() {
                    K::Actor(_) => {
                        let id = self.cx.string_id(f);
                        self.emit(VOp::GetPort(id));
                        kind = K::Unknown;
                    }
                    K::Struct(sid) => {
                        let (idx, fk) = self.field_index(sid, f, pos)?;
                        self.emit(VOp::GetField(idx));
                        kind = fk;
                    }
                    K::Unknown => {
                        return self.err(
                            pos,
                            format!("cannot resolve `.{f}` on a value of unknown type"),
                        )
                    }
                    other => return self.err(pos, format!("`.{f}` on non-struct value {other:?}")),
                },
                PathSeg::Index(ie) => {
                    self.expr(ie)?;
                    self.emit(VOp::IdxLd);
                    kind = K::Unknown;
                }
            }
        }
        Ok(kind)
    }

    fn expr(&mut self, e: &Expr) -> Result<K, CompileError> {
        match e {
            Expr::Int(v, _) => {
                self.emit(VOp::PushI(*v));
                Ok(K::Int)
            }
            Expr::Real(v, _) => {
                self.emit(VOp::PushR(*v));
                Ok(K::Real)
            }
            Expr::Bool(b, _) => {
                self.emit(VOp::PushB(*b));
                Ok(K::Bool)
            }
            Expr::Str(s, _) => {
                let id = self.cx.string_id(s);
                self.emit(VOp::PushStr(id));
                Ok(K::Str)
            }
            Expr::Path(root, segs, pos) => self.path(root, segs, *pos),
            Expr::Neg(inner, _) => {
                let k = self.expr(inner)?;
                self.emit(VOp::Neg);
                Ok(k)
            }
            Expr::Not(inner, _) => {
                self.expr(inner)?;
                self.emit(VOp::NotOp);
                Ok(K::Bool)
            }
            Expr::Binary(op, l, r, _) => {
                let lk = self.expr(l)?;
                let rk = self.expr(r)?;
                let (vop, kind) = match op {
                    BinOp::Add => (VOp::Add, numeric(lk, rk)),
                    BinOp::Sub => (VOp::Sub, numeric(lk, rk)),
                    BinOp::Mul => (VOp::Mul, numeric(lk, rk)),
                    BinOp::Div => (VOp::Div, numeric(lk, rk)),
                    BinOp::Rem => (VOp::Rem, K::Int),
                    BinOp::Eq => (VOp::CmpEq, K::Bool),
                    BinOp::Ne => (VOp::CmpNe, K::Bool),
                    BinOp::Lt => (VOp::CmpLt, K::Bool),
                    BinOp::Le => (VOp::CmpLe, K::Bool),
                    BinOp::Gt => (VOp::CmpGt, K::Bool),
                    BinOp::Ge => (VOp::CmpGe, K::Bool),
                    BinOp::And => (VOp::AndOp, K::Bool),
                    BinOp::Or => (VOp::OrOp, K::Bool),
                };
                self.emit(vop);
                Ok(kind)
            }
            Expr::Call(name, args, pos) => match name.as_str() {
                "generate_vector" => {
                    self.n_args(args, 2, *pos, name)?;
                    self.emit(VOp::CallNative(NativeFn::GenerateVector, 2));
                    Ok(K::Arr)
                }
                "generate_matrix" => {
                    self.n_args(args, 3, *pos, name)?;
                    self.emit(VOp::CallNative(NativeFn::GenerateMatrix, 3));
                    Ok(K::Arr)
                }
                "generate_dominant" => {
                    self.n_args(args, 2, *pos, name)?;
                    self.emit(VOp::CallNative(NativeFn::GenerateDominant, 2));
                    Ok(K::Arr)
                }
                "checksum" => {
                    self.n_args(args, 1, *pos, name)?;
                    self.emit(VOp::CallNative(NativeFn::Checksum, 1));
                    Ok(K::Real)
                }
                "toReal" => {
                    self.one_arg(args, *pos, "toReal")?;
                    self.emit(VOp::ToReal);
                    Ok(K::Real)
                }
                "toInt" => {
                    self.one_arg(args, *pos, "toInt")?;
                    self.emit(VOp::ToInt);
                    Ok(K::Int)
                }
                "lengthof" => {
                    self.one_arg(args, *pos, "lengthof")?;
                    self.emit(VOp::LengthOf);
                    Ok(K::Int)
                }
                other => self.err(
                    *pos,
                    format!("`{other}` is only available inside kernel actors"),
                ),
            },
            Expr::NewArray {
                elem,
                dims,
                fill,
                pos: _,
            } => {
                if let Some(f) = fill {
                    self.expr(f)?;
                }
                for d in dims {
                    self.expr(d)?;
                }
                let ek = match elem {
                    TypeExpr::Integer => ElemKind::Int,
                    TypeExpr::Real => ElemKind::Real,
                    _ => ElemKind::Bool,
                };
                self.emit(VOp::NewArr {
                    ndims: dims.len() as u8,
                    elem: ek,
                    has_fill: fill.is_some(),
                });
                Ok(K::Arr)
            }
            Expr::NewStruct { name, args, pos } => {
                let id = match self.cx.struct_ids.get(name) {
                    Some(&i) => i,
                    None => return self.err(*pos, format!("unknown struct type `{name}`")),
                };
                let nfields = self.cx.structs[id as usize].meta.fields.len();
                if args.len() != nfields {
                    return self.err(
                        *pos,
                        format!("`{name}` has {nfields} fields; {} given", args.len()),
                    );
                }
                for a in args {
                    self.expr(a)?;
                }
                self.emit(VOp::NewStructV {
                    type_id: id,
                    nfields: nfields as u8,
                });
                Ok(K::Struct(id))
            }
            Expr::NewActor { name, pos } => {
                if !self.in_boot {
                    return self.err(*pos, "actors can only be created in the boot block");
                }
                let id = match self.cx.actor_ids.get(name) {
                    Some(&i) => i,
                    None => {
                        // Could be a zero-field struct; reject with a hint.
                        return self.err(*pos, format!("unknown actor type `{name}`"));
                    }
                };
                self.emit(VOp::SpawnActor(id));
                Ok(K::Actor(id))
            }
            Expr::NewChanIn(ty, _) => {
                self.emit(VOp::NewChanIn);
                Ok(K::Chan(
                    Dir::In,
                    Box::new(kind_of_type(ty, self.cx.struct_ids)),
                ))
            }
            Expr::NewChanOut(ty, _) => {
                self.emit(VOp::NewChanOut);
                Ok(K::Chan(
                    Dir::Out,
                    Box::new(kind_of_type(ty, self.cx.struct_ids)),
                ))
            }
        }
    }

    fn one_arg(&mut self, args: &[Expr], pos: Span, name: &str) -> Result<(), CompileError> {
        self.n_args(args, 1, pos, name)
    }

    fn n_args(
        &mut self,
        args: &[Expr],
        n: usize,
        pos: Span,
        name: &str,
    ) -> Result<(), CompileError> {
        if args.len() != n {
            return self.err(pos, format!("`{name}` takes {n} argument(s)"));
        }
        for a in args {
            self.expr(a)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Declare { name, value, .. } => {
                let k = self.expr(value)?;
                let slot = self.alloc();
                self.emit(VOp::St(slot));
                self.bind(name, slot, k);
                Ok(())
            }
            Stmt::DeclareLocal { pos, .. } => self.err(
                *pos,
                "`local` declarations are only valid inside kernel actors",
            ),
            Stmt::Assign {
                name,
                path,
                value,
                pos,
            } => {
                if path.is_empty() {
                    let k = self.expr(value)?;
                    let (slot, _, _) = match self.lookup(name) {
                        Some(v) => v,
                        None => return self.err(*pos, format!("unknown variable `{name}`")),
                    };
                    self.emit(VOp::St(slot));
                    // Reassignment revives a moved-away variable (§6.2.3:
                    // "not accessed again until it is assigned to").
                    self.set_moved(name, false);
                    let _ = k;
                    return Ok(());
                }
                // Navigate to the container, then store into the last seg.
                let (last, init) = path.split_last().expect("non-empty");
                let container_kind = self.path(name, init, *pos)?;
                match last {
                    PathSeg::Index(ie) => {
                        self.expr(ie)?;
                        self.expr(value)?;
                        self.emit(VOp::IdxSt);
                    }
                    PathSeg::Field(f) => {
                        let idx = match container_kind {
                            K::Struct(sid) => self.field_index(sid, f, *pos)?.0,
                            _ => {
                                return self.err(
                                    *pos,
                                    format!("cannot assign `.{f}` on a non-struct value"),
                                )
                            }
                        };
                        self.expr(value)?;
                        self.emit(VOp::SetField(idx));
                    }
                }
                Ok(())
            }
            Stmt::Send { value, chan, pos } => {
                let chan_kind = match chan {
                    Expr::Path(root, segs, cpos) => self.path(root, segs, *cpos)?,
                    other => return self.err(other.pos(), "send target must be a channel path"),
                };
                // Determine movability from the value's static kind.
                let vk = self.expr(value)?;
                let mov = match &vk {
                    K::Struct(id) => self.cx.structs[*id as usize].meta.any_mov,
                    _ => false,
                };
                match chan_kind {
                    K::Chan(Dir::Out, _) | K::Unknown => {}
                    other => {
                        return self.err(
                            *pos,
                            format!("send target is not an out channel ({other:?})"),
                        )
                    }
                }
                self.emit(VOp::SendOp { mov });
                // Use-after-send: a moved value must not be read again.
                // Sending any path rooted at a mov variable conservatively
                // moves the whole root (sending `s.inner` moves `s`).
                // Known limitation vs. the paper's inter-procedural
                // analysis: aliases created by `b := a` are not tracked —
                // the runtime still behaves safely (the alias observes the
                // shared mov state), but the compile-time rejection only
                // covers the sent name.
                if mov {
                    if let Expr::Path(root, _, _) = value {
                        self.set_moved(root, true);
                    }
                }
                Ok(())
            }
            Stmt::Receive { name, chan, pos } => {
                let chan_kind = match chan {
                    Expr::Path(root, segs, cpos) => self.path(root, segs, *cpos)?,
                    other => return self.err(other.pos(), "receive source must be a channel path"),
                };
                let elem = match chan_kind {
                    K::Chan(Dir::In, elem) => *elem,
                    K::Unknown => K::Unknown,
                    other => {
                        return self.err(
                            *pos,
                            format!("receive source is not an in channel ({other:?})"),
                        )
                    }
                };
                self.emit(VOp::RecvOp);
                let slot = self.alloc();
                self.emit(VOp::St(slot));
                self.bind(name, slot, elem);
                Ok(())
            }
            Stmt::Connect { from, to, pos } => {
                let fk = match from {
                    Expr::Path(root, segs, cpos) => self.path(root, segs, *cpos)?,
                    other => return self.err(other.pos(), "connect source must be a path"),
                };
                let tk = match to {
                    Expr::Path(root, segs, cpos) => self.path(root, segs, *cpos)?,
                    other => return self.err(other.pos(), "connect target must be a path"),
                };
                if matches!(fk, K::Chan(Dir::In, _)) || matches!(tk, K::Chan(Dir::Out, _)) {
                    return self.err(*pos, "connect goes from an out endpoint to an in endpoint");
                }
                self.emit(VOp::ConnectOp);
                Ok(())
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                let saved = self.push_scope();
                self.expr(from)?;
                let slot = self.alloc();
                self.emit(VOp::St(slot));
                self.bind(var, slot, K::Int);
                let start = self.code.len() as u32;
                self.emit(VOp::Ld(slot));
                self.expr(to)?;
                self.emit(VOp::CmpLe);
                let jz = self.emit(VOp::Jz(0));
                let inner = self.push_scope();
                for s in body {
                    self.stmt(s)?;
                }
                self.pop_scope(inner);
                self.emit(VOp::Ld(slot));
                self.emit(VOp::PushI(1));
                self.emit(VOp::Add);
                self.emit(VOp::St(slot));
                self.emit(VOp::Jmp(start));
                self.patch(jz);
                self.pop_scope(saved);
                Ok(())
            }
            Stmt::While { cond, body } => {
                let start = self.code.len() as u32;
                self.expr(cond)?;
                let jz = self.emit(VOp::Jz(0));
                let saved = self.push_scope();
                for s in body {
                    self.stmt(s)?;
                }
                self.pop_scope(saved);
                self.emit(VOp::Jmp(start));
                self.patch(jz);
                Ok(())
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expr(cond)?;
                let jz = self.emit(VOp::Jz(0));
                let saved = self.push_scope();
                for s in then_blk {
                    self.stmt(s)?;
                }
                self.pop_scope(saved);
                if else_blk.is_empty() {
                    self.patch(jz);
                } else {
                    let jend = self.emit(VOp::Jmp(0));
                    self.patch(jz);
                    let saved = self.push_scope();
                    for s in else_blk {
                        self.stmt(s)?;
                    }
                    self.pop_scope(saved);
                    self.patch(jend);
                }
                Ok(())
            }
            Stmt::Print { kind, value, .. } => {
                self.expr(value)?;
                self.emit(VOp::Print(*kind));
                Ok(())
            }
            Stmt::Barrier { pos } => self.err(*pos, "barrier() is only valid inside kernel actors"),
            Stmt::Stop { .. } => {
                self.emit(VOp::StopOp);
                Ok(())
            }
        }
    }
}

fn numeric(l: K, r: K) -> K {
    if l == K::Real || r == K::Real {
        K::Real
    } else {
        K::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_listing2() {
        let src = include_str!("../tests_data/listing2.ens");
        let m = compile_source(src).unwrap();
        assert_eq!(m.actors.len(), 2);
        assert!(matches!(m.actors[0].code, ActorCode::Host { .. }));
        assert_eq!(m.actors[0].nfields, 1);
        assert!(!m.boot.code.is_empty());
    }

    #[test]
    fn compiles_matmul_ocl_with_kernel_plan() {
        let src = include_str!("../../apps/src/assets/matmul/ocl.ens");
        let m = compile_source(src).unwrap();
        let kernel = m
            .actors
            .iter()
            .find(|a| a.name == "Multiply")
            .expect("Multiply actor");
        let ActorCode::Kernel(plan) = &kernel.code else {
            panic!("Multiply should be a kernel actor");
        };
        assert_eq!(plan.kernel_name, "Multiply");
        assert_eq!(plan.data_fields.len(), 3);
        assert_eq!(plan.out, KernelOut::Field(2));
        assert!(!plan.mov);
        assert_eq!(plan.device_type.as_deref(), Some("GPU"));
        assert!(plan.source.contains("__kernel void Multiply"));
        // The generated kernel must itself compile.
        let unit = oclsim::minicl::parse(&plan.source).unwrap();
        oclsim::minicl::compile(&unit).unwrap_or_else(|e| panic!("{e:?}\n{}", plan.source));
    }

    #[test]
    fn compiles_all_ocl_assets() {
        for (name, src) in [
            (
                "matmul",
                include_str!("../../apps/src/assets/matmul/ocl.ens"),
            ),
            (
                "mandelbrot",
                include_str!("../../apps/src/assets/mandelbrot/ocl.ens"),
            ),
            ("lud", include_str!("../../apps/src/assets/lud/ocl.ens")),
            (
                "reduction",
                include_str!("../../apps/src/assets/reduction/ocl.ens"),
            ),
            (
                "docrank",
                include_str!("../../apps/src/assets/docrank/ocl.ens"),
            ),
        ] {
            let m = compile_source(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            for a in &m.actors {
                if let ActorCode::Kernel(plan) = &a.code {
                    let unit = oclsim::minicl::parse(&plan.source)
                        .unwrap_or_else(|e| panic!("{name}/{}: {e}\n{}", a.name, plan.source));
                    oclsim::minicl::compile(&unit)
                        .unwrap_or_else(|e| panic!("{name}/{}: {e:?}\n{}", a.name, plan.source));
                }
            }
        }
    }

    #[test]
    fn compiles_all_seq_assets() {
        for (name, src) in [
            (
                "matmul",
                include_str!("../../apps/src/assets/matmul/seq.ens"),
            ),
            (
                "mandelbrot",
                include_str!("../../apps/src/assets/mandelbrot/seq.ens"),
            ),
            ("lud", include_str!("../../apps/src/assets/lud/seq.ens")),
            (
                "reduction",
                include_str!("../../apps/src/assets/reduction/seq.ens"),
            ),
            (
                "docrank",
                include_str!("../../apps/src/assets/docrank/seq.ens"),
            ),
        ] {
            compile_source(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn lud_kernel_is_mov_and_has_settings_scalar() {
        let src = include_str!("../../apps/src/assets/lud/ocl.ens");
        let m = compile_source(src).unwrap();
        let ActorCode::Kernel(plan) = &m.actors.iter().find(|a| a.name == "Sub").unwrap().code
        else {
            panic!("Sub should be a kernel");
        };
        assert!(plan.mov, "lud_t has mov fields");
        assert_eq!(plan.settings_scalars, vec!["step".to_string()]);
        assert_eq!(plan.out, KernelOut::Whole);
        assert!(plan.source.contains("set_step"));
    }

    #[test]
    fn rejects_kernel_actor_with_two_ports() {
        let src = "
            type s is opencl struct (
                integer [] worksize; integer [] groupsize;
                in real [] input; out real [] output
            )
            type bad is interface(in s requests; in integer extra)
            stage home {
                opencl actor K presents bad {
                    constructor() {}
                    behaviour {
                        receive req from requests;
                        receive d from req.input;
                        send d on req.output;
                    }
                }
                boot {}
            }
        ";
        let err = compile_source(src).unwrap_err();
        assert!(err.message.contains("exactly one"));
    }

    #[test]
    fn rejects_malformed_opencl_struct() {
        let src = "
            type s is opencl struct ( real [] worksize; integer [] groupsize;
                                      in real [] input; out real [] output )
            stage home { boot {} }
        ";
        let err = compile_source(src).unwrap_err();
        assert!(err.message.contains("worksize"));
    }

    #[test]
    fn rejects_kernel_without_protocol() {
        let src = "
            type s is opencl struct (
                integer [] worksize; integer [] groupsize;
                in real [] input; out real [] output
            )
            type i is interface(in s requests)
            stage home {
                opencl actor K presents i {
                    constructor() {}
                    behaviour {
                        x = 1;
                        printInt(x);
                    }
                }
                boot {}
            }
        ";
        let err = compile_source(src).unwrap_err();
        assert!(err.message.contains("receive"));
    }

    #[test]
    fn use_after_mov_send_is_rejected() {
        let src = "
            type d is struct ( mov real [] payload )
            type i is interface(out d output)
            stage home {
                actor a presents i {
                    constructor() {}
                    behaviour {
                        p = new real[4];
                        v = new d(p);
                        send v on output;
                        x = v.payload[0];
                        stop;
                    }
                }
                boot {}
            }
        ";
        let err = compile_source(src).unwrap_err();
        assert!(err.message.contains("mov"), "{err}");
    }

    #[test]
    fn reassignment_revives_moved_variable() {
        let src = "
            type d is struct ( mov real [] payload )
            type i is interface(out d output)
            stage home {
                actor a presents i {
                    constructor() {}
                    behaviour {
                        p = new real[4];
                        v = new d(p);
                        send v on output;
                        q = new real[4];
                        v := new d(q);
                        x = v.payload[0];
                        stop;
                    }
                }
                boot {}
            }
        ";
        compile_source(src).unwrap();
    }

    #[test]
    fn actor_creation_outside_boot_is_rejected() {
        let src = "
            type i is interface(out integer output)
            stage home {
                actor a presents i {
                    constructor() {}
                    behaviour {
                        b = new a();
                        stop;
                    }
                }
                boot {}
            }
        ";
        let err = compile_source(src).unwrap_err();
        assert!(err.message.contains("boot"));
    }
}
