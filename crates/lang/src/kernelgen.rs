//! Kernel code generation: Ensemble kernel-actor behaviours → OpenCL C.
//!
//! This is §6.1.3 of the paper: "A C representation of the code identified
//! as the kernel is generated, and stored as a string within the actor's
//! bytecode." The statements between the second `receive` and the final
//! `send` are lowered to a mini OpenCL-C kernel; multi-dimensional array
//! indexing is flattened (`d.a[y][i]` → `a[y * a_dim1 + i]`), struct
//! fields become separate buffer parameters, and the dimensions travel as
//! trailing `int` arguments — all invisible to the Ensemble programmer.

use crate::ast as ens;
use crate::diag::{codes, Diagnostic};
use crate::token::{Pos, Span};
use crate::vmops::{DataField, ElemKind};
use oclsim::minicl::ast as cl;
use std::collections::HashMap;

/// A kernel lowering failure (reported at Ensemble compile time — one of
/// the paper's selling points over runtime kernel compilation).
///
/// Carried as a [`Diagnostic`] with code `E008` so kernel lowering and
/// the `crates/analysis` passes share one renderer; `Display` keeps the
/// historical `line:col: kernel error: …` single-line shape.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelGenError {
    /// The underlying diagnostic (code `E008`, error severity).
    pub diag: Diagnostic,
}

impl KernelGenError {
    fn new(message: impl Into<String>, span: Span) -> KernelGenError {
        KernelGenError {
            diag: Diagnostic::error(codes::KERNEL_LOWERING, span, message),
        }
    }
}

impl std::fmt::Display for KernelGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: kernel error: {}",
            self.diag.span.start, self.diag.message
        )
    }
}

/// Inputs resolved by the module compiler.
pub struct KernelGenInput<'a> {
    /// Kernel (actor) name.
    pub name: &'a str,
    /// Array fields of the data value, in flattening order.
    pub data_fields: &'a [DataField],
    /// Trailing scalar fields of the settings struct.
    pub settings_scalars: &'a [String],
    /// Binding name of the settings value (first receive).
    pub req_name: &'a str,
    /// Binding name of the data value (second receive).
    pub data_name: &'a str,
    /// True when the data value is a struct (fields accessed as
    /// `d.field`); false for a bare array (accessed as `d[i]...`).
    pub data_is_struct: bool,
    /// The kernel region statements.
    pub body: &'a [ens::Stmt],
}

/// Dimension parameter name for `field`'s `k`-th dimension.
pub fn dim_param(field: &str, k: usize) -> String {
    format!("{field}_dim{k}")
}

/// Kernel parameter name for a settings scalar.
pub fn scalar_param(name: &str) -> String {
    format!("set_{name}")
}

/// Generate the kernel source for one opencl actor.
pub fn generate(input: &KernelGenInput<'_>) -> Result<String, KernelGenError> {
    let pos = Span::point(Pos { line: 1, col: 1 });
    let cpos = cl_pos(pos);
    let mut params = Vec::new();
    for f in input.data_fields {
        let elem = match f.elem {
            ElemKind::Int => cl::Type::Int,
            ElemKind::Real => cl::Type::Float,
            other => {
                return Err(KernelGenError::new(
                    format!("field `{}` has unsupported element kind {other:?}", f.name),
                    pos,
                ))
            }
        };
        params.push(cl::Param {
            name: f.name.clone(),
            ty: cl::Type::Ptr(cl::Space::Global, Box::new(elem)),
            is_const: false,
            pos: cpos,
        });
    }
    for f in input.data_fields {
        for k in 0..f.ndims {
            params.push(cl::Param {
                name: dim_param(&f.name, k),
                ty: cl::Type::Int,
                is_const: true,
                pos: cpos,
            });
        }
    }
    for s in input.settings_scalars {
        params.push(cl::Param {
            name: scalar_param(s),
            ty: cl::Type::Int,
            is_const: true,
            pos: cpos,
        });
    }

    let mut lower = Lower {
        input,
        vars: vec![HashMap::new()],
    };
    let mut body = Vec::new();
    for s in input.body {
        body.push(lower.stmt(s)?);
    }

    let func = cl::Func {
        name: input.name.to_string(),
        is_kernel: true,
        ret: cl::Type::Void,
        params,
        body,
        pos: cpos,
    };
    let unit = cl::Unit {
        funcs: vec![func],
        pragmas: vec![],
    };
    Ok(oclsim::minicl::pretty::emit_unit(&unit))
}

fn cl_pos(p: Span) -> oclsim::minicl::token::Pos {
    oclsim::minicl::token::Pos {
        line: p.start.line,
        col: p.start.col,
    }
}

struct Lower<'a> {
    input: &'a KernelGenInput<'a>,
    vars: Vec<HashMap<String, cl::Type>>,
}

impl<'a> Lower<'a> {
    fn err<T>(&self, pos: Span, message: impl Into<String>) -> Result<T, KernelGenError> {
        Err(KernelGenError::new(message, pos))
    }

    fn bind(&mut self, name: &str, ty: cl::Type) {
        self.vars
            .last_mut()
            .expect("scope")
            .insert(name.to_string(), ty);
    }

    fn lookup(&self, name: &str) -> Option<cl::Type> {
        for s in self.vars.iter().rev() {
            if let Some(t) = s.get(name) {
                return Some(t.clone());
            }
        }
        None
    }

    fn field(&self, name: &str) -> Option<&DataField> {
        self.input.data_fields.iter().find(|f| f.name == name)
    }

    /// Flatten an index chain over `field` into a single element index.
    fn flat_index(
        &mut self,
        field: &DataField,
        idxs: &[&ens::Expr],
        pos: Span,
    ) -> Result<cl::Expr, KernelGenError> {
        if idxs.len() != field.ndims {
            return self.err(
                pos,
                format!(
                    "`{}` has {} dimensions; {} indices supplied",
                    field.name,
                    field.ndims,
                    idxs.len()
                ),
            );
        }
        let cpos = cl_pos(pos);
        // idx = ((i0 * d1) + i1) * d2 + i2 ...
        let mut acc = self.expr(idxs[0])?.0;
        for (k, idx) in idxs.iter().enumerate().skip(1) {
            let dim = cl::Expr::Var(dim_param(&field.name, k), cpos);
            let (ie, _) = self.expr(idx)?;
            acc = cl::Expr::Binary(
                cl::BinOp::Add,
                Box::new(cl::Expr::Binary(
                    cl::BinOp::Mul,
                    Box::new(acc),
                    Box::new(dim),
                    cpos,
                )),
                Box::new(ie),
                cpos,
            );
        }
        Ok(acc)
    }

    /// Resolve a path that denotes a buffer element: returns
    /// `(buffer name, flat index, element type)`.
    fn buffer_access(
        &mut self,
        root: &str,
        segs: &[ens::PathSeg],
        pos: Span,
    ) -> Result<Option<(String, cl::Expr, cl::Type)>, KernelGenError> {
        // Struct data: d.field[i]([j])
        if self.input.data_is_struct && root == self.input.data_name {
            let Some(ens::PathSeg::Field(fname)) = segs.first() else {
                return self.err(pos, "expected `.field` access on the kernel data value");
            };
            let field = match self.field(fname) {
                Some(f) => f.clone(),
                None => return self.err(pos, format!("unknown data field `{fname}`")),
            };
            let idxs: Vec<&ens::Expr> = segs[1..]
                .iter()
                .map(|s| match s {
                    ens::PathSeg::Index(e) => Ok(e),
                    ens::PathSeg::Field(f) => Err(f.clone()),
                })
                .collect::<Result<_, _>>()
                .map_err(|f| {
                    KernelGenError::new(format!("unexpected `.{f}` after array field"), pos)
                })?;
            if idxs.is_empty() {
                return self.err(
                    pos,
                    format!("field `{fname}` used without indices inside the kernel"),
                );
            }
            let idx = self.flat_index(&field, &idxs, pos)?;
            let elem = match field.elem {
                ElemKind::Int => cl::Type::Int,
                _ => cl::Type::Float,
            };
            return Ok(Some((field.name.clone(), idx, elem)));
        }
        // Bare-array data: d[i]([j])
        if !self.input.data_is_struct && root == self.input.data_name && !segs.is_empty() {
            let field = self.input.data_fields[0].clone();
            let idxs: Vec<&ens::Expr> = segs
                .iter()
                .map(|s| match s {
                    ens::PathSeg::Index(e) => Ok(e),
                    ens::PathSeg::Field(f) => Err(f.clone()),
                })
                .collect::<Result<_, _>>()
                .map_err(|f| {
                    KernelGenError::new(format!("unexpected `.{f}` on an array value"), pos)
                })?;
            let idx = self.flat_index(&field, &idxs, pos)?;
            let elem = match field.elem {
                ElemKind::Int => cl::Type::Int,
                _ => cl::Type::Float,
            };
            return Ok(Some((field.name.clone(), idx, elem)));
        }
        Ok(None)
    }

    fn expr(&mut self, e: &ens::Expr) -> Result<(cl::Expr, cl::Type), KernelGenError> {
        let cpos = cl_pos(e.pos());
        match e {
            ens::Expr::Int(v, _) => Ok((cl::Expr::IntLit(*v, cpos), cl::Type::Int)),
            ens::Expr::Real(v, _) => Ok((cl::Expr::FloatLit(*v, cpos), cl::Type::Float)),
            ens::Expr::Bool(b, _) => Ok((cl::Expr::BoolLit(*b, cpos), cl::Type::Bool)),
            ens::Expr::Str(_, pos) => self.err(*pos, "strings are not allowed in kernels"),
            ens::Expr::Path(root, segs, pos) => {
                // Settings scalar: req.<name>.
                if root == self.input.req_name {
                    if let [ens::PathSeg::Field(f)] = segs.as_slice() {
                        if self.input.settings_scalars.contains(f) {
                            return Ok((cl::Expr::Var(scalar_param(f), cpos), cl::Type::Int));
                        }
                    }
                    return self.err(
                        *pos,
                        "only trailing scalar settings fields may be read in a kernel",
                    );
                }
                if let Some((buf, idx, elem)) = self.buffer_access(root, segs, *pos)? {
                    return Ok((
                        cl::Expr::Index(Box::new(cl::Expr::Var(buf, cpos)), Box::new(idx), cpos),
                        elem,
                    ));
                }
                // Local variable (possibly indexed: private/local arrays).
                let ty = match self.lookup(root) {
                    Some(t) => t,
                    None => return self.err(*pos, format!("unknown variable `{root}`")),
                };
                if segs.is_empty() {
                    return Ok((cl::Expr::Var(root.clone(), cpos), ty));
                }
                // Indexed local array.
                let cl::Type::Ptr(_, inner) = ty.clone() else {
                    return self.err(*pos, format!("`{root}` is not indexable"));
                };
                let mut out = cl::Expr::Var(root.clone(), cpos);
                for seg in segs {
                    match seg {
                        ens::PathSeg::Index(ie) => {
                            let (idx, _) = self.expr(ie)?;
                            out = cl::Expr::Index(Box::new(out), Box::new(idx), cpos);
                        }
                        ens::PathSeg::Field(f) => {
                            return self.err(*pos, format!("unexpected `.{f}` in kernel"))
                        }
                    }
                }
                Ok((out, (*inner).clone()))
            }
            ens::Expr::Neg(inner, _) => {
                let (ie, t) = self.expr(inner)?;
                Ok((cl::Expr::Unary(cl::UnOp::Neg, Box::new(ie), cpos), t))
            }
            ens::Expr::Not(inner, _) => {
                let (ie, _) = self.expr(inner)?;
                Ok((
                    cl::Expr::Unary(cl::UnOp::LNot, Box::new(ie), cpos),
                    cl::Type::Bool,
                ))
            }
            ens::Expr::Binary(op, l, r, _) => {
                let (le, lt) = self.expr(l)?;
                let (re, rt) = self.expr(r)?;
                let cop = match op {
                    ens::BinOp::Add => cl::BinOp::Add,
                    ens::BinOp::Sub => cl::BinOp::Sub,
                    ens::BinOp::Mul => cl::BinOp::Mul,
                    ens::BinOp::Div => cl::BinOp::Div,
                    ens::BinOp::Rem => cl::BinOp::Rem,
                    ens::BinOp::Eq => cl::BinOp::Eq,
                    ens::BinOp::Ne => cl::BinOp::Ne,
                    ens::BinOp::Lt => cl::BinOp::Lt,
                    ens::BinOp::Le => cl::BinOp::Le,
                    ens::BinOp::Gt => cl::BinOp::Gt,
                    ens::BinOp::Ge => cl::BinOp::Ge,
                    ens::BinOp::And => cl::BinOp::LAnd,
                    ens::BinOp::Or => cl::BinOp::LOr,
                };
                let ty = match op {
                    ens::BinOp::Add
                    | ens::BinOp::Sub
                    | ens::BinOp::Mul
                    | ens::BinOp::Div
                    | ens::BinOp::Rem => {
                        if lt == cl::Type::Float || rt == cl::Type::Float {
                            cl::Type::Float
                        } else {
                            cl::Type::Int
                        }
                    }
                    _ => cl::Type::Bool,
                };
                Ok((cl::Expr::Binary(cop, Box::new(le), Box::new(re), cpos), ty))
            }
            ens::Expr::Call(name, args, pos) => self.call(name, args, *pos),
            ens::Expr::NewArray { pos, .. } => self.err(
                *pos,
                "`new` arrays in kernels must be bound by a declaration",
            ),
            other => self.err(
                other.pos(),
                "this expression form is not allowed inside a kernel",
            ),
        }
    }

    fn call(
        &mut self,
        name: &str,
        args: &[ens::Expr],
        pos: Span,
    ) -> Result<(cl::Expr, cl::Type), KernelGenError> {
        let cpos = cl_pos(pos);
        match name {
            "get_global_id" | "get_local_id" | "get_group_id" | "get_global_size"
            | "get_local_size" | "get_num_groups" => {
                if args.len() != 1 {
                    return self.err(pos, format!("`{name}` takes one argument"));
                }
                let (a, _) = self.expr(&args[0])?;
                Ok((
                    cl::Expr::Call(name.to_string(), vec![a], cpos),
                    cl::Type::Int,
                ))
            }
            "toReal" => {
                let (a, _) = self.expr(&args[0])?;
                Ok((
                    cl::Expr::Cast(cl::Type::Float, Box::new(a), cpos),
                    cl::Type::Float,
                ))
            }
            "toInt" => {
                let (a, _) = self.expr(&args[0])?;
                Ok((
                    cl::Expr::Cast(cl::Type::Int, Box::new(a), cpos),
                    cl::Type::Int,
                ))
            }
            "lengthof" => {
                // lengthof(d.field) → the field's first dimension.
                let Some(ens::Expr::Path(root, segs, _)) = args.first() else {
                    return self.err(pos, "`lengthof` takes an array path");
                };
                let fname = if self.input.data_is_struct && root == self.input.data_name {
                    match segs.first() {
                        Some(ens::PathSeg::Field(f)) => f.clone(),
                        _ => return self.err(pos, "`lengthof` needs a data field"),
                    }
                } else if !self.input.data_is_struct && root == self.input.data_name {
                    self.input.data_fields[0].name.clone()
                } else {
                    return self.err(pos, "`lengthof` in kernels applies to data fields");
                };
                if self.field(&fname).is_none() {
                    return self.err(pos, format!("unknown data field `{fname}`"));
                }
                Ok((cl::Expr::Var(dim_param(&fname, 0), cpos), cl::Type::Int))
            }
            "fmin" | "fmax" | "sqrt" | "fabs" | "exp" | "log" | "pow" | "sin" | "cos" | "floor"
            | "ceil" => {
                let mut out = Vec::new();
                for a in args {
                    out.push(self.expr(a)?.0);
                }
                Ok((cl::Expr::Call(name.to_string(), out, cpos), cl::Type::Float))
            }
            "min" | "max" | "abs" => {
                let mut out = Vec::new();
                let mut ty = cl::Type::Int;
                for a in args {
                    let (e, t) = self.expr(a)?;
                    if t == cl::Type::Float {
                        ty = cl::Type::Float;
                    }
                    out.push(e);
                }
                Ok((cl::Expr::Call(name.to_string(), out, cpos), ty))
            }
            other => self.err(pos, format!("`{other}` is not available inside kernels")),
        }
    }

    fn const_eval(&self, e: &ens::Expr) -> Option<i64> {
        match e {
            ens::Expr::Int(v, _) => Some(*v),
            ens::Expr::Binary(op, l, r, _) => {
                let (a, b) = (self.const_eval(l)?, self.const_eval(r)?);
                match op {
                    ens::BinOp::Add => Some(a + b),
                    ens::BinOp::Sub => Some(a - b),
                    ens::BinOp::Mul => Some(a * b),
                    ens::BinOp::Div if b != 0 => Some(a / b),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    fn stmt(&mut self, s: &ens::Stmt) -> Result<cl::Stmt, KernelGenError> {
        match s {
            ens::Stmt::Declare { name, value, pos } => {
                let cpos = cl_pos(*pos);
                if let ens::Expr::NewArray {
                    elem,
                    dims,
                    pos: apos,
                    ..
                } = value
                {
                    // Private per-item array: dimensions must be constant.
                    if dims.len() != 1 {
                        return self.err(*apos, "kernel-private arrays must be 1-D");
                    }
                    let len = self.const_eval(&dims[0]).ok_or_else(|| {
                        KernelGenError::new(
                            "kernel array lengths must be compile-time constants",
                            *apos,
                        )
                    })? as usize;
                    let ety = match elem {
                        ens::TypeExpr::Integer => cl::Type::Int,
                        ens::TypeExpr::Real => cl::Type::Float,
                        other => {
                            return self.err(*apos, format!("unsupported element type {other}"))
                        }
                    };
                    self.bind(
                        name,
                        cl::Type::Ptr(cl::Space::Private, Box::new(ety.clone())),
                    );
                    return Ok(cl::Stmt::Decl {
                        name: name.clone(),
                        ty: ety,
                        space: cl::Space::Private,
                        array_len: Some(len),
                        init: None,
                        pos: cpos,
                    });
                }
                let (ie, ty) = self.expr(value)?;
                self.bind(name, ty.clone());
                Ok(cl::Stmt::Decl {
                    name: name.clone(),
                    ty,
                    space: cl::Space::Private,
                    array_len: None,
                    init: Some(ie),
                    pos: cpos,
                })
            }
            ens::Stmt::DeclareLocal { name, value, pos } => {
                let cpos = cl_pos(*pos);
                let ens::Expr::NewArray { elem, dims, .. } = value else {
                    return self.err(*pos, "`local` declarations must allocate an array");
                };
                if dims.len() != 1 {
                    return self.err(*pos, "local arrays must be 1-D");
                }
                let len = self.const_eval(&dims[0]).ok_or_else(|| {
                    KernelGenError::new("local array lengths must be compile-time constants", *pos)
                })? as usize;
                let ety = match elem {
                    ens::TypeExpr::Integer => cl::Type::Int,
                    ens::TypeExpr::Real => cl::Type::Float,
                    other => return self.err(*pos, format!("unsupported element type {other}")),
                };
                self.bind(name, cl::Type::Ptr(cl::Space::Local, Box::new(ety.clone())));
                Ok(cl::Stmt::Decl {
                    name: name.clone(),
                    ty: ety,
                    space: cl::Space::Local,
                    array_len: Some(len),
                    init: None,
                    pos: cpos,
                })
            }
            ens::Stmt::Assign {
                name,
                path,
                value,
                pos,
            } => {
                let cpos = cl_pos(*pos);
                let (ve, _) = self.expr(value)?;
                // Buffer element target?
                if let Some((buf, idx, _)) = self.buffer_access(name, path, *pos)? {
                    return Ok(cl::Stmt::Assign {
                        target: cl::LValue::Index(buf, idx, cpos),
                        op: cl::AssignOp::Set,
                        value: ve,
                        pos: cpos,
                    });
                }
                if path.is_empty() {
                    return Ok(cl::Stmt::Assign {
                        target: cl::LValue::Var(name.clone(), cpos),
                        op: cl::AssignOp::Set,
                        value: ve,
                        pos: cpos,
                    });
                }
                // Local array element.
                if path.len() == 1 {
                    if let ens::PathSeg::Index(ie) = &path[0] {
                        let (idx, _) = self.expr(ie)?;
                        return Ok(cl::Stmt::Assign {
                            target: cl::LValue::Index(name.clone(), idx, cpos),
                            op: cl::AssignOp::Set,
                            value: ve,
                            pos: cpos,
                        });
                    }
                }
                self.err(*pos, "unsupported assignment target inside a kernel")
            }
            ens::Stmt::For {
                var,
                from,
                to,
                body,
                pos,
            } => {
                let cpos = cl_pos(*pos);
                let (fe, _) = self.expr(from)?;
                let (te, _) = self.expr(to)?;
                self.vars.push(HashMap::new());
                self.bind(var, cl::Type::Int);
                let mut cbody = Vec::new();
                for s in body {
                    cbody.push(self.stmt(s)?);
                }
                self.vars.pop();
                Ok(cl::Stmt::For {
                    init: Some(Box::new(cl::Stmt::Decl {
                        name: var.clone(),
                        ty: cl::Type::Int,
                        space: cl::Space::Private,
                        array_len: None,
                        init: Some(fe),
                        pos: cpos,
                    })),
                    cond: Some(cl::Expr::Binary(
                        cl::BinOp::Le,
                        Box::new(cl::Expr::Var(var.clone(), cpos)),
                        Box::new(te),
                        cpos,
                    )),
                    step: Some(Box::new(cl::Stmt::Assign {
                        target: cl::LValue::Var(var.clone(), cpos),
                        op: cl::AssignOp::Add,
                        value: cl::Expr::IntLit(1, cpos),
                        pos: cpos,
                    })),
                    body: cbody,
                })
            }
            ens::Stmt::While { cond, body } => {
                let (ce, _) = self.expr(cond)?;
                self.vars.push(HashMap::new());
                let mut cbody = Vec::new();
                for s in body {
                    cbody.push(self.stmt(s)?);
                }
                self.vars.pop();
                Ok(cl::Stmt::While {
                    cond: ce,
                    body: cbody,
                })
            }
            ens::Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let (ce, _) = self.expr(cond)?;
                self.vars.push(HashMap::new());
                let mut tb = Vec::new();
                for s in then_blk {
                    tb.push(self.stmt(s)?);
                }
                self.vars.pop();
                self.vars.push(HashMap::new());
                let mut eb = Vec::new();
                for s in else_blk {
                    eb.push(self.stmt(s)?);
                }
                self.vars.pop();
                Ok(cl::Stmt::If {
                    cond: ce,
                    then_blk: tb,
                    else_blk: eb,
                })
            }
            ens::Stmt::Barrier { pos } => Ok(cl::Stmt::Barrier { pos: cl_pos(*pos) }),
            ens::Stmt::Print { pos, .. } => self.err(
                *pos,
                "print statements are not allowed in kernels (as in OpenCL)",
            ),
            ens::Stmt::Send { pos, .. }
            | ens::Stmt::Receive { pos, .. }
            | ens::Stmt::Connect { pos, .. }
            | ens::Stmt::Stop { pos } => self.err(
                *pos,
                "channel and lifecycle operations are not allowed inside the kernel region",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn matmul_kernel_source() -> String {
        let src = include_str!("../../apps/src/assets/matmul/ocl.ens");
        let module = parse(src).unwrap();
        let actor = &module.stages[0].actors[0];
        let fields = vec![
            DataField {
                name: "a".into(),
                elem: ElemKind::Real,
                ndims: 2,
            },
            DataField {
                name: "b".into(),
                elem: ElemKind::Real,
                ndims: 2,
            },
            DataField {
                name: "result".into(),
                elem: ElemKind::Real,
                ndims: 2,
            },
        ];
        // Kernel region: everything between the two receives and the send.
        let body = &actor.behaviour[2..actor.behaviour.len() - 1];
        let input = KernelGenInput {
            name: "Multiply",
            data_fields: &fields,
            settings_scalars: &[],
            req_name: "req",
            data_name: "d",
            data_is_struct: true,
            body,
        };
        generate(&input).unwrap()
    }

    #[test]
    fn matmul_kernel_flattens_2d_indexing() {
        let src = matmul_kernel_source();
        assert!(src.contains("__kernel void Multiply"), "{src}");
        assert!(src.contains("__global float* a"), "{src}");
        assert!(src.contains("a_dim1"), "{src}");
        // d.a[y][i] must have become a flat `a[...a_dim1...]` access.
        assert!(src.contains("a[(("), "{src}");
    }

    #[test]
    fn generated_matmul_kernel_compiles_and_runs() {
        let src = matmul_kernel_source();
        let unit = oclsim::minicl::parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let compiled = oclsim::minicl::compile(&unit).unwrap_or_else(|e| panic!("{e:?}\n{src}"));
        assert!(compiled.kernels.contains_key("Multiply"));
    }

    #[test]
    fn print_in_kernel_is_rejected() {
        let src = "
            stage home {
                opencl <device_index=0, device_type=GPU>
                actor K presents I {
                    constructor() {}
                    behaviour {
                        receive req from requests;
                        receive d from req.input;
                        printInt(1);
                        send d on req.output;
                    }
                }
                boot {}
            }
        ";
        let module = parse(src).unwrap();
        let actor = &module.stages[0].actors[0];
        let body = &actor.behaviour[2..actor.behaviour.len() - 1];
        let fields = vec![DataField {
            name: "d".into(),
            elem: ElemKind::Real,
            ndims: 1,
        }];
        let input = KernelGenInput {
            name: "K",
            data_fields: &fields,
            settings_scalars: &[],
            req_name: "req",
            data_name: "d",
            data_is_struct: false,
            body,
        };
        let err = generate(&input).unwrap_err();
        assert!(err.diag.message.contains("print"));
    }
}
