//! Shared diagnostic type for the compiler and the static analysis
//! suite (`crates/analysis`).
//!
//! Every analysis pass — and kernel lowering itself — reports through
//! [`Diagnostic`]: a stable error code, a [`Span`] into the source, a
//! severity, and optional help text plus secondary notes. The
//! [`Diagnostic::render`] method produces the rustc-style report used
//! by `ens-lint` and the golden-snapshot fixtures:
//!
//! ```text
//! error[E003]: index 15 is out of bounds for `out` (len 8)
//!   --> racy.ens:12:9
//!    |
//! 12 |         d.out[gid] := 2.0 * d.inp[gid];
//!    |         ^^^^^^^^^^
//!    = help: grow the array or shrink the worksize
//! ```

use crate::token::Span;
use std::fmt;

/// Stable diagnostic codes emitted by the analysis passes.
///
/// | code | pass | meaning |
/// |------|------|---------|
/// | `E001` | race | two work-items may write the same output location |
/// | `E002` | race | a work-item reads another work-item's output slot |
/// | `E003` | bounds | an index provably exceeds the array's declared extent |
/// | `E004` | mov | a `mov` value is used after being sent away |
/// | `E005` | topology | a channel is sent/received on but never connected |
/// | `E006` | topology | a rendezvous cycle in which every actor receives first |
/// | `E007` | topology | `connect` direction or element-type mismatch |
/// | `E008` | kernelgen | a statement cannot be lowered to OpenCL C |
/// | `W001` | topology | an interface port no actor uses |
/// | `W002` | mov | residency not provable (consumers on different devices) |
/// | `W003` | split | an NDRange dimension is not provably splittable |
/// | `W004` | fusion | merging adjacent dispatches is blocked by a data hazard |
/// | `W005` | effects | a channel payload is mutated after being sent |
pub mod codes {
    /// Write-write race between work-items.
    pub const KERNEL_RACE: &str = "E001";
    /// Read of another work-item's output slot.
    pub const KERNEL_READ_RACE: &str = "E002";
    /// Provable out-of-bounds index.
    pub const KERNEL_BOUNDS: &str = "E003";
    /// Use of a `mov` value after it was sent away.
    pub const USE_AFTER_MOV: &str = "E004";
    /// Channel used for send/receive but never connected.
    pub const ORPHAN_CHANNEL: &str = "E005";
    /// Rendezvous deadlock cycle (every actor's first channel op receives).
    pub const DEADLOCK_CYCLE: &str = "E006";
    /// `connect` direction or element-type mismatch.
    pub const PROTOCOL_MISMATCH: &str = "E007";
    /// Kernel lowering failure (the old `KernelGenError`).
    pub const KERNEL_LOWERING: &str = "E008";
    /// Interface port that no presenting actor ever uses.
    pub const UNUSED_PORT: &str = "W001";
    /// `mov` residency could not be proven device-stable.
    pub const RESIDENCY_UNPROVEN: &str = "W002";
    /// NDRange dimension not provably partition-safe (proofs mode).
    pub const SPLIT_UNPROVEN: &str = "W003";
    /// Adjacent-dispatch merge blocked by a RAW/WAR/WAW hazard (proofs mode).
    pub const FUSION_HAZARD: &str = "W004";
    /// Channel payload mutated after being sent (proofs mode).
    pub const PAYLOAD_MUTATED: &str = "W005";
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; does not fail the deny-by-default gate.
    Warning,
    /// Rejects the program unless explicitly allowed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding from a compiler or analysis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code (`E001`…, `W001`…); see [`codes`].
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// One-line description of the problem.
    pub message: String,
    /// Primary source range the finding points at.
    pub span: Span,
    /// Optional suggested fix, rendered as `= help: …`.
    pub help: Option<String>,
    /// Secondary locations with their own captions (e.g. the `send`
    /// that moved a value away), rendered as `= note: …`.
    pub notes: Vec<(Span, String)>,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            span,
            help: None,
            notes: Vec::new(),
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, span, message)
        }
    }

    /// Attach a suggested fix (builder style).
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// Attach a secondary location with a caption (builder style).
    pub fn with_note(mut self, span: Span, caption: impl Into<String>) -> Diagnostic {
        self.notes.push((span, caption.into()));
        self
    }

    /// Render the rustc-style multi-line report against `src`. `file`
    /// (when given) prefixes the `-->` location line.
    pub fn render(&self, src: &str, file: Option<&str>) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{}[{}]: {}\n",
            self.severity, self.code, self.message
        ));
        let loc = match file {
            Some(f) => format!("{f}:{}", self.span.start),
            None => self.span.start.to_string(),
        };
        let gutter = digits(self.span.start.line);
        out.push_str(&format!("{:gw$}--> {loc}\n", "", gw = gutter + 1));
        if let Some(line_text) = src.lines().nth(self.span.start.line as usize - 1) {
            out.push_str(&format!("{:gw$} |\n", "", gw = gutter));
            out.push_str(&format!(
                "{:gw$} | {line_text}\n",
                self.span.start.line,
                gw = gutter
            ));
            let start = self.span.start.col as usize;
            let end = if self.span.end.line == self.span.start.line
                && self.span.end.col > self.span.start.col
            {
                self.span.end.col as usize
            } else {
                start + 1
            };
            let carets = "^".repeat(end - start);
            out.push_str(&format!(
                "{:gw$} | {:pad$}{carets}\n",
                "",
                "",
                gw = gutter,
                pad = start - 1
            ));
        }
        for (span, caption) in &self.notes {
            out.push_str(&format!(
                "{:gw$} = note: {caption} (at {})\n",
                "",
                span.start,
                gw = gutter
            ));
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("{:gw$} = help: {help}\n", "", gw = gutter));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}[{}]: {}",
            self.span.start, self.severity, self.code, self.message
        )
    }
}

fn digits(n: u32) -> usize {
    n.to_string().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Pos;

    fn sp(line: u32, c0: u32, c1: u32) -> Span {
        Span {
            start: Pos { line, col: c0 },
            end: Pos { line, col: c1 },
        }
    }

    #[test]
    fn renders_caret_underline_over_full_span() {
        let src = "a = 1;\nsend d on out;\n";
        let d = Diagnostic::error(codes::USE_AFTER_MOV, sp(2, 6, 7), "`d` moved")
            .with_help("reassign `d` before using it");
        let r = d.render(src, Some("t.ens"));
        assert!(r.contains("error[E004]: `d` moved"));
        assert!(r.contains("--> t.ens:2:6"));
        assert!(r.contains("2 | send d on out;"));
        assert!(r.contains("|      ^\n"));
        assert!(r.contains("= help: reassign `d` before using it"));
    }

    #[test]
    fn display_is_single_line() {
        let d = Diagnostic::warning(codes::UNUSED_PORT, sp(3, 1, 4), "port unused");
        assert_eq!(d.to_string(), "3:1: warning[W001]: port unused");
    }
}
