//! Lexer for the mini-Ensemble language.
//!
//! The token set covers the paper's listings (2 and 3) and the five
//! evaluation applications: keywords are resolved by the parser, `=`
//! declares while `:=` assigns (as in the listings), and `..` is the
//! range operator of `for` loops.

use std::fmt;

/// Source position (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// Line number.
    pub line: u32,
    /// Column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Source range: `start` is the first character, `end` is one past the
/// last character (both 1-based line/column).
///
/// `Display` prints only the start position so error messages that embed
/// a span keep the historical `line:col` shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First character of the range.
    pub start: Pos,
    /// One past the last character of the range.
    pub end: Pos,
}

impl Span {
    /// Span covering `start..end`.
    pub fn new(start: Pos, end: Pos) -> Span {
        Span { start, end }
    }

    /// Zero-width span at `p` (for synthesized nodes with no source text).
    pub fn point(p: Pos) -> Span {
        Span { start: p, end: p }
    }

    /// Smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start,
            end: other.end,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)
    }
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // punctuation variants are self-describing
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real (floating) literal.
    Real(f64),
    /// String literal (unescaped content).
    Str(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Dot,
    DotDot,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Declare, // =
    Assign,  // :=
    Eq,      // ==
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "integer {v}"),
            Tok::Real(v) => write!(f, "real {v}"),
            Tok::Str(s) => write!(f, "string {s:?}"),
            other => {
                let s = match other {
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Comma => ",",
                    Tok::Semi => ";",
                    Tok::Dot => ".",
                    Tok::DotDot => "..",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    Tok::Declare => "=",
                    Tok::Assign => ":=",
                    Tok::Eq => "==",
                    Tok::Ne => "!=",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::Eof => "end of input",
                    _ => unreachable!(),
                };
                write!(f, "`{s}`")
            }
        }
    }
}

/// Token plus position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
    /// One past where it ends.
    pub end: Pos,
}

impl Spanned {
    /// The token's full source range.
    pub fn span(&self) -> Span {
        Span {
            start: self.pos,
            end: self.end,
        }
    }
}

/// A lexing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Description.
    pub message: String,
    /// Location.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: lex error: {}", self.pos, self.message)
    }
}

/// Tokenize mini-Ensemble source. `//` comments are stripped.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let pos = Pos { line, col };
        if c.is_whitespace() {
            bump!();
            continue;
        }
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '/' {
            while i < chars.len() && chars[i] != '\n' {
                bump!();
            }
            continue;
        }
        if c == '"' {
            bump!();
            let mut s = String::new();
            while i < chars.len() && chars[i] != '"' {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    bump!();
                    let esc = chars[i];
                    s.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    });
                    bump!();
                    continue;
                }
                s.push(chars[i]);
                bump!();
            }
            if i >= chars.len() {
                return Err(LexError {
                    message: "unterminated string literal".to_string(),
                    pos,
                });
            }
            bump!(); // closing quote
            out.push(Spanned {
                tok: Tok::Str(s),
                pos,
                end: Pos { line, col },
            });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                s.push(chars[i]);
                bump!();
            }
            out.push(Spanned {
                tok: Tok::Ident(s),
                pos,
                end: Pos { line, col },
            });
            continue;
        }
        if c.is_ascii_digit() {
            let mut s = String::new();
            let mut is_real = false;
            while i < chars.len() && chars[i].is_ascii_digit() {
                s.push(chars[i]);
                bump!();
            }
            // Fraction — but `1..` is a range, not a real.
            if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                is_real = true;
                s.push('.');
                bump!();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    s.push(chars[i]);
                    bump!();
                }
            }
            // Exponent: 3.0e38
            if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                let mut k = i + 1;
                if k < chars.len() && (chars[k] == '+' || chars[k] == '-') {
                    k += 1;
                }
                if k < chars.len() && chars[k].is_ascii_digit() {
                    is_real = true;
                    s.push('e');
                    bump!();
                    if chars[i] == '+' || chars[i] == '-' {
                        s.push(chars[i]);
                        bump!();
                    }
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        s.push(chars[i]);
                        bump!();
                    }
                }
            }
            let tok = if is_real {
                Tok::Real(s.parse().map_err(|_| LexError {
                    message: format!("invalid real literal {s}"),
                    pos,
                })?)
            } else {
                Tok::Int(s.parse().map_err(|_| LexError {
                    message: format!("invalid integer literal {s}"),
                    pos,
                })?)
            };
            out.push(Spanned {
                tok,
                pos,
                end: Pos { line, col },
            });
            continue;
        }
        let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
        let (tok, len) = match two.as_str() {
            ":=" => (Tok::Assign, 2),
            "==" => (Tok::Eq, 2),
            "!=" => (Tok::Ne, 2),
            "<=" => (Tok::Le, 2),
            ">=" => (Tok::Ge, 2),
            ".." => (Tok::DotDot, 2),
            _ => match c {
                '(' => (Tok::LParen, 1),
                ')' => (Tok::RParen, 1),
                '{' => (Tok::LBrace, 1),
                '}' => (Tok::RBrace, 1),
                '[' => (Tok::LBracket, 1),
                ']' => (Tok::RBracket, 1),
                ',' => (Tok::Comma, 1),
                ';' => (Tok::Semi, 1),
                '.' => (Tok::Dot, 1),
                '+' => (Tok::Plus, 1),
                '-' => (Tok::Minus, 1),
                '*' => (Tok::Star, 1),
                '/' => (Tok::Slash, 1),
                '%' => (Tok::Percent, 1),
                '=' => (Tok::Declare, 1),
                '<' => (Tok::Lt, 1),
                '>' => (Tok::Gt, 1),
                other => {
                    return Err(LexError {
                        message: format!("unexpected character `{other}`"),
                        pos,
                    })
                }
            },
        };
        for _ in 0..len {
            bump!();
        }
        out.push(Spanned {
            tok,
            pos,
            end: Pos { line, col },
        });
    }
    out.push(Spanned {
        tok: Tok::Eof,
        pos: Pos { line, col },
        end: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn declare_vs_assign() {
        assert_eq!(toks("x = 1")[1], Tok::Declare);
        assert_eq!(toks("x := 1")[1], Tok::Assign);
    }

    #[test]
    fn range_vs_real() {
        let t = toks("for i = 0 .. 9");
        assert!(t.contains(&Tok::DotDot));
        assert_eq!(toks("1.5")[0], Tok::Real(1.5));
        assert_eq!(toks("3.0e38")[0], Tok::Real(3.0e38));
        // `0 .. (n-1)` must not lex 0. as a real
        let t = toks("0 .. 9");
        assert_eq!(t[0], Tok::Int(0));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#"printString("\nreceived: ")"#)[2],
            Tok::Str("\nreceived: ".to_string())
        );
    }

    #[test]
    fn comments_stripped() {
        let t = toks("a // comment\nb");
        assert_eq!(t.len(), 3); // a, b, eof
    }

    #[test]
    fn listing2_lexes() {
        let src = r#"
            type Isnd is interface(out integer output)
            stage home {
                actor snd presents Isnd {
                    value = 1;
                    behaviour {
                        send value on output;
                        value := value + 1;
                    }
                }
            }
        "#;
        assert!(lex(src).is_ok());
    }

    #[test]
    fn error_on_unterminated_string() {
        assert!(lex("\"oops").is_err());
    }
}
