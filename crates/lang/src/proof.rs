//! Typed proof objects produced by the static analysis suite.
//!
//! The analysis crate (`crates/analysis`) does more than lint: per
//! kernel dispatch site it *proves* facts a scheduler can consume
//! without runtime checks — which NDRange dimensions a dispatch can be
//! partitioned along ([`SplitProof`]), which consecutive enqueues on a
//! queue form a batchable chain and whether adjacent pairs could even
//! be merged ([`FusionProof`]), and which channel payloads are never
//! mutated after being sent ([`SendProof`], the copy-on-write
//! elimination precondition).
//!
//! The proofs live here, in the language crate, because they are part
//! of the compile output: a [`ProofSet`] rides on the
//! [`CompiledModule`](crate::CompiledModule) and a per-kernel
//! [`KernelProof`] on each [`KernelPlan`](crate::KernelPlan), so the VM
//! can surface them as `proof_splittable` / `proof_fusable` trace
//! instants at dispatch time. Everything serialises to JSON by hand
//! (the workspace has no JSON library) for `ens-lint --proofs --json`.

/// How one NDRange dimension of a kernel dispatch may be treated by a
/// partitioning scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimClass {
    /// Cutting the dispatch between work-groups along this dimension is
    /// proven safe: no work-item on one side of any cut reads or writes
    /// a global location another side writes.
    Splittable,
    /// A reduction dimension: writes are group-combine slots
    /// (`get_group_id` under a `get_local_id == k` pin). Cross-group
    /// write sets are disjoint, but the output has per-group extent —
    /// a splitting scheduler must also split the combine step.
    Reduction,
    /// Not provably splittable: some write may be read or written
    /// across a cut (or the subscripts defeat the affine model).
    Blocked,
    /// The dimension has a proven extent of at most one work-item (or
    /// is beyond the declared worksize rank): no cut exists.
    Inactive,
}

impl DimClass {
    /// Stable lower-case name used in JSON output and tables.
    pub fn as_str(&self) -> &'static str {
        match self {
            DimClass::Splittable => "splittable",
            DimClass::Reduction => "reduction",
            DimClass::Blocked => "blocked",
            DimClass::Inactive => "inactive",
        }
    }
}

/// The verdict for one dimension of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct DimProof {
    /// Dimension index (0-based, as in `get_global_id(d)`).
    pub dim: usize,
    /// The classification.
    pub class: DimClass,
    /// Human-readable witness: which subscript proves the claim, or
    /// which subscript pair blocks it.
    pub evidence: String,
}

/// Per-dispatch-site splittability proof: one verdict per NDRange
/// dimension of the kernel's declared worksize.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitProof {
    /// Kernel actor name.
    pub kernel: String,
    /// Number of worksize dimensions the verdicts cover.
    pub ndims: usize,
    /// Per-dimension verdicts, in dimension order.
    pub dims: Vec<DimProof>,
}

impl SplitProof {
    /// Dimensions proven partition-safe.
    pub fn splittable_dims(&self) -> Vec<usize> {
        self.dims
            .iter()
            .filter(|d| d.class == DimClass::Splittable)
            .map(|d| d.dim)
            .collect()
    }

    /// The classification of dimension `d`, if covered.
    pub fn class_of(&self, d: usize) -> Option<DimClass> {
        self.dims.iter().find(|p| p.dim == d).map(|p| p.class)
    }
}

/// A data hazard between two consecutive dispatches on one queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hazard {
    /// Read-after-write: the later dispatch reads what the earlier wrote.
    Raw,
    /// Write-after-read: the later dispatch overwrites what the earlier read.
    War,
    /// Write-after-write: both dispatches write the same locations.
    Waw,
}

impl Hazard {
    /// The conventional three-letter name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Hazard::Raw => "RAW",
            Hazard::War => "WAR",
            Hazard::Waw => "WAW",
        }
    }
}

/// The verdict for one adjacent pair of dispatches in a fusion chain.
///
/// A pair with a hazard can still be *batched* (enqueued back-to-back
/// on an in-order queue with no host round-trip — launch overhead
/// amortises) but must not be *merged* into one kernel whose work-items
/// interleave.
#[derive(Debug, Clone, PartialEq)]
pub struct PairProof {
    /// Kernel name of the earlier dispatch.
    pub from: String,
    /// Kernel name of the later dispatch.
    pub to: String,
    /// No hazard on any shared buffer: the two dispatches' work-items
    /// may interleave freely.
    pub mergeable: bool,
    /// The blocking hazard, when not mergeable: kind and buffer field.
    pub hazard: Option<(Hazard, String)>,
    /// The offending (or witnessing) subscript pair, rendered.
    pub detail: String,
}

/// A chain of consecutive kernel enqueues with no intervening host
/// readback or payload mutation — the unit the batching scheduler
/// consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionProof {
    /// The dispatching host actor.
    pub host: String,
    /// Kernel names of the chained dispatch sites, in program order
    /// (one loop iteration when `loops` is set).
    pub sites: Vec<String>,
    /// The chain closes over a loop back-edge (no barrier anywhere in
    /// the loop body): iteration `n`'s last dispatch feeds iteration
    /// `n+1`'s first.
    pub loops: bool,
    /// Iteration count when the loop bound is a known constant.
    pub iterations: Option<i64>,
    /// What ended the chain (e.g. a non-`mov` readback receive), when
    /// something did.
    pub barrier: Option<String>,
    /// Hazard verdicts for adjacent pairs (including the wrap-around
    /// pair when `loops` is set).
    pub pairs: Vec<PairProof>,
}

impl FusionProof {
    /// Dispatches per chain traversal (one loop iteration).
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when the chain has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Total dispatches the chain covers when the loop trip-count is
    /// known (`sites × iterations`), else the per-iteration length.
    pub fn effective_len(&self) -> i64 {
        match (self.loops, self.iterations) {
            (true, Some(n)) => self.sites.len() as i64 * n,
            _ => self.sites.len() as i64,
        }
    }
}

/// Effect proof for one host-side payload send: whether the payload is
/// provably unmutated afterwards (so a copy-on-write send never needs
/// the copy — ROADMAP item 3's precondition).
#[derive(Debug, Clone, PartialEq)]
pub struct SendProof {
    /// The sending host actor.
    pub actor: String,
    /// Variable holding the sent payload.
    pub payload: String,
    /// Source line of the send.
    pub line: u32,
    /// Proven unmutated after the send (through any alias).
    pub unmutated: bool,
}

/// Everything the proof passes established about one module.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProofSet {
    /// One splittability proof per recognised kernel actor.
    pub splits: Vec<SplitProof>,
    /// Dispatch chains per host actor.
    pub fusion: Vec<FusionProof>,
    /// Payload-send effect proofs.
    pub sends: Vec<SendProof>,
}

impl ProofSet {
    /// The split proof for a kernel actor, if one was computed.
    pub fn split_for(&self, kernel: &str) -> Option<&SplitProof> {
        self.splits.iter().find(|s| s.kernel == kernel)
    }

    /// Hand-rolled JSON rendering (the workspace has no JSON library).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"splits\":[");
        for (i, s) in self.splits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kernel\":{},\"ndims\":{},\"dims\":[",
                json_string(&s.kernel),
                s.ndims
            ));
            for (j, d) in s.dims.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"dim\":{},\"class\":{},\"evidence\":{}}}",
                    d.dim,
                    json_string(d.class.as_str()),
                    json_string(&d.evidence)
                ));
            }
            out.push_str("]}");
        }
        out.push_str("],\"fusion\":[");
        for (i, f) in self.fusion.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"host\":{},\"sites\":[{}],\"loops\":{},\"iterations\":{},\"barrier\":{},\"pairs\":[",
                json_string(&f.host),
                f.sites
                    .iter()
                    .map(|s| json_string(s))
                    .collect::<Vec<_>>()
                    .join(","),
                f.loops,
                f.iterations
                    .map_or("null".to_string(), |n| n.to_string()),
                f.barrier
                    .as_deref()
                    .map_or("null".to_string(), json_string),
            ));
            for (j, p) in f.pairs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let (hz, buf) = match &p.hazard {
                    Some((h, b)) => (json_string(h.as_str()), json_string(b)),
                    None => ("null".to_string(), "null".to_string()),
                };
                out.push_str(&format!(
                    "{{\"from\":{},\"to\":{},\"mergeable\":{},\"hazard\":{hz},\"buffer\":{buf},\"detail\":{}}}",
                    json_string(&p.from),
                    json_string(&p.to),
                    p.mergeable,
                    json_string(&p.detail)
                ));
            }
            out.push_str("]}");
        }
        out.push_str("],\"sends\":[");
        for (i, s) in self.sends.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"actor\":{},\"payload\":{},\"line\":{},\"unmutated\":{}}}",
                json_string(&s.actor),
                json_string(&s.payload),
                s.line,
                s.unmutated
            ));
        }
        out.push_str("]}");
        out
    }
}

/// The proof summary one kernel dispatch carries at runtime (stored on
/// the [`KernelPlan`](crate::KernelPlan)).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProof {
    /// The splittability proof for this kernel.
    pub split: SplitProof,
    /// This kernel's place in a dispatch chain, when it is part of one
    /// with at least two sites per traversal (or a looping chain).
    pub chain: Option<ChainRole>,
}

/// Where one kernel sits in a fusion chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainRole {
    /// The dispatching host actor.
    pub host: String,
    /// Sites per chain traversal.
    pub len: usize,
    /// This kernel's 0-based position in the chain.
    pub index: usize,
    /// The pair arriving at this site (from the previous site, or the
    /// wrap-around pair for site 0 of a looping chain) is mergeable.
    pub mergeable_with_prev: bool,
    /// The chain closes over a loop back-edge (copied from the owning
    /// [`FusionProof::loops`]): consecutive traversals chain too, so a
    /// dispatch batcher may keep one batch open across iterations.
    pub loops: bool,
}

/// Escape and quote a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_valid_and_greppable() {
        let set = ProofSet {
            splits: vec![SplitProof {
                kernel: "Multiply".into(),
                ndims: 2,
                dims: vec![
                    DimProof {
                        dim: 0,
                        class: DimClass::Splittable,
                        evidence: "write `d.result[y][x]` varies with gid0".into(),
                    },
                    DimProof {
                        dim: 1,
                        class: DimClass::Reduction,
                        evidence: "group combine".into(),
                    },
                ],
            }],
            fusion: vec![FusionProof {
                host: "Controller".into(),
                sites: vec!["Diag".into(), "Col".into()],
                loops: true,
                iterations: Some(4),
                barrier: None,
                pairs: vec![PairProof {
                    from: "Diag".into(),
                    to: "Col".into(),
                    mergeable: false,
                    hazard: Some((Hazard::Raw, "piv".into())),
                    detail: "write piv[0] vs read piv[0]".into(),
                }],
            }],
            sends: vec![SendProof {
                actor: "Dispatch".into(),
                payload: "d".into(),
                line: 12,
                unmutated: true,
            }],
        };
        let j = set.to_json();
        assert!(j.contains("\"class\":\"splittable\""));
        assert!(j.contains("\"hazard\":\"RAW\""));
        assert!(j.contains("\"unmutated\":true"));
        assert!(j.contains("\"iterations\":4"));
        assert_eq!(set.fusion[0].effective_len(), 8);
        assert_eq!(set.splits[0].splittable_dims(), vec![0]);
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
