//! # ensemble-lang — the mini-Ensemble compiler
//!
//! A compiler for the subset of the Ensemble language used by the paper's
//! listings and evaluation applications (§4, §6.1): actors with repeated
//! behaviours, stages with boot blocks, typed unidirectional channels,
//! struct/interface/opencl-struct types, `mov` fields, and `opencl`
//! kernel actors.
//!
//! The pipeline mirrors Figure 1 of the paper:
//!
//! 1. [`parser`] — source → AST;
//! 2. [`compile`] — semantic checks (opencl struct shape, single-channel
//!    kernel interfaces, the receive/receive/…/send kernel protocol, the
//!    `mov` use-after-send analysis) and code generation;
//! 3. host actors become stack bytecode ([`vmops`]) for the Ensemble VM
//!    (crate `ensemble-vm`), and kernel-actor behaviours become OpenCL C
//!    strings ([`kernelgen`]) "stored within the actor's bytecode" — the
//!    §6.1.3 execution model.
//!
//! Compile-time kernel errors (with `.ens` positions) instead of runtime
//! build failures are one of the paper's stated advantages; the tests in
//! [`compile`] exercise exactly those rejections.

#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod diag;
pub mod kernelgen;
pub mod parser;
pub mod proof;
pub mod token;
pub mod vmops;

pub use compile::{
    compile_module, compile_module_with, compile_source, compile_source_gated, CompileError,
    CompileOptions, GateError,
};
pub use diag::{Diagnostic, Severity};
pub use parser::{parse, ParseError};
pub use proof::{
    ChainRole, DimClass, DimProof, FusionProof, Hazard, KernelProof, PairProof, ProofSet,
    SendProof, SplitProof,
};
pub use token::{Pos, Span};
pub use vmops::{ActorCode, Chunk, CompiledActor, CompiledModule, KernelPlan, VOp};
