//! Abstract syntax tree for mini-Ensemble.

use crate::token::Span;

/// Type expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// `integer`.
    Integer,
    /// `real`.
    Real,
    /// `boolean`.
    Boolean,
    /// `string`.
    StringT,
    /// `T []`, `T [][]`, ... — element type plus dimension count.
    Array(Box<TypeExpr>, usize),
    /// A named struct / opencl struct type.
    Named(String),
    /// `in T` channel endpoint type.
    ChanIn(Box<TypeExpr>),
    /// `out T` channel endpoint type.
    ChanOut(Box<TypeExpr>),
}

impl std::fmt::Display for TypeExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeExpr::Integer => write!(f, "integer"),
            TypeExpr::Real => write!(f, "real"),
            TypeExpr::Boolean => write!(f, "boolean"),
            TypeExpr::StringT => write!(f, "string"),
            TypeExpr::Array(e, d) => {
                write!(f, "{e}")?;
                for _ in 0..*d {
                    write!(f, " []")?;
                }
                Ok(())
            }
            TypeExpr::Named(n) => write!(f, "{n}"),
            TypeExpr::ChanIn(e) => write!(f, "in {e}"),
            TypeExpr::ChanOut(e) => write!(f, "out {e}"),
        }
    }
}

/// A struct field (or opencl-struct field).
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: TypeExpr,
    /// Declared `mov` (movable — §6.2.3 of the paper).
    pub mov: bool,
    /// Source position.
    pub pos: Span,
}

/// Direction of an interface port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// `in` — the actor receives on this channel.
    In,
    /// `out` — the actor sends on this channel.
    Out,
}

/// An interface port: `out integer output`.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Direction.
    pub dir: Dir,
    /// Element type conveyed.
    pub ty: TypeExpr,
    /// Port name.
    pub name: String,
    /// Source position.
    pub pos: Span,
}

/// A type declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeDecl {
    /// `type name is [opencl] struct ( fields )`.
    Struct {
        /// Type name.
        name: String,
        /// Fields, in declaration order.
        fields: Vec<Field>,
        /// Declared with the `opencl` keyword (the settings-struct shape is
        /// then validated by semantic analysis).
        opencl: bool,
        /// Source position.
        pos: Span,
    },
    /// `type name is interface ( ports )`.
    Interface {
        /// Type name.
        name: String,
        /// Ports.
        ports: Vec<Port>,
        /// Source position.
        pos: Span,
    },
}

impl TypeDecl {
    /// Declared name.
    pub fn name(&self) -> &str {
        match self {
            TypeDecl::Struct { name, .. } | TypeDecl::Interface { name, .. } => name,
        }
    }
}

/// Attributes of an `opencl <...>` actor header.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpenclAttrs {
    /// `device_index=N`.
    pub device_index: usize,
    /// `device_type=GPU|CPU|ACCELERATOR` (None = default device).
    pub device_type: Option<String>,
}

/// An actor declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ActorDecl {
    /// Actor type name.
    pub name: String,
    /// Interface presented.
    pub interface: String,
    /// `Some` when declared `opencl <...> actor`.
    pub opencl: Option<OpenclAttrs>,
    /// Field declarations with initialisers (`value = 1;`).
    pub fields: Vec<(String, Expr)>,
    /// Constructor body.
    pub constructor: Vec<Stmt>,
    /// Behaviour body (repeated until stop).
    pub behaviour: Vec<Stmt>,
    /// Source position.
    pub pos: Span,
}

/// A stage: actors plus the boot block.
#[derive(Debug, Clone, PartialEq)]
pub struct StageDecl {
    /// Stage name.
    pub name: String,
    /// Actors declared inside the stage.
    pub actors: Vec<ActorDecl>,
    /// The boot block.
    pub boot: Vec<Stmt>,
    /// Source position.
    pub pos: Span,
}

/// A whole compilation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Top-level type declarations.
    pub types: Vec<TypeDecl>,
    /// Stages (typically one).
    pub stages: Vec<StageDecl>,
}

/// One segment of an l-value / variable path: `d.result[x][y]`.
#[derive(Debug, Clone, PartialEq)]
pub enum PathSeg {
    /// `.field`.
    Field(String),
    /// `[index]`.
    Index(Expr),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // operator variants are self-describing
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Real literal.
    Real(f64, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// String literal.
    Str(String, Span),
    /// Variable access with optional field/index path.
    Path(String, Vec<PathSeg>, Span),
    /// Unary negation.
    Neg(Box<Expr>, Span),
    /// Logical not.
    Not(Box<Expr>, Span),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>, Span),
    /// Builtin call: `get_global_id(0)`, `toReal(x)`, `lengthof(a)`, ...
    Call(String, Vec<Expr>, Span),
    /// `new real[n][m]` / `new integer[2] of s`.
    NewArray {
        /// Element type.
        elem: TypeExpr,
        /// One expression per dimension.
        dims: Vec<Expr>,
        /// `of <expr>` fill value (default zero).
        fill: Option<Box<Expr>>,
        /// Source position.
        pos: Span,
    },
    /// `new settings_t(a, b, c, d)` — struct construction.
    NewStruct {
        /// Struct type name.
        name: String,
        /// Field values in declaration order.
        args: Vec<Expr>,
        /// Source position.
        pos: Span,
    },
    /// `new snd()` — actor instantiation (boot only).
    NewActor {
        /// Actor type name.
        name: String,
        /// Source position.
        pos: Span,
    },
    /// `new in T` — dynamic input endpoint.
    NewChanIn(TypeExpr, Span),
    /// `new out T` — dynamic output endpoint.
    NewChanOut(TypeExpr, Span),
}

impl Expr {
    /// Source range.
    pub fn pos(&self) -> Span {
        match self {
            Expr::Int(_, p)
            | Expr::Real(_, p)
            | Expr::Bool(_, p)
            | Expr::Str(_, p)
            | Expr::Path(_, _, p)
            | Expr::Neg(_, p)
            | Expr::Not(_, p)
            | Expr::Binary(_, _, _, p)
            | Expr::Call(_, _, p)
            | Expr::NewArray { pos: p, .. }
            | Expr::NewStruct { pos: p, .. }
            | Expr::NewActor { pos: p, .. }
            | Expr::NewChanIn(_, p)
            | Expr::NewChanOut(_, p) => *p,
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `x = expr;` — declaration of a new binding.
    Declare {
        /// New variable name.
        name: String,
        /// Initial value.
        value: Expr,
        /// Source position.
        pos: Span,
    },
    /// `local x = new real[k];` — kernel-local (work-group shared) array.
    DeclareLocal {
        /// New variable name.
        name: String,
        /// Initial value (must be a NewArray inside kernels).
        value: Expr,
        /// Source position.
        pos: Span,
    },
    /// `path := expr;` — assignment to an existing location.
    Assign {
        /// Target root variable.
        name: String,
        /// Path from the root (may be empty).
        path: Vec<PathSeg>,
        /// New value.
        value: Expr,
        /// Source position.
        pos: Span,
    },
    /// `send expr on chan;`
    Send {
        /// Value to send.
        value: Expr,
        /// Channel expression (a path).
        chan: Expr,
        /// Source position.
        pos: Span,
    },
    /// `receive name from chan;` — declares `name`.
    Receive {
        /// Variable to bind.
        name: String,
        /// Channel expression (a path).
        chan: Expr,
        /// Source position.
        pos: Span,
    },
    /// `connect a.x to b.y;`
    Connect {
        /// The out endpoint.
        from: Expr,
        /// The in endpoint.
        to: Expr,
        /// Source position.
        pos: Span,
    },
    /// `for i = lo .. hi do { ... }` (inclusive bounds, as in Listing 3).
    For {
        /// Loop variable (fresh binding).
        var: String,
        /// Lower bound.
        from: Expr,
        /// Upper bound (inclusive).
        to: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Source position.
        pos: Span,
    },
    /// `while (cond) { ... }`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `if cond then { ... } else { ... }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Vec<Stmt>,
        /// Else branch.
        else_blk: Vec<Stmt>,
    },
    /// `printString("...")` / `printInt(x)` / `printReal(x)`.
    Print {
        /// Which print primitive.
        kind: PrintKind,
        /// Value printed.
        value: Expr,
        /// Source position.
        pos: Span,
    },
    /// `barrier();` — kernel actors only.
    Barrier {
        /// Source position.
        pos: Span,
    },
    /// `stop;` — stop this actor.
    Stop {
        /// Source position.
        pos: Span,
    },
}

/// The print primitives of the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrintKind {
    /// `printString`.
    Str,
    /// `printInt`.
    Int,
    /// `printReal`.
    Real,
}
