//! Recursive-descent parser for mini-Ensemble.

use crate::ast::*;
use crate::token::{lex, Pos, Span, Spanned, Tok};

/// A parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// Location.
    pub pos: Pos,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: parse error: {}", self.pos, self.message)
    }
}

/// Parse a full module.
pub fn parse(src: &str) -> Result<Module, ParseError> {
    let tokens = lex(src).map_err(|e| ParseError {
        message: e.message,
        pos: e.pos,
    })?;
    let mut p = Parser { tokens, i: 0 };
    let mut module = Module::default();
    while !p.at_eof() {
        if p.peek_kw("type") {
            module.types.push(p.type_decl()?);
        } else if p.peek_kw("stage") {
            module.stages.push(p.stage()?);
        } else {
            return Err(p.err(format!("expected `type` or `stage`, found {}", p.peek())));
        }
    }
    Ok(module)
}

struct Parser {
    tokens: Vec<Spanned>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.i].tok
    }

    fn pos(&self) -> Pos {
        self.tokens[self.i].pos
    }

    /// End of the most recently consumed token (start of input if none).
    fn prev_end(&self) -> Pos {
        if self.i == 0 {
            self.tokens[0].pos
        } else {
            self.tokens[self.i - 1].end
        }
    }

    /// Span from `start` to the end of the last consumed token.
    fn span_from(&self, start: Pos) -> Span {
        Span {
            start,
            end: self.prev_end(),
        }
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.i].tok.clone();
        if self.i + 1 < self.tokens.len() {
            self.i += 1;
        }
        t
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            message,
            pos: self.pos(),
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    // ---- types ----

    fn type_expr(&mut self) -> Result<TypeExpr, ParseError> {
        if self.eat_kw("in") {
            let inner = self.type_expr()?;
            return Ok(TypeExpr::ChanIn(Box::new(inner)));
        }
        if self.eat_kw("out") {
            let inner = self.type_expr()?;
            return Ok(TypeExpr::ChanOut(Box::new(inner)));
        }
        let name = self.ident()?;
        let base = match name.as_str() {
            "integer" => TypeExpr::Integer,
            "real" => TypeExpr::Real,
            "boolean" => TypeExpr::Boolean,
            "string" => TypeExpr::StringT,
            other => TypeExpr::Named(other.to_string()),
        };
        // Array suffixes: `[]` repeated.
        let mut dims = 0usize;
        while *self.peek() == Tok::LBracket {
            // Only `[]` (empty) denotes an array type here.
            if self.tokens[self.i + 1].tok != Tok::RBracket {
                break;
            }
            self.bump();
            self.bump();
            dims += 1;
        }
        if dims > 0 {
            Ok(TypeExpr::Array(Box::new(base), dims))
        } else {
            Ok(base)
        }
    }

    fn type_decl(&mut self) -> Result<TypeDecl, ParseError> {
        let pos = self.pos();
        self.expect_kw("type")?;
        let name = self.ident()?;
        let hspan = self.span_from(pos); // `type name` header
        self.expect_kw("is")?;
        if self.eat_kw("interface") {
            self.expect(Tok::LParen)?;
            let mut ports = Vec::new();
            while *self.peek() != Tok::RParen {
                let ppos = self.pos();
                let dir = if self.eat_kw("in") {
                    Dir::In
                } else if self.eat_kw("out") {
                    Dir::Out
                } else {
                    return Err(self.err("interface ports start with `in` or `out`".into()));
                };
                let ty = self.type_expr()?;
                let pname = self.ident()?;
                let pspan = self.span_from(ppos);
                ports.push(Port {
                    dir,
                    ty,
                    name: pname,
                    pos: pspan,
                });
                if *self.peek() == Tok::Semi || *self.peek() == Tok::Comma {
                    self.bump();
                }
            }
            self.expect(Tok::RParen)?;
            return Ok(TypeDecl::Interface {
                name,
                ports,
                pos: hspan,
            });
        }
        let opencl = self.eat_kw("opencl");
        self.expect_kw("struct")?;
        self.expect(Tok::LParen)?;
        let mut fields = Vec::new();
        while *self.peek() != Tok::RParen {
            let fpos = self.pos();
            let mov = self.eat_kw("mov");
            let ty = self.type_expr()?;
            let fname = self.ident()?;
            let fspan = self.span_from(fpos);
            fields.push(Field {
                name: fname,
                ty,
                mov,
                pos: fspan,
            });
            if *self.peek() == Tok::Semi || *self.peek() == Tok::Comma {
                self.bump();
            }
        }
        self.expect(Tok::RParen)?;
        Ok(TypeDecl::Struct {
            name,
            fields,
            opencl,
            pos: hspan,
        })
    }

    // ---- stages and actors ----

    fn stage(&mut self) -> Result<StageDecl, ParseError> {
        let pos = self.pos();
        self.expect_kw("stage")?;
        let name = self.ident()?;
        let hspan = self.span_from(pos); // `stage name` header
        self.expect(Tok::LBrace)?;
        let mut actors = Vec::new();
        let mut boot = Vec::new();
        while *self.peek() != Tok::RBrace {
            if self.peek_kw("boot") {
                self.bump();
                self.expect(Tok::LBrace)?;
                boot = self.stmt_block()?;
            } else {
                actors.push(self.actor()?);
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(StageDecl {
            name,
            actors,
            boot,
            pos: hspan,
        })
    }

    fn actor(&mut self) -> Result<ActorDecl, ParseError> {
        let pos = self.pos();
        let opencl = if self.eat_kw("opencl") {
            let mut attrs = OpenclAttrs::default();
            if *self.peek() == Tok::Lt {
                self.bump();
                loop {
                    let key = self.ident()?;
                    self.expect(Tok::Declare)?;
                    match key.as_str() {
                        "device_index" => match self.bump() {
                            Tok::Int(v) => attrs.device_index = v as usize,
                            other => {
                                return Err(self.err(format!(
                                    "device_index expects an integer, found {other}"
                                )))
                            }
                        },
                        "device_type" => attrs.device_type = Some(self.ident()?),
                        other => {
                            return Err(self.err(format!("unknown opencl attribute `{other}`")))
                        }
                    }
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(Tok::Gt)?;
            }
            Some(attrs)
        } else {
            None
        };
        self.expect_kw("actor")?;
        let name = self.ident()?;
        self.expect_kw("presents")?;
        let interface = self.ident()?;
        let hspan = self.span_from(pos); // header up to the interface name
        self.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        let mut constructor = Vec::new();
        let mut behaviour = Vec::new();
        while *self.peek() != Tok::RBrace {
            if self.peek_kw("constructor") {
                self.bump();
                self.expect(Tok::LParen)?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::LBrace)?;
                constructor = self.stmt_block()?;
            } else if self.peek_kw("behaviour") {
                self.bump();
                self.expect(Tok::LBrace)?;
                behaviour = self.stmt_block()?;
            } else {
                // Field declaration: `name = expr;`
                let fpos = self.pos();
                let fname = self.ident()?;
                self.expect(Tok::Declare).map_err(|_| ParseError {
                    message: "expected a field declaration, `constructor` or `behaviour`"
                        .to_string(),
                    pos: fpos,
                })?;
                let value = self.expr()?;
                self.expect(Tok::Semi)?;
                fields.push((fname, value));
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(ActorDecl {
            name,
            interface,
            opencl,
            fields,
            constructor,
            behaviour,
            pos: hspan,
        })
    }

    // ---- statements ----

    fn stmt_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        while *self.peek() != Tok::RBrace {
            if self.at_eof() {
                return Err(self.err("unterminated block".to_string()));
            }
            out.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(out)
    }

    fn block_after_brace(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(Tok::LBrace)?;
        self.stmt_block()
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.pos();
        // Keyword statements.
        if self.peek_kw("send") {
            self.bump();
            let value = self.expr()?;
            self.expect_kw("on")?;
            let chan = self.expr()?;
            let span = self.span_from(pos);
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Send {
                value,
                chan,
                pos: span,
            });
        }
        if self.peek_kw("receive") {
            self.bump();
            let name = self.ident()?;
            self.expect_kw("from")?;
            let chan = self.expr()?;
            let span = self.span_from(pos);
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Receive {
                name,
                chan,
                pos: span,
            });
        }
        if self.peek_kw("connect") {
            self.bump();
            let from = self.expr()?;
            self.expect_kw("to")?;
            let to = self.expr()?;
            let span = self.span_from(pos);
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Connect { from, to, pos: span });
        }
        if self.peek_kw("for") {
            self.bump();
            let var = self.ident()?;
            self.expect(Tok::Declare)?;
            let from = self.expr()?;
            self.expect(Tok::DotDot)?;
            let to = self.expr()?;
            let span = self.span_from(pos); // `for v = lo .. hi` header
            self.expect_kw("do")?;
            let body = self.block_after_brace()?;
            return Ok(Stmt::For {
                var,
                from,
                to,
                body,
                pos: span,
            });
        }
        if self.peek_kw("while") {
            self.bump();
            let cond = self.expr()?;
            let body = self.block_after_brace()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.peek_kw("if") {
            self.bump();
            let cond = self.expr()?;
            self.expect_kw("then")?;
            let then_blk = self.block_after_brace()?;
            let else_blk = if self.eat_kw("else") {
                self.block_after_brace()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_blk,
                else_blk,
            });
        }
        if self.peek_kw("printString") || self.peek_kw("printInt") || self.peek_kw("printReal") {
            let kind = match self.bump() {
                Tok::Ident(s) if s == "printString" => PrintKind::Str,
                Tok::Ident(s) if s == "printInt" => PrintKind::Int,
                _ => PrintKind::Real,
            };
            self.expect(Tok::LParen)?;
            let value = self.expr()?;
            self.expect(Tok::RParen)?;
            let span = self.span_from(pos);
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Print {
                kind,
                value,
                pos: span,
            });
        }
        if self.peek_kw("barrier") {
            self.bump();
            self.expect(Tok::LParen)?;
            self.expect(Tok::RParen)?;
            let span = self.span_from(pos);
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Barrier { pos: span });
        }
        if self.peek_kw("stop") {
            self.bump();
            let span = self.span_from(pos);
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Stop { pos: span });
        }
        if self.peek_kw("local") {
            // `local x = new real[k];`
            self.bump();
            let name = self.ident()?;
            self.expect(Tok::Declare)?;
            let value = self.expr()?;
            let span = self.span_from(pos);
            self.expect(Tok::Semi)?;
            return Ok(Stmt::DeclareLocal {
                name,
                value,
                pos: span,
            });
        }
        // Declaration or assignment: starts with an identifier path.
        let name = self.ident()?;
        if *self.peek() == Tok::Declare {
            self.bump();
            let value = self.expr()?;
            let span = self.span_from(pos);
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Declare {
                name,
                value,
                pos: span,
            });
        }
        let mut path = Vec::new();
        loop {
            match self.peek() {
                Tok::Dot => {
                    self.bump();
                    path.push(PathSeg::Field(self.ident()?));
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    path.push(PathSeg::Index(idx));
                }
                _ => break,
            }
        }
        self.expect(Tok::Assign)?;
        let value = self.expr()?;
        let span = self.span_from(pos);
        self.expect(Tok::Semi)?;
        Ok(Stmt::Assign {
            name,
            path,
            value,
            pos: span,
        })
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek_kw("or") {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.pos().to(rhs.pos());
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek_kw("and") {
            self.bump();
            let rhs = self.cmp_expr()?;
            let span = lhs.pos().to(rhs.pos());
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq => Some(BinOp::Eq),
            Tok::Ne => Some(BinOp::Ne),
            Tok::Lt => Some(BinOp::Lt),
            Tok::Le => Some(BinOp::Le),
            Tok::Gt => Some(BinOp::Gt),
            Tok::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            let span = lhs.pos().to(rhs.pos());
            Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs), span))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.pos().to(rhs.pos());
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.pos().to(rhs.pos());
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        if *self.peek() == Tok::Minus {
            self.bump();
            let inner = self.unary_expr()?;
            let span = Span::new(pos, inner.pos().end);
            return Ok(Expr::Neg(Box::new(inner), span));
        }
        if self.peek_kw("not") {
            self.bump();
            let inner = self.unary_expr()?;
            let span = Span::new(pos, inner.pos().end);
            return Ok(Expr::Not(Box::new(inner), span));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, self.span_from(pos)))
            }
            Tok::Real(v) => {
                self.bump();
                Ok(Expr::Real(v, self.span_from(pos)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s, self.span_from(pos)))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "true" => return Ok(Expr::Bool(true, self.span_from(pos))),
                    "false" => return Ok(Expr::Bool(false, self.span_from(pos))),
                    "new" => return self.new_expr(pos),
                    _ => {}
                }
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    return Ok(Expr::Call(name, args, self.span_from(pos)));
                }
                let mut path = Vec::new();
                loop {
                    match self.peek() {
                        Tok::Dot => {
                            self.bump();
                            path.push(PathSeg::Field(self.ident()?));
                        }
                        Tok::LBracket => {
                            self.bump();
                            let idx = self.expr()?;
                            self.expect(Tok::RBracket)?;
                            path.push(PathSeg::Index(idx));
                        }
                        _ => break,
                    }
                }
                Ok(Expr::Path(name, path, self.span_from(pos)))
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }

    /// `new <type-ish>` — array, struct, actor, or channel endpoint.
    fn new_expr(&mut self, pos: Pos) -> Result<Expr, ParseError> {
        if self.eat_kw("in") {
            let ty = self.type_expr()?;
            return Ok(Expr::NewChanIn(ty, self.span_from(pos)));
        }
        if self.eat_kw("out") {
            let ty = self.type_expr()?;
            return Ok(Expr::NewChanOut(ty, self.span_from(pos)));
        }
        let name = self.ident()?;
        let elem = match name.as_str() {
            "integer" => Some(TypeExpr::Integer),
            "real" => Some(TypeExpr::Real),
            "boolean" => Some(TypeExpr::Boolean),
            _ => None,
        };
        if let Some(elem) = elem {
            // Array: `new real[n][m]` or `new integer[2] of s`.
            let mut dims = Vec::new();
            while *self.peek() == Tok::LBracket {
                self.bump();
                dims.push(self.expr()?);
                self.expect(Tok::RBracket)?;
            }
            if dims.is_empty() {
                return Err(self.err("`new` of a primitive requires array dimensions".into()));
            }
            let fill = if self.eat_kw("of") {
                Some(Box::new(self.expr()?))
            } else {
                None
            };
            return Ok(Expr::NewArray {
                elem,
                dims,
                fill,
                pos: self.span_from(pos),
            });
        }
        // Struct or actor: `new name(...)`.
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                args.push(self.expr()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        if args.is_empty() {
            // Ambiguous without type info: `new snd()` (actor) vs a
            // zero-field struct. Structs with zero fields are useless;
            // treat as actor instantiation. Semantic analysis re-checks.
            Ok(Expr::NewActor {
                name,
                pos: self.span_from(pos),
            })
        } else {
            Ok(Expr::NewStruct {
                name,
                args,
                pos: self.span_from(pos),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Listing 2 of the paper, verbatim modulo comment style.
    pub const LISTING2: &str = r#"
type Isnd is interface(out integer output)
type Ircv is interface(in integer input)

stage home {

    actor snd presents Isnd {
        value = 1;
        constructor() {}
        behaviour {
            send value on output;
            value := value + 1;
        }
    }

    actor rcv presents Ircv {
        constructor() {}
        behaviour {
            receive data from input;
            printString("\nreceived: ");
            printInt(data);
        }
    }

    boot {
        s = new snd();
        r = new rcv();
        connect s.output to r.input;
    }
}
"#;

    #[test]
    fn parses_listing2() {
        let m = parse(LISTING2).unwrap();
        assert_eq!(m.types.len(), 2);
        assert_eq!(m.stages.len(), 1);
        let stage = &m.stages[0];
        assert_eq!(stage.actors.len(), 2);
        assert_eq!(stage.actors[0].name, "snd");
        assert_eq!(stage.actors[0].fields.len(), 1);
        assert_eq!(stage.boot.len(), 3);
    }

    #[test]
    fn parses_matmul_asset() {
        let src = include_str!("../../apps/src/assets/matmul/ocl.ens");
        let m = parse(src).unwrap();
        let actor = &m.stages[0].actors[0];
        assert_eq!(actor.name, "Multiply");
        let attrs = actor.opencl.as_ref().unwrap();
        assert_eq!(attrs.device_index, 0);
        assert_eq!(attrs.device_type.as_deref(), Some("GPU"));
    }

    #[test]
    fn parses_seq_assets() {
        for src in [
            include_str!("../../apps/src/assets/matmul/seq.ens"),
            include_str!("../../apps/src/assets/mandelbrot/seq.ens"),
            include_str!("../../apps/src/assets/lud/seq.ens"),
            include_str!("../../apps/src/assets/reduction/seq.ens"),
            include_str!("../../apps/src/assets/docrank/seq.ens"),
        ] {
            parse(src).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn parses_ocl_assets() {
        for src in [
            include_str!("../../apps/src/assets/matmul/ocl.ens"),
            include_str!("../../apps/src/assets/mandelbrot/ocl.ens"),
            include_str!("../../apps/src/assets/lud/ocl.ens"),
            include_str!("../../apps/src/assets/reduction/ocl.ens"),
            include_str!("../../apps/src/assets/docrank/ocl.ens"),
        ] {
            parse(src).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn opencl_struct_and_mov_fields() {
        let src = "
            type d is struct ( mov real [][] m; real [] p )
            type s is opencl struct (
                integer [] worksize;
                integer [] groupsize;
                in d input;
                out d output
            )
            stage home { boot {} }
        ";
        let m = parse(src).unwrap();
        match &m.types[0] {
            TypeDecl::Struct { fields, opencl, .. } => {
                assert!(!opencl);
                assert!(fields[0].mov);
                assert!(!fields[1].mov);
                assert_eq!(fields[0].ty, TypeExpr::Array(Box::new(TypeExpr::Real), 2));
            }
            other => panic!("expected struct, got {other:?}"),
        }
        match &m.types[1] {
            TypeDecl::Struct { opencl, fields, .. } => {
                assert!(opencl);
                assert!(matches!(fields[2].ty, TypeExpr::ChanIn(_)));
            }
            other => panic!("expected struct, got {other:?}"),
        }
    }

    #[test]
    fn for_loop_and_nested_indexing() {
        let src = "
            stage home {
                actor a presents I {
                    constructor() {}
                    behaviour {
                        n = 4;
                        m = new real[n][n];
                        for i = 0 .. (n - 1) do {
                            m[i][i] := toReal(i);
                        }
                        stop;
                    }
                }
                boot {}
            }
        ";
        let m = parse(src).unwrap();
        let behaviour = &m.stages[0].actors[0].behaviour;
        assert!(matches!(behaviour[2], Stmt::For { .. }));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("stage home { actor presents }").is_err());
        assert!(parse("type x is struct").is_err());
    }

    #[test]
    fn declare_requires_equals_assign_requires_colon_equals() {
        let ok = "stage home { boot { x = 1; x := 2; } }";
        assert!(parse(ok).is_ok());
    }
}
