//! Supervision-tree properties that hold for *any* budget and failure
//! sequence, plus the budget-exhaustion teardown guarantee.

use ensemble_actors::{
    buffered_channel, ActorCtx, ChannelError, ChildSpec, Control, FnActor, In, IntensityClock,
    RestartBudget, Strategy, Supervisor,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]
    /// The restart-intensity invariant: at every instant, the number of
    /// grants inside the trailing window never exceeds `max_restarts`,
    /// whatever interleaving of restart attempts and quiet-time credits
    /// the supervisor sees. Denials happen exactly when the window is
    /// full.
    #[test]
    fn restart_window_never_exceeds_budget(
        max_restarts in 1u32..6,
        window in 1u64..2_000,
        backoff in 0u64..600,
        ops in proptest::collection::vec(0u64..1_000, 1..120),
    ) {
        let budget = RestartBudget {
            max_restarts,
            window_ns: window as f64,
            backoff_ns: backoff as f64,
        };
        let mut clock = IntensityClock::new(budget);
        let mut last_now = clock.now_ns();
        for op in ops {
            // The op stream encodes the embedder's two moves: even values
            // attempt a restart, odd values credit `op` ns of quiet time.
            let denied = if op % 2 == 0 {
                clock.try_restart().is_none()
            } else {
                clock.advance_ns(op as f64);
                false
            };
            let now = clock.now_ns();
            prop_assert!(now >= last_now, "clock went backwards: {last_now} -> {now}");
            last_now = now;
            let in_window = clock
                .grants_in_window()
                .iter()
                .filter(|&&t| t > now - budget.window_ns)
                .count();
            prop_assert!(
                in_window <= max_restarts as usize,
                "{in_window} grants in a window budgeted for {max_restarts}"
            );
            if denied {
                prop_assert_eq!(
                    in_window,
                    max_restarts as usize,
                    "restart denied while the window had headroom"
                );
            }
        }
    }
}

/// Budget exhaustion must tear the whole tree down *cleanly*: a sibling
/// parked on a receive that will never be satisfied is woken by its
/// teardown hook, `run` returns the escalation error (instead of
/// deadlocking), and a receiver outside the tree observes closure rather
/// than hanging.
#[test]
fn budget_exhaustion_tears_down_without_deadlocked_receives() {
    // One restart only: the crashlooper's second failure exhausts it.
    let budget = RestartBudget {
        max_restarts: 1,
        window_ns: 1e9,
        backoff_ns: 1.0,
    };
    let mut sup = Supervisor::new("t", Strategy::OneForOne, budget);

    // A sibling blocked forever on a channel nothing sends to. Its own
    // out endpoint lets the test observe (from outside the tree) that
    // teardown really reached it.
    let never_in = In::<u32>::with_buffer(1);
    let connector = never_in.connector();
    let (done_out, done_in) = buffered_channel::<&'static str>(1);
    let mut slot = Some(never_in);
    sup.supervise(
        ChildSpec::new("parked", move || {
            let input = slot.take().expect("parked child restarted unexpectedly");
            let done = done_out.clone();
            FnActor(move |_ctx: &mut ActorCtx| match input.receive() {
                Ok(_) => Control::Continue,
                Err(ChannelError::Poisoned) => {
                    let _ = done.send(&"woken");
                    Control::Stop
                }
                Err(_) => Control::Fail,
            })
        })
        .on_stop(move || connector.poison()),
    );
    let attempts = Arc::new(AtomicU32::new(0));
    let attempts2 = Arc::clone(&attempts);
    sup.supervise(ChildSpec::new("crashloop", move || {
        let attempts = Arc::clone(&attempts2);
        FnActor(move |_ctx: &mut ActorCtx| {
            attempts.fetch_add(1, Ordering::AcqRel);
            // Give the parked sibling time to actually block.
            std::thread::sleep(Duration::from_millis(5));
            Control::Fail
        })
    }));

    let err = sup.run().expect_err("exhausted budget must escalate");
    assert_eq!(err.child, "crashloop");
    // Original start + the single budgeted restart.
    assert_eq!(attempts.load(Ordering::Acquire), 2);
    // The parked sibling was woken by the teardown hook...
    assert_eq!(
        done_in.recv_timeout(Duration::from_secs(5)),
        Ok("woken"),
        "parked sibling never woke during escalation"
    );
    // ...and after `run` returns, the tree's endpoints are gone: an
    // outside receiver sees closure, not a hang.
    assert!(matches!(
        done_in.recv_timeout(Duration::from_secs(5)),
        Err(ChannelError::Closed) | Err(ChannelError::NotConnected)
    ));
}
