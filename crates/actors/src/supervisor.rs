//! Supervision trees: restartable actors with failure isolation.
//!
//! The paper's shared-nothing actor model (§4–5) is exactly the structure
//! Erlang-style supervision exploits: an actor owns its state, talks only
//! through channels, and can therefore be killed and restarted without
//! corrupting anything it shares — because it shares nothing. This module
//! adds the missing runtime half of that bargain:
//!
//! * A [`Supervisor`] owns a set of child actors. Each child runs on its
//!   own thread inside a [`std::panic::catch_unwind`] wrapper, so a panic
//!   becomes a *supervised exit event* instead of a poisoned pipeline.
//! * A restart [`Strategy`] decides what a failure means for the other
//!   children: restart just the failed child ([`Strategy::OneForOne`]),
//!   restart it plus every child started after it
//!   ([`Strategy::RestForOne`]), or give up immediately
//!   ([`Strategy::Escalate`]).
//! * A [`RestartBudget`] bounds restart *intensity* on a deterministic
//!   virtual clock ([`IntensityClock`]): each restart charges a backoff to
//!   the clock, and a restart is granted only while fewer than
//!   `max_restarts` grants fall inside the trailing `window_ns`. Exhausting
//!   the budget **escalates**: the supervisor stops every child (invoking
//!   their teardown hooks, which typically poison channels so blocked
//!   peers wake) and reports the failure upward.
//!
//! Every supervision decision is visible in a trace:
//! [`trace::SpanKind::ActorExit`] when an abnormal exit is observed,
//! [`trace::SpanKind::Restart`] when a child is restarted, and
//! [`trace::SpanKind::Escalated`] when the supervisor tears down instead.
//!
//! Checkpointing is the *child's* job — see `ensemble_ocl`'s
//! `CheckpointSlot` and the VM runtime's kernel-actor checkpoints — the
//! supervisor only guarantees the child gets a fresh incarnation to resume
//! in. A child exits abnormally by panicking or by returning
//! [`Control::Fail`] from its behaviour; [`Control::Stop`] is a normal
//! exit and retires the child for good.

use crate::actor::{Actor, ActorCtx, Control};
use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use trace::{SpanKind, TraceEvent, TraceSink};

/// Best-effort extraction of a human-readable message from a panic
/// payload: `&str` and `String` payloads (what `panic!` produces) are
/// returned verbatim; anything else gets a stable placeholder.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// What a child failure means for its siblings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Restart only the failed child (the default; matches Erlang's
    /// `one_for_one`). Siblings keep running undisturbed.
    #[default]
    OneForOne,
    /// Restart the failed child **and** every still-running child started
    /// after it (Erlang's `rest_for_one`): later children are assumed to
    /// depend on the failed one's output. Already-retired children are
    /// not resurrected.
    RestForOne,
    /// Never restart: any abnormal exit tears the whole tree down and is
    /// reported upward.
    Escalate,
}

/// Restart-intensity limits, on the supervisor's virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestartBudget {
    /// Maximum restarts granted inside any trailing `window_ns` interval.
    pub max_restarts: u32,
    /// Width of the sliding intensity window, in virtual nanoseconds.
    pub window_ns: f64,
    /// Virtual time charged to the clock per restart (the supervisor's
    /// deterministic analogue of an exponential-backoff sleep).
    pub backoff_ns: f64,
}

impl Default for RestartBudget {
    /// Eight restarts per 1 ms window, 10 µs apart: generous enough for
    /// sparse injected kills, tight enough that a crash loop escalates on
    /// its ninth consecutive failure.
    fn default() -> RestartBudget {
        RestartBudget {
            max_restarts: 8,
            window_ns: 1e6,
            backoff_ns: 10_000.0,
        }
    }
}

/// The supervisor's deterministic virtual clock plus the sliding-window
/// restart ledger enforcing a [`RestartBudget`].
///
/// The clock advances only through [`IntensityClock::try_restart`] (each
/// grant charges `backoff_ns`) and [`IntensityClock::advance_ns`] (quiet
/// periods credited by the embedder), so identical failure sequences
/// produce identical grant timestamps on every machine.
#[derive(Debug, Clone)]
pub struct IntensityClock {
    budget: RestartBudget,
    clock_ns: f64,
    grants: Vec<f64>,
}

impl IntensityClock {
    /// A clock at virtual zero with no grants recorded.
    pub fn new(budget: RestartBudget) -> IntensityClock {
        IntensityClock {
            budget,
            clock_ns: 0.0,
            grants: Vec::new(),
        }
    }

    /// The budget this clock enforces.
    pub fn budget(&self) -> &RestartBudget {
        &self.budget
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        self.clock_ns
    }

    /// Credit quiet virtual time (e.g. a stretch of successful work),
    /// letting old grants age out of the window.
    pub fn advance_ns(&mut self, ns: f64) {
        if ns > 0.0 {
            self.clock_ns += ns;
        }
    }

    /// Charge one restart's backoff to the clock, then grant the restart
    /// iff fewer than `max_restarts` grants (including this one) would
    /// fall inside the trailing window. Returns the grant's virtual
    /// timestamp, or `None` when the budget is exhausted — the caller
    /// must then escalate.
    pub fn try_restart(&mut self) -> Option<f64> {
        self.clock_ns += self.budget.backoff_ns;
        let cutoff = self.clock_ns - self.budget.window_ns;
        self.grants.retain(|&t| t > cutoff);
        if self.grants.len() as u32 >= self.budget.max_restarts {
            return None;
        }
        self.grants.push(self.clock_ns);
        Some(self.clock_ns)
    }

    /// Grant timestamps still inside the trailing window (most recent
    /// last). Exposed so tests can check the intensity invariant.
    pub fn grants_in_window(&self) -> &[f64] {
        &self.grants
    }
}

/// Why a supervised child's thread ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExitReason {
    /// The behaviour returned [`Control::Stop`] (or the supervisor asked
    /// the child to stop). The child is retired, not restarted.
    Normal,
    /// The behaviour returned [`Control::Fail`] — an abrupt abnormal
    /// exit without unwinding.
    Failed,
    /// The child panicked; carries the panic payload's message.
    Panicked(String),
}

impl ExitReason {
    /// Whether this exit should trigger the restart strategy.
    pub fn is_abnormal(&self) -> bool {
        !matches!(self, ExitReason::Normal)
    }

    fn describe(&self) -> String {
        match self {
            ExitReason::Normal => "normal exit".to_string(),
            ExitReason::Failed => "abrupt failure (Control::Fail)".to_string(),
            ExitReason::Panicked(msg) => format!("panic: {msg}"),
        }
    }
}

/// The terminal failure a supervisor reports after escalating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorError {
    /// Name of the child whose failure exhausted the budget (or hit the
    /// escalate-only strategy).
    pub child: String,
    /// Human-readable description of that final failure.
    pub reason: String,
}

impl std::fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "supervisor escalated: child `{}`: {}", self.child, self.reason)
    }
}

impl std::error::Error for SupervisorError {}

/// Result of a supervision run in which every child eventually exited
/// normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorReport {
    /// `(child name, restarts granted to it)` in supervision order.
    pub children: Vec<(String, u32)>,
}

impl SupervisorReport {
    /// Total restarts granted across all children.
    pub fn total_restarts(&self) -> u32 {
        self.children.iter().map(|(_, r)| r).sum()
    }
}

type Factory = Box<dyn FnMut() -> Box<dyn Actor> + Send>;
type Hook = Box<dyn Fn() + Send>;

/// Description of one supervised child: how to (re)build it, plus
/// optional teardown/revive hooks around its channels.
pub struct ChildSpec {
    name: String,
    factory: Factory,
    on_stop: Option<Hook>,
    on_restart: Option<Hook>,
}

impl ChildSpec {
    /// A child built by `factory` — called once at startup and once per
    /// restart, so captured channel endpoints (behind `Arc`s or
    /// connectors) survive across incarnations.
    pub fn new<A, F>(name: impl Into<String>, mut factory: F) -> ChildSpec
    where
        A: Actor,
        F: FnMut() -> A + Send + 'static,
    {
        ChildSpec {
            name: name.into(),
            factory: Box::new(move || Box::new(factory()) as Box<dyn Actor>),
            on_stop: None,
            on_restart: None,
        }
    }

    /// Hook invoked when the supervisor *forces* this child to stop
    /// (rest-for-one sibling stop, or escalation teardown). Typically
    /// poisons the child's input channels so a blocked `receive` wakes
    /// with [`crate::ChannelError::Poisoned`] instead of deadlocking.
    pub fn on_stop(mut self, hook: impl Fn() + Send + 'static) -> ChildSpec {
        self.on_stop = Some(Box::new(hook));
        self
    }

    /// Hook invoked just before a stopped child is restarted. Typically
    /// clears the poison that `on_stop` set ([`crate::In::clear_poison`])
    /// so the fresh incarnation can receive again.
    pub fn on_restart(mut self, hook: impl Fn() + Send + 'static) -> ChildSpec {
        self.on_restart = Some(Box::new(hook));
        self
    }
}

impl std::fmt::Debug for ChildSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChildSpec").field("name", &self.name).finish()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChildState {
    /// Not yet started (before [`Supervisor::run`]).
    Idle,
    /// Thread running.
    Running,
    /// Asked to stop by the strategy; will restart when its exit arrives.
    Doomed,
    /// Asked to stop by escalation; will *not* restart.
    Draining,
    /// Exited for good.
    Retired,
}

struct Child {
    name: String,
    /// `None` once retired — dropping the factory drops the channel
    /// endpoints it captured, which is what lets downstream receivers
    /// observe closure after the child's final exit.
    spec: Option<ChildSpec>,
    stop: Arc<AtomicBool>,
    state: ChildState,
    restarts: u32,
    handle: Option<JoinHandle<()>>,
}

struct ExitEvent {
    idx: usize,
    reason: ExitReason,
}

/// A supervisor: owns child actors, restarts them within a budget, and
/// escalates when the budget runs out. See the module docs for the model.
///
/// # Example
///
/// ```
/// use ensemble_actors::supervisor::{ChildSpec, RestartBudget, Strategy, Supervisor};
/// use ensemble_actors::{buffered_channel, ActorCtx, Control, FnActor};
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
///
/// let (out, input) = buffered_channel::<u32>(8);
/// let attempts = Arc::new(AtomicU32::new(0));
/// let a = Arc::clone(&attempts);
/// let mut sup = Supervisor::new("demo", Strategy::OneForOne, RestartBudget::default());
/// sup.supervise(ChildSpec::new("worker", move || {
///     let out = out.clone();
///     let a = Arc::clone(&a);
///     FnActor(move |_ctx: &mut ActorCtx| {
///         // First incarnation dies; the restarted one succeeds.
///         if a.fetch_add(1, Ordering::SeqCst) == 0 {
///             panic!("first attempt fails");
///         }
///         out.send(&42).unwrap();
///         Control::Stop
///     })
/// }));
/// let report = sup.run().unwrap();
/// assert_eq!(report.total_restarts(), 1);
/// assert_eq!(input.receive().unwrap(), 42);
/// ```
pub struct Supervisor {
    name: String,
    strategy: Strategy,
    clock: IntensityClock,
    trace: TraceSink,
    children: Vec<Child>,
    tx: mpsc::Sender<ExitEvent>,
    rx: mpsc::Receiver<ExitEvent>,
}

impl Supervisor {
    /// A supervisor with no children yet.
    pub fn new(name: impl Into<String>, strategy: Strategy, budget: RestartBudget) -> Supervisor {
        let (tx, rx) = mpsc::channel();
        Supervisor {
            name: name.into(),
            strategy,
            clock: IntensityClock::new(budget),
            trace: TraceSink::disabled(),
            children: Vec::new(),
            tx,
            rx,
        }
    }

    /// Attach a trace sink: exits, restarts, and escalations are then
    /// recorded as instants on the `sup/<name>` track at the supervisor's
    /// virtual clock.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Register a child. Children start (in registration order) when
    /// [`Supervisor::run`] is called.
    pub fn supervise(&mut self, spec: ChildSpec) {
        self.children.push(Child {
            name: spec.name.clone(),
            spec: Some(spec),
            stop: Arc::new(AtomicBool::new(false)),
            state: ChildState::Idle,
            restarts: 0,
            handle: None,
        });
    }

    fn track(&self) -> String {
        format!("sup/{}", self.name)
    }

    fn instant(&self, kind: SpanKind, child: &str, args: &[(&str, String)]) {
        if self.trace.is_enabled() {
            let mut ev = TraceEvent::instant(kind, child, &self.track(), self.clock.now_ns());
            for (k, v) in args {
                ev = ev.with_arg(k, v);
            }
            self.trace.record(ev);
        }
    }

    /// Spawn (or respawn) child `idx`'s thread.
    fn start_child(&mut self, idx: usize) {
        let child = &mut self.children[idx];
        let spec = child.spec.as_mut().expect("cannot start a retired child");
        child.stop.store(false, Ordering::Release);
        let mut actor = (spec.factory)();
        let stop = Arc::clone(&child.stop);
        let tx = self.tx.clone();
        let ctx_name = child.name.clone();
        let stage_name = self.name.clone();
        let handle = std::thread::Builder::new()
            .name(format!("{}/{}", self.name, child.name))
            .spawn(move || {
                let result = std::panic::catch_unwind(AssertUnwindSafe(move || {
                    let mut ctx = ActorCtx::new(ctx_name, stage_name);
                    actor.constructor(&mut ctx);
                    loop {
                        if stop.load(Ordering::Acquire) {
                            return ExitReason::Normal;
                        }
                        let control = actor.behaviour(&mut ctx);
                        ctx.bump();
                        match control {
                            Control::Continue => {}
                            Control::Stop => return ExitReason::Normal,
                            Control::Fail => return ExitReason::Failed,
                        }
                    }
                }));
                let reason = match result {
                    Ok(r) => r,
                    Err(payload) => ExitReason::Panicked(panic_message(payload.as_ref())),
                };
                // The supervisor keeps its own receiver alive for the
                // whole run, so this send only fails after `run` returned
                // (e.g. a child outliving an escalation drain) — nothing
                // left to notify then.
                let _ = tx.send(ExitEvent { idx, reason });
            })
            .expect("failed to spawn supervised actor thread");
        child.state = ChildState::Running;
        child.handle = Some(handle);
    }

    /// Force-stop a running child: raise its stop flag and run its
    /// `on_stop` hook so a blocked receive wakes up.
    fn force_stop(&mut self, idx: usize, next: ChildState) {
        let child = &mut self.children[idx];
        child.stop.store(true, Ordering::Release);
        if let Some(hook) = child.spec.as_ref().and_then(|s| s.on_stop.as_ref()) {
            hook();
        }
        child.state = next;
    }

    /// Retire a child for good: drop its spec (and with it the channel
    /// endpoints the factory captured, so downstream receivers observe
    /// closure once the thread's own clones are gone too).
    fn retire(&mut self, idx: usize) {
        let child = &mut self.children[idx];
        child.state = ChildState::Retired;
        child.spec = None;
    }

    /// Restart a child that has already exited: run its `on_restart`
    /// hook (clearing any teardown poison), then respawn.
    fn restart_child(&mut self, idx: usize, charged_ts: Option<f64>) {
        {
            let child = &mut self.children[idx];
            child.restarts += 1;
            if let Some(hook) = child.spec.as_ref().and_then(|s| s.on_restart.as_ref()) {
                hook();
            }
        }
        let (name, restarts) = {
            let c = &self.children[idx];
            (c.name.clone(), c.restarts)
        };
        self.instant(
            SpanKind::Restart,
            &name,
            &[
                ("restarts", restarts.to_string()),
                ("charged", charged_ts.is_some().to_string()),
            ],
        );
        self.start_child(idx);
    }

    /// Escalation teardown: stop every child that is still running (or
    /// doomed-for-restart), demoting them to draining.
    fn escalate(&mut self, failed: &str, reason: &ExitReason) -> SupervisorError {
        self.instant(
            SpanKind::Escalated,
            failed,
            &[("reason", reason.describe())],
        );
        for idx in 0..self.children.len() {
            if matches!(
                self.children[idx].state,
                ChildState::Running | ChildState::Doomed
            ) {
                self.force_stop(idx, ChildState::Draining);
            }
        }
        SupervisorError {
            child: failed.to_string(),
            reason: reason.describe(),
        }
    }

    /// Handle an abnormal exit of `idx` per the strategy. Returns the
    /// escalation error if the budget ran out (or the strategy never
    /// restarts).
    fn on_failure(&mut self, idx: usize, reason: &ExitReason) -> Option<SupervisorError> {
        let name = self.children[idx].name.clone();
        self.instant(
            SpanKind::ActorExit,
            &name,
            &[("reason", reason.describe())],
        );
        if self.strategy == Strategy::Escalate {
            self.retire(idx);
            return Some(self.escalate(&name, reason));
        }
        match self.clock.try_restart() {
            Some(ts) => {
                if self.strategy == Strategy::RestForOne {
                    // Later still-running siblings depend on this child's
                    // output: stop them now; each restarts (uncharged)
                    // when its exit event arrives.
                    for later in idx + 1..self.children.len() {
                        if self.children[later].state == ChildState::Running {
                            self.force_stop(later, ChildState::Doomed);
                        }
                    }
                }
                self.restart_child(idx, Some(ts));
                None
            }
            None => {
                self.retire(idx);
                Some(self.escalate(&name, reason))
            }
        }
    }

    /// Start every child, then supervise until all children have retired.
    ///
    /// Returns the per-child restart report, or — if a failure escalated —
    /// the terminal [`SupervisorError`] *after* every remaining child has
    /// been stopped and drained (no thread is left running or blocked).
    pub fn run(mut self) -> Result<SupervisorReport, SupervisorError> {
        for idx in 0..self.children.len() {
            self.start_child(idx);
        }
        let mut failure: Option<SupervisorError> = None;
        while self
            .children
            .iter()
            .any(|c| c.state != ChildState::Retired && c.state != ChildState::Idle)
        {
            let ev = self
                .rx
                .recv()
                .expect("supervisor keeps a sender; recv cannot fail");
            // Reap the incarnation that just announced its exit.
            if let Some(h) = self.children[ev.idx].handle.take() {
                let _ = h.join();
            }
            match self.children[ev.idx].state {
                ChildState::Draining => self.retire(ev.idx),
                ChildState::Doomed => {
                    // A sibling stopped by rest-for-one: restart it
                    // regardless of how the stop surfaced (its behaviour
                    // may have seen a poisoned channel and failed). Not
                    // charged to the budget — the *failing* child paid.
                    self.restart_child(ev.idx, None);
                }
                ChildState::Running => {
                    if ev.reason.is_abnormal() && failure.is_none() {
                        failure = self.on_failure(ev.idx, &ev.reason);
                    } else {
                        self.retire(ev.idx);
                    }
                }
                ChildState::Idle | ChildState::Retired => {
                    unreachable!("exit event from a child that is not running")
                }
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(SupervisorReport {
                children: self
                    .children
                    .iter()
                    .map(|c| (c.name.clone(), c.restarts))
                    .collect(),
            }),
        }
    }
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("name", &self.name)
            .field("strategy", &self.strategy)
            .field("children", &self.children.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{buffered_channel, ChannelError};
    use crate::FnActor;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn panic_message_extracts_both_string_kinds() {
        assert_eq!(panic_message(&"static str"), "static str");
        assert_eq!(panic_message(&String::from("owned")), "owned");
        assert_eq!(panic_message(&42u32), "non-string panic payload");
    }

    #[test]
    fn intensity_window_slides() {
        let mut c = IntensityClock::new(RestartBudget {
            max_restarts: 2,
            window_ns: 100.0,
            backoff_ns: 30.0,
        });
        assert_eq!(c.try_restart(), Some(30.0));
        assert_eq!(c.try_restart(), Some(60.0));
        // Third restart inside the 100 ns window: denied.
        assert_eq!(c.try_restart(), None);
        // Even a denied attempt charges backoff (clock now 90); credit a
        // quiet period so the first grant ages out.
        c.advance_ns(500.0);
        assert!(c.try_restart().is_some());
    }

    #[test]
    fn one_for_one_restarts_only_the_failed_child() {
        let (ok_out, ok_in) = buffered_channel::<&'static str>(8);
        let ok_out2 = ok_out.clone();
        let attempts = Arc::new(AtomicU32::new(0));
        let a = Arc::clone(&attempts);
        let mut sup = Supervisor::new("t", Strategy::OneForOne, RestartBudget::default());
        sup.supervise(ChildSpec::new("flaky", move || {
            let a = Arc::clone(&a);
            let out = ok_out.clone();
            FnActor(move |_ctx: &mut ActorCtx| {
                if a.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("flaky failure");
                }
                out.send(&"flaky-done").unwrap();
                Control::Stop
            })
        }));
        sup.supervise(ChildSpec::new("steady", move || {
            let out = ok_out2.clone();
            let mut sent = false;
            FnActor(move |_ctx: &mut ActorCtx| {
                if !sent {
                    sent = true;
                    out.send(&"steady-done").unwrap();
                }
                Control::Stop
            })
        }));
        let report = sup.run().unwrap();
        assert_eq!(report.children[0], ("flaky".to_string(), 2));
        // The steady sibling was never restarted.
        assert_eq!(report.children[1], ("steady".to_string(), 0));
        let mut got = vec![ok_in.receive().unwrap(), ok_in.receive().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec!["flaky-done", "steady-done"]);
    }

    #[test]
    fn control_fail_is_a_supervised_failure() {
        let fails = Arc::new(AtomicU32::new(0));
        let f = Arc::clone(&fails);
        let mut sup = Supervisor::new("t", Strategy::OneForOne, RestartBudget::default());
        sup.supervise(ChildSpec::new("abrupt", move || {
            let f = Arc::clone(&f);
            FnActor(move |_ctx: &mut ActorCtx| {
                if f.fetch_add(1, Ordering::SeqCst) == 0 {
                    Control::Fail
                } else {
                    Control::Stop
                }
            })
        }));
        let report = sup.run().unwrap();
        assert_eq!(report.total_restarts(), 1);
    }

    #[test]
    fn budget_exhaustion_escalates_with_the_last_reason() {
        let mut sup = Supervisor::new(
            "t",
            Strategy::OneForOne,
            RestartBudget {
                max_restarts: 3,
                window_ns: 1e9,
                backoff_ns: 10.0,
            },
        );
        sup.supervise(ChildSpec::new("crashloop", || {
            FnActor(|_ctx: &mut ActorCtx| panic!("always down"))
        }));
        let err = sup.run().unwrap_err();
        assert_eq!(err.child, "crashloop");
        assert!(err.reason.contains("always down"), "{}", err.reason);
    }

    #[test]
    fn escalation_wakes_blocked_siblings_via_on_stop() {
        // A sibling parked on a receive that will never be satisfied must
        // be woken by its on_stop hook during escalation — the "no
        // deadlocked receive" guarantee. `run` returning at all (instead
        // of hanging on the parked child) is the assertion.
        let nothing_in = crate::In::<u32>::with_buffer(1);
        let connector = nothing_in.connector();
        let mut slot = Some(nothing_in);
        let mut sup = Supervisor::new("t", Strategy::Escalate, RestartBudget::default());
        sup.supervise(
            ChildSpec::new("parked", move || {
                let input = slot.take().expect("escalate never restarts");
                FnActor(move |_ctx: &mut ActorCtx| match input.receive() {
                    Ok(_) => Control::Continue,
                    Err(ChannelError::Poisoned) => Control::Stop,
                    Err(_) => Control::Fail,
                })
            })
            .on_stop(move || connector.poison()),
        );
        sup.supervise(ChildSpec::new("failer", || {
            FnActor(|_ctx: &mut ActorCtx| {
                // Give `parked` time to actually block on its receive.
                std::thread::sleep(std::time::Duration::from_millis(10));
                panic!("down")
            })
        }));
        let err = sup.run().unwrap_err();
        assert_eq!(err.child, "failer");
        assert!(err.reason.contains("down"), "{}", err.reason);
    }

    #[test]
    fn rest_for_one_restarts_later_siblings() {
        let starts_b = Arc::new(AtomicU32::new(0));
        let fail_a = Arc::new(AtomicU32::new(0));
        let (b, a) = (Arc::clone(&starts_b), Arc::clone(&fail_a));
        let mut sup = Supervisor::new("t", Strategy::RestForOne, RestartBudget::default());
        sup.supervise(ChildSpec::new("a", move || {
            let a = Arc::clone(&a);
            FnActor(move |_ctx: &mut ActorCtx| {
                if a.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("a dies once");
                }
                Control::Stop
            })
        }));
        // First incarnation of `b` spins until the supervisor's doom flag
        // stops it (so it is guaranteed running when `a` fails); the
        // restarted incarnation stops on its own.
        sup.supervise(ChildSpec::new("b", move || {
            let incarnation = b.fetch_add(1, Ordering::SeqCst) + 1;
            FnActor(move |_ctx: &mut ActorCtx| {
                if incarnation >= 2 {
                    Control::Stop
                } else {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    Control::Continue
                }
            })
        }));
        let report = sup.run().unwrap();
        // `a` restarted once (charged to the budget); `b` was doomed and
        // restarted as a later sibling (uncharged).
        assert_eq!(report.children[0], ("a".to_string(), 1));
        assert_eq!(report.children[1].1, 1);
        assert_eq!(starts_b.load(Ordering::SeqCst), 2);
    }
}
