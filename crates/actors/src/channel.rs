//! Typed, unidirectional channels with Ensemble semantics (§4).
//!
//! * Channels connect an [`Out`] endpoint to one or more [`In`] endpoints.
//! * An `In` may carry an optional buffer; with no buffer (or a full one)
//!   communication is synchronous and blocking — the sender rendezvouses
//!   with the receiver, exactly as the paper describes.
//! * `send` **duplicates** the value (shared-nothing semantics: sender and
//!   receiver each own an independent copy). `send_moved` transfers
//!   ownership without a copy — this is Ensemble's `mov`. The paper's
//!   compile-time inter-procedural check that a moved value is not touched
//!   again is exactly Rust's move checker, so it needs no runtime machinery
//!   here.
//! * Endpoints are first-class values that can themselves be sent through
//!   channels — the dynamic-channel pattern the OpenCL settings protocol
//!   relies on (Listing 3 of the paper).
//!
//! Topologies: `connect` may be called many times on one `Out` (1-n;
//! deliveries rotate round-robin across receivers) and many `Out`s may
//! connect to one `In` (n-1). `broadcast` additionally clones to *every*
//! connected receiver.
//!
//! Disconnection: a receiver learns that a channel is closed when every
//! connection made to it has been dropped (and the buffer is drained).
//! Connections are tracked explicitly — the `In` endpoint itself holds a
//! sender handle for future `connect` calls, so raw crossbeam disconnect
//! detection would never fire; instead each connection carries a guard and
//! blocked receives poll at a coarse interval while also waiting on the
//! underlying channel.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use trace::{SpanKind, TraceEvent, TraceSink};

/// Error returned when a channel operation cannot complete because the
/// other side is gone, poisoned, or too slow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelError {
    /// Every connected receiver has been dropped (send side).
    NoReceivers,
    /// Every connection to this receiver has been dropped and the buffer is
    /// drained (receive side).
    Closed,
    /// The `Out` endpoint has no connections yet.
    NotConnected,
    /// The peer poisoned the channel because it failed: the pipeline is
    /// being torn down. Distinguishable from [`ChannelError::Closed`]
    /// (orderly completion) so supervisors can report the difference.
    Poisoned,
    /// [`In::recv_timeout`]'s deadline passed with no message.
    TimedOut,
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::NoReceivers => write!(f, "all receivers disconnected"),
            ChannelError::Closed => write!(f, "channel closed"),
            ChannelError::NotConnected => write!(f, "out endpoint is not connected"),
            ChannelError::Poisoned => write!(f, "channel poisoned by a failed peer"),
            ChannelError::TimedOut => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Receiver-side connection bookkeeping shared with every connection guard.
#[derive(Debug, Default)]
struct InState {
    /// Live connections into this endpoint.
    connected: AtomicUsize,
    /// Whether any connection was ever made (an unconnected endpoint blocks
    /// rather than reporting `Closed` — it may be connected later).
    ever_connected: AtomicBool,
    /// Set by a failed peer: receives fail fast (after draining buffered
    /// messages) and blocked senders into this endpoint give up, instead
    /// of both sides deadlocking on a rendezvous that will never happen.
    poisoned: AtomicBool,
}

/// One live `Out` → `In` connection. Dropping the guard (when the owning
/// `Out` network drops) decrements the receiver's connection count.
#[derive(Debug)]
struct Connection<T> {
    sender: Sender<T>,
    state: Arc<InState>,
}

impl<T> Drop for Connection<T> {
    fn drop(&mut self) {
        self.state.connected.fetch_sub(1, Ordering::AcqRel);
    }
}

/// How long a blocked receive waits on the underlying channel before
/// re-checking whether every connection has dropped.
const DISCONNECT_POLL: Duration = Duration::from_millis(2);

/// The receiving endpoint of a typed channel.
///
/// Single-consumer: `In` is deliberately not `Clone`. It is `Send`, so it
/// can travel through other channels (dynamic channel composition).
#[derive(Debug)]
pub struct In<T> {
    sender: Sender<T>,
    receiver: Receiver<T>,
    state: Arc<InState>,
    capacity: usize,
    trace: TraceSink,
    label: String,
}

impl<T> In<T> {
    /// Create an unbuffered (rendezvous) input endpoint: `new in T`.
    pub fn new() -> In<T> {
        In::with_buffer(0)
    }

    /// Create an input endpoint with an asynchrony buffer of `capacity`
    /// messages. Sends block once the buffer fills (the paper's "reverts to
    /// synchronous" rule).
    pub fn with_buffer(capacity: usize) -> In<T> {
        let (sender, receiver) = bounded(capacity);
        In {
            sender,
            receiver,
            state: Arc::new(InState::default()),
            capacity,
            trace: TraceSink::disabled(),
            label: String::new(),
        }
    }

    /// Attach a trace sink: every blocked [`In::receive`] on this endpoint
    /// then emits a wall-clock [`SpanKind::ChannelWait`] span on the
    /// `label` track, making actor blocking time visible on a timeline.
    pub fn set_trace(&mut self, sink: TraceSink, label: impl Into<String>) {
        self.trace = sink;
        self.label = label.into();
    }

    /// Buffer capacity (0 = rendezvous).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live connections into this endpoint.
    pub fn connections(&self) -> usize {
        self.state.connected.load(Ordering::Acquire)
    }

    /// Poison this endpoint: subsequent receives drain any buffered
    /// messages and then fail with [`ChannelError::Poisoned`]; blocked
    /// senders into it give up instead of waiting for a rendezvous that
    /// will never happen. Used by a failed stage to tear down its
    /// pipeline.
    pub fn poison(&self) {
        self.state.poisoned.store(true, Ordering::Release);
    }

    /// Whether this endpoint has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.state.poisoned.load(Ordering::Acquire)
    }

    /// Clear a previous poison so the endpoint can receive again.
    ///
    /// Poison is otherwise latching — needed because teardown is a
    /// one-way street for an *unsupervised* pipeline. A supervisor that
    /// poisoned a doomed sibling's input (its `on_stop` hook) calls this
    /// from the matching `on_restart` hook before the fresh incarnation
    /// starts receiving.
    pub fn clear_poison(&self) {
        self.state.poisoned.store(false, Ordering::Release);
    }

    /// Block until a value arrives: `receive data from input`.
    ///
    /// Returns [`ChannelError::Closed`] once every connection has dropped
    /// and the buffer is drained, and [`ChannelError::Poisoned`] once the
    /// endpoint is poisoned and drained. An endpoint that was *never*
    /// connected blocks (it may be connected dynamically at any time).
    pub fn receive(&self) -> Result<T, ChannelError> {
        self.recv_deadline(None)
    }

    /// Like [`In::receive`], but give up with [`ChannelError::TimedOut`]
    /// if no message arrives within `timeout`. The timeout is wall-clock
    /// (it guards against a *hung* peer, which is a wall-clock phenomenon,
    /// not a simulated-cost one).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, ChannelError> {
        self.recv_deadline(Some(Instant::now() + timeout))
    }

    /// Like [`In::receive`], but give up with [`ChannelError::TimedOut`]
    /// once the absolute `deadline` passes (`None` blocks indefinitely,
    /// exactly like [`In::receive`]).
    ///
    /// This is the serving-path primitive: a session's per-request
    /// deadline is one absolute instant, and every blocking receive on
    /// the session's path checks against it — a timeout on any of them
    /// sheds the request instead of wedging the shared device pool.
    pub fn recv_deadline(&self, deadline: Option<Instant>) -> Result<T, ChannelError> {
        let wait_start = if self.trace.is_enabled() {
            Some(self.trace.wall_ns())
        } else {
            None
        };
        let result = loop {
            // Deliver in-flight messages even after poisoning — only fail
            // once the buffer is drained, so data already produced by an
            // upstream stage is not silently dropped during teardown.
            if self.state.poisoned.load(Ordering::Acquire) {
                break match self.receiver.try_recv() {
                    Ok(v) => Ok(v),
                    Err(_) => Err(ChannelError::Poisoned),
                };
            }
            match self.receiver.recv_timeout(DISCONNECT_POLL) {
                Ok(v) => break Ok(v),
                Err(RecvTimeoutError::Disconnected) => break Err(ChannelError::Closed),
                Err(RecvTimeoutError::Timeout) => {
                    if self.state.ever_connected.load(Ordering::Acquire)
                        && self.state.connected.load(Ordering::Acquire) == 0
                    {
                        // Final drain: a value may have landed between the
                        // timeout and the check.
                        break match self.receiver.try_recv() {
                            Ok(v) => Ok(v),
                            Err(_) => Err(ChannelError::Closed),
                        };
                    }
                    if let Some(d) = deadline {
                        if Instant::now() >= d {
                            break match self.receiver.try_recv() {
                                Ok(v) => Ok(v),
                                Err(_) => Err(ChannelError::TimedOut),
                            };
                        }
                    }
                }
            }
        };
        if let Some(t0) = wait_start {
            self.trace.record(
                TraceEvent::span(
                    SpanKind::ChannelWait,
                    "recv_wait",
                    &self.label,
                    t0,
                    self.trace.wall_ns() - t0,
                )
                .with_arg("clock", "wall"),
            );
        }
        result
    }

    /// Non-blocking receive; `Ok(None)` when no message is waiting.
    pub fn try_receive(&self) -> Result<Option<T>, ChannelError> {
        match self.receiver.try_recv() {
            Ok(v) => Ok(Some(v)),
            Err(crossbeam::channel::TryRecvError::Empty) => {
                if self.state.ever_connected.load(Ordering::Acquire)
                    && self.state.connected.load(Ordering::Acquire) == 0
                {
                    // Final drain: a message may have landed between the
                    // empty poll and the connection-count check (same
                    // window `receive` guards against).
                    match self.receiver.try_recv() {
                        Ok(v) => Ok(Some(v)),
                        Err(_) => Err(ChannelError::Closed),
                    }
                } else {
                    Ok(None)
                }
            }
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(ChannelError::Closed),
        }
    }

    fn make_connection(&self) -> Connection<T> {
        self.state.connected.fetch_add(1, Ordering::AcqRel);
        self.state.ever_connected.store(true, Ordering::Release);
        Connection {
            sender: self.sender.clone(),
            state: Arc::clone(&self.state),
        }
    }

    /// A connector for this endpoint: a cheap token that lets `Out`s be
    /// connected to this `In` *after* the `In` itself has moved into an
    /// actor. This is what makes Ensemble's "reconnect the configuration
    /// channel to an appropriate kernel actor" (§6.1.1) expressible: hold
    /// the connector, move the endpoint.
    pub fn connector(&self) -> InConnector<T> {
        InConnector {
            sender: self.sender.clone(),
            state: Arc::clone(&self.state),
        }
    }
}

/// A token referring to some `In` endpoint, usable to connect `Out`s to it
/// even after the endpoint moved into its owning actor.
#[derive(Debug, Clone)]
pub struct InConnector<T> {
    sender: Sender<T>,
    state: Arc<InState>,
}

impl<T> InConnector<T> {
    /// Poison the referred-to endpoint (see [`In::poison`]) — usable even
    /// after the endpoint itself moved into its owning actor.
    pub fn poison(&self) {
        self.state.poisoned.store(true, Ordering::Release);
    }

    /// Clear a previous poison (see [`In::clear_poison`]) — the
    /// supervisor-side revive used when a stopped child is restarted.
    pub fn clear_poison(&self) {
        self.state.poisoned.store(false, Ordering::Release);
    }
}

impl<T> Default for In<T> {
    fn default() -> Self {
        In::new()
    }
}

/// The sending endpoint of a typed channel.
///
/// Cloning an `Out` yields another sender into the same connection set
/// (n-1 composition); connections live as long as any clone does.
#[derive(Debug, Clone)]
pub struct Out<T> {
    targets: Arc<Mutex<Targets<T>>>,
    trace: Arc<Mutex<Option<(TraceSink, String)>>>,
}

#[derive(Debug)]
struct Targets<T> {
    connections: Vec<Arc<Connection<T>>>,
    next: usize,
}

impl<T> Out<T> {
    /// Create an unconnected output endpoint: `new out T`.
    pub fn new() -> Out<T> {
        Out {
            targets: Arc::new(Mutex::new(Targets {
                connections: Vec::new(),
                next: 0,
            })),
            trace: Arc::new(Mutex::new(None)),
        }
    }

    /// Attach a trace sink: every delivery through this endpoint then
    /// emits a wall-clock instant on the `label` track —
    /// [`SpanKind::Duplicate`] for copying sends ([`Out::send`],
    /// [`Out::broadcast`]) and [`SpanKind::MovTransfer`] for ownership
    /// transfers ([`Out::send_moved`]). Shared by every clone.
    pub fn set_trace(&self, sink: TraceSink, label: impl Into<String>) {
        *self.trace.lock() = Some((sink, label.into()));
    }

    fn trace_send(&self, kind: SpanKind, name: &str) {
        if let Some((sink, label)) = &*self.trace.lock() {
            sink.record(
                TraceEvent::instant(kind, name, label, sink.wall_ns()).with_arg("clock", "wall"),
            );
        }
    }

    /// Connect this output to an input: `connect s.output to r.input`.
    pub fn connect(&self, input: &In<T>) {
        let conn = Arc::new(input.make_connection());
        self.targets.lock().connections.push(conn);
    }

    /// Connect through a connector token (the endpoint itself may already
    /// live inside another actor).
    pub fn connect_via(&self, connector: &InConnector<T>) {
        connector.state.connected.fetch_add(1, Ordering::AcqRel);
        connector
            .state
            .ever_connected
            .store(true, Ordering::Release);
        let conn = Arc::new(Connection {
            sender: connector.sender.clone(),
            state: Arc::clone(&connector.state),
        });
        self.targets.lock().connections.push(conn);
    }

    /// Drop every connection of this output — the first half of Ensemble's
    /// runtime *reconnect*. Receivers whose last connection this was will
    /// observe closure once their buffers drain.
    pub fn disconnect_all(&self) {
        self.targets.lock().connections.clear();
    }

    /// Number of currently connected receivers.
    pub fn fan_out(&self) -> usize {
        self.targets.lock().connections.len()
    }

    /// Poison every connected receiver (see [`In::poison`]): the failure
    /// notification a dying stage sends downstream so the rest of the
    /// pipeline unwinds instead of deadlocking on a rendezvous.
    pub fn poison_receivers(&self) {
        for c in self.targets.lock().connections.iter() {
            c.state.poisoned.store(true, Ordering::Release);
        }
    }

    fn send_inner(&self, mut value: T) -> Result<(), ChannelError> {
        loop {
            // Pick the next live target round-robin without holding the lock
            // across the (possibly blocking) send.
            let target = {
                let mut t = self.targets.lock();
                if t.connections.is_empty() {
                    return Err(ChannelError::NotConnected);
                }
                let idx = t.next % t.connections.len();
                t.next = t.next.wrapping_add(1);
                Arc::clone(&t.connections[idx])
            };
            if target.state.poisoned.load(Ordering::Acquire) {
                // The receiver's stage failed: don't rendezvous with a peer
                // that will never pick the message up. Forget the target and
                // retry with the rest, reporting `Poisoned` once none remain.
                let mut t = self.targets.lock();
                t.connections
                    .retain(|c| !c.sender.same_channel(&target.sender));
                if t.connections.is_empty() {
                    return Err(ChannelError::Poisoned);
                }
                continue;
            }
            // Bounded waits (instead of one indefinitely blocking send) so a
            // sender parked on a rendezvous observes poisoning that happens
            // *after* it blocked.
            match target.sender.send_timeout(value, DISCONNECT_POLL) {
                Ok(()) => return Ok(()),
                Err(SendTimeoutError::Timeout(v)) => {
                    // Re-run the poison/liveness checks, then wait again.
                    value = v;
                }
                Err(SendTimeoutError::Disconnected(v)) => {
                    // Receiver vanished: forget it and retry with the rest.
                    value = v;
                    let mut t = self.targets.lock();
                    t.connections
                        .retain(|c| !c.sender.same_channel(&target.sender));
                    if t.connections.is_empty() {
                        return Err(ChannelError::NoReceivers);
                    }
                }
            }
        }
    }

    /// Send a **duplicate** of `value` (the shared-nothing default): the
    /// sender keeps its copy, the receiver gets an independent one.
    pub fn send(&self, value: &T) -> Result<(), ChannelError>
    where
        T: Clone,
    {
        self.send_inner(value.clone())?;
        self.trace_send(SpanKind::Duplicate, "send_dup");
        Ok(())
    }

    /// Send `value` by **moving** it — Ensemble's `mov` channels. No copy
    /// is made; the Rust move checker enforces, at compile time, that the
    /// sender never touches the value again (the paper implements the same
    /// guarantee with inter-procedural analysis in the Ensemble compiler).
    pub fn send_moved(&self, value: T) -> Result<(), ChannelError> {
        self.send_inner(value)?;
        self.trace_send(SpanKind::MovTransfer, "send_mov");
        Ok(())
    }

    /// Deliver a duplicate to *every* connected receiver.
    pub fn broadcast(&self, value: &T) -> Result<(), ChannelError>
    where
        T: Clone,
    {
        let connections = self.targets.lock().connections.clone();
        if connections.is_empty() {
            return Err(ChannelError::NotConnected);
        }
        let mut delivered = 0;
        let mut dead: Vec<Sender<T>> = Vec::new();
        for c in connections {
            let mut payload = value.clone();
            loop {
                if c.state.poisoned.load(Ordering::Acquire) {
                    dead.push(c.sender.clone());
                    break;
                }
                match c.sender.send_timeout(payload, DISCONNECT_POLL) {
                    Ok(()) => {
                        delivered += 1;
                        break;
                    }
                    Err(SendTimeoutError::Timeout(v)) => payload = v,
                    Err(SendTimeoutError::Disconnected(_)) => {
                        dead.push(c.sender.clone());
                        break;
                    }
                }
            }
        }
        if !dead.is_empty() {
            // Prune dropped receivers, as send_inner does.
            self.targets
                .lock()
                .connections
                .retain(|c| !dead.iter().any(|d| d.same_channel(&c.sender)));
        }
        if delivered == 0 {
            Err(ChannelError::NoReceivers)
        } else {
            self.trace_send(SpanKind::Duplicate, "broadcast");
            Ok(())
        }
    }
}

impl<T> Default for Out<T> {
    fn default() -> Self {
        Out::new()
    }
}

/// Create a pre-connected rendezvous channel pair (convenience for the
/// common 1-1 case).
pub fn channel<T>() -> (Out<T>, In<T>) {
    let i = In::new();
    let o = Out::new();
    o.connect(&i);
    (o, i)
}

/// Create a pre-connected channel pair with a buffer of `capacity`.
pub fn buffered_channel<T>(capacity: usize) -> (Out<T>, In<T>) {
    let i = In::with_buffer(capacity);
    let o = Out::new();
    o.connect(&i);
    (o, i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn rendezvous_send_receive() {
        let (o, i) = channel::<i32>();
        let t = thread::spawn(move || i.receive().unwrap());
        o.send(&42).unwrap();
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn buffered_send_does_not_block_until_full() {
        let (o, i) = buffered_channel::<i32>(2);
        o.send(&1).unwrap();
        o.send(&2).unwrap();
        assert_eq!(i.receive().unwrap(), 1);
        assert_eq!(i.receive().unwrap(), 2);
    }

    #[test]
    fn unconnected_out_errors() {
        let o = Out::<i32>::new();
        assert_eq!(o.send(&1), Err(ChannelError::NotConnected));
    }

    #[test]
    fn send_duplicates_value() {
        // The sender keeps using its copy after sending (Listing 2: the
        // sender increments `value` after each send).
        let (o, i) = buffered_channel::<Vec<i32>>(1);
        let mut v = vec![1, 2, 3];
        o.send(&v).unwrap();
        v[0] = 99;
        assert_eq!(i.receive().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn send_moved_transfers_without_copy() {
        #[derive(Debug, PartialEq)]
        struct NoClone(i32);
        let (o, i) = buffered_channel::<NoClone>(1);
        o.send_moved(NoClone(7)).unwrap();
        assert_eq!(i.receive().unwrap(), NoClone(7));
    }

    #[test]
    fn n_to_1_topology() {
        let i = In::with_buffer(4);
        let o1 = Out::new();
        let o2 = Out::new();
        o1.connect(&i);
        o2.connect(&i);
        assert_eq!(i.connections(), 2);
        o1.send(&1).unwrap();
        o2.send(&2).unwrap();
        let mut got = vec![i.receive().unwrap(), i.receive().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn one_to_n_round_robin() {
        let a = In::with_buffer(4);
        let b = In::with_buffer(4);
        let o = Out::new();
        o.connect(&a);
        o.connect(&b);
        assert_eq!(o.fan_out(), 2);
        for k in 0..4 {
            o.send(&k).unwrap();
        }
        let got_a = [a.receive().unwrap(), a.receive().unwrap()];
        let got_b = [b.receive().unwrap(), b.receive().unwrap()];
        assert_eq!(got_a, [0, 2]);
        assert_eq!(got_b, [1, 3]);
    }

    #[test]
    fn broadcast_reaches_every_receiver() {
        let a = In::with_buffer(1);
        let b = In::with_buffer(1);
        let o = Out::new();
        o.connect(&a);
        o.connect(&b);
        o.broadcast(&9).unwrap();
        assert_eq!(a.receive().unwrap(), 9);
        assert_eq!(b.receive().unwrap(), 9);
    }

    #[test]
    fn receive_after_all_senders_drop_errors() {
        let (o, i) = buffered_channel::<i32>(1);
        o.send(&5).unwrap();
        drop(o);
        assert_eq!(i.receive().unwrap(), 5);
        assert_eq!(i.receive(), Err(ChannelError::Closed));
    }

    #[test]
    fn cloned_out_keeps_connection_alive() {
        let (o, i) = buffered_channel::<i32>(1);
        let o2 = o.clone();
        drop(o);
        o2.send(&1).unwrap();
        assert_eq!(i.receive().unwrap(), 1);
        drop(o2);
        assert_eq!(i.receive(), Err(ChannelError::Closed));
    }

    #[test]
    fn blocked_receive_unblocks_when_sender_drops() {
        // The kernel-actor shutdown path: an actor parked on its requests
        // channel must wake and stop when the other side goes away.
        let (o, i) = buffered_channel::<i32>(1);
        let t = thread::spawn(move || i.receive());
        thread::sleep(Duration::from_millis(20));
        drop(o);
        assert_eq!(t.join().unwrap(), Err(ChannelError::Closed));
    }

    #[test]
    fn never_connected_in_blocks_rather_than_closing() {
        let i = In::<i32>::with_buffer(1);
        assert_eq!(i.try_receive(), Ok(None));
        // Connect later, then send: dynamic connection must work.
        let o = Out::new();
        o.connect(&i);
        o.send(&3).unwrap();
        assert_eq!(i.receive().unwrap(), 3);
    }

    #[test]
    fn dead_receiver_is_pruned() {
        let a = In::with_buffer(1);
        let b = In::with_buffer(4);
        let o = Out::new();
        o.connect(&a);
        o.connect(&b);
        drop(a);
        for k in 0..3 {
            o.send(&k).unwrap();
        }
        // All three must have landed in `b` despite `a` being first in the
        // rotation.
        assert_eq!(b.receive().unwrap(), 0);
        assert_eq!(b.receive().unwrap(), 1);
        assert_eq!(b.receive().unwrap(), 2);
        assert_eq!(o.fan_out(), 1);
    }

    #[test]
    fn endpoints_travel_through_channels() {
        // The dynamic-channel pattern from Listing 3: send an In endpoint
        // to another thread, which then receives data through it.
        let (ep_out, ep_in) = channel::<In<i32>>();
        let t = thread::spawn(move || {
            let data_in = ep_in.receive().unwrap();
            data_in.receive().unwrap()
        });
        let data = In::with_buffer(1);
        let data_out = Out::new();
        data_out.connect(&data);
        ep_out.send_moved(data).unwrap();
        data_out.send(&123).unwrap();
        assert_eq!(t.join().unwrap(), 123);
    }

    #[test]
    fn rendezvous_blocks_until_receiver_arrives() {
        let (o, i) = channel::<i32>();
        let start = std::time::Instant::now();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(50));
            i.receive().unwrap()
        });
        o.send(&1).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(45));
        t.join().unwrap();
    }

    #[test]
    fn try_receive_is_nonblocking() {
        let (o, i) = buffered_channel::<i32>(1);
        assert_eq!(i.try_receive().unwrap(), None);
        o.send(&1).unwrap();
        assert_eq!(i.try_receive().unwrap(), Some(1));
    }

    #[test]
    fn recv_timeout_times_out_without_sender() {
        let (_o, i) = channel::<i32>();
        let start = std::time::Instant::now();
        assert_eq!(
            i.recv_timeout(Duration::from_millis(20)),
            Err(ChannelError::TimedOut)
        );
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn recv_timeout_delivers_when_message_arrives_in_time() {
        let (o, i) = channel::<i32>();
        let t = thread::spawn(move || i.recv_timeout(Duration::from_secs(5)));
        o.send(&11).unwrap();
        assert_eq!(t.join().unwrap(), Ok(11));
    }

    // Regression test for the rendezvous-channel hang: a receiver parked on
    // `receive` whose peer dies (drops its Out mid-protocol) must observe a
    // typed `Closed` error rather than blocking forever — `blocked_receive_
    // unblocks_when_sender_drops` covers the drop half; these cover poison.

    #[test]
    fn poisoned_receive_drains_then_errors() {
        let (o, i) = buffered_channel::<i32>(2);
        o.send(&1).unwrap();
        i.poison();
        // In-flight data is still delivered; only then does the error show.
        assert_eq!(i.receive(), Ok(1));
        assert_eq!(i.receive(), Err(ChannelError::Poisoned));
        assert_eq!(
            i.recv_timeout(Duration::from_secs(5)),
            Err(ChannelError::Poisoned)
        );
    }

    #[test]
    fn poison_wakes_blocked_receiver() {
        let (_o, i) = channel::<i32>();
        let connector = i.connector();
        let t = thread::spawn(move || i.receive());
        thread::sleep(Duration::from_millis(20));
        connector.poison();
        assert_eq!(t.join().unwrap(), Err(ChannelError::Poisoned));
    }

    #[test]
    fn poison_unblocks_rendezvous_sender() {
        // The deadlock this PR removes: a sender parked on a rendezvous
        // whose receiver's stage has failed. Poisoning the receiver must
        // wake the sender with a typed error, not leave it parked forever.
        let (o, i) = channel::<i32>();
        let t = thread::spawn(move || o.send(&7));
        thread::sleep(Duration::from_millis(20));
        i.poison();
        assert_eq!(t.join().unwrap(), Err(ChannelError::Poisoned));
    }

    #[test]
    fn poison_receivers_reaches_every_target() {
        let a = In::<i32>::with_buffer(1);
        let b = In::<i32>::with_buffer(1);
        let o = Out::new();
        o.connect(&a);
        o.connect(&b);
        o.poison_receivers();
        assert!(a.is_poisoned());
        assert!(b.is_poisoned());
        assert_eq!(a.receive(), Err(ChannelError::Poisoned));
        assert_eq!(b.receive(), Err(ChannelError::Poisoned));
    }

    #[test]
    fn send_skips_poisoned_target_in_fan_out() {
        let a = In::<i32>::new(); // rendezvous, nobody will receive
        let b = In::with_buffer(2);
        let o = Out::new();
        o.connect(&a);
        o.connect(&b);
        a.poison();
        // Both sends must land in `b` even though `a` heads the rotation.
        o.send(&1).unwrap();
        o.send(&2).unwrap();
        assert_eq!(b.receive(), Ok(1));
        assert_eq!(b.receive(), Ok(2));
        assert_eq!(o.fan_out(), 1);
    }

    #[test]
    fn broadcast_skips_poisoned_rendezvous_target() {
        let a = In::<i32>::new(); // rendezvous, poisoned: would block forever
        let b = In::with_buffer(1);
        let o = Out::new();
        o.connect(&a);
        o.connect(&b);
        a.poison();
        o.broadcast(&4).unwrap();
        assert_eq!(b.receive(), Ok(4));
    }
}
