//! Stages: named memory spaces in which actors execute (§4, §5).
//!
//! Each Ensemble VM instance is one stage; within it, the runtime creates a
//! thread per actor (the paper uses a pthread per actor on Linux). Actor
//! scheduling is dictated by inter-actor communication — blocking channel
//! operations park the thread, so the OS scheduler provides exactly the
//! communication-driven scheduling the paper describes, with preemptive
//! round-robin as the fallback.

use crate::actor::{Actor, ActorCtx, Control, FnActor};
use std::thread::{self, JoinHandle};
use trace::{SpanKind, TraceEvent, TraceSink};

/// A stage: spawn scope and join point for a set of actors.
#[derive(Debug)]
pub struct Stage {
    name: String,
    handles: Vec<(String, JoinHandle<u64>)>,
    trace: TraceSink,
}

/// Result of joining a stage: per-actor behaviour-iteration counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// `(actor name, behaviour iterations completed)` per spawned actor, in
    /// spawn order.
    pub actors: Vec<(String, u64)>,
}

impl Stage {
    /// Create a stage with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Stage {
        Stage {
            name: name.into(),
            handles: Vec::new(),
            trace: TraceSink::disabled(),
        }
    }

    /// Attach a trace sink: every subsequent [`Stage::spawn`] emits a
    /// wall-clock [`SpanKind::Spawn`] instant on the stage's track.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Stage name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of actors spawned so far.
    pub fn actor_count(&self) -> usize {
        self.handles.len()
    }

    /// Spawn an actor: runs `constructor` once, then repeats `behaviour`
    /// until it returns [`Control::Stop`].
    pub fn spawn<A: Actor>(&mut self, name: impl Into<String>, mut actor: A) {
        let name = name.into();
        if self.trace.is_enabled() {
            self.trace.record(
                TraceEvent::instant(SpanKind::Spawn, &name, &self.name, self.trace.wall_ns())
                    .with_arg("clock", "wall"),
            );
        }
        let stage_name = self.name.clone();
        let thread_name = format!("{stage_name}/{name}");
        let ctx_name = name.clone();
        let handle = thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                let mut ctx = ActorCtx::new(ctx_name, stage_name);
                actor.constructor(&mut ctx);
                loop {
                    let control = actor.behaviour(&mut ctx);
                    ctx.bump();
                    // An unsupervised stage has nobody to report a `Fail`
                    // to, so both exits end the thread; a Supervisor wraps
                    // the loop itself and distinguishes them.
                    if control != Control::Continue {
                        break;
                    }
                }
                ctx.iterations()
            })
            .expect("failed to spawn actor thread");
        self.handles.push((name, handle));
    }

    /// Spawn a closure as an actor (no constructor step).
    pub fn spawn_fn<F>(&mut self, name: impl Into<String>, behaviour: F)
    where
        F: FnMut(&mut ActorCtx) -> Control + Send + 'static,
    {
        self.spawn(name, FnActor(behaviour));
    }

    /// Spawn a run-once actor: the closure executes a single time and the
    /// actor stops. Mirrors the common "boot-driver" pattern.
    pub fn spawn_once<F>(&mut self, name: impl Into<String>, body: F)
    where
        F: FnOnce(&mut ActorCtx) + Send + 'static,
    {
        let mut body = Some(body);
        self.spawn_fn(name, move |ctx| {
            if let Some(f) = body.take() {
                f(ctx);
            }
            Control::Stop
        });
    }

    /// Wait for every actor in the stage to stop.
    ///
    /// Panics propagate: if an actor thread panicked, `join` panics with a
    /// message naming the actor **and carrying the original panic
    /// payload's message** — silently swallowing actor failures (or their
    /// reasons) would make every test in the workspace unreliable.
    pub fn join(self) -> StageReport {
        let mut actors = Vec::with_capacity(self.handles.len());
        for (name, h) in self.handles {
            match h.join() {
                Ok(iterations) => actors.push((name, iterations)),
                Err(payload) => panic!(
                    "actor `{name}` panicked: {}",
                    crate::supervisor::panic_message(payload.as_ref())
                ),
            }
        }
        StageReport { actors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{buffered_channel, channel};

    #[test]
    fn listing2_send_receive_pair() {
        // The sender/receiver ensemble from Listing 2 of the paper: snd
        // sends linearly increasing values; rcv prints (here: collects).
        let (out, input) = channel::<i32>();
        let (done_out, done_in) = channel::<Vec<i32>>();
        let mut stage = Stage::new("home");
        let mut value = 1;
        let mut sent = 0;
        stage.spawn_fn("snd", move |_ctx| {
            out.send(&value).unwrap();
            value += 1;
            sent += 1;
            if sent == 5 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        let mut got = Vec::new();
        stage.spawn_fn("rcv", move |_ctx| match input.receive() {
            Ok(v) => {
                got.push(v);
                Control::Continue
            }
            Err(_) => {
                done_out.send_moved(std::mem::take(&mut got)).unwrap();
                Control::Stop
            }
        });
        let received = done_in.receive().unwrap();
        let report = stage.join();
        assert_eq!(received, vec![1, 2, 3, 4, 5]);
        assert_eq!(report.actors[0].0, "snd");
        assert_eq!(report.actors[0].1, 5);
    }

    #[test]
    fn constructor_runs_once() {
        struct C {
            constructed: u32,
            out: crate::channel::Out<u32>,
        }
        impl Actor for C {
            fn constructor(&mut self, _ctx: &mut ActorCtx) {
                self.constructed += 1;
            }
            fn behaviour(&mut self, ctx: &mut ActorCtx) -> Control {
                if ctx.iterations() == 2 {
                    self.out.send(&self.constructed).unwrap();
                    Control::Stop
                } else {
                    Control::Continue
                }
            }
        }
        let (out, input) = buffered_channel(1);
        let mut stage = Stage::new("s");
        stage.spawn(
            "c",
            C {
                constructed: 0,
                out,
            },
        );
        assert_eq!(input.receive().unwrap(), 1);
        stage.join();
    }

    #[test]
    fn spawn_once_runs_exactly_once() {
        let (out, input) = buffered_channel::<u32>(4);
        let mut stage = Stage::new("s");
        stage.spawn_once("boot", move |_ctx| {
            out.send(&7).unwrap();
        });
        let report = stage.join();
        assert_eq!(input.receive().unwrap(), 7);
        // The actor (and its Out endpoint) is gone: no second message.
        assert_eq!(
            input.try_receive(),
            Err(crate::channel::ChannelError::Closed)
        );
        assert_eq!(report.actors[0].1, 1);
    }

    #[test]
    #[should_panic(expected = "actor `bad` panicked: boom")]
    fn actor_panic_is_reported_at_join_with_payload() {
        let mut stage = Stage::new("s");
        stage.spawn_fn("bad", |_ctx| panic!("boom"));
        stage.join();
    }

    #[test]
    #[should_panic(expected = "actor `bad` panicked: fell over at step 3")]
    fn actor_panic_preserves_formatted_string_payloads() {
        let mut stage = Stage::new("s");
        let step = 3;
        stage.spawn_fn("bad", move |_ctx| panic!("fell over at step {step}"));
        stage.join();
    }

    #[test]
    fn control_fail_stops_an_unsupervised_actor() {
        let mut stage = Stage::new("s");
        stage.spawn_fn("f", |_ctx| Control::Fail);
        let report = stage.join();
        assert_eq!(report.actors[0].1, 1);
    }

    #[test]
    fn pipeline_of_three_actors() {
        // a -> b -> c: each stage adds one. Mirrors the LUD controller
        // "plumbing" pattern (Figure 4 of the paper).
        let (a_out, b_in) = channel::<i32>();
        let (b_out, c_in) = channel::<i32>();
        let (c_out, result_in) = channel::<i32>();
        let mut stage = Stage::new("pipe");
        stage.spawn_once("a", move |_| {
            a_out.send(&1).unwrap();
        });
        stage.spawn_once("b", move |_| {
            let v = b_in.receive().unwrap();
            b_out.send(&(v + 1)).unwrap();
        });
        stage.spawn_once("c", move |_| {
            let v = c_in.receive().unwrap();
            c_out.send(&(v + 1)).unwrap();
        });
        assert_eq!(result_in.receive().unwrap(), 3);
        stage.join();
    }
}
