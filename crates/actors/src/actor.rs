//! Actors: private state plus a repeated behaviour clause (§4).

/// What the runtime should do after one execution of a behaviour clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Run the behaviour again (the default — Ensemble behaviours repeat
    /// until explicitly told to stop).
    Continue,
    /// Stop the actor; its thread exits and its state is dropped
    /// (the garbage-collection step in the Ensemble VM).
    Stop,
    /// Stop the actor **abnormally**: the behaviour hit an unrecoverable
    /// condition (e.g. an injected kill) and exits without completing its
    /// protocol. Under a [`crate::supervisor::Supervisor`] this is a
    /// supervised failure (the child is restarted or the failure
    /// escalates); an unsupervised [`crate::Stage`] treats it like
    /// [`Control::Stop`].
    Fail,
}

/// Per-actor context handed to each behaviour execution.
#[derive(Debug)]
pub struct ActorCtx {
    name: String,
    stage: String,
    iterations: u64,
}

impl ActorCtx {
    pub(crate) fn new(name: String, stage: String) -> ActorCtx {
        ActorCtx {
            name,
            stage,
            iterations: 0,
        }
    }

    /// The actor's instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The name of the stage (memory space) the actor runs in.
    pub fn stage(&self) -> &str {
        &self.stage
    }

    /// How many times the behaviour clause has completed.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    pub(crate) fn bump(&mut self) {
        self.iterations += 1;
    }
}

/// An actor: encapsulated state with a single thread of control.
///
/// The runtime calls [`Actor::constructor`] once, then repeats
/// [`Actor::behaviour`] until it returns [`Control::Stop`] (or a channel
/// the behaviour depends on closes and the behaviour chooses to stop).
pub trait Actor: Send + 'static {
    /// One-time initialisation, mirroring Ensemble's `constructor()` clause.
    fn constructor(&mut self, _ctx: &mut ActorCtx) {}

    /// One execution of the behaviour clause.
    fn behaviour(&mut self, ctx: &mut ActorCtx) -> Control;
}

/// Adapter so plain closures can serve as actors:
/// `stage.spawn_fn("name", |ctx| { ...; Control::Stop })`.
pub struct FnActor<F>(pub F);

impl<F> Actor for FnActor<F>
where
    F: FnMut(&mut ActorCtx) -> Control + Send + 'static,
{
    fn behaviour(&mut self, ctx: &mut ActorCtx) -> Control {
        (self.0)(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_tracks_identity() {
        let ctx = ActorCtx::new("snd".into(), "home".into());
        assert_eq!(ctx.name(), "snd");
        assert_eq!(ctx.stage(), "home");
        assert_eq!(ctx.iterations(), 0);
    }

    #[test]
    fn fn_actor_delegates() {
        let mut counter = 0;
        let mut a = FnActor(move |_ctx: &mut ActorCtx| {
            counter += 1;
            if counter >= 3 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        let mut ctx = ActorCtx::new("a".into(), "s".into());
        assert_eq!(a.behaviour(&mut ctx), Control::Continue);
        assert_eq!(a.behaviour(&mut ctx), Control::Continue);
        assert_eq!(a.behaviour(&mut ctx), Control::Stop);
    }
}
