//! # ensemble-actors — the Ensemble actor runtime, in Rust
//!
//! Reproduction of the actor model of the Ensemble language (§4–5 of
//! *Parallel Programming in Actor-Based Applications via OpenCL*,
//! MIDDLEWARE 2015):
//!
//! * **Actors** ([`Actor`]) own private state and a single thread of
//!   control; the `behaviour` clause repeats until explicitly stopped.
//! * **Stages** ([`Stage`]) are memory spaces; the runtime creates one
//!   thread per actor (the paper uses a pthread per actor on Linux).
//! * **Channels** ([`In`], [`Out`]) are typed and unidirectional, with an
//!   optional buffer; unbuffered or full channels block (synchronous
//!   rendezvous). Endpoints are first-class and can be sent through other
//!   channels — the dynamic composition that the OpenCL settings protocol
//!   of §6.1.1 builds on.
//! * **Shared-nothing semantics**: [`Out::send`] *duplicates* the value, so
//!   sender and receiver never share state. [`Out::send_moved`] is
//!   Ensemble's `mov`: ownership transfers with no copy, and Rust's move
//!   checker provides (at compile time) the use-after-send rejection that
//!   the Ensemble compiler implements with inter-procedural analysis.
//!
//! ## Mapping from the paper
//!
//! | Ensemble construct           | This crate                               |
//! |------------------------------|------------------------------------------|
//! | `actor X presents I {...}`   | a type implementing [`Actor`]            |
//! | `behaviour { ... }`          | [`Actor::behaviour`] (re-run until Stop)  |
//! | `stage home { ... boot {} }` | [`Stage::new`] + `spawn` + boot closure   |
//! | `in T` / `out T`             | [`In<T>`] / [`Out<T>`]                    |
//! | `connect a.out to b.in`      | [`Out::connect`]                          |
//! | `send v on ch`               | [`Out::send`] (duplicates)                |
//! | `mov` channels               | [`Out::send_moved`] (no duplicate)        |
//! | `receive v from ch`          | [`In::receive`]                           |
//!
//! ## Example (Listing 2 of the paper)
//!
//! ```
//! use ensemble_actors::{Stage, Control, channel};
//!
//! let (output, input) = channel::<i32>();
//! let mut stage = Stage::new("home");
//!
//! let mut value = 1;           // snd's private state
//! stage.spawn_fn("snd", move |_ctx| {
//!     output.send(&value).unwrap();
//!     value += 1;
//!     if value > 3 { Control::Stop } else { Control::Continue }
//! });
//!
//! stage.spawn_fn("rcv", move |_ctx| match input.receive() {
//!     Ok(v) => { println!("received: {v}"); Control::Continue }
//!     Err(_) => Control::Stop,
//! });
//!
//! stage.join();
//! ```

#![warn(missing_docs)]

pub mod actor;
pub mod channel;
pub mod stage;
pub mod supervisor;

pub use actor::{Actor, ActorCtx, Control, FnActor};
pub use channel::{buffered_channel, channel, ChannelError, In, InConnector, Out};
pub use stage::{Stage, StageReport};
pub use supervisor::{
    ChildSpec, IntensityClock, RestartBudget, Strategy, Supervisor, SupervisorError,
    SupervisorReport,
};
