//! Unified tracing for the Ensemble-OpenCL reproduction.
//!
//! The paper's whole evaluation (Figures 3a–3e) is a cost breakdown —
//! to-device copy, from-device copy, kernel time, runtime overhead — and
//! before this crate those segments were scattered across ad-hoc counters
//! in the simulator, the VM op counter, and the figures harness. This
//! crate is the one substrate they all report through: every execution
//! layer records [`TraceEvent`]s into a shared [`TraceSink`], and the
//! sink exports
//!
//! * an aggregated per-segment breakdown ([`Segments`]) that the `bench`
//!   crate's figure bars are built from, and
//! * a Chrome `trace_event` JSON timeline ([`chrome_json`]) that opens
//!   directly in Perfetto / `chrome://tracing`.
//!
//! # Clock domains
//!
//! Device and VM spans carry **virtual-clock** timestamps: device spans
//! use the per-queue virtual nanosecond clock advanced by `oclsim`'s
//! deterministic cost model (`oclsim::timing`), VM spans use per-actor
//! virtual time derived from retired op counts. Runs are therefore
//! bit-identical across machines. Scheduling events (actor spawns,
//! channel blocking) have no virtual time — actors run on real threads —
//! so those events carry **wall-clock** timestamps relative to the sink's
//! creation and are tagged `"clock": "wall"` in their args. Only
//! virtual-clock span kinds contribute to [`Segments`]; wall-clock events
//! are timeline context, never part of a figure.
//!
//! # Cost
//!
//! A disabled sink ([`TraceSink::disabled`]) is a `None` — recording
//! through it is a branch on an `Option`, no allocation, no locking — so
//! instrumented hot paths cost nothing when nobody is tracing.

#![warn(missing_docs)]

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// What a recorded event represents. The first four kinds are
/// virtual-clock *spans* that aggregate into figure segments; the rest
/// are timeline context (instants or wall-clock waits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Host→device buffer write (`enqueue_write_buffer`). Segment:
    /// to-device.
    ToDevice,
    /// Device→host buffer read (`enqueue_read_buffer`). Segment:
    /// from-device.
    FromDevice,
    /// An ND-range kernel dispatch. Segment: kernel.
    Kernel,
    /// A chunk of bytecode interpreted on an actor's thread; duration is
    /// retired ops × the VM's per-op cost. Segment: VM overhead.
    VmChunk,
    /// A queue marker (zero-duration ordering point on a device track).
    Marker,
    /// The boundary where a kernel actor accepts a request and enters
    /// native code (`invokenative`). Instant, virtual queue clock.
    InvokeNative,
    /// A device-resident buffer was handed to a dispatch without any
    /// copy — the §6.2.3 `mov` win. Instant, virtual queue clock.
    ResidentReuse,
    /// A message was *moved* through a channel (ownership transfer, no
    /// payload copy). Instant, wall clock.
    MovTransfer,
    /// A message was *duplicated* into a channel (copying send). Instant,
    /// wall clock.
    Duplicate,
    /// Time an actor spent blocked on a channel receive. Wall-clock
    /// duration — real threads, no virtual time.
    ChannelWait,
    /// An actor (or stage worker) thread was spawned. Instant, wall
    /// clock.
    Spawn,
    /// A scheduled fault fired inside the simulator (see
    /// `oclsim::fault`). Instant, virtual queue clock. Never part of a
    /// figure segment: an undisturbed run and a run with an empty fault
    /// plan produce identical segment aggregations.
    FaultInjected,
    /// The recovery layer re-attempted a failed operation after a
    /// virtual-clock backoff. Instant, virtual queue clock.
    Retry,
    /// The recovery layer abandoned a device and re-dispatched on the
    /// next device-matrix entry (e.g. GPU → CPU degradation). Instant,
    /// virtual clock of the abandoned device's queue.
    Failover,
    /// A supervised actor exited abnormally — it panicked or was killed
    /// by an injected fault — and its supervisor observed the exit.
    /// Instant, supervisor virtual clock.
    ActorExit,
    /// A supervisor restarted a child actor within its restart-intensity
    /// budget. Instant, supervisor virtual clock (after the restart's
    /// backoff charge).
    Restart,
    /// A supervisor exhausted its restart budget (or its strategy is
    /// escalate-only) and tore the pipeline down instead of restarting.
    /// Instant, supervisor virtual clock.
    Escalated,
    /// A restarted actor resumed from its checkpoint and redelivered the
    /// in-flight work item. Instant, virtual queue clock of the device
    /// the actor re-derived its state on.
    CheckpointRestore,
    /// The VM skipped its runtime cross-context residency check because
    /// static analysis proved the `mov` data never leaves this device
    /// (see `crates/analysis`, §6.2.3). Instant, virtual queue clock.
    ResidencyProven,
    /// The serving layer admitted a tenant session past admission
    /// control (`crates/serve`). Instant, wall clock.
    Admit,
    /// The serving layer shed a session at admission — the waiting queue
    /// or memory watermark was full. Instant, wall clock.
    Reject,
    /// The device-memory accountant evicted an idle resident `mov`
    /// buffer back to the host under memory pressure; the next touch
    /// re-uploads it transparently. Instant, wall clock.
    Evict,
    /// A per-request deadline expired on the serving path: a blocking
    /// receive gave up and the session shed its load instead of wedging
    /// the pool. Instant, wall clock.
    DeadlineExceeded,
    /// An injected silent-corruption fault flipped a bit at an
    /// upload/enqueue/readback seam (`oclsim::fault`,
    /// `InjectedFault::Corrupt`). Instant, virtual queue clock. Like
    /// `FaultInjected`, never part of a figure segment.
    CorruptionInjected,
    /// The integrity layer verified buffer contents against recorded
    /// provenance checksums and they matched. Emitted only when a
    /// corruption-capable fault plan is armed, so fault-free traces are
    /// unchanged. Instant, virtual queue clock.
    IntegrityCheck,
    /// A provenance checksum mismatch was detected: the buffer was
    /// restored from its host shadow (the last checkpoint) and the
    /// command failed with `ClError::IntegrityViolation` for the
    /// recovery layer to re-issue. Instant, virtual queue clock.
    IntegrityViolation,
    /// The serving layer's hedge timer expired before the primary
    /// session finished: a speculative duplicate was issued on the
    /// failover lanes. Instant, wall clock.
    Hedge,
    /// One side of a hedged pair delivered the first checksum-valid
    /// result and was taken as the response. Instant, wall clock.
    HedgeWon,
    /// A straggling command or hedged loser was abandoned — either a
    /// dispatch blew its per-dispatch watchdog budget (virtual queue
    /// clock) or the serving layer cancelled the slower side of a hedge
    /// (wall clock). Instant.
    StragglerAbandoned,
    /// The static prover certified this dispatch partition-safe along at
    /// least one NDRange dimension (`SplitProof`, `crates/analysis`): a
    /// group-aligned cut could run the pieces on different devices with
    /// no cross-piece traffic. The event name carries the dimensions,
    /// e.g. `Multiply dims=0,1`. Instant, virtual queue clock.
    ProofSplittable,
    /// The static prover placed this dispatch in a multi-dispatch chain
    /// with no host round-trip between enqueues (`FusionProof`): the
    /// chain can batch on one in-order queue. Instant, virtual queue
    /// clock.
    ProofFusable,
    /// The co-execution scheduler split this dispatch across two device
    /// lanes under a `SplitProof` (`oclsim::coexec`). The args carry the
    /// policy, split dimension, per-lane group counts and virtual spans,
    /// and any groups rescued from a lost device. Instant, virtual clock
    /// of the primary queue, at the dispatch's committed end time. Never
    /// part of a figure segment: the composite kernel span carries the
    /// makespan.
    CoexecSplit,
    /// A batched dispatch session closed (`oclsim::CommandQueue::
    /// open_batch`): a proven-fusable chain of enqueues shared one launch
    /// overhead charge and one arbiter grant. The args carry the launch
    /// count and the overhead saved versus unbatched dispatch. Instant,
    /// virtual queue clock. Never part of a figure segment.
    BatchFused,
}

impl SpanKind {
    /// Stable lowercase name used as the Chrome `cat` field.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::ToDevice => "to_device",
            SpanKind::FromDevice => "from_device",
            SpanKind::Kernel => "kernel",
            SpanKind::VmChunk => "vm_chunk",
            SpanKind::Marker => "marker",
            SpanKind::InvokeNative => "invokenative",
            SpanKind::ResidentReuse => "resident_reuse",
            SpanKind::MovTransfer => "mov_transfer",
            SpanKind::Duplicate => "duplicate",
            SpanKind::ChannelWait => "channel_wait",
            SpanKind::Spawn => "spawn",
            SpanKind::FaultInjected => "fault_injected",
            SpanKind::Retry => "retry",
            SpanKind::Failover => "failover",
            SpanKind::ActorExit => "actor_exit",
            SpanKind::Restart => "restart",
            SpanKind::Escalated => "escalated",
            SpanKind::CheckpointRestore => "checkpoint_restore",
            SpanKind::ResidencyProven => "residency_proven",
            SpanKind::Admit => "admit",
            SpanKind::Reject => "reject",
            SpanKind::Evict => "evict",
            SpanKind::DeadlineExceeded => "deadline_exceeded",
            SpanKind::CorruptionInjected => "corruption_injected",
            SpanKind::IntegrityCheck => "integrity_check",
            SpanKind::IntegrityViolation => "integrity_violation",
            SpanKind::Hedge => "hedge",
            SpanKind::HedgeWon => "hedge_won",
            SpanKind::StragglerAbandoned => "straggler_abandoned",
            SpanKind::ProofSplittable => "proof_splittable",
            SpanKind::ProofFusable => "proof_fusable",
            SpanKind::CoexecSplit => "coexec_split",
            SpanKind::BatchFused => "batch_fused",
        }
    }

    /// Whether this kind carries virtual-clock time that sums into a
    /// figure segment.
    pub fn is_segment(self) -> bool {
        matches!(
            self,
            SpanKind::ToDevice | SpanKind::FromDevice | SpanKind::Kernel | SpanKind::VmChunk
        )
    }
}

/// One recorded span or instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: SpanKind,
    /// Human-readable label: kernel name, actor name, channel label…
    pub name: String,
    /// The timeline row this event belongs to: a device name for queue
    /// commands, an actor name for VM chunks. Becomes the Chrome `tid`.
    pub track: String,
    /// Start timestamp in nanoseconds (virtual or wall; see crate docs).
    pub ts_ns: f64,
    /// Duration in nanoseconds; `0.0` renders as an instant event.
    pub dur_ns: f64,
    /// Extra key/value context (byte counts, op counts, `clock` tag…).
    pub args: Vec<(String, String)>,
}

impl TraceEvent {
    /// A span with a duration.
    pub fn span(kind: SpanKind, name: &str, track: &str, ts_ns: f64, dur_ns: f64) -> TraceEvent {
        TraceEvent {
            kind,
            name: name.to_string(),
            track: track.to_string(),
            ts_ns,
            dur_ns,
            args: Vec::new(),
        }
    }

    /// A zero-duration instant.
    pub fn instant(kind: SpanKind, name: &str, track: &str, ts_ns: f64) -> TraceEvent {
        TraceEvent::span(kind, name, track, ts_ns, 0.0)
    }

    /// Attach a key/value argument (builder style).
    pub fn with_arg(mut self, key: &str, value: impl ToString) -> TraceEvent {
        self.args.push((key.to_string(), value.to_string()));
        self
    }
}

struct SinkInner {
    events: Mutex<Vec<TraceEvent>>,
    epoch: Instant,
}

/// A shared, cloneable recorder of [`TraceEvent`]s.
///
/// Cloning is cheap (an `Arc`); every clone records into the same buffer.
/// The disabled sink records nothing and costs nothing.
#[derive(Clone)]
pub struct TraceSink {
    inner: Option<Arc<SinkInner>>,
}

impl TraceSink {
    /// An enabled sink with an empty buffer. The wall-clock epoch for
    /// [`TraceSink::wall_ns`] starts now.
    pub fn new() -> TraceSink {
        TraceSink {
            inner: Some(Arc::new(SinkInner {
                events: Mutex::new(Vec::new()),
                epoch: Instant::now(),
            })),
        }
    }

    /// A sink that drops everything (the default in all hot paths).
    pub fn disabled() -> TraceSink {
        TraceSink { inner: None }
    }

    /// Whether events recorded here are kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event (no-op when disabled).
    pub fn record(&self, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            inner.events.lock().push(event);
        }
    }

    /// Append a batch of already-built events (no-op when disabled).
    pub fn extend(&self, events: Vec<TraceEvent>) {
        if let Some(inner) = &self.inner {
            inner.events.lock().extend(events);
        }
    }

    /// Nanoseconds of wall time since this sink was created — the
    /// timestamp base for wall-clock events. Returns 0 when disabled.
    pub fn wall_ns(&self) -> f64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_secs_f64() * 1e9,
            None => 0.0,
        }
    }

    /// Snapshot of every event recorded so far (recording order).
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.events.lock().clone(),
            None => Vec::new(),
        }
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.events.lock().len(),
            None => 0,
        }
    }

    /// Whether nothing has been recorded (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all recorded events, keeping the sink enabled.
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.events.lock().clear();
        }
    }

    /// Aggregate the virtual-clock spans into figure segments.
    pub fn segments(&self) -> Segments {
        Segments::from_events(&self.events())
    }
}

impl Default for TraceSink {
    fn default() -> TraceSink {
        TraceSink::disabled()
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(_) => write!(f, "TraceSink {{ events: {} }}", self.len()),
            None => f.write_str("TraceSink {{ disabled }}"),
        }
    }
}

/// The paper's four cost segments, in virtual nanoseconds, as summed
/// from a trace. This is the *only* path from spans to figure bars: the
/// `bench` crate builds every Ensemble bar from a `Segments`, so the
/// printed breakdown and an exported Chrome trace agree by construction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Segments {
    /// Σ duration of [`SpanKind::ToDevice`] spans.
    pub to_device_ns: f64,
    /// Σ duration of [`SpanKind::FromDevice`] spans.
    pub from_device_ns: f64,
    /// Σ duration of [`SpanKind::Kernel`] spans.
    pub kernel_ns: f64,
    /// Σ duration of [`SpanKind::VmChunk`] spans (interpreter overhead).
    pub vm_ns: f64,
}

impl Segments {
    /// Sum the virtual-clock spans of `events` into segments.
    pub fn from_events(events: &[TraceEvent]) -> Segments {
        let mut s = Segments::default();
        for e in events {
            match e.kind {
                SpanKind::ToDevice => s.to_device_ns += e.dur_ns,
                SpanKind::FromDevice => s.from_device_ns += e.dur_ns,
                SpanKind::Kernel => s.kernel_ns += e.dur_ns,
                SpanKind::VmChunk => s.vm_ns += e.dur_ns,
                _ => {}
            }
        }
        s
    }

    /// Total virtual nanoseconds across all four segments.
    pub fn total_ns(&self) -> f64 {
        self.to_device_ns + self.from_device_ns + self.kernel_ns + self.vm_ns
    }
}

/// Escape a string for inclusion inside JSON double quotes.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a finite f64 for JSON (no NaN/Inf — callers pass clock values).
fn json_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 9e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Serialise events as Chrome `trace_event` JSON (the "JSON object
/// format": a `traceEvents` array plus metadata), loadable in Perfetto
/// and `chrome://tracing`.
///
/// Each distinct [`TraceEvent::track`] becomes a numbered `tid` with a
/// `thread_name` metadata record, so device queues and actors appear as
/// labelled rows. Timestamps are microseconds (the format's unit) with
/// nanosecond precision preserved in the fraction; `displayTimeUnit` is
/// set to `"ns"`.
pub fn chrome_json(events: &[TraceEvent]) -> String {
    let mut tracks: Vec<&str> = Vec::new();
    for e in events {
        if !tracks.contains(&e.track.as_str()) {
            tracks.push(&e.track);
        }
    }
    let tid = |track: &str| tracks.iter().position(|t| *t == track).unwrap_or(0) + 1;

    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };
    for (i, track) in tracks.iter().enumerate() {
        push(
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                i + 1,
                escape_json(track)
            ),
            &mut first,
        );
    }
    for e in events {
        let mut args = format!("\"kind\":\"{}\"", e.kind.name());
        for (k, v) in &e.args {
            args.push_str(&format!(",\"{}\":\"{}\"", escape_json(k), escape_json(v)));
        }
        let common = format!(
            "\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}",
            escape_json(&e.name),
            e.kind.name(),
            tid(&e.track),
            json_num(e.ts_ns / 1000.0),
        );
        let ev = if e.dur_ns > 0.0 {
            format!(
                "{{{common},\"ph\":\"X\",\"dur\":{},\"args\":{{{args}}}}}",
                json_num(e.dur_ns / 1000.0)
            )
        } else {
            format!("{{{common},\"ph\":\"i\",\"s\":\"t\",\"args\":{{{args}}}}}")
        };
        push(ev, &mut first);
    }
    out.push_str("]}");
    out
}

pub mod json;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let t = TraceSink::disabled();
        t.record(TraceEvent::span(SpanKind::Kernel, "k", "gpu", 0.0, 10.0));
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert_eq!(t.segments(), Segments::default());
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = TraceSink::new();
        let t2 = t.clone();
        t.record(TraceEvent::span(SpanKind::ToDevice, "w", "gpu", 0.0, 5.0));
        t2.record(TraceEvent::span(SpanKind::Kernel, "k", "gpu", 5.0, 7.0));
        assert_eq!(t.len(), 2);
        let s = t2.segments();
        assert_eq!(s.to_device_ns, 5.0);
        assert_eq!(s.kernel_ns, 7.0);
        assert_eq!(s.total_ns(), 12.0);
    }

    #[test]
    fn only_segment_kinds_aggregate() {
        let t = TraceSink::new();
        t.record(TraceEvent::span(
            SpanKind::ChannelWait,
            "recv",
            "a",
            0.0,
            1e6,
        ));
        t.record(TraceEvent::instant(SpanKind::Spawn, "a", "stage", 0.0));
        t.record(TraceEvent::span(
            SpanKind::VmChunk,
            "boot",
            "main",
            0.0,
            80.0,
        ));
        let s = t.segments();
        assert_eq!(s.total_ns(), 80.0);
        assert_eq!(s.vm_ns, 80.0);
    }

    #[test]
    fn chrome_export_is_valid_json_with_named_tracks() {
        let t = TraceSink::new();
        t.record(
            TraceEvent::span(SpanKind::Kernel, "mm_kernel", "Virtual GPU", 100.0, 400.0)
                .with_arg("items", 1024),
        );
        t.record(TraceEvent::instant(
            SpanKind::MovTransfer,
            "a->b",
            "actor a",
            500.0,
        ));
        let j = chrome_json(&t.events());
        json::validate(&j).expect("valid JSON");
        assert!(j.contains("\"thread_name\""));
        assert!(j.contains("Virtual GPU"));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"ph\":\"i\""));
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let j = chrome_json(&[TraceEvent::instant(
            SpanKind::Marker,
            "quote\" back\\slash",
            "t\n",
            0.0,
        )]);
        json::validate(&j).expect("escaped output stays valid");
    }
}
