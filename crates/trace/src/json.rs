//! A minimal JSON validator (RFC 8259 subset-complete recogniser).
//!
//! The workspace has no JSON library (offline build), and the trace
//! exporter hand-writes its output — so tests need an independent check
//! that what we emit *is* JSON. This is a recursive-descent recogniser:
//! it accepts exactly well-formed JSON texts and reports the byte offset
//! of the first error. It does not build a DOM; [`validate`] answers
//! "would a real parser accept this?", which is all the tests ask.

/// Check that `s` is one well-formed JSON value with nothing after it.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != b.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(format!(
                "expected '{}' at byte {}, got {:?}",
                c as char,
                self.pos.saturating_sub(1),
                got.map(|g| g as char)
            )),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            c => Err(format!(
                "unexpected {:?} at byte {}",
                c.map(|x| x as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                c => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos.saturating_sub(1),
                        c.map(|x| x as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                c => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos.saturating_sub(1),
                        c.map(|x| x as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(c) if c.is_ascii_hexdigit() => {}
                                _ => {
                                    return Err(format!(
                                        "bad \\u escape at byte {}",
                                        self.pos.saturating_sub(1)
                                    ))
                                }
                            }
                        }
                    }
                    c => {
                        return Err(format!(
                            "bad escape {:?} at byte {}",
                            c.map(|x| x as char),
                            self.pos.saturating_sub(1)
                        ))
                    }
                },
                Some(c) if c < 0x20 => {
                    return Err(format!(
                        "raw control character in string at byte {}",
                        self.pos.saturating_sub(1)
                    ))
                }
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(format!("bad number at byte {}", self.pos)),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(format!("bad fraction at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(format!("bad exponent at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_well_formed() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            "\"a\\n\\u00e9\"",
            "{\"a\":[1,2,{\"b\":true}],\"c\":null}",
            " { \"x\" : [ ] } ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "01",
            "1.",
            "\"\\x\"",
            "\"unterminated",
            "{} extra",
            "{\"a\" 1}",
        ] {
            assert!(validate(bad).is_err(), "accepted: {bad}");
        }
    }
}
