//! Multi-tenant seams: command-queue arbitration and pool-level memory
//! observation.
//!
//! The simulator itself runs one command at a time per queue; what a
//! *serving* layer needs on top is a say in **when** each tenant's queue
//! may touch the underlying device, and **whether** a device allocation
//! fits the physical pool once every tenant's resident bytes are summed.
//! Both are expressed here as small trait seams that the queue and
//! context consult when (and only when) something is attached — an
//! unattached queue behaves exactly as before, so single-program runs
//! pay nothing.
//!
//! * [`QueueArbiter`] — attached to a [`crate::CommandQueue`] via
//!   [`crate::CommandQueue::attach_arbiter`] together with a tenant tag.
//!   Every upload, read-back, and kernel dispatch then brackets its work
//!   in an `acquire`/`release` pair, letting a fairness policy (e.g.
//!   `crates/serve`'s round-robin or weighted arbiter) interleave
//!   tenants' commands on the shared physical device. Arbitration is a
//!   wall-clock concern: it never touches the queue's deterministic
//!   virtual clock, so a tenant's virtual timeline is byte-identical
//!   with or without contention.
//! * [`MemObserver`] — attached to a [`crate::Context`] via
//!   [`crate::Context::set_mem_observer`]. Every allocation asks the
//!   observer first (giving a pool accountant the chance to evict idle
//!   resident buffers, or to veto past the physical budget), and every
//!   release is reported back.

use crate::error::ClResult;
use std::fmt;
use std::sync::Arc;

/// Fairness policy consulted around every device command of an
/// arbitrated queue. Implementations must be deadlock-free: `acquire`
/// may block, but only until the policy grants the slot, and every
/// `acquire` is matched by exactly one `release` (RAII on the queue
/// side, panic-safe).
pub trait QueueArbiter: Send + Sync {
    /// Block until `tenant` may issue its next command against device
    /// `device_id`.
    fn acquire(&self, device_id: usize, tenant: u64);
    /// Return the slot taken by the matching [`QueueArbiter::acquire`].
    fn release(&self, device_id: usize, tenant: u64);
}

/// A queue's arbiter attachment: the policy plus the tenant tag this
/// queue's commands are issued under. The default (detached) handle
/// grants everything immediately.
#[derive(Clone, Default)]
pub struct ArbiterHandle {
    arbiter: Option<Arc<dyn QueueArbiter>>,
    tenant: u64,
}

impl fmt::Debug for ArbiterHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArbiterHandle")
            .field("attached", &self.arbiter.is_some())
            .field("tenant", &self.tenant)
            .finish()
    }
}

impl ArbiterHandle {
    /// A handle routing through `arbiter` under tenant tag `tenant`.
    pub fn new(arbiter: Arc<dyn QueueArbiter>, tenant: u64) -> ArbiterHandle {
        ArbiterHandle {
            arbiter: Some(arbiter),
            tenant,
        }
    }

    /// The no-op handle (no arbitration).
    pub fn detached() -> ArbiterHandle {
        ArbiterHandle::default()
    }

    /// Acquire a command slot on `device_id`, returning a guard that
    /// releases it on drop (`None` when detached).
    pub(crate) fn grant(&self, device_id: usize) -> Option<ArbiterGrant> {
        self.arbiter.as_ref().map(|a| {
            a.acquire(device_id, self.tenant);
            ArbiterGrant {
                arbiter: Arc::clone(a),
                device_id,
                tenant: self.tenant,
            }
        })
    }
}

/// RAII slot held for the duration of one device command; releasing on
/// drop keeps the accounting right even when the command unwinds (e.g.
/// an injected kill-panic).
pub(crate) struct ArbiterGrant {
    arbiter: Arc<dyn QueueArbiter>,
    device_id: usize,
    tenant: u64,
}

impl std::fmt::Debug for ArbiterGrant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArbiterGrant")
            .field("device_id", &self.device_id)
            .field("tenant", &self.tenant)
            .finish_non_exhaustive()
    }
}

impl Drop for ArbiterGrant {
    fn drop(&mut self) {
        self.arbiter.release(self.device_id, self.tenant);
    }
}

/// Pool-level memory accounting hooks, consulted by every allocation and
/// release of an attached [`crate::Context`].
///
/// The simulator's per-context budget stays the *hard* limit (a buffer
/// must fit the device); an observer adds the *cross-tenant* view — many
/// contexts over one physical device — and may evict idle resident
/// buffers to make room, or veto with a typed error.
pub trait MemObserver: Send + Sync {
    /// Consulted before `bytes` are charged against device `device_id`.
    /// Returning an error vetoes the allocation (the caller sees it as
    /// the allocation failure). Implementations may trigger eviction
    /// here; they must not re-enter the allocating context's own
    /// accounting locks.
    fn will_allocate(&self, device_id: usize, bytes: usize) -> ClResult<()>;
    /// `bytes` previously charged against `device_id` were released.
    fn did_release(&self, device_id: usize, bytes: usize);
}

/// Shared observer slot with a readable `Debug` (trait objects have
/// none).
#[derive(Default)]
pub(crate) struct ObserverSlot(parking_lot::Mutex<Option<Arc<dyn MemObserver>>>);

impl fmt::Debug for ObserverSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ObserverSlot")
            .field(&self.0.lock().is_some())
            .finish()
    }
}

impl ObserverSlot {
    /// Replace the attached observer (`None` detaches).
    pub(crate) fn set(&self, observer: Option<Arc<dyn MemObserver>>) {
        *self.0.lock() = observer;
    }

    /// Clone the attached observer out (so callers never hold the slot
    /// lock across observer calls).
    pub(crate) fn get(&self) -> Option<Arc<dyn MemObserver>> {
        self.0.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountingArbiter {
        acquires: AtomicUsize,
        releases: AtomicUsize,
    }

    impl QueueArbiter for CountingArbiter {
        fn acquire(&self, _device: usize, _tenant: u64) {
            self.acquires.fetch_add(1, Ordering::SeqCst);
        }
        fn release(&self, _device: usize, _tenant: u64) {
            self.releases.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn grant_is_raii() {
        let arb = Arc::new(CountingArbiter {
            acquires: AtomicUsize::new(0),
            releases: AtomicUsize::new(0),
        });
        let handle = ArbiterHandle::new(arb.clone(), 7);
        {
            let _g = handle.grant(0).unwrap();
            assert_eq!(arb.acquires.load(Ordering::SeqCst), 1);
            assert_eq!(arb.releases.load(Ordering::SeqCst), 0);
        }
        assert_eq!(arb.releases.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn detached_handle_grants_nothing() {
        assert!(ArbiterHandle::detached().grant(0).is_none());
    }
}
