//! The analytic virtual-clock cost model.
//!
//! Every command a queue executes is charged deterministic *virtual
//! nanoseconds* derived from the work actually performed:
//!
//! * transfers cost a fixed per-transfer latency plus a per-byte cost;
//! * kernel launches cost a fixed overhead plus the compute time of the
//!   ND-range, computed by scheduling work-groups onto the device's lanes in
//!   waves (so under-utilisation and load imbalance are captured — this is
//!   what makes the paper's Mandelbrot OpenACC penalty reproducible).
//!
//! Virtual time is what [`crate::event::Event`] profiling reports and what
//! the figure harness plots. It is deterministic across runs and machines,
//! which is the point: the paper's figures depend on cost *structure*, not
//! on the wall clock of whatever container this happens to run in.

/// Per-device cost constants. All times in virtual nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed cost per host↔device transfer (driver + DMA setup).
    pub transfer_latency_ns: f64,
    /// Per-byte transfer cost (inverse bandwidth).
    pub transfer_ns_per_byte: f64,
    /// Fixed cost of launching one ND-range.
    pub launch_overhead_ns: f64,
    /// Time for one lane to retire one abstract instruction.
    pub ns_per_op: f64,
    /// Fraction of peak throughput actually achieved (memory stalls etc.).
    pub efficiency: f64,
    /// Extra per-work-group scheduling cost.
    pub group_schedule_ns: f64,
}

impl CostModel {
    /// Discrete GPU over a PCIe-3-like link: ~12 GB/s transfers, huge
    /// arithmetic throughput, noticeable launch latency.
    pub fn gpu_pcie() -> CostModel {
        CostModel {
            transfer_latency_ns: 10_000.0,
            transfer_ns_per_byte: 0.085, // ≈ 11.8 GB/s
            launch_overhead_ns: 9_000.0,
            ns_per_op: 1.0, // ~1 GHz per lane
            efficiency: 0.35,
            group_schedule_ns: 40.0,
        }
    }

    /// CPU device sharing memory with the host: transfers are little more
    /// than a `memcpy`, launches are cheap, but there are few lanes.
    pub fn cpu_shared() -> CostModel {
        CostModel {
            transfer_latency_ns: 1_200.0,
            transfer_ns_per_byte: 0.012, // ≈ 83 GB/s memcpy
            launch_overhead_ns: 2_500.0,
            ns_per_op: 0.30, // ~3.3 GHz per lane
            efficiency: 0.85,
            group_schedule_ns: 120.0,
        }
    }

    /// PCIe co-processor (Xeon Phi-like): between the two above.
    pub fn accelerator_pcie() -> CostModel {
        CostModel {
            transfer_latency_ns: 12_000.0,
            transfer_ns_per_byte: 0.12,
            launch_overhead_ns: 11_000.0,
            ns_per_op: 0.95,
            efficiency: 0.5,
            group_schedule_ns: 60.0,
        }
    }

    /// Virtual time to move `bytes` across the host↔device boundary.
    pub fn transfer_ns(&self, bytes: usize) -> f64 {
        self.transfer_latency_ns + bytes as f64 * self.transfer_ns_per_byte
    }

    /// Virtual time for an ND-range, given the per-work-group op counts
    /// gathered by the interpreter, the work-group size, and the device's
    /// lane count.
    ///
    /// Work-groups are scheduled onto compute units in waves: each compute
    /// unit takes one group at a time and needs
    /// `group_ops / (occupied_lanes × efficiency)` lane-steps to retire it,
    /// where a group can occupy at most `items_per_group` of the CU's SIMD
    /// lanes — a one-item group runs on a single lane, which is exactly why
    /// gang-only OpenACC mappings and sequential fallbacks are slow on wide
    /// devices. The total is the makespan of a greedy
    /// longest-processing-time schedule, approximated by
    /// `max(critical_group, total/parallelism)` — exact enough for figure
    /// shapes and cheap to compute.
    pub fn kernel_ns(
        &self,
        group_ops: &[u64],
        items_per_group: usize,
        compute_units: usize,
        simd_width: usize,
    ) -> f64 {
        if group_ops.is_empty() {
            return self.launch_overhead_ns;
        }
        let lanes = simd_width.min(items_per_group.max(1));
        let per_lane = self.ns_per_op / self.efficiency;
        let group_time = |ops: u64| -> f64 {
            // A group runs on one CU; its items are spread over the CU's
            // SIMD lanes. Rounding up models partial waves inside the CU.
            (ops as f64 / lanes as f64).ceil() * per_lane + self.group_schedule_ns
        };
        let total: f64 = group_ops.iter().map(|&g| group_time(g)).sum();
        let longest = group_ops
            .iter()
            .map(|&g| group_time(g))
            .fold(0.0_f64, f64::max);
        let ideal = total / compute_units as f64;
        self.launch_overhead_ns + ideal.max(longest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_is_affine_in_bytes() {
        let m = CostModel::gpu_pcie();
        let a = m.transfer_ns(0);
        let b = m.transfer_ns(1000);
        let c = m.transfer_ns(2000);
        assert!((c - b) - (b - a) < 1e-9);
        assert!((a - m.transfer_latency_ns).abs() < 1e-9);
    }

    #[test]
    fn empty_ndrange_costs_only_launch_overhead() {
        let m = CostModel::cpu_shared();
        assert!((m.kernel_ns(&[], 8, 4, 8) - m.launch_overhead_ns).abs() < 1e-9);
    }

    #[test]
    fn imbalanced_groups_are_bound_by_longest_group() {
        let m = CostModel::gpu_pcie();
        // One giant group amid many tiny ones: makespan ≈ giant group.
        let mut groups = vec![10u64; 100];
        groups.push(1_000_000);
        let t = m.kernel_ns(&groups, 64, 44, 64);
        let alone = m.kernel_ns(&[1_000_000], 64, 44, 64);
        assert!(t >= alone * 0.99);
    }

    #[test]
    fn more_compute_units_means_less_time_for_balanced_work() {
        let m = CostModel::gpu_pcie();
        let groups = vec![1000u64; 512];
        let wide = m.kernel_ns(&groups, 64, 44, 64);
        let narrow = m.kernel_ns(&groups, 64, 4, 64);
        assert!(wide < narrow);
    }

    #[test]
    fn one_item_groups_use_one_lane() {
        let m = CostModel::gpu_pcie();
        // Compare compute time net of the fixed launch overhead.
        let full = m.kernel_ns(&[6400u64; 8], 64, 44, 64) - m.launch_overhead_ns;
        let single = m.kernel_ns(&[6400u64; 8], 1, 44, 64) - m.launch_overhead_ns;
        assert!(single > 10.0 * full, "single {single} !>> full {full}");
    }

    #[test]
    fn kernel_time_scales_roughly_linearly_with_ops() {
        let m = CostModel::cpu_shared();
        let one = m.kernel_ns(&vec![10_000u64; 64], 8, 4, 8) - m.launch_overhead_ns;
        let two = m.kernel_ns(&vec![20_000u64; 64], 8, 4, 8) - m.launch_overhead_ns;
        // Per-group scheduling overhead keeps the ratio slightly below 2.
        let ratio = two / one;
        assert!(ratio > 1.6 && ratio < 2.2, "ratio was {ratio}");
    }
}
