//! Host-side byte conversion helpers.
//!
//! OpenCL buffers are untyped byte ranges; host code is responsible for the
//! layout. These helpers centralise the little-endian conversions used by
//! hosts, the flattening layer, and tests.

/// Pack an `f32` slice into little-endian bytes.
pub fn f32_to_bytes(vals: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Unpack little-endian bytes into `f32`s. Trailing partial elements are
/// ignored (mirrors reading a deliberately oversized buffer).
pub fn bytes_to_f32(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect()
}

/// Pack an `i32` slice into little-endian bytes.
pub fn i32_to_bytes(vals: &[i32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Unpack little-endian bytes into `i32`s.
pub fn bytes_to_i32(bytes: &[u8]) -> Vec<i32> {
    bytes
        .chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect()
}

/// Pack a `u32` slice into little-endian bytes.
pub fn u32_to_bytes(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Unpack little-endian bytes into `u32`s.
pub fn bytes_to_u32(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip() {
        let vals = vec![0.0, -1.5, 3.25, f32::MAX];
        assert_eq!(bytes_to_f32(&f32_to_bytes(&vals)), vals);
    }

    #[test]
    fn i32_roundtrip() {
        let vals = vec![0, -1, i32::MAX, i32::MIN];
        assert_eq!(bytes_to_i32(&i32_to_bytes(&vals)), vals);
    }

    #[test]
    fn u32_roundtrip() {
        let vals = vec![0, 1, u32::MAX];
        assert_eq!(bytes_to_u32(&u32_to_bytes(&vals)), vals);
    }

    #[test]
    fn trailing_bytes_are_ignored() {
        let mut bytes = f32_to_bytes(&[1.0]);
        bytes.push(0xff);
        assert_eq!(bytes_to_f32(&bytes), vec![1.0]);
    }
}
