//! Deterministic fault injection.
//!
//! Real heterogeneous runtimes treat device failure as a schedulable
//! event: queues fill up, drivers reset, accelerators fall off the bus.
//! This module lets a test (or the bench harness's *chaos mode*) schedule
//! exactly such events inside the simulator — **deterministically**. A
//! [`FaultPlan`] names which operations fail and how; a [`FaultInjector`]
//! built from the plan attaches to a [`crate::CommandQueue`] (and/or a
//! [`crate::Context`] for build faults) and fires them as the run reaches
//! the scheduled operation indices. Because the simulator executes on a
//! virtual clock and queue operations happen in program order, the same
//! plan against the same workload injects the same faults at the same
//! virtual instants on every machine.
//!
//! Two fault classes exist, matching the two recovery strategies above
//! the simulator:
//!
//! * **Transient** ([`InjectedFault::Transient`]): the operation fails
//!   once with [`ClError::DeviceBusy`]; the *re-issued* operation
//!   consumes the next operation index and (normally) succeeds. The
//!   recovery layer answers with bounded retries and virtual-clock
//!   backoff.
//! * **Permanent** ([`InjectedFault::DeviceLost`]): the device is gone.
//!   Every subsequent upload, dispatch, or build through this injector
//!   fails with [`ClError::DeviceLost`] — except **read-backs**, which
//!   stay available as a rescue path so device-resident data can be
//!   evacuated before failing over to another device.
//!
//! An injector with no plan (or a detached/disabled injector) is
//! completely inert: checks are a branch on an `Option`, no fault is
//! recorded, and a traced run produces byte-identical output to a run
//! without any injector.

use crate::error::{ClError, ClResult};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use trace::{SpanKind, TraceEvent, TraceSink};

/// The operation classes a fault can be scheduled on. Each class has its
/// own monotonically increasing operation counter inside the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Host→device buffer write (`enqueue_write_buffer`).
    Upload,
    /// Device→host buffer read (`enqueue_read_buffer`).
    Readback,
    /// ND-range kernel dispatch (`enqueue_nd_range`).
    Enqueue,
    /// Program compilation (`Program::build`).
    Build,
}

impl FaultOp {
    /// Stable lowercase name (used as the trace-event label).
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::Upload => "upload",
            FaultOp::Readback => "readback",
            FaultOp::Enqueue => "enqueue",
            FaultOp::Build => "build",
        }
    }

    fn slot(self) -> usize {
        match self {
            FaultOp::Upload => 0,
            FaultOp::Readback => 1,
            FaultOp::Enqueue => 2,
            FaultOp::Build => 3,
        }
    }
}

/// What happens when a scheduled fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Fail this one operation with [`ClError::DeviceBusy`]; later
    /// operations are unaffected.
    Transient,
    /// Mark the device lost: this and every later non-readback operation
    /// fails with [`ClError::DeviceLost`].
    DeviceLost,
    /// Kill the *actor* issuing the operation (not the device): the
    /// operation never executes and the calling thread dies — by panic or
    /// by abrupt error exit, per [`KillMode`]. The device itself stays
    /// healthy, so a supervisor can restart the actor against the same
    /// device and resume from a checkpoint.
    Kill(KillMode),
}

/// How an [`InjectedFault::Kill`] terminates the issuing actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillMode {
    /// The fault check panics with a downcastable [`KillPanic`] payload —
    /// modelling an actor whose thread dies unwinding (a bug, an
    /// assertion). Supervisors recognise the payload via
    /// [`std::panic::catch_unwind`].
    Panic,
    /// The fault check returns [`ClError::ActorKilled`] — modelling an
    /// actor that exits abruptly without unwinding. The actor is expected
    /// to propagate the error straight out of its behaviour (no retry,
    /// no failover, no channel poisoning) so its supervisor observes a
    /// plain abnormal exit.
    Exit,
}

impl KillMode {
    /// Stable lowercase name (used as a trace-event argument).
    pub fn name(self) -> &'static str {
        match self {
            KillMode::Panic => "panic",
            KillMode::Exit => "exit",
        }
    }
}

/// The panic payload carried by an [`InjectedFault::Kill`] in
/// [`KillMode::Panic`] mode. Supervisors downcast the payload of a caught
/// unwind to this type to distinguish an injected kill from a genuine
/// actor bug.
#[derive(Debug, Clone)]
pub struct KillPanic {
    /// Device whose operation the kill was scheduled on.
    pub device: String,
    /// Operation class the kill fired on.
    pub op: FaultOp,
    /// Operation index it fired at.
    pub index: u64,
}

impl std::fmt::Display for KillPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected kill at {} #{} on device `{}`",
            self.op.name(),
            self.index,
            self.device
        )
    }
}

/// Install a process-wide panic hook that suppresses the default
/// "thread panicked" stderr report for [`KillPanic`] payloads only; every
/// other panic is reported exactly as before. Idempotent — the hook is
/// installed once per process. Kill-chaos runs call this so hundreds of
/// *scheduled* actor deaths don't flood stderr while genuine panics stay
/// loud.
pub fn silence_kill_panics() {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<KillPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// One scheduled fault: the `index`-th operation of class `op` (counting
/// from 0, per injector) fails with `fault`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Operation class the fault is scheduled on.
    pub op: FaultOp,
    /// Zero-based index into that class's operation sequence.
    pub index: u64,
    /// Fault class to inject.
    pub fault: InjectedFault,
}

/// Seeded pseudo-random transient faults: operation `(op, index)` fails
/// when a hash of `(seed, op, index)` lands in the 1-in-`period` window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Seeded {
    seed: u64,
    period: u64,
}

/// Seeded pseudo-random actor kills (see [`FaultPlan::seeded_kills`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SeededKills {
    seed: u64,
    period: u64,
    max_kills: u64,
}

/// A deterministic schedule of faults.
///
/// Plans combine explicitly scheduled faults ([`FaultPlan::fail`]) with
/// an optional seeded transient schedule
/// ([`FaultPlan::seeded_transient`]); explicit entries take precedence at
/// indices where both would fire. An empty plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    explicit: Vec<FaultSpec>,
    seeded: Option<Seeded>,
    kills: Option<SeededKills>,
}

/// SplitMix64 — the classic 64-bit finaliser; good avalanche, no state,
/// no dependency. Identical on every platform.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule `fault` on the `index`-th operation of class `op`
    /// (builder style).
    pub fn fail(mut self, op: FaultOp, index: u64, fault: InjectedFault) -> FaultPlan {
        self.explicit.push(FaultSpec { op, index, fault });
        self
    }

    /// A plan of seeded transient faults: roughly one in `period`
    /// upload/readback/enqueue operations fails with
    /// [`ClError::DeviceBusy`], chosen by a deterministic hash of
    /// `(seed, op, index)`. Build operations are never hit (a kernel
    /// compiles once per actor, so a seeded build fault would dominate
    /// small schedules). `period` is clamped to at least 2.
    pub fn seeded_transient(seed: u64, period: u64) -> FaultPlan {
        FaultPlan {
            explicit: Vec::new(),
            seeded: Some(Seeded {
                seed,
                period: period.max(2),
            }),
            kills: None,
        }
    }

    /// Add a seeded actor-kill schedule (builder style): roughly one in
    /// `period` upload/enqueue operations kills the issuing actor, the
    /// mode (panic vs abrupt exit) chosen by the same deterministic hash.
    /// At most `max_kills` kills fire per injector (counting explicit
    /// [`InjectedFault::Kill`] entries too), bounding how much restart
    /// budget a long schedule can consume.
    ///
    /// Only [`FaultOp::Upload`] and [`FaultOp::Enqueue`] are eligible:
    /// read-backs are the rescue/evacuation path (and run on host-side
    /// actors during `mov` force-host, where an injected death has no
    /// supervised kernel actor to restart), and builds happen once per
    /// actor, exactly as for [`FaultPlan::seeded_transient`].
    pub fn seeded_kills(mut self, seed: u64, period: u64, max_kills: u64) -> FaultPlan {
        self.kills = Some(SeededKills {
            seed,
            period: period.max(2),
            max_kills,
        });
        self
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.explicit.is_empty() && self.seeded.is_none() && self.kills.is_none()
    }

    fn lookup(&self, op: FaultOp, index: u64) -> Option<InjectedFault> {
        if let Some(s) = self
            .explicit
            .iter()
            .find(|s| s.op == op && s.index == index)
        {
            return Some(s.fault);
        }
        let seeded = self.seeded?;
        if op == FaultOp::Build {
            return None;
        }
        let h = splitmix64(
            seeded
                .seed
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                .wrapping_add((op.slot() as u64) << 32)
                .wrapping_add(index),
        );
        h.is_multiple_of(seeded.period)
            .then_some(InjectedFault::Transient)
    }

    /// The seeded-kill schedule's verdict for `(op, index)`, ignoring the
    /// `max_kills` cap (the injector enforces that statefully).
    fn lookup_kill(&self, op: FaultOp, index: u64) -> Option<KillMode> {
        let kills = self.kills?;
        if !matches!(op, FaultOp::Upload | FaultOp::Enqueue) {
            return None;
        }
        let h = splitmix64(
            kills
                .seed
                .wrapping_mul(0x9e6c_5860_6ee3_14a5)
                .wrapping_add((op.slot() as u64) << 40)
                .wrapping_add(index),
        );
        h.is_multiple_of(kills.period).then_some(if (h >> 17) & 1 == 0 {
            KillMode::Panic
        } else {
            KillMode::Exit
        })
    }

    fn max_kills(&self) -> u64 {
        self.kills.map(|k| k.max_kills).unwrap_or(u64::MAX)
    }
}

/// A fault that actually fired, as recorded by the injector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionRecord {
    /// Operation class the fault fired on.
    pub op: FaultOp,
    /// Operation index it fired at.
    pub index: u64,
    /// Whether the fault was transient (retryable).
    pub transient: bool,
    /// The error the operation returned.
    pub error: ClError,
}

#[derive(Debug)]
struct InjectorInner {
    plan: FaultPlan,
    /// Per-[`FaultOp`] operation counters (see [`FaultOp::slot`]).
    counters: [AtomicU64; 4],
    /// Latched by a fired [`InjectedFault::DeviceLost`].
    device_lost: AtomicBool,
    /// Kills fired so far (seeded kills stop once the plan's cap is hit).
    kills_fired: AtomicU64,
    records: Mutex<Vec<InjectionRecord>>,
    trace: Mutex<TraceSink>,
}

/// A shared, cloneable fault source built from a [`FaultPlan`].
///
/// Attach it to a queue with [`crate::CommandQueue::attach_faults`]
/// and/or a context with [`crate::Context::attach_faults`]; all clones
/// share the same counters, so one injector attached to both sees one
/// consistent operation sequence. [`FaultInjector::disabled`] (the
/// default attachment everywhere) is inert and free.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<InjectorInner>>,
}

impl FaultInjector {
    /// An injector that fires `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            inner: Some(Arc::new(InjectorInner {
                plan,
                counters: [
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                ],
                device_lost: AtomicBool::new(false),
                kills_fired: AtomicU64::new(0),
                records: Mutex::new(Vec::new()),
                trace: Mutex::new(TraceSink::disabled()),
            })),
        }
    }

    /// An inert injector (never fires; checks cost one `Option` branch).
    pub fn disabled() -> FaultInjector {
        FaultInjector { inner: None }
    }

    /// Whether this injector can fire faults.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a trace sink: every fired fault is then also recorded as a
    /// [`SpanKind::FaultInjected`] instant on the device's track at the
    /// queue's virtual timestamp. Shared by all clones.
    pub fn attach_trace(&self, sink: TraceSink) {
        if let Some(inner) = &self.inner {
            *inner.trace.lock() = sink;
        }
    }

    /// Consume one operation index of class `op` and fail if the plan
    /// scheduled a fault there (or the device is already lost).
    ///
    /// `device` names the track for trace instants; `now_ns` is the
    /// issuing queue's current virtual time. Called by the simulator at
    /// the top of each instrumented entry point — user code does not
    /// normally call this.
    pub fn check(&self, op: FaultOp, device: &str, now_ns: f64) -> ClResult<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        // A lost device refuses everything except rescue read-backs.
        if inner.device_lost.load(Ordering::Acquire) && op != FaultOp::Readback {
            return Err(ClError::DeviceLost {
                device: device.to_string(),
            });
        }
        let index = inner.counters[op.slot()].fetch_add(1, Ordering::AcqRel);
        let fault = match inner.plan.lookup(op, index) {
            Some(f) => f,
            None => {
                // Seeded kills respect the plan's cap: once `max_kills`
                // have fired (from any source), the schedule goes quiet.
                let under_cap =
                    inner.kills_fired.load(Ordering::Acquire) < inner.plan.max_kills();
                match inner.plan.lookup_kill(op, index).filter(|_| under_cap) {
                    Some(mode) => InjectedFault::Kill(mode),
                    None => return Ok(()),
                }
            }
        };
        let mut kill_mode = None;
        let (transient, error) = match fault {
            InjectedFault::Transient => (
                true,
                ClError::DeviceBusy {
                    device: device.to_string(),
                },
            ),
            InjectedFault::DeviceLost => {
                inner.device_lost.store(true, Ordering::Release);
                (
                    false,
                    ClError::DeviceLost {
                        device: device.to_string(),
                    },
                )
            }
            InjectedFault::Kill(mode) => {
                inner.kills_fired.fetch_add(1, Ordering::AcqRel);
                kill_mode = Some(mode);
                (
                    false,
                    ClError::ActorKilled {
                        device: device.to_string(),
                    },
                )
            }
        };
        inner.records.lock().push(InjectionRecord {
            op,
            index,
            transient,
            error: error.clone(),
        });
        {
            let trace = inner.trace.lock();
            if trace.is_enabled() {
                let mut ev =
                    TraceEvent::instant(SpanKind::FaultInjected, op.name(), device, now_ns)
                        .with_arg("index", index)
                        .with_arg("transient", transient)
                        .with_arg("error", &error);
                if let Some(mode) = kill_mode {
                    ev = ev.with_arg("kill", mode.name());
                }
                trace.record(ev);
            }
        }
        if let Some(KillMode::Panic) = kill_mode {
            // The actor dies unwinding; the supervisor downcasts this
            // payload out of `catch_unwind` to recognise the injected
            // kill. Locks above are scoped so nothing is held here.
            std::panic::panic_any(KillPanic {
                device: device.to_string(),
                op,
                index,
            });
        }
        Err(error)
    }

    /// Every fault fired so far, in firing order.
    pub fn records(&self) -> Vec<InjectionRecord> {
        match &self.inner {
            Some(inner) => inner.records.lock().clone(),
            None => Vec::new(),
        }
    }

    /// Number of faults fired so far.
    pub fn injected_count(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.records.lock().len(),
            None => 0,
        }
    }

    /// Number of [`InjectedFault::Kill`] faults fired so far.
    pub fn kill_count(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.kills_fired.load(Ordering::Acquire) as usize,
            None => 0,
        }
    }

    /// Whether a [`InjectedFault::DeviceLost`] has fired.
    pub fn device_is_lost(&self) -> bool {
        match &self.inner {
            Some(inner) => inner.device_lost.load(Ordering::Acquire),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let inj = FaultInjector::new(FaultPlan::new());
        for i in 0..100 {
            assert!(inj.check(FaultOp::Upload, "gpu", i as f64).is_ok());
        }
        assert_eq!(inj.injected_count(), 0);
    }

    #[test]
    fn disabled_injector_is_inert() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_enabled());
        assert!(inj.check(FaultOp::Enqueue, "gpu", 0.0).is_ok());
        assert!(inj.records().is_empty());
    }

    #[test]
    fn explicit_transient_fires_once_at_its_index() {
        let inj =
            FaultInjector::new(FaultPlan::new().fail(FaultOp::Upload, 2, InjectedFault::Transient));
        assert!(inj.check(FaultOp::Upload, "gpu", 0.0).is_ok()); // 0
        assert!(inj.check(FaultOp::Upload, "gpu", 0.0).is_ok()); // 1
        let err = inj.check(FaultOp::Upload, "gpu", 0.0).unwrap_err(); // 2
        assert!(err.is_transient());
        assert!(inj.check(FaultOp::Upload, "gpu", 0.0).is_ok()); // 3 (the retry)
        assert_eq!(inj.injected_count(), 1);
        // Other op classes have independent counters.
        assert!(inj.check(FaultOp::Enqueue, "gpu", 0.0).is_ok());
    }

    #[test]
    fn device_lost_latches_but_readback_survives() {
        let inj = FaultInjector::new(FaultPlan::new().fail(
            FaultOp::Enqueue,
            0,
            InjectedFault::DeviceLost,
        ));
        let err = inj.check(FaultOp::Enqueue, "gpu", 0.0).unwrap_err();
        assert!(matches!(err, ClError::DeviceLost { .. }));
        assert!(!err.is_transient());
        assert!(inj.device_is_lost());
        // Everything but readback now fails…
        assert!(inj.check(FaultOp::Upload, "gpu", 0.0).is_err());
        assert!(inj.check(FaultOp::Enqueue, "gpu", 0.0).is_err());
        assert!(inj.check(FaultOp::Build, "gpu", 0.0).is_err());
        // …but the rescue path stays open.
        assert!(inj.check(FaultOp::Readback, "gpu", 0.0).is_ok());
        // Only the scheduled fault is recorded, not its aftermath.
        assert_eq!(inj.injected_count(), 1);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_fire() {
        let plan = FaultPlan::seeded_transient(42, 5);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        for _ in 0..200 {
            let ra = a.check(FaultOp::Upload, "gpu", 0.0);
            let rb = b.check(FaultOp::Upload, "gpu", 0.0);
            assert_eq!(ra.is_ok(), rb.is_ok());
        }
        assert_eq!(a.records(), b.records());
        let n = a.injected_count();
        assert!(n > 0, "a 1-in-5 schedule must fire within 200 ops");
        assert!(n < 200, "must not fire on every op");
        // Different seeds give different schedules.
        let c = FaultInjector::new(FaultPlan::seeded_transient(43, 5));
        for _ in 0..200 {
            let _ = c.check(FaultOp::Upload, "gpu", 0.0);
        }
        let idx =
            |inj: &FaultInjector| -> Vec<u64> { inj.records().iter().map(|r| r.index).collect() };
        assert_ne!(idx(&a), idx(&c));
    }

    #[test]
    fn seeded_plans_never_hit_build() {
        let inj = FaultInjector::new(FaultPlan::seeded_transient(7, 2));
        for i in 0..500 {
            assert!(inj.check(FaultOp::Build, "gpu", i as f64).is_ok());
        }
    }

    #[test]
    fn fired_faults_are_traced_as_instants() {
        let sink = TraceSink::new();
        let inj =
            FaultInjector::new(FaultPlan::new().fail(FaultOp::Upload, 0, InjectedFault::Transient));
        inj.attach_trace(sink.clone());
        inj.check(FaultOp::Upload, "Virtual GPU", 123.0)
            .unwrap_err();
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, SpanKind::FaultInjected);
        assert_eq!(events[0].track, "Virtual GPU");
        assert_eq!(events[0].ts_ns, 123.0);
        // Fault instants never contribute to figure segments.
        assert_eq!(sink.segments().total_ns(), 0.0);
    }
}
