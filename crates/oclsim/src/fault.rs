//! Deterministic fault injection.
//!
//! Real heterogeneous runtimes treat device failure as a schedulable
//! event: queues fill up, drivers reset, accelerators fall off the bus.
//! This module lets a test (or the bench harness's *chaos mode*) schedule
//! exactly such events inside the simulator — **deterministically**. A
//! [`FaultPlan`] names which operations fail and how; a [`FaultInjector`]
//! built from the plan attaches to a [`crate::CommandQueue`] (and/or a
//! [`crate::Context`] for build faults) and fires them as the run reaches
//! the scheduled operation indices. Because the simulator executes on a
//! virtual clock and queue operations happen in program order, the same
//! plan against the same workload injects the same faults at the same
//! virtual instants on every machine.
//!
//! The fail-stop fault classes match the two recovery strategies above
//! the simulator:
//!
//! * **Transient** ([`InjectedFault::Transient`]): the operation fails
//!   once with [`ClError::DeviceBusy`]; the *re-issued* operation
//!   consumes the next operation index and (normally) succeeds. The
//!   recovery layer answers with bounded retries and virtual-clock
//!   backoff.
//! * **Permanent** ([`InjectedFault::DeviceLost`]): the device is gone.
//!   Every subsequent upload, dispatch, or build through this injector
//!   fails with [`ClError::DeviceLost`] — except **read-backs**, which
//!   stay available as a rescue path so device-resident data can be
//!   evacuated before failing over to another device.
//!
//! Beyond fail-stop, three *non-fail-stop* classes model failures that
//! never raise an error at the point of injection:
//!
//! * **Silent corruption** ([`InjectedFault::Corrupt`]): a seeded bit
//!   flips at an upload/enqueue/readback seam and the operation
//!   *succeeds*. Defense lives in the queue's integrity layer: uploads
//!   record provenance checksums, readbacks and dispatches verify them,
//!   and a mismatch surfaces as [`ClError::IntegrityViolation`] after
//!   the buffer has been restored from its host shadow.
//! * **Slowdown** ([`InjectedFault::Slowdown`]): the command completes
//!   correctly but its virtual-clock cost is multiplied — a straggling
//!   kernel. The queue's per-dispatch watchdog converts a blown budget
//!   into [`ClError::Straggler`] for the failover path.
//! * **Hang** ([`InjectedFault::Hang`]): the command stalls on the
//!   *wall* clock (bounded by the plan's hang cap, cancellable via
//!   [`FaultInjector::cancel_hangs`]) and then completes normally; the
//!   virtual clock never moves, so outputs and virtual timings stay
//!   byte-identical while serving-path latency balloons — the scenario
//!   hedged re-dispatch exists for.
//!
//! An injector with no plan (or a detached/disabled injector) is
//! completely inert: checks are a branch on an `Option`, no fault is
//! recorded, and a traced run produces byte-identical output to a run
//! without any injector.

use crate::error::{ClError, ClResult};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use trace::{SpanKind, TraceEvent, TraceSink};

/// The operation classes a fault can be scheduled on. Each class has its
/// own monotonically increasing operation counter inside the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Host→device buffer write (`enqueue_write_buffer`).
    Upload,
    /// Device→host buffer read (`enqueue_read_buffer`).
    Readback,
    /// ND-range kernel dispatch (`enqueue_nd_range`).
    Enqueue,
    /// Program compilation (`Program::build`).
    Build,
}

impl FaultOp {
    /// Stable lowercase name (used as the trace-event label).
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::Upload => "upload",
            FaultOp::Readback => "readback",
            FaultOp::Enqueue => "enqueue",
            FaultOp::Build => "build",
        }
    }

    fn slot(self) -> usize {
        match self {
            FaultOp::Upload => 0,
            FaultOp::Readback => 1,
            FaultOp::Enqueue => 2,
            FaultOp::Build => 3,
        }
    }
}

/// What happens when a scheduled fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Fail this one operation with [`ClError::DeviceBusy`]; later
    /// operations are unaffected.
    Transient,
    /// Mark the device lost: this and every later non-readback operation
    /// fails with [`ClError::DeviceLost`].
    DeviceLost,
    /// Kill the *actor* issuing the operation (not the device): the
    /// operation never executes and the calling thread dies — by panic or
    /// by abrupt error exit, per [`KillMode`]. The device itself stays
    /// healthy, so a supervisor can restart the actor against the same
    /// device and resume from a checkpoint.
    Kill(KillMode),
    /// Silently flip one seeded bit of the operation's payload; the
    /// operation itself *succeeds*. Only the integrity layer's
    /// provenance checksums can tell. Meaningful on
    /// [`FaultOp::Upload`]/[`FaultOp::Enqueue`]/[`FaultOp::Readback`];
    /// ignored on [`FaultOp::Build`].
    Corrupt,
    /// Multiply this command's virtual-clock cost by the given factor —
    /// a straggling kernel that answers correctly but late. Surfaces as
    /// [`ClError::Straggler`] only if the queue's per-dispatch watchdog
    /// budget is armed and exceeded.
    Slowdown(u32),
    /// Stall the issuing thread on the *wall* clock (up to the plan's
    /// hang cap, or until [`FaultInjector::cancel_hangs`]), then let the
    /// operation proceed normally. The virtual clock is untouched.
    Hang,
}

/// How an [`InjectedFault::Kill`] terminates the issuing actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillMode {
    /// The fault check panics with a downcastable [`KillPanic`] payload —
    /// modelling an actor whose thread dies unwinding (a bug, an
    /// assertion). Supervisors recognise the payload via
    /// [`std::panic::catch_unwind`].
    Panic,
    /// The fault check returns [`ClError::ActorKilled`] — modelling an
    /// actor that exits abruptly without unwinding. The actor is expected
    /// to propagate the error straight out of its behaviour (no retry,
    /// no failover, no channel poisoning) so its supervisor observes a
    /// plain abnormal exit.
    Exit,
}

impl KillMode {
    /// Stable lowercase name (used as a trace-event argument).
    pub fn name(self) -> &'static str {
        match self {
            KillMode::Panic => "panic",
            KillMode::Exit => "exit",
        }
    }
}

/// The panic payload carried by an [`InjectedFault::Kill`] in
/// [`KillMode::Panic`] mode. Supervisors downcast the payload of a caught
/// unwind to this type to distinguish an injected kill from a genuine
/// actor bug.
#[derive(Debug, Clone)]
pub struct KillPanic {
    /// Device whose operation the kill was scheduled on.
    pub device: String,
    /// Operation class the kill fired on.
    pub op: FaultOp,
    /// Operation index it fired at.
    pub index: u64,
}

impl std::fmt::Display for KillPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected kill at {} #{} on device `{}`",
            self.op.name(),
            self.index,
            self.device
        )
    }
}

/// Install a process-wide panic hook that suppresses the default
/// "thread panicked" stderr report for [`KillPanic`] payloads only; every
/// other panic is reported exactly as before. Idempotent — the hook is
/// installed once per process. Kill-chaos runs call this so hundreds of
/// *scheduled* actor deaths don't flood stderr while genuine panics stay
/// loud.
pub fn silence_kill_panics() {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<KillPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// One scheduled fault: the `index`-th operation of class `op` (counting
/// from 0, per injector) fails with `fault`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Operation class the fault is scheduled on.
    pub op: FaultOp,
    /// Zero-based index into that class's operation sequence.
    pub index: u64,
    /// Fault class to inject.
    pub fault: InjectedFault,
}

/// Seeded pseudo-random transient faults: operation `(op, index)` fails
/// when a hash of `(seed, op, index)` lands in the 1-in-`period` window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Seeded {
    seed: u64,
    period: u64,
}

/// Seeded pseudo-random actor kills (see [`FaultPlan::seeded_kills`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SeededKills {
    seed: u64,
    period: u64,
    max_kills: u64,
}

/// Seeded pseudo-random silent corruption (see
/// [`FaultPlan::seeded_corrupt`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SeededCorrupt {
    seed: u64,
    period: u64,
}

/// Seeded pseudo-random straggling dispatches (see
/// [`FaultPlan::seeded_stragglers`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SeededStragglers {
    seed: u64,
    period: u64,
    factor: u32,
}

/// A [`FaultPlan`] constructor was given degenerate parameters (e.g. a
/// seeded schedule with `period == 0`, which could never pick a 1-in-0
/// window, or a kill schedule capped at zero kills). Returned instead of
/// silently building a plan that injects nothing — a chaos run that
/// *thinks* it is testing recovery but isn't is worse than no run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfigError {
    /// Which constructor rejected its parameters.
    pub what: &'static str,
    /// Why the parameters are degenerate.
    pub reason: String,
}

impl std::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid fault plan ({}): {}", self.what, self.reason)
    }
}

impl std::error::Error for FaultConfigError {}

fn check_period(what: &'static str, period: u64) -> Result<(), FaultConfigError> {
    if period < 2 {
        return Err(FaultConfigError {
            what,
            reason: format!(
                "period must be >= 2, got {period} (0 never fires; 1 faults every \
                 operation including the recovery retries, so no schedule can complete)"
            ),
        });
    }
    Ok(())
}

/// A deterministic schedule of faults.
///
/// Plans combine explicitly scheduled faults ([`FaultPlan::fail`]) with
/// optional seeded schedules ([`FaultPlan::seeded_transient`],
/// [`FaultPlan::seeded_kills`], [`FaultPlan::seeded_corrupt`],
/// [`FaultPlan::seeded_stragglers`]); explicit entries take precedence
/// at indices where both would fire. An empty plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    explicit: Vec<FaultSpec>,
    seeded: Option<Seeded>,
    kills: Option<SeededKills>,
    corrupt: Option<SeededCorrupt>,
    stragglers: Option<SeededStragglers>,
    /// Wall-clock cap on one [`InjectedFault::Hang`] stall, in
    /// milliseconds. `None` uses [`FaultPlan::DEFAULT_HANG_CAP_MS`].
    hang_cap_ms: Option<u64>,
}

/// SplitMix64 — the classic 64-bit finaliser; good avalanche, no state,
/// no dependency. Identical on every platform.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// Default wall-clock cap on one [`InjectedFault::Hang`] stall.
    pub const DEFAULT_HANG_CAP_MS: u64 = 2_000;

    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule `fault` on the `index`-th operation of class `op`
    /// (builder style).
    pub fn fail(mut self, op: FaultOp, index: u64, fault: InjectedFault) -> FaultPlan {
        self.explicit.push(FaultSpec { op, index, fault });
        self
    }

    /// A plan of seeded transient faults: roughly one in `period`
    /// upload/readback/enqueue operations fails with
    /// [`ClError::DeviceBusy`], chosen by a deterministic hash of
    /// `(seed, op, index)`. Build operations are never hit (a kernel
    /// compiles once per actor, so a seeded build fault would dominate
    /// small schedules). `period < 2` is a configuration error: 0 never
    /// fires and 1 faults every operation including the recovery
    /// retries, so no schedule could complete.
    pub fn seeded_transient(seed: u64, period: u64) -> Result<FaultPlan, FaultConfigError> {
        check_period("seeded_transient", period)?;
        Ok(FaultPlan {
            seeded: Some(Seeded { seed, period }),
            ..FaultPlan::default()
        })
    }

    /// Add a seeded actor-kill schedule (builder style): roughly one in
    /// `period` upload/enqueue operations kills the issuing actor, the
    /// mode (panic vs abrupt exit) chosen by the same deterministic hash.
    /// At most `max_kills` kills fire per injector (counting explicit
    /// [`InjectedFault::Kill`] entries too), bounding how much restart
    /// budget a long schedule can consume.
    ///
    /// Only [`FaultOp::Upload`] and [`FaultOp::Enqueue`] are eligible:
    /// read-backs are the rescue/evacuation path (and run on host-side
    /// actors during `mov` force-host, where an injected death has no
    /// supervised kernel actor to restart), and builds happen once per
    /// actor, exactly as for [`FaultPlan::seeded_transient`].
    ///
    /// `period < 2` or `max_kills == 0` are configuration errors — a
    /// kill schedule capped at zero kills is a chaos run that tests
    /// nothing.
    pub fn seeded_kills(
        mut self,
        seed: u64,
        period: u64,
        max_kills: u64,
    ) -> Result<FaultPlan, FaultConfigError> {
        check_period("seeded_kills", period)?;
        if max_kills == 0 {
            return Err(FaultConfigError {
                what: "seeded_kills",
                reason: "max_kills must be >= 1 (a schedule capped at zero kills \
                         injects nothing)"
                    .to_string(),
            });
        }
        self.kills = Some(SeededKills {
            seed,
            period,
            max_kills,
        });
        Ok(self)
    }

    /// Add a seeded silent-corruption schedule (builder style): roughly
    /// one in `period` upload/enqueue/readback operations flips one
    /// deterministic bit of its payload and *succeeds*. Builds are never
    /// hit. `period < 2` is a configuration error.
    pub fn seeded_corrupt(
        mut self,
        seed: u64,
        period: u64,
    ) -> Result<FaultPlan, FaultConfigError> {
        check_period("seeded_corrupt", period)?;
        self.corrupt = Some(SeededCorrupt { seed, period });
        Ok(self)
    }

    /// Add a seeded straggler schedule (builder style): roughly one in
    /// `period` kernel dispatches has its virtual cost multiplied by
    /// `factor`. Only [`FaultOp::Enqueue`] is eligible (stragglers are
    /// slow *kernels*; transfers are covered by the corrupt/transient
    /// schedules). `period < 2` or `factor < 2` are configuration
    /// errors — a 1x slowdown is not a straggler.
    pub fn seeded_stragglers(
        mut self,
        seed: u64,
        period: u64,
        factor: u32,
    ) -> Result<FaultPlan, FaultConfigError> {
        check_period("seeded_stragglers", period)?;
        if factor < 2 {
            return Err(FaultConfigError {
                what: "seeded_stragglers",
                reason: format!("slowdown factor must be >= 2, got {factor}"),
            });
        }
        self.stragglers = Some(SeededStragglers {
            seed,
            period,
            factor,
        });
        Ok(self)
    }

    /// Cap each [`InjectedFault::Hang`] stall at `ms` wall-clock
    /// milliseconds (builder style). Defaults to
    /// [`FaultPlan::DEFAULT_HANG_CAP_MS`].
    pub fn with_hang_cap_ms(mut self, ms: u64) -> FaultPlan {
        self.hang_cap_ms = Some(ms);
        self
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.explicit.is_empty()
            && self.seeded.is_none()
            && self.kills.is_none()
            && self.corrupt.is_none()
            && self.stragglers.is_none()
    }

    /// Whether any scheduled fault can silently corrupt a payload — the
    /// signal the queue uses to arm its provenance/integrity layer (so
    /// corruption-free runs skip checksums, shadows, and the extra trace
    /// instants entirely).
    pub fn can_corrupt(&self) -> bool {
        self.corrupt.is_some()
            || self
                .explicit
                .iter()
                .any(|s| s.fault == InjectedFault::Corrupt)
    }

    /// The effective wall-clock hang cap.
    pub fn hang_cap(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.hang_cap_ms.unwrap_or(Self::DEFAULT_HANG_CAP_MS))
    }

    fn lookup(&self, op: FaultOp, index: u64) -> Option<InjectedFault> {
        if let Some(s) = self
            .explicit
            .iter()
            .find(|s| s.op == op && s.index == index)
        {
            return Some(s.fault);
        }
        let seeded = self.seeded?;
        if op == FaultOp::Build {
            return None;
        }
        let h = splitmix64(
            seeded
                .seed
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                .wrapping_add((op.slot() as u64) << 32)
                .wrapping_add(index),
        );
        h.is_multiple_of(seeded.period)
            .then_some(InjectedFault::Transient)
    }

    /// The seeded-kill schedule's verdict for `(op, index)`, ignoring the
    /// `max_kills` cap (the injector enforces that statefully).
    fn lookup_kill(&self, op: FaultOp, index: u64) -> Option<KillMode> {
        let kills = self.kills?;
        if !matches!(op, FaultOp::Upload | FaultOp::Enqueue) {
            return None;
        }
        let h = splitmix64(
            kills
                .seed
                .wrapping_mul(0x9e6c_5860_6ee3_14a5)
                .wrapping_add((op.slot() as u64) << 40)
                .wrapping_add(index),
        );
        h.is_multiple_of(kills.period).then_some(if (h >> 17) & 1 == 0 {
            KillMode::Panic
        } else {
            KillMode::Exit
        })
    }

    /// The seeded-corruption schedule's verdict for `(op, index)`.
    fn lookup_corrupt(&self, op: FaultOp, index: u64) -> bool {
        let Some(c) = self.corrupt else { return false };
        if op == FaultOp::Build {
            return false;
        }
        let h = splitmix64(
            c.seed
                .wrapping_mul(0xd1b5_4a32_d192_ed03)
                .wrapping_add((op.slot() as u64) << 36)
                .wrapping_add(index),
        );
        h.is_multiple_of(c.period)
    }

    /// The seeded-straggler schedule's verdict for `(op, index)`.
    fn lookup_straggler(&self, op: FaultOp, index: u64) -> Option<u32> {
        let s = self.stragglers?;
        if op != FaultOp::Enqueue {
            return None;
        }
        let h = splitmix64(
            s.seed
                .wrapping_mul(0xaef1_7502_b3a8_87c9)
                .wrapping_add((op.slot() as u64) << 44)
                .wrapping_add(index),
        );
        h.is_multiple_of(s.period).then_some(s.factor)
    }

    fn max_kills(&self) -> u64 {
        self.kills.map(|k| k.max_kills).unwrap_or(u64::MAX)
    }
}

/// A fault that actually fired, as recorded by the injector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionRecord {
    /// Operation class the fault fired on.
    pub op: FaultOp,
    /// Operation index it fired at.
    pub index: u64,
    /// Device whose operation the fault fired on.
    pub device: String,
    /// Stable lowercase fault-kind label: `"transient"`,
    /// `"device_lost"`, `"kill"`, `"corrupt"`, `"slowdown"`, `"hang"`.
    pub kind: &'static str,
    /// Whether the fault was transient (retryable).
    pub transient: bool,
    /// The error the operation returned, if the fault is fail-stop.
    /// `None` for the silent classes (corrupt/slowdown/hang), whose
    /// operations succeed at the point of injection.
    pub error: Option<ClError>,
}

/// The non-fail-stop side effects a fault check asks the caller to
/// apply. Returned by [`FaultInjector::check_effects`]; a default value
/// means "proceed untouched".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultEffect {
    /// Flip this (pre-modulo) bit of the operation's payload.
    pub corrupt_bit: Option<u64>,
    /// Multiply the command's virtual-clock cost by this factor.
    pub slowdown: Option<u32>,
}

#[derive(Debug)]
struct InjectorInner {
    plan: FaultPlan,
    /// Per-[`FaultOp`] operation counters (see [`FaultOp::slot`]).
    counters: [AtomicU64; 4],
    /// Latched by a fired [`InjectedFault::DeviceLost`].
    device_lost: AtomicBool,
    /// Kills fired so far (seeded kills stop once the plan's cap is hit).
    kills_fired: AtomicU64,
    /// Corruption detections reported back by queue integrity layers
    /// (see [`FaultInjector::note_detection`]) — the chaos scoreboard's
    /// "detections" side.
    detections: AtomicU64,
    /// Latch + condvar releasing all current and future
    /// [`InjectedFault::Hang`] stalls. Uses `std::sync` directly: the
    /// workspace's `parking_lot` shim has no condition variable.
    hangs_cancelled: std::sync::Mutex<bool>,
    hang_cvar: std::sync::Condvar,
    records: Mutex<Vec<InjectionRecord>>,
    trace: Mutex<TraceSink>,
}

/// A shared, cloneable fault source built from a [`FaultPlan`].
///
/// Attach it to a queue with [`crate::CommandQueue::attach_faults`]
/// and/or a context with [`crate::Context::attach_faults`]; all clones
/// share the same counters, so one injector attached to both sees one
/// consistent operation sequence. [`FaultInjector::disabled`] (the
/// default attachment everywhere) is inert and free.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<InjectorInner>>,
}

impl FaultInjector {
    /// An injector that fires `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            inner: Some(Arc::new(InjectorInner {
                plan,
                counters: [
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                ],
                device_lost: AtomicBool::new(false),
                kills_fired: AtomicU64::new(0),
                detections: AtomicU64::new(0),
                hangs_cancelled: std::sync::Mutex::new(false),
                hang_cvar: std::sync::Condvar::new(),
                records: Mutex::new(Vec::new()),
                trace: Mutex::new(TraceSink::disabled()),
            })),
        }
    }

    /// An inert injector (never fires; checks cost one `Option` branch).
    pub fn disabled() -> FaultInjector {
        FaultInjector { inner: None }
    }

    /// Whether this injector can fire faults.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a trace sink: every fired fault is then also recorded as a
    /// [`SpanKind::FaultInjected`] instant on the device's track at the
    /// queue's virtual timestamp. Shared by all clones.
    pub fn attach_trace(&self, sink: TraceSink) {
        if let Some(inner) = &self.inner {
            *inner.trace.lock() = sink;
        }
    }

    /// Consume one operation index of class `op` and fail if the plan
    /// scheduled a fail-stop fault there (or the device is already
    /// lost). Equivalent to [`FaultInjector::check_effects`] with the
    /// silent side effects dropped — used by seams that have no payload
    /// a corruption could apply to (program builds).
    ///
    /// `device` names the track for trace instants; `now_ns` is the
    /// issuing queue's current virtual time. Called by the simulator at
    /// the top of each instrumented entry point — user code does not
    /// normally call this.
    pub fn check(&self, op: FaultOp, device: &str, now_ns: f64) -> ClResult<()> {
        self.check_effects(op, device, now_ns).map(|_| ())
    }

    /// Consume one operation index of class `op`; fail for fail-stop
    /// faults, and return the *silent* side effects (bit flip, cost
    /// multiplier) the caller must apply for the non-fail-stop classes.
    /// [`InjectedFault::Hang`] is applied right here: the calling thread
    /// stalls on the wall clock until [`FaultInjector::cancel_hangs`] or
    /// the plan's hang cap, then proceeds.
    pub fn check_effects(&self, op: FaultOp, device: &str, now_ns: f64) -> ClResult<FaultEffect> {
        let Some(inner) = &self.inner else {
            return Ok(FaultEffect::default());
        };
        // A lost device refuses everything except rescue read-backs.
        if inner.device_lost.load(Ordering::Acquire) && op != FaultOp::Readback {
            return Err(ClError::DeviceLost {
                device: device.to_string(),
            });
        }
        let index = inner.counters[op.slot()].fetch_add(1, Ordering::AcqRel);
        let fault = match inner.plan.lookup(op, index) {
            Some(f) => f,
            None => {
                // Seeded kills respect the plan's cap: once `max_kills`
                // have fired (from any source), the schedule goes quiet.
                let under_cap =
                    inner.kills_fired.load(Ordering::Acquire) < inner.plan.max_kills();
                match inner.plan.lookup_kill(op, index).filter(|_| under_cap) {
                    Some(mode) => InjectedFault::Kill(mode),
                    None if inner.plan.lookup_corrupt(op, index) => InjectedFault::Corrupt,
                    None => match inner.plan.lookup_straggler(op, index) {
                        Some(factor) => InjectedFault::Slowdown(factor),
                        None => return Ok(FaultEffect::default()),
                    },
                }
            }
        };
        let mut kill_mode = None;
        let mut effect = FaultEffect::default();
        let mut hang = false;
        let (kind, transient, error) = match fault {
            InjectedFault::Transient => (
                "transient",
                true,
                Some(ClError::DeviceBusy {
                    device: device.to_string(),
                }),
            ),
            InjectedFault::DeviceLost => {
                inner.device_lost.store(true, Ordering::Release);
                (
                    "device_lost",
                    false,
                    Some(ClError::DeviceLost {
                        device: device.to_string(),
                    }),
                )
            }
            InjectedFault::Kill(mode) => {
                inner.kills_fired.fetch_add(1, Ordering::AcqRel);
                kill_mode = Some(mode);
                (
                    "kill",
                    false,
                    Some(ClError::ActorKilled {
                        device: device.to_string(),
                    }),
                )
            }
            InjectedFault::Corrupt => {
                // The bit to flip is itself seeded: same plan, same
                // workload → same flip on every machine.
                effect.corrupt_bit = Some(splitmix64(
                    0x5b1c_e8f0_a3d9_4721_u64
                        .wrapping_add((op.slot() as u64) << 48)
                        .wrapping_add(index),
                ));
                ("corrupt", false, None)
            }
            InjectedFault::Slowdown(factor) => {
                effect.slowdown = Some(factor);
                ("slowdown", false, None)
            }
            InjectedFault::Hang => {
                hang = true;
                ("hang", false, None)
            }
        };
        inner.records.lock().push(InjectionRecord {
            op,
            index,
            device: device.to_string(),
            kind,
            transient,
            error: error.clone(),
        });
        {
            let trace = inner.trace.lock();
            if trace.is_enabled() {
                let span = if kind == "corrupt" {
                    SpanKind::CorruptionInjected
                } else {
                    SpanKind::FaultInjected
                };
                let mut ev = TraceEvent::instant(span, op.name(), device, now_ns)
                    .with_arg("op", op.name())
                    .with_arg("device", device)
                    .with_arg("kind", kind)
                    .with_arg("index", index)
                    .with_arg("transient", transient);
                if let Some(e) = &error {
                    ev = ev.with_arg("error", e);
                }
                if let Some(bit) = effect.corrupt_bit {
                    ev = ev.with_arg("bit", bit);
                }
                if let Some(f) = effect.slowdown {
                    ev = ev.with_arg("factor", f);
                }
                if let Some(mode) = kill_mode {
                    ev = ev.with_arg("kill", mode.name());
                }
                trace.record(ev);
            }
        }
        if let Some(KillMode::Panic) = kill_mode {
            // The actor dies unwinding; the supervisor downcasts this
            // payload out of `catch_unwind` to recognise the injected
            // kill. Locks above are scoped so nothing is held here.
            std::panic::panic_any(KillPanic {
                device: device.to_string(),
                op,
                index,
            });
        }
        if hang {
            // Wall-clock stall: the virtual clock never moves, so the
            // run's outputs and virtual timings stay byte-identical —
            // only real latency (what the serving path's hedge watches)
            // balloons. Bounded by the plan's cap, released early by
            // `cancel_hangs`.
            let cap = inner.plan.hang_cap();
            let deadline = std::time::Instant::now() + cap;
            let mut cancelled = inner
                .hangs_cancelled
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            while !*cancelled {
                let now = std::time::Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = inner
                    .hang_cvar
                    .wait_timeout(cancelled, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                cancelled = guard;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        match error {
            Some(e) => Err(e),
            None => Ok(effect),
        }
    }

    /// Release every current and future [`InjectedFault::Hang`] stall on
    /// this injector (hedging cancels the loser; teardown drains
    /// stragglers). Idempotent.
    pub fn cancel_hangs(&self) {
        if let Some(inner) = &self.inner {
            *inner
                .hangs_cancelled
                .lock()
                .unwrap_or_else(|p| p.into_inner()) = true;
            inner.hang_cvar.notify_all();
        }
    }

    /// Record one corruption detection (called by a queue's integrity
    /// layer when a provenance checksum mismatch is caught). The chaos
    /// harness compares this against [`FaultInjector::corrupt_count`]
    /// for its detections == injections gate.
    pub fn note_detection(&self) {
        if let Some(inner) = &self.inner {
            inner.detections.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Corruption detections reported so far.
    pub fn detected_count(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.detections.load(Ordering::Acquire) as usize,
            None => 0,
        }
    }

    /// Number of [`InjectedFault::Corrupt`] faults fired so far.
    pub fn corrupt_count(&self) -> usize {
        match &self.inner {
            Some(inner) => inner
                .records
                .lock()
                .iter()
                .filter(|r| r.kind == "corrupt")
                .count(),
            None => 0,
        }
    }

    /// Whether the plan can silently corrupt payloads (arms the queue's
    /// provenance/integrity layer).
    pub fn can_corrupt(&self) -> bool {
        match &self.inner {
            Some(inner) => inner.plan.can_corrupt(),
            None => false,
        }
    }

    /// Every fault fired so far, in firing order.
    pub fn records(&self) -> Vec<InjectionRecord> {
        match &self.inner {
            Some(inner) => inner.records.lock().clone(),
            None => Vec::new(),
        }
    }

    /// Number of faults fired so far.
    pub fn injected_count(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.records.lock().len(),
            None => 0,
        }
    }

    /// Number of [`InjectedFault::Kill`] faults fired so far.
    pub fn kill_count(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.kills_fired.load(Ordering::Acquire) as usize,
            None => 0,
        }
    }

    /// Whether a [`InjectedFault::DeviceLost`] has fired.
    pub fn device_is_lost(&self) -> bool {
        match &self.inner {
            Some(inner) => inner.device_lost.load(Ordering::Acquire),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let inj = FaultInjector::new(FaultPlan::new());
        for i in 0..100 {
            assert!(inj.check(FaultOp::Upload, "gpu", i as f64).is_ok());
        }
        assert_eq!(inj.injected_count(), 0);
    }

    #[test]
    fn disabled_injector_is_inert() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_enabled());
        assert!(inj.check(FaultOp::Enqueue, "gpu", 0.0).is_ok());
        assert!(inj.records().is_empty());
    }

    #[test]
    fn explicit_transient_fires_once_at_its_index() {
        let inj =
            FaultInjector::new(FaultPlan::new().fail(FaultOp::Upload, 2, InjectedFault::Transient));
        assert!(inj.check(FaultOp::Upload, "gpu", 0.0).is_ok()); // 0
        assert!(inj.check(FaultOp::Upload, "gpu", 0.0).is_ok()); // 1
        let err = inj.check(FaultOp::Upload, "gpu", 0.0).unwrap_err(); // 2
        assert!(err.is_transient());
        assert!(inj.check(FaultOp::Upload, "gpu", 0.0).is_ok()); // 3 (the retry)
        assert_eq!(inj.injected_count(), 1);
        // Other op classes have independent counters.
        assert!(inj.check(FaultOp::Enqueue, "gpu", 0.0).is_ok());
    }

    #[test]
    fn device_lost_latches_but_readback_survives() {
        let inj = FaultInjector::new(FaultPlan::new().fail(
            FaultOp::Enqueue,
            0,
            InjectedFault::DeviceLost,
        ));
        let err = inj.check(FaultOp::Enqueue, "gpu", 0.0).unwrap_err();
        assert!(matches!(err, ClError::DeviceLost { .. }));
        assert!(!err.is_transient());
        assert!(inj.device_is_lost());
        // Everything but readback now fails…
        assert!(inj.check(FaultOp::Upload, "gpu", 0.0).is_err());
        assert!(inj.check(FaultOp::Enqueue, "gpu", 0.0).is_err());
        assert!(inj.check(FaultOp::Build, "gpu", 0.0).is_err());
        // …but the rescue path stays open.
        assert!(inj.check(FaultOp::Readback, "gpu", 0.0).is_ok());
        // Only the scheduled fault is recorded, not its aftermath.
        assert_eq!(inj.injected_count(), 1);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_fire() {
        let plan = FaultPlan::seeded_transient(42, 5).unwrap();
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        for _ in 0..200 {
            let ra = a.check(FaultOp::Upload, "gpu", 0.0);
            let rb = b.check(FaultOp::Upload, "gpu", 0.0);
            assert_eq!(ra.is_ok(), rb.is_ok());
        }
        assert_eq!(a.records(), b.records());
        let n = a.injected_count();
        assert!(n > 0, "a 1-in-5 schedule must fire within 200 ops");
        assert!(n < 200, "must not fire on every op");
        // Different seeds give different schedules.
        let c = FaultInjector::new(FaultPlan::seeded_transient(43, 5).unwrap());
        for _ in 0..200 {
            let _ = c.check(FaultOp::Upload, "gpu", 0.0);
        }
        let idx =
            |inj: &FaultInjector| -> Vec<u64> { inj.records().iter().map(|r| r.index).collect() };
        assert_ne!(idx(&a), idx(&c));
    }

    #[test]
    fn seeded_plans_never_hit_build() {
        let inj = FaultInjector::new(FaultPlan::seeded_transient(7, 2).unwrap());
        for i in 0..500 {
            assert!(inj.check(FaultOp::Build, "gpu", i as f64).is_ok());
        }
    }

    #[test]
    fn degenerate_plan_parameters_are_configuration_errors() {
        assert!(FaultPlan::seeded_transient(1, 0).is_err());
        assert!(FaultPlan::seeded_transient(1, 1).is_err());
        assert!(FaultPlan::new().seeded_kills(1, 0, 3).is_err());
        assert!(FaultPlan::new().seeded_kills(1, 17, 0).is_err());
        assert!(FaultPlan::new().seeded_corrupt(1, 1).is_err());
        assert!(FaultPlan::new().seeded_stragglers(1, 0, 4).is_err());
        assert!(FaultPlan::new().seeded_stragglers(1, 5, 1).is_err());
        let err = FaultPlan::seeded_transient(1, 0).unwrap_err();
        assert!(err.to_string().contains("period"), "{err}");
    }

    #[test]
    fn corrupt_fires_silently_with_a_deterministic_bit() {
        let plan = FaultPlan::new().fail(FaultOp::Upload, 1, InjectedFault::Corrupt);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        assert!(a.can_corrupt());
        let mut bits = Vec::new();
        for inj in [&a, &b] {
            assert_eq!(
                inj.check_effects(FaultOp::Upload, "gpu", 0.0).unwrap(),
                FaultEffect::default()
            );
            let eff = inj.check_effects(FaultOp::Upload, "gpu", 0.0).unwrap();
            bits.push(eff.corrupt_bit.expect("corrupt must yield a bit"));
        }
        assert_eq!(bits[0], bits[1], "same plan, same flip");
        assert_eq!(a.corrupt_count(), 1);
        let rec = &a.records()[0];
        assert_eq!(rec.kind, "corrupt");
        assert_eq!(rec.device, "gpu");
        assert!(rec.error.is_none(), "corruption is silent");
    }

    #[test]
    fn seeded_corrupt_never_hits_build_and_is_deterministic() {
        let plan = FaultPlan::new().seeded_corrupt(9, 3).unwrap();
        let inj = FaultInjector::new(plan.clone());
        for i in 0..200 {
            assert!(inj.check(FaultOp::Build, "gpu", i as f64).is_ok());
        }
        assert_eq!(inj.injected_count(), 0);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        for _ in 0..200 {
            let ea = a.check_effects(FaultOp::Readback, "gpu", 0.0).unwrap();
            let eb = b.check_effects(FaultOp::Readback, "gpu", 0.0).unwrap();
            assert_eq!(ea, eb);
        }
        assert!(a.corrupt_count() > 0, "1-in-3 must fire within 200 ops");
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn slowdown_returns_a_cost_multiplier() {
        let inj = FaultInjector::new(
            FaultPlan::new().fail(FaultOp::Enqueue, 0, InjectedFault::Slowdown(16)),
        );
        let eff = inj.check_effects(FaultOp::Enqueue, "gpu", 0.0).unwrap();
        assert_eq!(eff.slowdown, Some(16));
        assert_eq!(inj.records()[0].kind, "slowdown");
    }

    #[test]
    fn seeded_stragglers_only_hit_enqueue() {
        let inj =
            FaultInjector::new(FaultPlan::new().seeded_stragglers(5, 2, 8).unwrap());
        for _ in 0..100 {
            let up = inj.check_effects(FaultOp::Upload, "gpu", 0.0).unwrap();
            let rb = inj.check_effects(FaultOp::Readback, "gpu", 0.0).unwrap();
            assert_eq!(up, FaultEffect::default());
            assert_eq!(rb, FaultEffect::default());
        }
        let mut hit = 0;
        for _ in 0..100 {
            if inj
                .check_effects(FaultOp::Enqueue, "gpu", 0.0)
                .unwrap()
                .slowdown
                .is_some()
            {
                hit += 1;
            }
        }
        assert!(hit > 0, "1-in-2 enqueue schedule must fire");
    }

    #[test]
    fn hang_stalls_until_cancelled_and_then_proceeds() {
        let plan = FaultPlan::new()
            .fail(FaultOp::Enqueue, 0, InjectedFault::Hang)
            .with_hang_cap_ms(10_000);
        let inj = FaultInjector::new(plan);
        let handle = {
            let inj = inj.clone();
            std::thread::spawn(move || {
                let start = std::time::Instant::now();
                let eff = inj.check_effects(FaultOp::Enqueue, "gpu", 0.0).unwrap();
                (start.elapsed(), eff)
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        inj.cancel_hangs();
        let (elapsed, eff) = handle.join().unwrap();
        assert!(
            elapsed >= std::time::Duration::from_millis(40),
            "hang must actually stall ({elapsed:?})"
        );
        assert!(
            elapsed < std::time::Duration::from_secs(5),
            "cancel must release well before the cap ({elapsed:?})"
        );
        assert_eq!(eff, FaultEffect::default(), "the operation proceeds");
        assert_eq!(inj.records()[0].kind, "hang");
        // Once cancelled, later hangs don't stall at all.
        let inj2 = FaultInjector::new(
            FaultPlan::new()
                .fail(FaultOp::Enqueue, 0, InjectedFault::Hang)
                .with_hang_cap_ms(10_000),
        );
        inj2.cancel_hangs();
        let start = std::time::Instant::now();
        inj2.check_effects(FaultOp::Enqueue, "gpu", 0.0).unwrap();
        assert!(start.elapsed() < std::time::Duration::from_secs(1));
    }

    #[test]
    fn detection_scoreboard_counts() {
        let inj = FaultInjector::new(FaultPlan::new());
        assert_eq!(inj.detected_count(), 0);
        inj.note_detection();
        inj.note_detection();
        assert_eq!(inj.detected_count(), 2);
        assert_eq!(FaultInjector::disabled().detected_count(), 0);
    }

    #[test]
    fn corruption_instants_carry_injection_details() {
        let sink = TraceSink::new();
        let inj = FaultInjector::new(
            FaultPlan::new().fail(FaultOp::Readback, 0, InjectedFault::Corrupt),
        );
        inj.attach_trace(sink.clone());
        inj.check_effects(FaultOp::Readback, "Virtual GPU", 7.0)
            .unwrap();
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, SpanKind::CorruptionInjected);
        let args = &events[0].args;
        for key in ["op", "device", "kind", "index", "bit"] {
            assert!(
                args.iter().any(|(k, _)| k == key),
                "missing trace arg `{key}`: {args:?}"
            );
        }
    }

    #[test]
    fn fired_faults_are_traced_as_instants() {
        let sink = TraceSink::new();
        let inj =
            FaultInjector::new(FaultPlan::new().fail(FaultOp::Upload, 0, InjectedFault::Transient));
        inj.attach_trace(sink.clone());
        inj.check(FaultOp::Upload, "Virtual GPU", 123.0)
            .unwrap_err();
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, SpanKind::FaultInjected);
        assert_eq!(events[0].track, "Virtual GPU");
        assert_eq!(events[0].ts_ns, 123.0);
        // Fault instants never contribute to figure segments.
        assert_eq!(sink.segments().total_ns(), 0.0);
    }
}
