//! # oclsim — an OpenCL-style framework simulator
//!
//! This crate is the hardware-substitution substrate for the reproduction of
//! *Parallel Programming in Actor-Based Applications via OpenCL*
//! (MIDDLEWARE 2015). The paper's evaluation ran on an AMD Radeon R9 290x
//! and an Intel i5-3550 through AMD's OpenCL 1.2 runtime; this environment
//! has neither, so `oclsim` re-implements the OpenCL *programming framework*
//! from scratch:
//!
//! * **Discovery & setup** — [`Platform`] → [`Device`] → [`Context`] →
//!   [`CommandQueue`], the exact object chain §2.1 of the paper describes.
//! * **Runtime kernel compilation** — [`Program::build`] compiles kernels
//!   written in a mini OpenCL-C dialect (module [`minicl`]) at runtime,
//!   returning a build log on failure, just like `clBuildProgram`.
//! * **Execution** — [`CommandQueue::enqueue_nd_range`] runs the kernel for
//!   real (results are bit-checked against references in the test suites)
//!   using a work-group interpreter with full `barrier()` support.
//! * **Timing** — every command is charged *virtual nanoseconds* from an
//!   analytic per-device cost model ([`timing::CostModel`]): affine
//!   transfer costs, launch overheads, and a wave-scheduling compute model
//!   that captures under-utilisation and load imbalance. [`Event`]
//!   profiling exposes these times, which is what the paper's Figures 3a–3e
//!   are built from.
//! * **Fault injection** — a deterministic, seeded [`fault::FaultPlan`]
//!   can make scheduled uploads, read-backs, dispatches, or builds fail
//!   with transient ([`ClError::DeviceBusy`]) or permanent
//!   ([`ClError::DeviceLost`]) errors, on the same virtual clock, so the
//!   recovery layers above the simulator can be tested reproducibly.
//!   Beyond fail-stop, plans can silently flip payload bits
//!   ([`fault::InjectedFault::Corrupt`] — defended by per-buffer
//!   provenance checksums that surface as
//!   [`ClError::IntegrityViolation`]) and stretch or stall command
//!   durations ([`fault::InjectedFault::Slowdown`] /
//!   [`fault::InjectedFault::Hang`] — defended by the per-dispatch
//!   watchdog, [`CommandQueue::set_watchdog_ns`], and the serving
//!   layer's hedged re-dispatch).
//!
//! ## Why simulate instead of binding real OpenCL?
//!
//! The paper's claims are about *relative* cost structure — host↔device
//! copies vs. kernel time vs. runtime overhead, GPU vs. CPU, and which
//! programming model leaves performance on the table. A deterministic
//! virtual clock reproduces those shapes on any machine, makes the figures
//! exactly repeatable, and lets the test suite assert them. Absolute
//! nanosecond values are *not* claimed to match the 2015 testbed.
//!
//! ## Dialect notes
//!
//! * `uint` is evaluated with 64-bit signed arithmetic (the paper's kernels
//!   stay far inside the shared range); `int` likewise.
//! * `float` follows IEEE f32 storage with f64 intermediate arithmetic.
//! * `float4` with component-wise ops, `dot`, and swizzles is supported —
//!   the C-OpenCL document-ranking kernel depends on it (Figure 3e).
//! * Out-of-bounds accesses, divergent barriers, division by zero and
//!   infinite loops *trap* with the faulting global id instead of being
//!   undefined behaviour.
//!
//! ## Quick start
//!
//! ```
//! use oclsim::{Platform, Context, CommandQueue, Program, NdRange, MemFlags, DeviceType};
//!
//! let device = Platform::default_device(DeviceType::Gpu).unwrap();
//! let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
//! let queue = CommandQueue::new(&ctx, &device).unwrap();
//!
//! let program = Program::build(&ctx, r#"
//!     __kernel void square(__global float* input, __global float* output) {
//!         int i = get_global_id(0);
//!         output[i] = input[i] * input[i];
//!     }
//! "#).unwrap();
//! let kernel = program.create_kernel("square").unwrap();
//!
//! let input = ctx.create_buffer(MemFlags::ReadOnly, 4 * 4).unwrap();
//! let output = ctx.create_buffer(MemFlags::ReadWrite, 4 * 4).unwrap();
//! queue.write_f32(&input, &[1.0, 2.0, 3.0, 4.0]).unwrap();
//! kernel.set_arg_buffer(0, &input).unwrap();
//! kernel.set_arg_buffer(1, &output).unwrap();
//! let ev = queue.enqueue_nd_range(&kernel, &NdRange::d1(4, 2)).unwrap();
//! let (result, _) = queue.read_f32(&output).unwrap();
//! assert_eq!(result, vec![1.0, 4.0, 9.0, 16.0]);
//! assert!(ev.duration_ns() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod arbiter;
pub mod buffer;
pub mod coexec;
pub mod context;
pub mod device;
pub mod engine;
pub mod error;
pub mod event;
pub mod fault;
pub mod hostmem;
pub mod minicl;
pub mod ndrange;
pub mod platform;
pub mod profile;
pub mod program;
pub mod queue;
pub mod timing;

pub use arbiter::{ArbiterHandle, MemObserver, QueueArbiter};
pub use buffer::{fnv1a64, Buffer, MemFlags};
pub use coexec::{co_enqueue, CoexecConfig, CoexecPolicy, LaneView, PolicyKind};
pub use context::Context;
pub use device::{Device, DeviceType};
pub use engine::{default_engine, set_default_engine, Engine};
pub use error::{ClError, ClResult};
pub use event::{CommandKind, Event};
pub use fault::{
    silence_kill_panics, FaultConfigError, FaultEffect, FaultInjector, FaultOp, FaultPlan,
    InjectedFault, InjectionRecord, KillMode, KillPanic,
};
pub use ndrange::{NdRange, SubRange};
pub use platform::Platform;
pub use profile::{Profile, ProfileSink};
pub use program::{Kernel, Program};
pub use queue::{CommandQueue, DispatchBatch};
