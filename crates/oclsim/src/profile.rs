//! Profiling accumulators for the figure harness.
//!
//! The paper's Figures 3a–3e split each bar into *move data to device*,
//! *move data from device*, *kernel execution*, and *overhead* (total minus
//! the other three). Kernel actors and the baselines both record into a
//! [`Profile`], so the harness can produce identical splits for every
//! approach.
//!
//! A sink can also carry a [`TraceSink`]: [`ProfileSink::record_command`]
//! then both accumulates the scalar totals *and* emits a structured span
//! for the same [`Event`], so a run's trace timeline and its profile
//! numbers cannot diverge — they are two views of the same events.

use crate::event::{CommandKind, Event};
use parking_lot::Mutex;
use std::sync::Arc;
use trace::{SpanKind, TraceEvent, TraceSink};

/// Accumulated virtual-time costs of one application run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Profile {
    /// Host→device transfer time (virtual ns).
    pub to_device_ns: f64,
    /// Device→host transfer time (virtual ns).
    pub from_device_ns: f64,
    /// Kernel execution time (virtual ns).
    pub kernel_ns: f64,
    /// Number of kernel dispatches.
    pub dispatches: u64,
    /// Abstract ops retired by kernel dispatches (identical on both
    /// execution engines; input to interpreted-ops/sec rates).
    pub ops: u64,
}

impl Profile {
    /// Sum of the OpenCL portions (everything except host overhead).
    pub fn opencl_ns(&self) -> f64 {
        self.to_device_ns + self.from_device_ns + self.kernel_ns
    }

    /// Merge another profile into this one.
    pub fn merge(&mut self, other: &Profile) {
        self.to_device_ns += other.to_device_ns;
        self.from_device_ns += other.from_device_ns;
        self.kernel_ns += other.kernel_ns;
        self.dispatches += other.dispatches;
        self.ops += other.ops;
    }
}

/// Shared, thread-safe profile sink handed to kernel actors.
#[derive(Debug, Clone, Default)]
pub struct ProfileSink {
    inner: Arc<Mutex<Profile>>,
    trace: TraceSink,
}

impl ProfileSink {
    /// Fresh, zeroed sink.
    pub fn new() -> ProfileSink {
        ProfileSink::default()
    }

    /// Attach a trace sink: [`ProfileSink::record_command`] and the
    /// runtime layers that carry this profile will emit structured spans
    /// into it alongside the scalar totals.
    pub fn with_trace(mut self, trace: TraceSink) -> ProfileSink {
        self.trace = trace;
        self
    }

    /// The attached trace sink (disabled by default). Runtime layers use
    /// this to emit spans that have no scalar-profile counterpart, e.g.
    /// VM interpretation chunks and resident-buffer reuse instants.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Record a completed device command: accumulate its duration into
    /// the matching profile segment *and*, when a trace is attached, emit
    /// a span on `device`'s track carrying the command's virtual
    /// queued/submit/start/end timestamps.
    pub fn record_command(&self, ev: &Event, device: &str) {
        let (kind, name) = match ev.kind() {
            CommandKind::WriteBuffer => {
                self.add_to_device(ev.duration_ns());
                (SpanKind::ToDevice, "write_buffer".to_string())
            }
            CommandKind::ReadBuffer => {
                self.add_from_device(ev.duration_ns());
                (SpanKind::FromDevice, "read_buffer".to_string())
            }
            CommandKind::NdRange(k) => {
                self.add_kernel(ev.duration_ns());
                self.add_ops(ev.ops());
                (SpanKind::Kernel, k.clone())
            }
            CommandKind::Marker => return,
        };
        if self.trace.is_enabled() {
            let mut te = TraceEvent::span(kind, &name, device, ev.start_ns(), ev.duration_ns())
                .with_arg("queued_ns", ev.queued_ns())
                .with_arg("submit_ns", ev.submit_ns());
            if ev.bytes() > 0 {
                te = te.with_arg("bytes", ev.bytes());
            }
            if ev.items() > 0 {
                te = te.with_arg("items", ev.items());
            }
            if let Some(engine) = ev.engine() {
                te = te.with_arg("engine", engine);
            }
            if ev.ops() > 0 {
                te = te.with_arg("ops", ev.ops());
            }
            self.trace.record(te);
        }
    }

    /// Add host→device transfer time.
    pub fn add_to_device(&self, ns: f64) {
        self.inner.lock().to_device_ns += ns;
    }

    /// Add device→host transfer time.
    pub fn add_from_device(&self, ns: f64) {
        self.inner.lock().from_device_ns += ns;
    }

    /// Add kernel execution time and count the dispatch.
    pub fn add_kernel(&self, ns: f64) {
        let mut p = self.inner.lock();
        p.kernel_ns += ns;
        p.dispatches += 1;
    }

    /// Add abstract ops retired by a kernel dispatch.
    pub fn add_ops(&self, ops: u64) {
        self.inner.lock().ops += ops;
    }

    /// Snapshot the accumulated profile.
    pub fn snapshot(&self) -> Profile {
        *self.inner.lock()
    }

    /// Reset to zero (between benchmark iterations).
    pub fn reset(&self) {
        *self.inner.lock() = Profile::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_resets() {
        let sink = ProfileSink::new();
        sink.add_to_device(10.0);
        sink.add_kernel(100.0);
        sink.add_kernel(50.0);
        sink.add_from_device(5.0);
        let p = sink.snapshot();
        assert_eq!(p.to_device_ns, 10.0);
        assert_eq!(p.kernel_ns, 150.0);
        assert_eq!(p.from_device_ns, 5.0);
        assert_eq!(p.dispatches, 2);
        assert_eq!(p.opencl_ns(), 165.0);
        sink.reset();
        assert_eq!(sink.snapshot(), Profile::default());
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = Profile {
            to_device_ns: 1.0,
            from_device_ns: 2.0,
            kernel_ns: 3.0,
            dispatches: 1,
            ops: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.dispatches, 2);
        assert_eq!(a.ops, 8);
        assert_eq!(a.opencl_ns(), 12.0);
    }

    #[test]
    fn sink_is_shared_between_clones() {
        let sink = ProfileSink::new();
        let clone = sink.clone();
        clone.add_kernel(7.0);
        assert_eq!(sink.snapshot().kernel_ns, 7.0);
    }

    #[test]
    fn record_command_keeps_profile_and_trace_in_lockstep() {
        let sink = ProfileSink::new().with_trace(TraceSink::new());
        sink.record_command(
            &Event::new(CommandKind::WriteBuffer, 0.0, 0.0, 10.0, 64, 0),
            "dev",
        );
        sink.record_command(
            &Event::new(CommandKind::NdRange("k".into()), 10.0, 10.0, 110.0, 0, 16),
            "dev",
        );
        sink.record_command(
            &Event::new(CommandKind::ReadBuffer, 110.0, 110.0, 115.0, 64, 0),
            "dev",
        );
        let p = sink.snapshot();
        let s = sink.trace().segments();
        assert_eq!(p.to_device_ns, s.to_device_ns);
        assert_eq!(p.from_device_ns, s.from_device_ns);
        assert_eq!(p.kernel_ns, s.kernel_ns);
        assert_eq!(p.dispatches, 1);
        let events = sink.trace().events();
        assert_eq!(events[1].name, "k");
        assert_eq!(events[1].track, "dev");
    }

    #[test]
    fn record_command_without_trace_only_accumulates() {
        let sink = ProfileSink::new();
        sink.record_command(
            &Event::new(CommandKind::ReadBuffer, 0.0, 0.0, 5.0, 8, 0),
            "dev",
        );
        assert_eq!(sink.snapshot().from_device_ns, 5.0);
        assert!(sink.trace().is_empty());
        assert!(!sink.trace().is_enabled());
    }
}
