//! Profiling accumulators for the figure harness.
//!
//! The paper's Figures 3a–3e split each bar into *move data to device*,
//! *move data from device*, *kernel execution*, and *overhead* (total minus
//! the other three). Kernel actors and the baselines both record into a
//! [`Profile`], so the harness can produce identical splits for every
//! approach.

use parking_lot::Mutex;
use std::sync::Arc;

/// Accumulated virtual-time costs of one application run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Profile {
    /// Host→device transfer time (virtual ns).
    pub to_device_ns: f64,
    /// Device→host transfer time (virtual ns).
    pub from_device_ns: f64,
    /// Kernel execution time (virtual ns).
    pub kernel_ns: f64,
    /// Number of kernel dispatches.
    pub dispatches: u64,
}

impl Profile {
    /// Sum of the OpenCL portions (everything except host overhead).
    pub fn opencl_ns(&self) -> f64 {
        self.to_device_ns + self.from_device_ns + self.kernel_ns
    }

    /// Merge another profile into this one.
    pub fn merge(&mut self, other: &Profile) {
        self.to_device_ns += other.to_device_ns;
        self.from_device_ns += other.from_device_ns;
        self.kernel_ns += other.kernel_ns;
        self.dispatches += other.dispatches;
    }
}

/// Shared, thread-safe profile sink handed to kernel actors.
#[derive(Debug, Clone, Default)]
pub struct ProfileSink {
    inner: Arc<Mutex<Profile>>,
}

impl ProfileSink {
    /// Fresh, zeroed sink.
    pub fn new() -> ProfileSink {
        ProfileSink::default()
    }

    /// Add host→device transfer time.
    pub fn add_to_device(&self, ns: f64) {
        self.inner.lock().to_device_ns += ns;
    }

    /// Add device→host transfer time.
    pub fn add_from_device(&self, ns: f64) {
        self.inner.lock().from_device_ns += ns;
    }

    /// Add kernel execution time and count the dispatch.
    pub fn add_kernel(&self, ns: f64) {
        let mut p = self.inner.lock();
        p.kernel_ns += ns;
        p.dispatches += 1;
    }

    /// Snapshot the accumulated profile.
    pub fn snapshot(&self) -> Profile {
        *self.inner.lock()
    }

    /// Reset to zero (between benchmark iterations).
    pub fn reset(&self) {
        *self.inner.lock() = Profile::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_resets() {
        let sink = ProfileSink::new();
        sink.add_to_device(10.0);
        sink.add_kernel(100.0);
        sink.add_kernel(50.0);
        sink.add_from_device(5.0);
        let p = sink.snapshot();
        assert_eq!(p.to_device_ns, 10.0);
        assert_eq!(p.kernel_ns, 150.0);
        assert_eq!(p.from_device_ns, 5.0);
        assert_eq!(p.dispatches, 2);
        assert_eq!(p.opencl_ns(), 165.0);
        sink.reset();
        assert_eq!(sink.snapshot(), Profile::default());
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = Profile {
            to_device_ns: 1.0,
            from_device_ns: 2.0,
            kernel_ns: 3.0,
            dispatches: 1,
        };
        a.merge(&a.clone());
        assert_eq!(a.dispatches, 2);
        assert_eq!(a.opencl_ns(), 12.0);
    }

    #[test]
    fn sink_is_shared_between_clones() {
        let sink = ProfileSink::new();
        let clone = sink.clone();
        clone.add_kernel(7.0);
        assert_eq!(sink.snapshot().kernel_ns, 7.0);
    }
}
