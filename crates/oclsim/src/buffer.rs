//! Device memory objects, mirroring `cl_mem`.

use crate::error::{ClError, ClResult};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(1);

// Test-only accounting of host-visible byte copies made by buffer reads,
// so the copy-elimination in the read hot path stays eliminated.
// Thread-local: each test thread observes only its own copies.
#[cfg(test)]
thread_local! {
    static BYTES_COPIED: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Bytes copied out of buffers on this thread since process start
/// (test-only; used to assert the single-copy property of reads).
#[cfg(test)]
pub(crate) fn bytes_copied() -> u64 {
    BYTES_COPIED.with(|c| c.get())
}

#[cfg(test)]
fn count_copied(n: usize) {
    BYTES_COPIED.with(|c| c.set(c.get() + n as u64));
}

#[cfg(not(test))]
fn count_copied(_n: usize) {}

/// Buffer access flags, mirroring `CL_MEM_READ_WRITE` and friends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFlags {
    /// Kernels may read and write.
    ReadWrite,
    /// Kernels may only read (writes trap).
    ReadOnly,
    /// Kernels may only write (host-read still allowed, as in OpenCL).
    WriteOnly,
}

#[derive(Debug)]
pub(crate) struct BufferInner {
    pub(crate) id: u64,
    pub(crate) ctx_id: u64,
    pub(crate) flags: MemFlags,
    pub(crate) len: usize,
    pub(crate) data: Mutex<Vec<u8>>,
    /// True while a dispatch on some queue has checked the bytes out. Reads
    /// during that window are the race the paper hit with multiple command
    /// queues per device; the simulator surfaces it as an error instead of
    /// returning garbage.
    pub(crate) checked_out: AtomicBool,
}

/// A device memory buffer.
///
/// Cloning is cheap (reference count); the backing store is freed when the
/// last clone drops, mirroring `clReleaseMemObject` semantics.
#[derive(Debug, Clone)]
pub struct Buffer {
    pub(crate) inner: Arc<BufferInner>,
}

impl Buffer {
    pub(crate) fn new(ctx_id: u64, flags: MemFlags, len: usize) -> Buffer {
        Buffer {
            inner: Arc::new(BufferInner {
                id: NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed),
                ctx_id,
                flags,
                len,
                data: Mutex::new(vec![0u8; len]),
                checked_out: AtomicBool::new(false),
            }),
        }
    }

    /// Size of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// True if the buffer has zero size.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// Access flags the buffer was created with.
    pub fn flags(&self) -> MemFlags {
        self.inner.flags
    }

    /// Process-unique id (used for aliasing detection during dispatch).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Id of the owning context.
    pub fn context_id(&self) -> u64 {
        self.inner.ctx_id
    }

    /// True while some queue's dispatch has the bytes checked out.
    pub fn is_busy(&self) -> bool {
        self.inner.checked_out.load(Ordering::Acquire)
    }

    /// Take the bytes out for a dispatch. Fails when another queue already
    /// holds them — the multi-queue race from §6.2.1 of the paper.
    pub(crate) fn check_out(&self) -> ClResult<Vec<u8>> {
        if self.inner.checked_out.swap(true, Ordering::AcqRel) {
            return Err(ClError::InvalidBufferAccess(format!(
                "buffer {} is busy on another command queue",
                self.inner.id
            )));
        }
        Ok(std::mem::take(&mut *self.inner.data.lock()))
    }

    /// Return the bytes after a dispatch.
    pub(crate) fn check_in(&self, bytes: Vec<u8>) {
        *self.inner.data.lock() = bytes;
        self.inner.checked_out.store(false, Ordering::Release);
    }

    /// Host-side copy of the buffer contents. The queue read paths use
    /// [`Buffer::read_into`] / [`Buffer::with_bytes`] instead — this
    /// allocating form survives only as a test convenience.
    #[cfg(test)]
    pub(crate) fn snapshot(&self) -> ClResult<Vec<u8>> {
        if self.is_busy() {
            return Err(ClError::InvalidBufferAccess(format!(
                "read of buffer {} raced a dispatch on another queue",
                self.inner.id
            )));
        }
        let data = self.inner.data.lock();
        count_copied(data.len());
        Ok(data.clone())
    }

    /// Copy the buffer contents directly into `out` under the data lock —
    /// exactly one copy, no intermediate allocation. `out` must be exactly
    /// the buffer's size.
    pub(crate) fn read_into(&self, out: &mut [u8]) -> ClResult<()> {
        if self.is_busy() {
            return Err(ClError::InvalidBufferAccess(format!(
                "read of buffer {} raced a dispatch on another queue",
                self.inner.id
            )));
        }
        if out.len() != self.inner.len {
            return Err(ClError::InvalidBufferAccess(format!(
                "read of {} bytes from a buffer of {} bytes",
                out.len(),
                self.inner.len
            )));
        }
        out.copy_from_slice(&self.inner.data.lock());
        count_copied(out.len());
        Ok(())
    }

    /// Run `f` over the buffer contents under the data lock — zero byte
    /// copies; conversions (e.g. bytes → `f32`s) happen in place.
    pub(crate) fn with_bytes<R>(&self, f: impl FnOnce(&[u8]) -> R) -> ClResult<R> {
        if self.is_busy() {
            return Err(ClError::InvalidBufferAccess(format!(
                "read of buffer {} raced a dispatch on another queue",
                self.inner.id
            )));
        }
        Ok(f(&self.inner.data.lock()))
    }

    /// Host-side overwrite (used by queue writes).
    pub(crate) fn overwrite(&self, offset: usize, bytes: &[u8]) -> ClResult<()> {
        if self.is_busy() {
            return Err(ClError::InvalidBufferAccess(format!(
                "write to buffer {} raced a dispatch on another queue",
                self.inner.id
            )));
        }
        if offset + bytes.len() > self.inner.len {
            return Err(ClError::InvalidBufferAccess(format!(
                "write of {} bytes at offset {offset} exceeds buffer size {}",
                bytes.len(),
                self.inner.len
            )));
        }
        self.inner.data.lock()[offset..offset + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_buffer_is_zeroed() {
        let b = Buffer::new(1, MemFlags::ReadWrite, 8);
        assert_eq!(b.snapshot().unwrap(), vec![0u8; 8]);
        assert_eq!(b.len(), 8);
        assert!(!b.is_empty());
    }

    #[test]
    fn overwrite_respects_bounds() {
        let b = Buffer::new(1, MemFlags::ReadWrite, 4);
        assert!(b.overwrite(0, &[1, 2, 3, 4]).is_ok());
        assert!(b.overwrite(2, &[9, 9, 9]).is_err());
        assert_eq!(b.snapshot().unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn checkout_conflict_mirrors_multiqueue_race() {
        let b = Buffer::new(1, MemFlags::ReadWrite, 4);
        let taken = b.check_out().unwrap();
        // A second queue arriving now sees the race.
        assert!(b.check_out().is_err());
        assert!(b.snapshot().is_err());
        b.check_in(taken);
        assert!(b.snapshot().is_ok());
    }

    #[test]
    fn ids_are_unique() {
        let a = Buffer::new(1, MemFlags::ReadWrite, 1);
        let b = Buffer::new(1, MemFlags::ReadWrite, 1);
        assert_ne!(a.id(), b.id());
    }
}
