//! Device memory objects, mirroring `cl_mem`.

use crate::error::{ClError, ClResult};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(1);

// Test-only accounting of host-visible byte copies made by buffer reads,
// so the copy-elimination in the read hot path stays eliminated.
// Thread-local: each test thread observes only its own copies.
#[cfg(test)]
thread_local! {
    static BYTES_COPIED: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Bytes copied out of buffers on this thread since process start
/// (test-only; used to assert the single-copy property of reads).
#[cfg(test)]
pub(crate) fn bytes_copied() -> u64 {
    BYTES_COPIED.with(|c| c.get())
}

#[cfg(test)]
fn count_copied(n: usize) {
    BYTES_COPIED.with(|c| c.set(c.get() + n as u64));
}

#[cfg(not(test))]
fn count_copied(_n: usize) {}

/// FNV-1a 64-bit checksum — the provenance fingerprint recorded for every
/// guarded upload and verified at readback / dispatch seams. Cheap, seedless,
/// and deterministic; a single flipped bit always changes the digest.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Provenance of a buffer's last known-good contents: the checksum that
/// verification compares against, plus a host shadow copy — the "last
/// checkpoint" that integrity recovery restores from before asking the
/// caller to recompute.
#[derive(Debug)]
pub(crate) struct Provenance {
    pub(crate) checksum: u64,
    pub(crate) shadow: Vec<u8>,
}

/// Buffer access flags, mirroring `CL_MEM_READ_WRITE` and friends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFlags {
    /// Kernels may read and write.
    ReadWrite,
    /// Kernels may only read (writes trap).
    ReadOnly,
    /// Kernels may only write (host-read still allowed, as in OpenCL).
    WriteOnly,
}

#[derive(Debug)]
pub(crate) struct BufferInner {
    pub(crate) id: u64,
    pub(crate) ctx_id: u64,
    pub(crate) flags: MemFlags,
    pub(crate) len: usize,
    pub(crate) data: Mutex<Vec<u8>>,
    /// True while a dispatch on some queue has checked the bytes out. Reads
    /// during that window are the race the paper hit with multiple command
    /// queues per device; the simulator surfaces it as an error instead of
    /// returning garbage.
    pub(crate) checked_out: AtomicBool,
    /// Last known-good checksum + host shadow. `None` until a queue with an
    /// armed integrity layer records one; plain runs never touch it, so the
    /// fault-free hot path stays shadow-free.
    pub(crate) provenance: Mutex<Option<Provenance>>,
}

/// A device memory buffer.
///
/// Cloning is cheap (reference count); the backing store is freed when the
/// last clone drops, mirroring `clReleaseMemObject` semantics.
#[derive(Debug, Clone)]
pub struct Buffer {
    pub(crate) inner: Arc<BufferInner>,
}

impl Buffer {
    pub(crate) fn new(ctx_id: u64, flags: MemFlags, len: usize) -> Buffer {
        Buffer {
            inner: Arc::new(BufferInner {
                id: NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed),
                ctx_id,
                flags,
                len,
                data: Mutex::new(vec![0u8; len]),
                checked_out: AtomicBool::new(false),
                provenance: Mutex::new(None),
            }),
        }
    }

    /// Size of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// True if the buffer has zero size.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// Access flags the buffer was created with.
    pub fn flags(&self) -> MemFlags {
        self.inner.flags
    }

    /// Process-unique id (used for aliasing detection during dispatch).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Id of the owning context.
    pub fn context_id(&self) -> u64 {
        self.inner.ctx_id
    }

    /// True while some queue's dispatch has the bytes checked out.
    pub fn is_busy(&self) -> bool {
        self.inner.checked_out.load(Ordering::Acquire)
    }

    /// Take the bytes out for a dispatch. Fails when another queue already
    /// holds them — the multi-queue race from §6.2.1 of the paper.
    pub(crate) fn check_out(&self) -> ClResult<Vec<u8>> {
        if self.inner.checked_out.swap(true, Ordering::AcqRel) {
            return Err(ClError::InvalidBufferAccess(format!(
                "buffer {} is busy on another command queue",
                self.inner.id
            )));
        }
        Ok(std::mem::take(&mut *self.inner.data.lock()))
    }

    /// Return the bytes after a dispatch.
    pub(crate) fn check_in(&self, bytes: Vec<u8>) {
        *self.inner.data.lock() = bytes;
        self.inner.checked_out.store(false, Ordering::Release);
    }

    /// Host-side copy of the buffer contents. The queue read paths use
    /// [`Buffer::read_into`] / [`Buffer::with_bytes`] instead — this
    /// allocating form survives only as a test convenience.
    #[cfg(test)]
    pub(crate) fn snapshot(&self) -> ClResult<Vec<u8>> {
        if self.is_busy() {
            return Err(ClError::InvalidBufferAccess(format!(
                "read of buffer {} raced a dispatch on another queue",
                self.inner.id
            )));
        }
        let data = self.inner.data.lock();
        count_copied(data.len());
        Ok(data.clone())
    }

    /// Copy the buffer contents directly into `out` under the data lock —
    /// exactly one copy, no intermediate allocation. `out` must be exactly
    /// the buffer's size.
    pub(crate) fn read_into(&self, out: &mut [u8]) -> ClResult<()> {
        if self.is_busy() {
            return Err(ClError::InvalidBufferAccess(format!(
                "read of buffer {} raced a dispatch on another queue",
                self.inner.id
            )));
        }
        if out.len() != self.inner.len {
            return Err(ClError::InvalidBufferAccess(format!(
                "read of {} bytes from a buffer of {} bytes",
                out.len(),
                self.inner.len
            )));
        }
        out.copy_from_slice(&self.inner.data.lock());
        count_copied(out.len());
        Ok(())
    }

    /// Run `f` over the buffer contents under the data lock — zero byte
    /// copies; conversions (e.g. bytes → `f32`s) happen in place.
    pub(crate) fn with_bytes<R>(&self, f: impl FnOnce(&[u8]) -> R) -> ClResult<R> {
        if self.is_busy() {
            return Err(ClError::InvalidBufferAccess(format!(
                "read of buffer {} raced a dispatch on another queue",
                self.inner.id
            )));
        }
        Ok(f(&self.inner.data.lock()))
    }

    /// Host-side overwrite (used by queue writes).
    pub(crate) fn overwrite(&self, offset: usize, bytes: &[u8]) -> ClResult<()> {
        if self.is_busy() {
            return Err(ClError::InvalidBufferAccess(format!(
                "write to buffer {} raced a dispatch on another queue",
                self.inner.id
            )));
        }
        if offset + bytes.len() > self.inner.len {
            return Err(ClError::InvalidBufferAccess(format!(
                "write of {} bytes at offset {offset} exceeds buffer size {}",
                bytes.len(),
                self.inner.len
            )));
        }
        self.inner.data.lock()[offset..offset + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    // ---------------------------------------------------------------
    // Provenance (silent-corruption defense). Only queues with an armed
    // integrity layer call these; plain runs never allocate a shadow.
    // ---------------------------------------------------------------

    /// Record the current device bytes as the buffer's last known-good
    /// contents: checksum + host shadow copy.
    pub(crate) fn record_provenance(&self) {
        let data = self.inner.data.lock();
        *self.inner.provenance.lock() = Some(Provenance {
            checksum: fnv1a64(&data),
            shadow: data.clone(),
        });
    }

    /// Checksum recorded in the provenance, if any.
    pub(crate) fn provenance_checksum(&self) -> Option<u64> {
        self.inner.provenance.lock().as_ref().map(|p| p.checksum)
    }

    /// Verify the device bytes against the recorded provenance. Returns
    /// `None` when no provenance is recorded or the checksum matches;
    /// `Some((expected, actual))` on a mismatch.
    pub(crate) fn verify_provenance(&self) -> Option<(u64, u64)> {
        let prov = self.inner.provenance.lock();
        let p = prov.as_ref()?;
        let actual = fnv1a64(&self.inner.data.lock());
        (actual != p.checksum).then_some((p.checksum, actual))
    }

    /// Restore the device bytes from the provenance shadow (invalidate
    /// and fall back to the last checkpoint). Returns the number of
    /// bytes restored, or `None` when no provenance is recorded.
    pub(crate) fn restore_from_provenance(&self) -> Option<usize> {
        let prov = self.inner.provenance.lock();
        let p = prov.as_ref()?;
        let mut data = self.inner.data.lock();
        data.copy_from_slice(&p.shadow);
        Some(p.shadow.len())
    }

    /// Flip one bit of the device bytes (the corruption injector's write
    /// path — deliberately bypasses provenance so the flip is silent).
    pub(crate) fn flip_bit(&self, bit: u64) {
        let mut data = self.inner.data.lock();
        if data.is_empty() {
            return;
        }
        let nbits = data.len() as u64 * 8;
        let b = bit % nbits;
        data[(b / 8) as usize] ^= 1 << (b % 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_buffer_is_zeroed() {
        let b = Buffer::new(1, MemFlags::ReadWrite, 8);
        assert_eq!(b.snapshot().unwrap(), vec![0u8; 8]);
        assert_eq!(b.len(), 8);
        assert!(!b.is_empty());
    }

    #[test]
    fn overwrite_respects_bounds() {
        let b = Buffer::new(1, MemFlags::ReadWrite, 4);
        assert!(b.overwrite(0, &[1, 2, 3, 4]).is_ok());
        assert!(b.overwrite(2, &[9, 9, 9]).is_err());
        assert_eq!(b.snapshot().unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn checkout_conflict_mirrors_multiqueue_race() {
        let b = Buffer::new(1, MemFlags::ReadWrite, 4);
        let taken = b.check_out().unwrap();
        // A second queue arriving now sees the race.
        assert!(b.check_out().is_err());
        assert!(b.snapshot().is_err());
        b.check_in(taken);
        assert!(b.snapshot().is_ok());
    }

    #[test]
    fn provenance_detects_and_restores_a_flipped_bit() {
        let b = Buffer::new(1, MemFlags::ReadWrite, 4);
        b.overwrite(0, &[1, 2, 3, 4]).unwrap();
        assert!(b.verify_provenance().is_none(), "no provenance yet");
        b.record_provenance();
        assert!(b.verify_provenance().is_none(), "clean bytes verify");
        b.flip_bit(13);
        let (expected, actual) = b.verify_provenance().expect("flip must be detected");
        assert_ne!(expected, actual);
        assert_eq!(b.restore_from_provenance(), Some(4));
        assert!(b.verify_provenance().is_none(), "restored bytes verify");
        assert_eq!(b.snapshot().unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn fnv1a64_is_bit_sensitive() {
        let a = fnv1a64(&[0u8; 16]);
        let mut flipped = [0u8; 16];
        flipped[7] ^= 0x10;
        assert_ne!(a, fnv1a64(&flipped));
    }

    #[test]
    fn ids_are_unique() {
        let a = Buffer::new(1, MemFlags::ReadWrite, 1);
        let b = Buffer::new(1, MemFlags::ReadWrite, 1);
        assert_ne!(a.id(), b.id());
    }
}
