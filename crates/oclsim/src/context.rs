//! Contexts, mirroring `cl_context`.

use crate::arbiter::{MemObserver, ObserverSlot};
use crate::buffer::{Buffer, MemFlags};
use crate::device::Device;
use crate::error::{ClError, ClResult};
use crate::fault::{FaultInjector, FaultOp};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_CTX_ID: AtomicU64 = AtomicU64::new(1);

#[derive(Debug)]
struct ContextInner {
    id: u64,
    devices: Vec<Device>,
    mem_budget: usize,
    allocated: Mutex<usize>,
    /// Optional fault source consulted by `Program::build` (see
    /// [`crate::fault`]).
    faults: Mutex<FaultInjector>,
    /// Optional pool-level accountant consulted around every allocation
    /// and release (see [`crate::arbiter::MemObserver`]).
    observer: ObserverSlot,
}

/// An umbrella structure holding the devices in use plus the runtime
/// software constructs (buffers, programs) created against them (§2.1).
///
/// Cloning shares the context (reference counted).
#[derive(Debug, Clone)]
pub struct Context {
    inner: Arc<ContextInner>,
}

impl Context {
    /// Create a context over one or more devices.
    ///
    /// The context's allocation budget is the smallest global memory of its
    /// devices (a buffer must fit on every device of the context).
    pub fn new(devices: &[Device]) -> ClResult<Context> {
        if devices.is_empty() {
            return Err(ClError::Internal(
                "a context requires at least one device".to_string(),
            ));
        }
        let mem_budget = devices
            .iter()
            .map(|d| d.global_mem_size())
            .min()
            .unwrap_or(0);
        Ok(Context {
            inner: Arc::new(ContextInner {
                id: NEXT_CTX_ID.fetch_add(1, Ordering::Relaxed),
                devices: devices.to_vec(),
                mem_budget,
                allocated: Mutex::new(0),
                faults: Mutex::new(FaultInjector::disabled()),
                observer: ObserverSlot::default(),
            }),
        })
    }

    /// Attach a pool-level memory observer: every subsequent
    /// [`Context::create_buffer`] first consults it (the observer may
    /// evict idle buffers elsewhere, or veto the allocation), and every
    /// [`Context::release_bytes`] reports back. All clones share the
    /// attachment; pass `None` to detach.
    ///
    /// The observer sees the context's **first device's** id — the
    /// serving layer only attaches observers to single-device contexts
    /// (one context per tenant per device), where that is *the* device.
    pub fn set_mem_observer(&self, observer: Option<Arc<dyn MemObserver>>) {
        self.inner.observer.set(observer);
    }

    /// Attach a fault injector: every subsequent [`crate::Program::build`]
    /// against this context first consults the injector and may fail with
    /// a scheduled [`ClError`] (see [`crate::fault`]). All clones of the
    /// context share the attachment. Pass [`FaultInjector::disabled`] to
    /// detach.
    pub fn attach_faults(&self, injector: FaultInjector) {
        *self.inner.faults.lock() = injector;
    }

    /// Consult the attached injector for a build-time fault (no-op when
    /// none is attached). Called by [`crate::Program::build`].
    pub(crate) fn build_fault_check(&self) -> ClResult<()> {
        let injector = self.inner.faults.lock().clone();
        let device = self
            .inner
            .devices
            .first()
            .map(|d| d.name().to_string())
            .unwrap_or_default();
        injector.check(FaultOp::Build, &device, 0.0)
    }

    /// Process-unique context id.
    ///
    /// The Ensemble runtime uses this to decide whether device-resident data
    /// can stay on the device when it moves between kernel actors (§6.2.3:
    /// OpenCL moves data between devices of one context, but not across
    /// contexts).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Devices of this context.
    pub fn devices(&self) -> &[Device] {
        &self.inner.devices
    }

    /// True when `device` belongs to this context.
    pub fn has_device(&self, device: &Device) -> bool {
        self.inner.devices.iter().any(|d| d.id() == device.id())
    }

    /// Allocate a device buffer of `bytes` bytes, mirroring
    /// `clCreateBuffer`.
    pub fn create_buffer(&self, flags: MemFlags, bytes: usize) -> ClResult<Buffer> {
        // Consult the pool accountant *before* taking this context's own
        // allocation lock: the observer may evict (which releases bytes
        // through other contexts — or even this one), so it must never
        // run under our lock.
        if let Some(obs) = self.inner.observer.get() {
            obs.will_allocate(self.device_id(), bytes)?;
        }
        let mut allocated = self.inner.allocated.lock();
        if *allocated + bytes > self.inner.mem_budget {
            return Err(ClError::OutOfDeviceMemory {
                requested: bytes,
                available: self.inner.mem_budget - *allocated,
            });
        }
        *allocated += bytes;
        Ok(Buffer::new(self.inner.id, flags, bytes))
    }

    /// Bytes currently allocated (for tests and the memory-pressure bench).
    pub fn allocated_bytes(&self) -> usize {
        *self.inner.allocated.lock()
    }

    /// Return `bytes` to the allocator. Called by the higher layers when a
    /// buffer is dropped; the simulator keeps this explicit rather than
    /// hooking `Drop` so that accounting stays deterministic under clones.
    pub fn release_bytes(&self, bytes: usize) {
        {
            let mut allocated = self.inner.allocated.lock();
            *allocated = allocated.saturating_sub(bytes);
        }
        if let Some(obs) = self.inner.observer.get() {
            obs.did_release(self.device_id(), bytes);
        }
    }

    /// The id of this context's first device (the device the pool
    /// accountant books against; serving contexts are single-device).
    fn device_id(&self) -> usize {
        self.inner.devices.first().map(|d| d.id()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    #[test]
    fn context_over_gpu_and_cpu() {
        let p = &Platform::all()[0];
        let ctx = Context::new(&p.devices(None)).unwrap();
        assert_eq!(ctx.devices().len(), 2);
    }

    #[test]
    fn empty_device_list_is_rejected() {
        assert!(Context::new(&[]).is_err());
    }

    #[test]
    fn allocation_accounting() {
        let p = &Platform::all()[0];
        let ctx = Context::new(&p.devices(None)).unwrap();
        let _b = ctx.create_buffer(MemFlags::ReadWrite, 1024).unwrap();
        assert_eq!(ctx.allocated_bytes(), 1024);
        ctx.release_bytes(1024);
        assert_eq!(ctx.allocated_bytes(), 0);
    }

    #[test]
    fn over_allocation_fails_like_opencl() {
        let p = &Platform::all()[0];
        let ctx = Context::new(&p.devices(None)).unwrap();
        let err = ctx
            .create_buffer(MemFlags::ReadWrite, usize::MAX / 2)
            .unwrap_err();
        assert!(matches!(err, ClError::OutOfDeviceMemory { .. }));
    }

    #[test]
    fn ids_are_unique_across_contexts() {
        let p = &Platform::all()[0];
        let a = Context::new(&p.devices(None)).unwrap();
        let b = Context::new(&p.devices(None)).unwrap();
        assert_ne!(a.id(), b.id());
    }
}
