//! Simulated devices and their performance profiles.
//!
//! A [`Device`] stands in for a physical accelerator. The two built-in
//! profiles are shaped after the paper's testbed: an AMD Radeon R9 290x GPU
//! and an Intel Core i5-3550 CPU. The numbers do not claim to reproduce that
//! hardware's absolute speed — only the *relationships* that drive the
//! paper's figures: the GPU has enormous arithmetic parallelism but pays a
//! PCIe-like cost to move data; the CPU has little parallelism but shares
//! memory with the host, so transfers are nearly free.

use crate::timing::CostModel;

/// Kind of accelerator, mirroring `cl_device_type`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// A CPU device (host-shared memory, few wide cores).
    Cpu,
    /// A discrete GPU (many SIMD lanes, PCIe transfer costs).
    Gpu,
    /// A co-processor such as a Xeon Phi.
    Accelerator,
}

impl std::fmt::Display for DeviceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceType::Cpu => write!(f, "CPU"),
            DeviceType::Gpu => write!(f, "GPU"),
            DeviceType::Accelerator => write!(f, "ACCELERATOR"),
        }
    }
}

/// Static description of a simulated device.
#[derive(Debug, Clone)]
pub struct Device {
    /// Stable identifier, unique within the process.
    pub(crate) id: usize,
    /// Marketing name reported by `device.name()`.
    pub(crate) name: String,
    /// Device class.
    pub(crate) device_type: DeviceType,
    /// Number of compute units (cores on a CPU, CUs on a GPU).
    pub(crate) compute_units: usize,
    /// SIMD lanes per compute unit.
    pub(crate) simd_width: usize,
    /// Global memory capacity in bytes.
    pub(crate) global_mem_size: usize,
    /// Local (work-group shared) memory per compute unit, in bytes.
    pub(crate) local_mem_size: usize,
    /// Largest allowed work-group size.
    pub(crate) max_work_group_size: usize,
    /// The analytic timing model used to charge virtual time.
    pub(crate) cost: CostModel,
}

impl Device {
    /// Device name, e.g. `"SimCL R9-290x (sim)"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Device class (CPU / GPU / accelerator).
    pub fn device_type(&self) -> DeviceType {
        self.device_type
    }

    /// Number of compute units.
    pub fn compute_units(&self) -> usize {
        self.compute_units
    }

    /// SIMD width of each compute unit.
    pub fn simd_width(&self) -> usize {
        self.simd_width
    }

    /// Total hardware lanes = compute units × SIMD width.
    pub fn lanes(&self) -> usize {
        self.compute_units * self.simd_width
    }

    /// Global memory capacity in bytes.
    pub fn global_mem_size(&self) -> usize {
        self.global_mem_size
    }

    /// Local memory per work-group in bytes.
    pub fn local_mem_size(&self) -> usize {
        self.local_mem_size
    }

    /// Maximum work-group size accepted by `enqueue_nd_range`.
    pub fn max_work_group_size(&self) -> usize {
        self.max_work_group_size
    }

    /// The timing model for this device.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Process-unique id (used by contexts and the device matrix).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Built-in GPU profile shaped after the paper's AMD Radeon R9 290x.
    ///
    /// 44 compute units × 64-lane wavefronts, 4 GiB of device memory, and a
    /// PCIe-3-like transfer cost.
    pub(crate) fn sim_gpu(id: usize) -> Device {
        Device {
            id,
            name: "SimCL Radeon R9-290x (simulated)".to_string(),
            device_type: DeviceType::Gpu,
            compute_units: 44,
            simd_width: 64,
            global_mem_size: 4 << 30,
            local_mem_size: 64 << 10,
            max_work_group_size: 256,
            cost: CostModel::gpu_pcie(),
        }
    }

    /// Built-in CPU profile shaped after the paper's Intel Core i5-3550.
    ///
    /// 4 cores × 8-wide vector units, host-shared memory (cheap transfers).
    pub(crate) fn sim_cpu(id: usize) -> Device {
        Device {
            id,
            name: "SimCL Core i5-3550 (simulated)".to_string(),
            device_type: DeviceType::Cpu,
            compute_units: 4,
            simd_width: 8,
            global_mem_size: 16 << 30,
            local_mem_size: 32 << 10,
            max_work_group_size: 1024,
            cost: CostModel::cpu_shared(),
        }
    }

    /// Built-in accelerator profile shaped after a Xeon Phi co-processor.
    ///
    /// Included because the paper lists co-processors among OpenCL device
    /// classes; useful for tests exercising three-way device selection.
    pub(crate) fn sim_phi(id: usize) -> Device {
        Device {
            id,
            name: "SimCL Xeon Phi 5110P (simulated)".to_string(),
            device_type: DeviceType::Accelerator,
            compute_units: 60,
            simd_width: 16,
            global_mem_size: 8 << 30,
            local_mem_size: 32 << 10,
            max_work_group_size: 512,
            cost: CostModel::accelerator_pcie(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_profile_has_more_lanes_than_cpu() {
        let gpu = Device::sim_gpu(0);
        let cpu = Device::sim_cpu(1);
        assert!(gpu.lanes() > 10 * cpu.lanes());
    }

    #[test]
    fn cpu_transfers_are_cheaper_than_gpu_transfers() {
        let gpu = Device::sim_gpu(0);
        let cpu = Device::sim_cpu(1);
        let bytes = 1 << 20;
        assert!(cpu.cost_model().transfer_ns(bytes) < gpu.cost_model().transfer_ns(bytes));
    }

    #[test]
    fn display_matches_opencl_names() {
        assert_eq!(DeviceType::Cpu.to_string(), "CPU");
        assert_eq!(DeviceType::Gpu.to_string(), "GPU");
        assert_eq!(DeviceType::Accelerator.to_string(), "ACCELERATOR");
    }

    #[test]
    fn ids_are_preserved() {
        assert_eq!(Device::sim_gpu(7).id(), 7);
    }
}
