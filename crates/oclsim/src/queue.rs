//! In-order command queues, mirroring `cl_command_queue`.

use crate::arbiter::{ArbiterGrant, ArbiterHandle, QueueArbiter};
use crate::buffer::Buffer;
use crate::context::Context;
use crate::device::Device;
use crate::engine::Engine;
use crate::error::{ClError, ClResult};
use crate::event::{CommandKind, Event};
use crate::fault::{FaultEffect, FaultInjector, FaultOp};
use crate::minicl::interp::{run_ndrange_window, MemPool, NdStats};
use crate::minicl::native;
use crate::minicl::regir;
use crate::ndrange::NdRange;
use crate::program::Kernel;
use parking_lot::Mutex;
use std::sync::Arc;
use trace::{SpanKind, TraceEvent, TraceSink};

/// An in-order command queue bound to one device of a context (§2.1).
///
/// Commands execute eagerly (results are visible when the enqueue call
/// returns) but are *timed* on the queue's virtual clock; `finish()` returns
/// immediately and exists for host-code fidelity.
///
/// Cloning shares the queue (and its clock).
#[derive(Debug, Clone)]
pub struct CommandQueue {
    inner: Arc<QueueInner>,
}

#[derive(Debug)]
struct QueueInner {
    ctx: Context,
    device: Device,
    clock_ns: Mutex<f64>,
    /// Optional recorder: when attached, every command this queue executes
    /// becomes a virtual-clock span on the device's trace track.
    trace: Mutex<TraceSink>,
    /// Optional *instant mirror*: a second sink that receives only the
    /// queue's instant markers (co-execution splits, fused batches,
    /// integrity checks, straggler kills) and none of the command spans.
    /// The VM attaches its run trace here — its profile layer already
    /// emits the command spans, so mirroring the full trace would
    /// double-count every segment.
    instants: Mutex<TraceSink>,
    /// Optional fault source: when attached, every command consults it
    /// first and may fail with an injected error (see [`crate::fault`]).
    faults: Mutex<FaultInjector>,
    /// Optional fairness gate: when attached, every command brackets its
    /// device access in an arbiter acquire/release pair under this
    /// queue's tenant tag (see [`crate::arbiter`]).
    arbiter: Mutex<ArbiterHandle>,
    /// Virtual time spent on integrity *repair* — shadow restores and
    /// integrity-retry backoff. Deliberately kept off the main clock so
    /// a corrupted-but-recovered run ends with a byte-identical
    /// `clock_ns`; this is the "recompute overhead" the SDC bench
    /// reports.
    repair_ns: Mutex<f64>,
    /// Per-dispatch watchdog budget in virtual nanoseconds: a dispatch
    /// whose (possibly slowdown-stretched) cost exceeds it is rolled
    /// back from provenance shadows, charged only the budget, and fails
    /// with [`ClError::Straggler`]. `None` (the default) disables it.
    watchdog_ns: Mutex<Option<f64>>,
}

impl CommandQueue {
    /// Create a queue for `device`, which must belong to `ctx`.
    pub fn new(ctx: &Context, device: &Device) -> ClResult<CommandQueue> {
        if !ctx.has_device(device) {
            return Err(ClError::InvalidContext(format!(
                "device `{}` is not part of the context",
                device.name()
            )));
        }
        Ok(CommandQueue {
            inner: Arc::new(QueueInner {
                ctx: ctx.clone(),
                device: device.clone(),
                clock_ns: Mutex::new(0.0),
                trace: Mutex::new(TraceSink::disabled()),
                instants: Mutex::new(TraceSink::disabled()),
                faults: Mutex::new(FaultInjector::disabled()),
                arbiter: Mutex::new(ArbiterHandle::detached()),
                repair_ns: Mutex::new(0.0),
                watchdog_ns: Mutex::new(None),
            }),
        })
    }

    /// Attach a fairness arbiter: every subsequent upload, read-back,
    /// and kernel dispatch on this queue first acquires a command slot
    /// from `arbiter` under the tag `tenant`, and releases it when the
    /// command completes (panic-safe). All clones of the queue share the
    /// attachment. Pass [`ArbiterHandle::detached`] via
    /// [`CommandQueue::detach_arbiter`] to detach.
    ///
    /// Arbitration is wall-clock only — the queue's virtual clock and
    /// every event timestamp are unchanged by contention, so a tenant's
    /// virtual timeline stays byte-identical to an uncontended run.
    pub fn attach_arbiter(&self, arbiter: std::sync::Arc<dyn QueueArbiter>, tenant: u64) {
        *self.inner.arbiter.lock() = ArbiterHandle::new(arbiter, tenant);
    }

    /// Detach any attached arbiter (commands run ungated again).
    pub fn detach_arbiter(&self) {
        *self.inner.arbiter.lock() = ArbiterHandle::detached();
    }

    /// Acquire this queue's arbiter slot for one command (`None` when no
    /// arbiter is attached). Cloned out of the lock so the slot is never
    /// held while the handle mutex is.
    fn arbiter_slot(&self) -> Option<ArbiterGrant> {
        let handle = self.inner.arbiter.lock().clone();
        handle.grant(self.inner.device.id())
    }

    /// Attach a fault injector: every subsequent upload, read-back, and
    /// kernel dispatch on this queue first consults the injector and may
    /// fail with a scheduled [`ClError`] (see [`crate::fault`]). All
    /// clones of the queue share the attachment. Pass
    /// [`FaultInjector::disabled`] to detach.
    pub fn attach_faults(&self, injector: FaultInjector) {
        *self.inner.faults.lock() = injector;
    }

    fn fault_check(&self, op: FaultOp) -> ClResult<FaultEffect> {
        // Clone the (cheap, Arc-backed) handle so the lock is not held
        // across the check — check_effects() may lock the injector's own
        // state (and an injected Hang stalls inside it).
        let injector = self.inner.faults.lock().clone();
        injector.check_effects(op, self.inner.device.name(), self.now_ns())
    }

    /// Whether the integrity layer is armed: the attached fault plan can
    /// silently corrupt payloads, so uploads record provenance and
    /// readbacks/dispatches verify it. Corruption-free runs skip all of
    /// it — no checksums, no shadows, no extra trace instants.
    fn integrity_armed(&self) -> bool {
        self.inner.faults.lock().can_corrupt()
    }

    /// Whether uploads and dispatches should maintain provenance
    /// shadows: either the integrity layer is armed, or the watchdog is
    /// (an abandoned straggler rolls its side effects back from the
    /// shadows).
    fn provenance_armed(&self) -> bool {
        self.inner.watchdog_ns.lock().is_some() || self.integrity_armed()
    }

    /// Arm (or, with `None`, disarm) the per-dispatch watchdog: any
    /// kernel dispatch whose virtual cost would exceed `budget_ns` is
    /// abandoned instead — its buffer mutations are rolled back from
    /// provenance shadows, only the budget is charged to the clock, a
    /// [`SpanKind::StragglerAbandoned`] instant is recorded, and the
    /// dispatch fails with [`ClError::Straggler`] so the recovery layer
    /// re-issues it on the failover device.
    pub fn set_watchdog_ns(&self, budget_ns: Option<f64>) {
        *self.inner.watchdog_ns.lock() = budget_ns;
    }

    /// Virtual time spent repairing detected integrity violations
    /// (shadow restores + integrity-retry backoff). Accounted separately
    /// from [`CommandQueue::now_ns`] so recovered runs stay
    /// clock-identical to fault-free ones.
    pub fn repair_ns(&self) -> f64 {
        *self.inner.repair_ns.lock()
    }

    /// Charge `cost_ns` of repair work (see [`CommandQueue::repair_ns`]).
    /// Used by the recovery layer for integrity-retry backoff.
    pub fn charge_repair_ns(&self, cost_ns: f64) {
        *self.inner.repair_ns.lock() += cost_ns;
    }

    /// Attach an instant mirror: `sink` receives every subsequent
    /// instant marker this queue records (and nothing else — command
    /// spans stay on the [`CommandQueue::attach_trace`] sink). All
    /// clones of the queue share the attachment; attach
    /// [`TraceSink::disabled`] to detach.
    pub fn attach_instants(&self, sink: TraceSink) {
        *self.inner.instants.lock() = sink;
    }

    /// Record an instant of `kind` on this queue's device track at the
    /// current virtual time (no-op when no sink is attached).
    fn instant(&self, kind: SpanKind, name: &str, args: &[(&str, String)]) {
        let trace = self.inner.trace.lock();
        let mirror = self.inner.instants.lock();
        if !trace.is_enabled() && !mirror.is_enabled() {
            return;
        }
        let mut ev = TraceEvent::instant(kind, name, self.inner.device.name(), self.now_ns());
        for (k, v) in args {
            ev = ev.with_arg(k, v);
        }
        if trace.is_enabled() {
            trace.record(ev.clone());
        }
        if mirror.is_enabled() {
            mirror.record(ev);
        }
    }

    /// Detection seam shared by the readback and dispatch paths: `buf`'s
    /// delivered/observed checksum `actual` disagreed with its recorded
    /// provenance `expected`. Restores the device bytes from the shadow
    /// (the last checkpoint), charges the restore to repair accounting,
    /// reports the detection to the injector's scoreboard, records the
    /// [`SpanKind::IntegrityViolation`] instant, and builds the typed
    /// error for the recovery layer. The main virtual clock is never
    /// touched.
    fn integrity_violation(&self, buf: &Buffer, expected: u64, actual: u64) -> ClError {
        let restored = buf.restore_from_provenance().unwrap_or(0);
        self.charge_repair_ns(self.inner.device.cost_model().transfer_ns(restored));
        self.inner.faults.lock().note_detection();
        self.instant(
            SpanKind::IntegrityViolation,
            "checksum_mismatch",
            &[
                ("buffer", buf.id().to_string()),
                ("expected", format!("{expected:#018x}")),
                ("actual", format!("{actual:#018x}")),
                ("restored_bytes", restored.to_string()),
            ],
        );
        ClError::IntegrityViolation {
            device: self.inner.device.name().to_string(),
            buffer: buf.id(),
            expected,
            actual,
        }
    }

    /// Verify every provenance-carrying buffer in `bufs` against its
    /// recorded checksum. No-op unless the integrity layer is armed. On
    /// the first mismatch the buffer is restored from its shadow and the
    /// command fails with [`ClError::IntegrityViolation`]; on success a
    /// single [`SpanKind::IntegrityCheck`] instant is recorded. The
    /// resident-`mov` reuse path calls this before handing device-
    /// resident buffers to a dispatch without a fresh upload.
    pub fn verify_integrity(&self, bufs: &[Buffer]) -> ClResult<()> {
        if !self.integrity_armed() {
            return Ok(());
        }
        self.preverify(bufs)
    }

    /// Armed-path body of [`CommandQueue::verify_integrity`].
    fn preverify(&self, bufs: &[Buffer]) -> ClResult<()> {
        let mut checked = 0u32;
        for buf in bufs {
            if let Some((expected, actual)) = buf.verify_provenance() {
                return Err(self.integrity_violation(buf, expected, actual));
            }
            if buf.provenance_checksum().is_some() {
                checked += 1;
            }
        }
        if checked > 0 {
            self.instant(
                SpanKind::IntegrityCheck,
                "preverify",
                &[("buffers", checked.to_string())],
            );
        }
        Ok(())
    }

    /// Readback-seam verification: compare the checksum of the payload
    /// *as delivered to the host* (computed by `payload_checksum`, after
    /// any injected wire flip) against `buf`'s provenance. No-op unless
    /// the integrity layer is armed and provenance is recorded. A wire
    /// flip makes the delivered checksum diverge; a device-memory flip
    /// makes both the delivered and stored bytes diverge — either way
    /// the shadow restore + typed error lets the caller re-read cleanly.
    fn verify_delivery(&self, buf: &Buffer, payload_checksum: impl FnOnce() -> u64) -> ClResult<()> {
        if !self.integrity_armed() {
            return Ok(());
        }
        let Some(expected) = buf.provenance_checksum() else {
            return Ok(());
        };
        let actual = payload_checksum();
        if actual != expected {
            return Err(self.integrity_violation(buf, expected, actual));
        }
        self.instant(
            SpanKind::IntegrityCheck,
            "readback",
            &[("buffer", buf.id().to_string())],
        );
        Ok(())
    }

    /// Attach a trace sink: from now on every enqueued command is also
    /// recorded as a [`trace`] span (kind, queued/submit/start/end virtual
    /// timestamps, bytes or items) on this queue's device track. All
    /// clones of the queue share the attachment. Pass
    /// [`TraceSink::disabled`] to detach.
    pub fn attach_trace(&self, sink: TraceSink) {
        *self.inner.trace.lock() = sink;
    }

    /// Record a completed command into the attached sink (no-op when no
    /// sink is attached).
    fn trace_command(&self, ev: &Event) {
        let sink = self.inner.trace.lock();
        if !sink.is_enabled() {
            return;
        }
        let (kind, name) = match ev.kind() {
            CommandKind::WriteBuffer => (SpanKind::ToDevice, "write_buffer".to_string()),
            CommandKind::ReadBuffer => (SpanKind::FromDevice, "read_buffer".to_string()),
            CommandKind::NdRange(k) => (SpanKind::Kernel, k.clone()),
            CommandKind::Marker => (SpanKind::Marker, "marker".to_string()),
        };
        let mut te = TraceEvent::span(
            kind,
            &name,
            self.inner.device.name(),
            ev.start_ns(),
            ev.duration_ns(),
        )
        .with_arg("queued_ns", ev.queued_ns())
        .with_arg("submit_ns", ev.submit_ns());
        if ev.bytes() > 0 {
            te = te.with_arg("bytes", ev.bytes());
        }
        if ev.items() > 0 {
            te = te.with_arg("items", ev.items());
        }
        if let Some(engine) = ev.engine() {
            te = te.with_arg("engine", engine);
        }
        if ev.ops() > 0 {
            te = te.with_arg("ops", ev.ops());
        }
        sink.record(te);
    }

    /// The device this queue feeds.
    pub fn device(&self) -> &Device {
        &self.inner.device
    }

    /// The owning context.
    pub fn context(&self) -> &Context {
        &self.inner.ctx
    }

    /// Current virtual time of this queue in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        *self.inner.clock_ns.lock()
    }

    /// Block until all enqueued commands complete (a no-op under eager
    /// execution; returns the queue's virtual time for convenience).
    pub fn finish(&self) -> f64 {
        self.now_ns()
    }

    fn advance(&self, cost_ns: f64) -> (f64, f64) {
        let mut clock = self.inner.clock_ns.lock();
        let start = *clock;
        *clock += cost_ns;
        (start, *clock)
    }

    /// Charge `cost_ns` of host-side time to this queue's virtual clock
    /// and return the `(start, end)` window. This is how layers above the
    /// simulator keep host work (e.g. retry backoff in the recovery
    /// layer) on the same deterministic timeline as device commands.
    pub fn charge_ns(&self, cost_ns: f64) -> (f64, f64) {
        self.advance(cost_ns)
    }

    /// Copy `data` into `buf` (host → device), mirroring
    /// `clEnqueueWriteBuffer`.
    pub fn enqueue_write_buffer(&self, buf: &Buffer, data: &[u8]) -> ClResult<Event> {
        let _slot = self.arbiter_slot();
        let effect = self.fault_check(FaultOp::Upload)?;
        self.check_buffer(buf)?;
        buf.overwrite(0, data)?;
        if self.provenance_armed() {
            // Record the *intended* bytes as the buffer's last known-good
            // checkpoint, then apply any injected flip to the device copy
            // only — exactly what a bit flip on the bus would look like.
            buf.record_provenance();
        }
        if let Some(bit) = effect.corrupt_bit {
            buf.flip_bit(bit);
        }
        let cost = self.inner.device.cost_model().transfer_ns(data.len());
        let (start, end) = self.advance(cost);
        let ev = Event::new(CommandKind::WriteBuffer, start, start, end, data.len(), 0);
        self.trace_command(&ev);
        Ok(ev)
    }

    /// Copy `buf` into `out` (device → host), mirroring
    /// `clEnqueueReadBuffer`. `out` must be exactly the buffer's size.
    ///
    /// The copy happens directly into `out` under the buffer's data lock —
    /// one copy, no intermediate snapshot allocation.
    pub fn enqueue_read_buffer(&self, buf: &Buffer, out: &mut [u8]) -> ClResult<Event> {
        let _slot = self.arbiter_slot();
        let effect = self.fault_check(FaultOp::Readback)?;
        self.check_buffer(buf)?;
        buf.read_into(out)?;
        if let Some(bit) = effect.corrupt_bit {
            flip_bit_in(out, bit);
        }
        self.verify_delivery(buf, || crate::buffer::fnv1a64(out))?;
        let cost = self.inner.device.cost_model().transfer_ns(out.len());
        let (start, end) = self.advance(cost);
        let ev = Event::new(CommandKind::ReadBuffer, start, start, end, out.len(), 0);
        self.trace_command(&ev);
        Ok(ev)
    }

    /// Convenience: write an `f32` slice.
    pub fn write_f32(&self, buf: &Buffer, data: &[f32]) -> ClResult<Event> {
        self.enqueue_write_buffer(buf, &crate::hostmem::f32_to_bytes(data))
    }

    /// Convenience: read the whole buffer as `f32`s.
    ///
    /// Converts bytes → `f32`s directly under the buffer's data lock, with
    /// no intermediate byte vector.
    pub fn read_f32(&self, buf: &Buffer) -> ClResult<(Vec<f32>, Event)> {
        let _slot = self.arbiter_slot();
        let effect = self.fault_check(FaultOp::Readback)?;
        self.check_buffer(buf)?;
        let mut vals = buf.with_bytes(crate::hostmem::bytes_to_f32)?;
        if let Some(bit) = effect.corrupt_bit {
            if !vals.is_empty() {
                let i = ((bit / 32) % vals.len() as u64) as usize;
                vals[i] = f32::from_bits(vals[i].to_bits() ^ (1u32 << (bit % 32)));
            }
        }
        self.verify_delivery(buf, || {
            crate::buffer::fnv1a64(&crate::hostmem::f32_to_bytes(&vals))
        })?;
        let cost = self.inner.device.cost_model().transfer_ns(buf.len());
        let (start, end) = self.advance(cost);
        let ev = Event::new(CommandKind::ReadBuffer, start, start, end, buf.len(), 0);
        self.trace_command(&ev);
        Ok((vals, ev))
    }

    /// Convenience: write an `i32` slice.
    pub fn write_i32(&self, buf: &Buffer, data: &[i32]) -> ClResult<Event> {
        self.enqueue_write_buffer(buf, &crate::hostmem::i32_to_bytes(data))
    }

    /// Convenience: read the whole buffer as `i32`s.
    ///
    /// Converts bytes → `i32`s directly under the buffer's data lock, with
    /// no intermediate byte vector.
    pub fn read_i32(&self, buf: &Buffer) -> ClResult<(Vec<i32>, Event)> {
        let _slot = self.arbiter_slot();
        let effect = self.fault_check(FaultOp::Readback)?;
        self.check_buffer(buf)?;
        let mut vals = buf.with_bytes(crate::hostmem::bytes_to_i32)?;
        if let Some(bit) = effect.corrupt_bit {
            if !vals.is_empty() {
                let i = ((bit / 32) % vals.len() as u64) as usize;
                vals[i] ^= 1i32 << (bit % 32);
            }
        }
        self.verify_delivery(buf, || {
            crate::buffer::fnv1a64(&crate::hostmem::i32_to_bytes(&vals))
        })?;
        let cost = self.inner.device.cost_model().transfer_ns(buf.len());
        let (start, end) = self.advance(cost);
        let ev = Event::new(CommandKind::ReadBuffer, start, start, end, buf.len(), 0);
        self.trace_command(&ev);
        Ok((vals, ev))
    }

    fn check_buffer(&self, buf: &Buffer) -> ClResult<()> {
        if buf.context_id() != self.inner.ctx.id() {
            return Err(ClError::InvalidContext(format!(
                "buffer {} does not belong to this queue's context",
                buf.id()
            )));
        }
        Ok(())
    }

    /// Launch a kernel over `nd`, mirroring `clEnqueueNDRangeKernel`.
    ///
    /// Executes the kernel with the engine the kernel requests (native by
    /// default, falling down the ladder to register and then the stack
    /// reference engine whenever a lowering declines the kernel — see
    /// [`crate::engine`]) and
    /// charges the device's analytic cost to the queue's virtual clock. The
    /// returned event's profiling timestamps expose that cost; its
    /// [`Event::engine`] and [`Event::ops`] report what actually ran. The
    /// resolved arguments come from the kernel's cached dispatch plan, so
    /// repeat dispatches with unchanged arguments skip re-resolution.
    pub fn enqueue_nd_range(&self, kernel: &Kernel, nd: &NdRange) -> ClResult<Event> {
        let _slot = self.arbiter_slot();
        self.enqueue_nd_range_held(kernel, nd, 0.0)
    }

    /// [`CommandQueue::enqueue_nd_range`] without acquiring an arbiter
    /// slot (the caller — a [`DispatchBatch`] or the co-execution
    /// scheduler — already holds one for the whole composite command),
    /// with `discount_ns` subtracted from the charged cost before the
    /// slowdown/watchdog stage (the batcher's amortised launch overhead).
    pub(crate) fn enqueue_nd_range_held(
        &self,
        kernel: &Kernel,
        nd: &NdRange,
        discount_ns: f64,
    ) -> ClResult<Event> {
        let prep = self.predispatch(kernel, nd)?;
        let num_groups = [
            nd.global[0] / nd.local[0].max(1),
            nd.global[1] / nd.local[1].max(1),
            nd.global[2] / nd.local[2].max(1),
        ];
        let window = [0..num_groups[0], 0..num_groups[1], 0..num_groups[2]];
        let (stats, engine) = self.run_window(kernel, &prep.plan, nd, window)?;
        let base = self.inner.device.cost_model().kernel_ns(
            &stats.group_ops,
            nd.group_size(),
            self.inner.device.compute_units(),
            self.inner.device.simd_width(),
        );
        let ops = stats.group_ops.iter().sum();
        self.commit_kernel(
            kernel,
            &prep.plan,
            &prep.effect,
            stats.items,
            ops,
            (base - discount_ns).max(0.0),
            engine,
        )
    }

    /// Everything that precedes execution for a kernel dispatch: the
    /// Enqueue fault draw (exactly one per dispatch, however many window
    /// pieces later run), context/shape/local-memory validation, the
    /// corruption seam, and armed-path pre-verification. Shared by the
    /// single-device path and the co-execution scheduler.
    pub(crate) fn predispatch(&self, kernel: &Kernel, nd: &NdRange) -> ClResult<PreparedDispatch> {
        let effect = self.fault_check(FaultOp::Enqueue)?;
        if kernel.ctx_id != self.inner.ctx.id() {
            return Err(ClError::InvalidContext(format!(
                "kernel `{}` was built for a different context",
                kernel.name()
            )));
        }
        nd.validate(self.inner.device.max_work_group_size())?;
        let plan = kernel.dispatch_plan()?;
        if plan.local_bytes > self.inner.device.local_mem_size() {
            return Err(ClError::InvalidWorkGroupSize(format!(
                "kernel `{}` needs {} bytes of local memory; device has {}",
                kernel.name(),
                plan.local_bytes,
                self.inner.device.local_mem_size()
            )));
        }

        // Silent-corruption seam: an injected Enqueue flip lands in one
        // argument buffer *before* the pre-dispatch verification, which
        // is exactly the seam that catches it (along with any flip left
        // behind by a corrupted upload).
        if let Some(bit) = effect.corrupt_bit {
            if let Some(target) = plan
                .pooled
                .get((bit % plan.pooled.len().max(1) as u64) as usize)
            {
                target.flip_bit(bit / plan.pooled.len().max(1) as u64);
            }
        }
        if self.integrity_armed() {
            self.preverify(&plan.pooled)?;
        }
        Ok(PreparedDispatch { plan, effect })
    }

    /// Functionally execute the work-groups of `nd` whose per-dimension
    /// group indices fall in `window`, on this queue's engine ladder.
    /// No clock advance, no event, no provenance — the caller aggregates
    /// the returned [`NdStats`] into a single committed command (see
    /// [`CommandQueue::commit_kernel`]). Buffers are checked out for the
    /// duration of the piece and always returned, trap or not.
    pub(crate) fn run_window(
        &self,
        kernel: &Kernel,
        plan: &crate::program::DispatchPlan,
        nd: &NdRange,
        window: [std::ops::Range<usize>; 3],
    ) -> ClResult<(NdStats, Engine)> {
        // Check out the plan's unique buffers, undoing on conflict.
        let mut pool = MemPool {
            bufs: Vec::with_capacity(plan.pooled.len()),
            read_only: plan.read_only.clone(),
        };
        for (i, buf) in plan.pooled.iter().enumerate() {
            match buf.check_out() {
                Ok(bytes) => pool.bufs.push(bytes),
                Err(e) => {
                    for (b, bytes) in plan.pooled[..i].iter().zip(pool.bufs.drain(..)) {
                        b.check_in(bytes);
                    }
                    return Err(e);
                }
            }
        }

        // Walk down the engine ladder from the requested rung, lazily
        // compiling only the programs the chosen rung needs: native →
        // register → stack, stopping at the first lowering that accepted
        // the kernel.
        let requested = kernel.engine();
        let native = match requested {
            Engine::Native => kernel.native_program(),
            Engine::Register | Engine::Stack => None,
        };
        let reg = match (&native, requested) {
            (Some(_), _) | (None, Engine::Stack) => None,
            (None, Engine::Native | Engine::Register) => kernel.reg_program(),
        };
        let (result, engine_used) = if let Some(prog) = native {
            (
                native::run_ndrange_window(
                    &prog,
                    &kernel.info,
                    &plan.rt_args,
                    &mut pool,
                    nd.global,
                    nd.local,
                    window,
                ),
                Engine::Native,
            )
        } else if let Some(prog) = reg {
            (
                regir::run_ndrange_window(
                    &prog,
                    &kernel.info,
                    &plan.rt_args,
                    &mut pool,
                    nd.global,
                    nd.local,
                    window,
                ),
                Engine::Register,
            )
        } else {
            (
                run_ndrange_window(
                    &kernel.unit,
                    &kernel.info,
                    &plan.rt_args,
                    &mut pool,
                    nd.global,
                    nd.local,
                    window,
                ),
                Engine::Stack,
            )
        };

        // Always return bytes to their buffers, even on trap.
        for (buf, bytes) in plan.pooled.iter().zip(pool.bufs.drain(..)) {
            buf.check_in(bytes);
        }

        let stats = result.map_err(|t| ClError::KernelTrap {
            kernel: kernel.name().to_string(),
            message: t.message,
            global_id: t.global_id,
        })?;
        Ok((stats, engine_used))
    }

    /// Commit an executed kernel command to the queue: apply any injected
    /// slowdown to `cost_ns`, enforce the watchdog (rolling buffer
    /// mutations back from provenance shadows on abandonment), refresh
    /// provenance checkpoints, advance the virtual clock, and record the
    /// kernel [`Event`] + trace span. The tail of every dispatch path —
    /// single-device, batched, and co-executed (where `cost_ns` is the
    /// makespan over device lanes).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn commit_kernel(
        &self,
        kernel: &Kernel,
        plan: &crate::program::DispatchPlan,
        effect: &FaultEffect,
        items: u64,
        ops: u64,
        mut cost: f64,
        engine: Engine,
    ) -> ClResult<Event> {
        if let Some(factor) = effect.slowdown {
            // A straggling kernel: correct results, stretched virtual
            // duration. Only the watchdog below can turn this into an
            // error.
            cost *= factor as f64;
        }
        if let Some(budget) = *self.inner.watchdog_ns.lock() {
            if cost > budget {
                // Abandon the straggler: roll its buffer mutations back
                // from the provenance shadows (as if the kernel had been
                // killed before committing), charge only the budget, and
                // hand the failover decision to the recovery layer.
                for buf in plan.pooled.iter() {
                    buf.restore_from_provenance();
                }
                self.advance(budget);
                self.instant(
                    SpanKind::StragglerAbandoned,
                    kernel.name(),
                    &[
                        ("budget_ns", format!("{budget}")),
                        ("cost_ns", format!("{cost}")),
                    ],
                );
                return Err(ClError::Straggler {
                    device: self.inner.device.name().to_string(),
                    budget_ns: budget as u64,
                });
            }
        }
        if self.provenance_armed() {
            // The kernel legitimately rewrote its buffers: refresh their
            // provenance so this dispatch's output becomes the new last
            // known-good checkpoint.
            for buf in plan.pooled.iter() {
                buf.record_provenance();
            }
        }
        let (start, end) = self.advance(cost);
        let ev = Event::new_kernel(
            kernel.name().to_string(),
            start,
            start,
            end,
            items,
            ops,
            engine.label(),
        );
        self.trace_command(&ev);
        Ok(ev)
    }

    /// Record an instant of `kind` on this queue's device track — the
    /// crate-internal seam the co-execution scheduler uses for its
    /// [`SpanKind::CoexecSplit`] marker.
    pub(crate) fn record_instant(&self, kind: SpanKind, name: &str, args: &[(&str, String)]) {
        self.instant(kind, name, args);
    }

    /// Acquire this queue's arbiter slot for a composite command (the
    /// crate-internal seam the co-execution scheduler uses; `None` when no
    /// arbiter is attached).
    pub(crate) fn composite_slot(&self) -> Option<ArbiterGrant> {
        self.arbiter_slot()
    }

    /// Consult this queue's fault surface as a liveness probe — the
    /// crate-internal seam the co-execution scheduler draws once per
    /// chunk a *secondary* lane takes, so a device lost mid-split is
    /// observed at the chunk boundary and its groups can be rescued.
    /// Non-error effects (slowdown, bit corruption) are ignored here:
    /// the secondary lane never executes functionally, so only its
    /// availability matters. An injected kill-fault still propagates.
    pub(crate) fn probe_enqueue_fault(&self) -> ClResult<FaultEffect> {
        self.fault_check(FaultOp::Enqueue)
    }

    /// Open a batched dispatch session on this queue: one arbiter slot is
    /// held for the whole batch, and every dispatch after the first is
    /// charged its cost *minus* the device's fixed launch overhead — the
    /// virtual-clock model of coalescing a proven-fusable chain of
    /// enqueues into a single submission. Close (or drop) the batch to
    /// release the slot and record a [`SpanKind::BatchFused`] instant
    /// summarising launches and saved overhead.
    pub fn open_batch(&self) -> DispatchBatch {
        DispatchBatch {
            queue: self.clone(),
            _slot: self.arbiter_slot(),
            launches: 0,
            saved_ns: 0.0,
            closed: false,
        }
    }
}

/// Pre-dispatch state shared by the single-device, batched, and
/// co-executed kernel paths (see [`CommandQueue::predispatch`]).
pub(crate) struct PreparedDispatch {
    /// The kernel's resolved dispatch plan.
    pub(crate) plan: Arc<crate::program::DispatchPlan>,
    /// The injected fault effect this dispatch drew.
    pub(crate) effect: FaultEffect,
}

/// A batched dispatch session: a chain of enqueues on one queue whose
/// `FusionProof` shows they may coalesce into a single submission (see
/// `crates/analysis`). The first dispatch pays the device's full launch
/// overhead; every later one is charged `kernel cost − launch overhead`,
/// and one arbiter slot covers the whole batch — so under the serving
/// layer's `FairArbiter` a fused chain costs one grant, not N.
///
/// Obtained from [`CommandQueue::open_batch`]. Fault injection still fires
/// per dispatch (batching changes accounting, not the fault surface).
/// Closing — explicitly via [`DispatchBatch::close`] or implicitly on drop
/// — records a [`SpanKind::BatchFused`] instant with the batch's launch
/// count and total saved overhead.
#[derive(Debug)]
pub struct DispatchBatch {
    queue: CommandQueue,
    _slot: Option<ArbiterGrant>,
    launches: u32,
    saved_ns: f64,
    closed: bool,
}

impl DispatchBatch {
    /// Dispatch `kernel` over `nd` as part of this batch. Identical to
    /// [`CommandQueue::enqueue_nd_range`] except that dispatches after
    /// the batch's first are charged launch overhead once — the saving is
    /// tallied into [`DispatchBatch::saved_ns`].
    pub fn enqueue_nd_range(&mut self, kernel: &Kernel, nd: &NdRange) -> ClResult<Event> {
        let discount = if self.launches > 0 {
            self.queue.inner.device.cost_model().launch_overhead_ns
        } else {
            0.0
        };
        let ev = self.queue.enqueue_nd_range_held(kernel, nd, discount)?;
        self.launches += 1;
        self.saved_ns += discount;
        Ok(ev)
    }

    /// Dispatches successfully enqueued through this batch so far.
    pub fn launches(&self) -> u32 {
        self.launches
    }

    /// Launch overhead saved so far versus unbatched dispatch, in virtual
    /// nanoseconds: `(launches − 1) × launch_overhead_ns` of the device.
    pub fn saved_ns(&self) -> f64 {
        self.saved_ns
    }

    /// Close the batch, releasing its arbiter slot and recording the
    /// [`SpanKind::BatchFused`] instant. Returns `(launches, saved_ns)`.
    pub fn close(mut self) -> (u32, f64) {
        self.finish();
        (self.launches, self.saved_ns)
    }

    fn finish(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        if self.launches > 0 {
            self.queue.instant(
                SpanKind::BatchFused,
                "batch",
                &[
                    ("launches", self.launches.to_string()),
                    ("saved_ns", format!("{}", self.saved_ns)),
                ],
            );
        }
    }
}

impl Drop for DispatchBatch {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Flip one (pre-modulo) bit of a delivered host payload — the readback
/// seam's corruption write path. The device copy is untouched: this is a
/// flip on the wire.
fn flip_bit_in(out: &mut [u8], bit: u64) {
    if out.is_empty() {
        return;
    }
    let nbits = out.len() as u64 * 8;
    let b = bit % nbits;
    out[(b / 8) as usize] ^= 1 << (b % 8);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::MemFlags;
    use crate::device::DeviceType;
    use crate::platform::Platform;
    use crate::program::Program;

    fn setup(ty: DeviceType) -> (Context, CommandQueue) {
        let dev = Platform::default_device(ty).unwrap();
        let ctx = Context::new(std::slice::from_ref(&dev)).unwrap();
        let q = CommandQueue::new(&ctx, &dev).unwrap();
        (ctx, q)
    }

    #[test]
    fn write_read_roundtrip_advances_clock() {
        let (ctx, q) = setup(DeviceType::Gpu);
        let buf = ctx.create_buffer(MemFlags::ReadWrite, 16).unwrap();
        let w = q.write_f32(&buf, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let (vals, r) = q.read_f32(&buf).unwrap();
        assert_eq!(vals, vec![1.0, 2.0, 3.0, 4.0]);
        assert!(w.duration_ns() > 0.0);
        assert!(r.start_ns() >= w.end_ns());
        assert!(q.now_ns() >= r.end_ns());
    }

    #[test]
    fn dispatch_square_on_cpu_and_gpu() {
        for ty in [DeviceType::Cpu, DeviceType::Gpu] {
            let (ctx, q) = setup(ty);
            let src = "__kernel void square(__global float* a) {
                int i = get_global_id(0);
                a[i] = a[i] * a[i];
            }";
            let program = Program::build(&ctx, src).unwrap();
            let k = program.create_kernel("square").unwrap();
            let buf = ctx.create_buffer(MemFlags::ReadWrite, 32).unwrap();
            q.write_f32(&buf, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
                .unwrap();
            k.set_arg_buffer(0, &buf).unwrap();
            let ev = q.enqueue_nd_range(&k, &NdRange::d1(8, 4)).unwrap();
            assert_eq!(ev.items(), 8);
            let (vals, _) = q.read_f32(&buf).unwrap();
            assert_eq!(vals[7], 64.0);
        }
    }

    #[test]
    fn gpu_beats_cpu_on_compute_heavy_kernels() {
        // A compute-dense kernel: the GPU's lane advantage should dominate.
        let src = "__kernel void heavy(__global float* a) {
            int i = get_global_id(0);
            float x = a[i];
            for (int k = 0; k < 200; k++) { x = x * 1.0001f + 0.5f; }
            a[i] = x;
        }";
        let mut times = Vec::new();
        for ty in [DeviceType::Gpu, DeviceType::Cpu] {
            let (ctx, q) = setup(ty);
            let program = Program::build(&ctx, src).unwrap();
            let k = program.create_kernel("heavy").unwrap();
            let buf = ctx.create_buffer(MemFlags::ReadWrite, 4096 * 4).unwrap();
            k.set_arg_buffer(0, &buf).unwrap();
            let ev = q.enqueue_nd_range(&k, &NdRange::d1(4096, 64)).unwrap();
            times.push(ev.duration_ns());
        }
        assert!(times[0] < times[1], "gpu {} !< cpu {}", times[0], times[1]);
    }

    #[test]
    fn cpu_transfers_beat_gpu_transfers() {
        let mut times = Vec::new();
        for ty in [DeviceType::Gpu, DeviceType::Cpu] {
            let (ctx, q) = setup(ty);
            let buf = ctx.create_buffer(MemFlags::ReadWrite, 1 << 20).unwrap();
            let data = vec![0u8; 1 << 20];
            let ev = q.enqueue_write_buffer(&buf, &data).unwrap();
            times.push(ev.duration_ns());
        }
        assert!(times[1] < times[0]);
    }

    #[test]
    fn kernel_trap_surfaces_as_error_and_releases_buffers() {
        let (ctx, q) = setup(DeviceType::Cpu);
        let src = "__kernel void bad(__global float* a) { a[1000000] = 1.0f; }";
        let program = Program::build(&ctx, src).unwrap();
        let k = program.create_kernel("bad").unwrap();
        let buf = ctx.create_buffer(MemFlags::ReadWrite, 16).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        let err = q.enqueue_nd_range(&k, &NdRange::d1(1, 1)).unwrap_err();
        assert!(matches!(err, ClError::KernelTrap { .. }));
        // Buffer must be usable again.
        assert!(q.read_f32(&buf).is_ok());
    }

    #[test]
    fn aliased_args_share_one_checkout() {
        let (ctx, q) = setup(DeviceType::Cpu);
        let src = "__kernel void copy2(__global float* a, __global float* b) {
            int i = get_global_id(0);
            b[i] = a[i] + 1.0f;
        }";
        let program = Program::build(&ctx, src).unwrap();
        let k = program.create_kernel("copy2").unwrap();
        let buf = ctx.create_buffer(MemFlags::ReadWrite, 16).unwrap();
        q.write_f32(&buf, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        k.set_arg_buffer(1, &buf).unwrap();
        q.enqueue_nd_range(&k, &NdRange::d1(4, 4)).unwrap();
        let (vals, _) = q.read_f32(&buf).unwrap();
        assert_eq!(vals, vec![2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn local_memory_limit_enforced() {
        let (ctx, q) = setup(DeviceType::Gpu);
        let src = "__kernel void l(__global float* a, __local float* s) {
            s[get_local_id(0)] = a[get_global_id(0)];
            barrier(CLK_LOCAL_MEM_FENCE);
            a[get_global_id(0)] = s[0];
        }";
        let program = Program::build(&ctx, src).unwrap();
        let k = program.create_kernel("l").unwrap();
        let buf = ctx.create_buffer(MemFlags::ReadWrite, 64).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        k.set_arg_local(1, 1 << 30).unwrap();
        assert!(q.enqueue_nd_range(&k, &NdRange::d1(16, 4)).is_err());
    }

    #[test]
    fn attached_trace_sees_every_command_with_queue_timestamps() {
        let (ctx, q) = setup(DeviceType::Gpu);
        let sink = TraceSink::new();
        q.attach_trace(sink.clone());
        let src = "__kernel void sq(__global float* a) {
            int i = get_global_id(0);
            a[i] = a[i] * a[i];
        }";
        let program = Program::build(&ctx, src).unwrap();
        let k = program.create_kernel("sq").unwrap();
        let buf = ctx.create_buffer(MemFlags::ReadWrite, 16).unwrap();
        q.write_f32(&buf, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        q.enqueue_nd_range(&k, &NdRange::d1(4, 2)).unwrap();
        let (_, read_ev) = q.read_f32(&buf).unwrap();

        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.kind).collect::<Vec<_>>(),
            vec![SpanKind::ToDevice, SpanKind::Kernel, SpanKind::FromDevice]
        );
        assert_eq!(events[1].name, "sq");
        // Spans sit end-to-end on the queue's virtual clock.
        assert_eq!(events[0].ts_ns, 0.0);
        assert_eq!(events[1].ts_ns, events[0].ts_ns + events[0].dur_ns);
        assert_eq!(events[2].ts_ns + events[2].dur_ns, read_ev.end_ns());
        assert_eq!(events[2].ts_ns + events[2].dur_ns, q.now_ns());
        // Segment aggregation covers the whole clock.
        assert_eq!(sink.segments().total_ns(), q.now_ns());

        // Detach: later commands are not recorded.
        q.attach_trace(TraceSink::disabled());
        q.write_f32(&buf, &[0.0; 4]).unwrap();
        assert_eq!(sink.len(), 3);
    }

    #[test]
    fn read_paths_copy_each_byte_exactly_once() {
        let (ctx, q) = setup(DeviceType::Cpu);
        let buf = ctx.create_buffer(MemFlags::ReadWrite, 1024).unwrap();
        q.enqueue_write_buffer(&buf, &[7u8; 1024]).unwrap();

        // enqueue_read_buffer: exactly one 1024-byte copy, straight into
        // the caller's slice — no intermediate snapshot.
        let before = crate::buffer::bytes_copied();
        let mut out = vec![0u8; 1024];
        q.enqueue_read_buffer(&buf, &mut out).unwrap();
        assert_eq!(crate::buffer::bytes_copied() - before, 1024);
        assert_eq!(out[0], 7);

        // read_f32 converts under the lock: zero byte copies.
        let before = crate::buffer::bytes_copied();
        let (vals, _) = q.read_f32(&buf).unwrap();
        assert_eq!(vals.len(), 256);
        assert_eq!(crate::buffer::bytes_copied() - before, 0);

        // read_i32 likewise.
        let before = crate::buffer::bytes_copied();
        let (vals, _) = q.read_i32(&buf).unwrap();
        assert_eq!(vals.len(), 256);
        assert_eq!(crate::buffer::bytes_copied() - before, 0);
    }

    #[test]
    fn kernel_events_report_engine_and_ops() {
        let (ctx, q) = setup(DeviceType::Cpu);
        let sink = TraceSink::new();
        q.attach_trace(sink.clone());
        let src = "__kernel void sq(__global float* a) {
            int i = get_global_id(0);
            a[i] = a[i] * a[i];
        }";
        let program = Program::build(&ctx, src).unwrap();
        let k = program.create_kernel("sq").unwrap();
        let buf = ctx.create_buffer(MemFlags::ReadWrite, 16).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();

        k.set_engine(Some(crate::engine::Engine::Register));
        let ev = q.enqueue_nd_range(&k, &NdRange::d1(4, 2)).unwrap();
        assert_eq!(ev.engine(), Some("register"));
        assert!(ev.ops() > 0);
        let register_ops = ev.ops();

        k.set_engine(Some(crate::engine::Engine::Stack));
        let ev = q.enqueue_nd_range(&k, &NdRange::d1(4, 2)).unwrap();
        assert_eq!(ev.engine(), Some("stack"));
        assert_eq!(ev.ops(), register_ops);

        // The trace spans carry the same engine/ops args.
        let events = sink.events();
        let kernels: Vec<_> = events
            .iter()
            .filter(|e| e.kind == SpanKind::Kernel)
            .collect();
        assert_eq!(kernels.len(), 2);
        for (te, engine) in kernels.iter().zip(["register", "stack"]) {
            assert!(te
                .args
                .iter()
                .any(|(k, v)| k == "engine" && v == engine));
            assert!(te
                .args
                .iter()
                .any(|(k, v)| k == "ops" && v == &register_ops.to_string()));
        }
    }

    #[test]
    fn dispatch_plan_is_reused_until_args_change() {
        let (ctx, q) = setup(DeviceType::Cpu);
        let src = "__kernel void sq(__global float* a) {
            int i = get_global_id(0);
            a[i] = a[i] * a[i];
        }";
        let program = Program::build(&ctx, src).unwrap();
        let k = program.create_kernel("sq").unwrap();
        let buf = ctx.create_buffer(MemFlags::ReadWrite, 16).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        q.enqueue_nd_range(&k, &NdRange::d1(4, 2)).unwrap();
        let p1 = k.dispatch_plan().unwrap();
        q.enqueue_nd_range(&k, &NdRange::d1(4, 2)).unwrap();
        let p2 = k.dispatch_plan().unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "plan must be reused across dispatches");

        // Rebinding an argument invalidates the plan.
        let other = ctx.create_buffer(MemFlags::ReadWrite, 16).unwrap();
        k.set_arg_buffer(0, &other).unwrap();
        q.enqueue_nd_range(&k, &NdRange::d1(4, 2)).unwrap();
        let p3 = k.dispatch_plan().unwrap();
        assert!(!Arc::ptr_eq(&p1, &p3), "rebind must rebuild the plan");
    }

    #[test]
    fn upload_corruption_is_detected_restored_and_clock_neutral() {
        use crate::fault::{FaultInjector, FaultPlan, InjectedFault};
        // Clean reference: one write, one read.
        let (ctx, q) = setup(DeviceType::Gpu);
        let buf = ctx.create_buffer(MemFlags::ReadWrite, 16).unwrap();
        q.write_f32(&buf, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let (clean_vals, _) = q.read_f32(&buf).unwrap();
        let clean_clock = q.now_ns();

        // Same commands with a corrupted upload: the flip is silent at
        // write time, caught at readback, repaired from the shadow, and
        // the re-read both succeeds and lands the clock on the same
        // virtual instant.
        let (ctx2, q2) = setup(DeviceType::Gpu);
        let inj = FaultInjector::new(
            FaultPlan::new().fail(FaultOp::Upload, 0, InjectedFault::Corrupt),
        );
        q2.attach_faults(inj.clone());
        let buf2 = ctx2.create_buffer(MemFlags::ReadWrite, 16).unwrap();
        q2.write_f32(&buf2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let err = q2.read_f32(&buf2).unwrap_err();
        assert!(err.is_integrity(), "unexpected error: {err}");
        assert_eq!(inj.corrupt_count(), 1);
        assert_eq!(inj.detected_count(), 1);
        assert!(q2.repair_ns() > 0.0, "restore must be charged to repair");
        let (vals, _) = q2.read_f32(&buf2).unwrap();
        assert_eq!(vals, clean_vals, "shadow restore must yield clean bytes");
        assert_eq!(
            q2.now_ns().to_bits(),
            clean_clock.to_bits(),
            "failed command must charge nothing to the main clock"
        );
    }

    #[test]
    fn wire_corruption_on_readback_is_detected_and_reread_is_clean() {
        use crate::fault::{FaultInjector, FaultPlan, InjectedFault};
        let (ctx, q) = setup(DeviceType::Cpu);
        let inj = FaultInjector::new(
            FaultPlan::new().fail(FaultOp::Readback, 0, InjectedFault::Corrupt),
        );
        q.attach_faults(inj.clone());
        let buf = ctx.create_buffer(MemFlags::ReadWrite, 8).unwrap();
        q.write_i32(&buf, &[7, 9]).unwrap();
        // The flip lands on the delivered payload; device bytes stay
        // good, so the re-read needs no restore to succeed.
        let err = q.read_i32(&buf).unwrap_err();
        assert!(matches!(err, ClError::IntegrityViolation { .. }));
        let (vals, _) = q.read_i32(&buf).unwrap();
        assert_eq!(vals, vec![7, 9]);
        assert_eq!(inj.detected_count(), 1);

        // The byte-slice readback path detects too.
        let inj2 = FaultInjector::new(
            FaultPlan::new().fail(FaultOp::Readback, 0, InjectedFault::Corrupt),
        );
        let (ctx3, q3) = setup(DeviceType::Cpu);
        q3.attach_faults(inj2.clone());
        let buf3 = ctx3.create_buffer(MemFlags::ReadWrite, 8).unwrap();
        q3.enqueue_write_buffer(&buf3, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let mut out = vec![0u8; 8];
        assert!(q3.enqueue_read_buffer(&buf3, &mut out).is_err());
        assert!(q3.enqueue_read_buffer(&buf3, &mut out).is_ok());
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn dispatch_preverify_catches_enqueue_corruption_then_retry_succeeds() {
        use crate::fault::{FaultInjector, FaultPlan, InjectedFault};
        let (ctx, q) = setup(DeviceType::Cpu);
        let inj = FaultInjector::new(
            FaultPlan::new().fail(FaultOp::Enqueue, 0, InjectedFault::Corrupt),
        );
        q.attach_faults(inj.clone());
        let src = "__kernel void sq(__global float* a) {
            int i = get_global_id(0);
            a[i] = a[i] * a[i];
        }";
        let program = Program::build(&ctx, src).unwrap();
        let k = program.create_kernel("sq").unwrap();
        let buf = ctx.create_buffer(MemFlags::ReadWrite, 16).unwrap();
        q.write_f32(&buf, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        let err = q.enqueue_nd_range(&k, &NdRange::d1(4, 2)).unwrap_err();
        assert!(err.is_integrity(), "unexpected error: {err}");
        // The buffer was restored: the re-issued dispatch computes the
        // right squares from the checkpoint.
        q.enqueue_nd_range(&k, &NdRange::d1(4, 2)).unwrap();
        let (vals, _) = q.read_f32(&buf).unwrap();
        assert_eq!(vals, vec![1.0, 4.0, 9.0, 16.0]);
        assert_eq!(inj.detected_count(), 1);
    }

    #[test]
    fn watchdog_abandons_slowed_dispatch_and_failover_input_is_intact() {
        use crate::fault::{FaultInjector, FaultPlan, InjectedFault};
        let (ctx, q) = setup(DeviceType::Cpu);
        let inj = FaultInjector::new(FaultPlan::new().fail(
            FaultOp::Enqueue,
            0,
            InjectedFault::Slowdown(1_000_000),
        ));
        q.attach_faults(inj);
        q.set_watchdog_ns(Some(1e8));
        let src = "__kernel void sq(__global float* a) {
            int i = get_global_id(0);
            a[i] = a[i] * a[i];
        }";
        let program = Program::build(&ctx, src).unwrap();
        let k = program.create_kernel("sq").unwrap();
        let buf = ctx.create_buffer(MemFlags::ReadWrite, 16).unwrap();
        q.write_f32(&buf, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        let before = q.now_ns();
        let err = q.enqueue_nd_range(&k, &NdRange::d1(4, 2)).unwrap_err();
        assert!(
            matches!(err, ClError::Straggler { .. }),
            "unexpected error: {err}"
        );
        assert_eq!(
            q.now_ns(),
            before + 1e8,
            "abandoned dispatch charges exactly the budget"
        );
        // The straggler's partial work was rolled back: inputs are the
        // checkpoint, so the re-issued dispatch (no fault at index 1)
        // squares the *original* values once.
        q.enqueue_nd_range(&k, &NdRange::d1(4, 2)).unwrap();
        let (vals, _) = q.read_f32(&buf).unwrap();
        assert_eq!(vals, vec![1.0, 4.0, 9.0, 16.0]);
    }

    #[test]
    fn queue_requires_device_in_context() {
        let gpu = Platform::default_device(DeviceType::Gpu).unwrap();
        let cpu = Platform::default_device(DeviceType::Cpu).unwrap();
        let ctx = Context::new(std::slice::from_ref(&gpu)).unwrap();
        assert!(CommandQueue::new(&ctx, &cpu).is_err());
    }
}
