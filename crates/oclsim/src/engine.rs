//! Execution-engine selection for kernel dispatches.
//!
//! Every dispatch runs on one of two engines:
//!
//! * [`Engine::Register`] — the register-IR engine
//!   ([`crate::minicl::regir`]): stack bytecode lowered once per kernel to
//!   typed register code with fused compare-branches and block-level op
//!   accounting. This is the default.
//! * [`Engine::Stack`] — the reference stack interpreter
//!   ([`crate::minicl::interp`]). Also the automatic fallback whenever the
//!   register lowering declines a kernel (depth-inconsistent hand-built
//!   bytecode, ambiguous device-function returns).
//!
//! Both engines are deterministic and produce byte-identical buffers,
//! identical `group_ops` and identical traps — the engine choice changes
//! *host wall-clock* only, never virtual time. The process-wide default can
//! be overridden per kernel via [`crate::Kernel::set_engine`]; the wall-clock
//! benchmark harness uses [`set_default_engine`] to time both sides.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which interpreter executes a kernel dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Reference stack-bytecode interpreter (and fallback path).
    Stack,
    /// Register-IR engine compiled from the stack bytecode.
    Register,
}

impl Engine {
    /// Stable lower-case label used in traces and benchmark JSON.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Stack => "stack",
            Engine::Register => "register",
        }
    }
}

/// Process-wide default engine; 0 = register, 1 = stack.
static DEFAULT_ENGINE: AtomicU8 = AtomicU8::new(0);

/// The process-wide default engine for new dispatches (register unless
/// changed). Kernels without a per-kernel override use this.
pub fn default_engine() -> Engine {
    match DEFAULT_ENGINE.load(Ordering::Relaxed) {
        1 => Engine::Stack,
        _ => Engine::Register,
    }
}

/// Set the process-wide default engine. Affects subsequent dispatches of
/// every kernel without a per-kernel override; used by the wall-clock
/// benchmark harness to time both engines on identical workloads.
pub fn set_default_engine(engine: Engine) {
    DEFAULT_ENGINE.store(
        match engine {
            Engine::Register => 0,
            Engine::Stack => 1,
        },
        Ordering::Relaxed,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(Engine::Stack.label(), "stack");
        assert_eq!(Engine::Register.label(), "register");
    }

    #[test]
    fn default_roundtrip() {
        let orig = default_engine();
        set_default_engine(Engine::Stack);
        assert_eq!(default_engine(), Engine::Stack);
        set_default_engine(Engine::Register);
        assert_eq!(default_engine(), Engine::Register);
        set_default_engine(orig);
    }
}
