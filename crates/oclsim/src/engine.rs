//! Execution-engine selection for kernel dispatches.
//!
//! Every dispatch runs on one rung of a three-rung engine ladder:
//!
//! * [`Engine::Native`] — the work-group native engine
//!   ([`crate::minicl::native`]): the validated register IR lowered once
//!   per kernel to a direct-threaded handler chain with device functions
//!   inlined, memory accesses pre-resolved per dispatch, and the work-item
//!   loop hoisted around barrier-free code. This is the default.
//! * [`Engine::Register`] — the register-IR engine
//!   ([`crate::minicl::regir`]): stack bytecode lowered once per kernel to
//!   typed register code with fused compare-branches and block-level op
//!   accounting. Also the automatic fallback whenever the native lowering
//!   declines a kernel (recursive device functions, frame shapes the
//!   inliner cannot flatten).
//! * [`Engine::Stack`] — the reference stack interpreter
//!   ([`crate::minicl::interp`]). The bottom of the ladder: the fallback
//!   whenever the register lowering declines a kernel
//!   (depth-inconsistent hand-built bytecode, ambiguous device-function
//!   returns).
//!
//! All three engines are deterministic and produce byte-identical buffers,
//! identical `group_ops` and identical traps — the engine choice changes
//! *host wall-clock* only, never virtual time. The process-wide default can
//! be overridden per kernel via [`crate::Kernel::set_engine`], process-wide
//! via [`set_default_engine`], or from outside via the `OCLSIM_ENGINE`
//! environment variable (`native` / `register` / `stack`), which sets the
//! initial default before any dispatch runs — handy for A/B-debugging a
//! binary without recompiling. The wall-clock benchmark harness uses
//! [`set_default_engine`] to time all three rungs.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which execution engine runs a kernel dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Reference stack-bytecode interpreter (bottom of the ladder).
    Stack,
    /// Register-IR engine compiled from the stack bytecode.
    Register,
    /// Work-group native engine compiled from the register IR.
    Native,
}

impl Engine {
    /// Stable lower-case label used in traces and benchmark JSON.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Stack => "stack",
            Engine::Register => "register",
            Engine::Native => "native",
        }
    }
}

/// Encoding for [`DEFAULT_ENGINE`]: 0 = native, 1 = stack, 2 = register.
/// 255 marks "not initialised yet" — the first read resolves the
/// `OCLSIM_ENGINE` environment override exactly once.
const ENC_NATIVE: u8 = 0;
const ENC_STACK: u8 = 1;
const ENC_REGISTER: u8 = 2;
const ENC_UNSET: u8 = 255;

/// Process-wide default engine (see the encoding constants above).
static DEFAULT_ENGINE: AtomicU8 = AtomicU8::new(ENC_UNSET);

fn encode(engine: Engine) -> u8 {
    match engine {
        Engine::Native => ENC_NATIVE,
        Engine::Stack => ENC_STACK,
        Engine::Register => ENC_REGISTER,
    }
}

/// Resolve the initial default: the `OCLSIM_ENGINE` environment variable
/// when set to a known label, the native engine otherwise.
fn initial_default() -> u8 {
    match std::env::var("OCLSIM_ENGINE").as_deref() {
        Ok("stack") => ENC_STACK,
        Ok("register") => ENC_REGISTER,
        _ => ENC_NATIVE,
    }
}

/// The process-wide default engine for new dispatches (native unless
/// changed). Kernels without a per-kernel override use this.
pub fn default_engine() -> Engine {
    let mut v = DEFAULT_ENGINE.load(Ordering::Relaxed);
    if v == ENC_UNSET {
        v = initial_default();
        // A concurrent set_default_engine wins: only replace UNSET.
        v = match DEFAULT_ENGINE.compare_exchange(
            ENC_UNSET,
            v,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => v,
            Err(current) => current,
        };
    }
    match v {
        ENC_STACK => Engine::Stack,
        ENC_REGISTER => Engine::Register,
        _ => Engine::Native,
    }
}

/// Set the process-wide default engine. Affects subsequent dispatches of
/// every kernel without a per-kernel override; used by the wall-clock
/// benchmark harness to time all three engines on identical workloads.
/// Overrides any `OCLSIM_ENGINE` environment setting.
pub fn set_default_engine(engine: Engine) {
    DEFAULT_ENGINE.store(encode(engine), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(Engine::Stack.label(), "stack");
        assert_eq!(Engine::Register.label(), "register");
        assert_eq!(Engine::Native.label(), "native");
    }

    #[test]
    fn default_roundtrip() {
        let orig = default_engine();
        set_default_engine(Engine::Stack);
        assert_eq!(default_engine(), Engine::Stack);
        set_default_engine(Engine::Register);
        assert_eq!(default_engine(), Engine::Register);
        set_default_engine(Engine::Native);
        assert_eq!(default_engine(), Engine::Native);
        set_default_engine(orig);
    }
}
