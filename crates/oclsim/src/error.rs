//! Error types for the OpenCL simulator.
//!
//! The variants intentionally mirror the error *classes* of the real OpenCL
//! API (`CL_INVALID_*`, `CL_BUILD_PROGRAM_FAILURE`, ...) so that host code
//! written against `oclsim` reads like host code written against OpenCL.

use std::fmt;

/// Errors returned by the simulator API.
///
/// Like the OpenCL C API, almost every entry point can fail; unlike it, the
/// failure is a typed value rather than a negative integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClError {
    /// No platform matched the requested criteria.
    PlatformNotFound,
    /// No device of the requested type exists on the platform.
    DeviceNotFound {
        /// Human-readable description of what was requested.
        requested: String,
    },
    /// An object (buffer, kernel, queue) was used with a context it does not
    /// belong to. Mirrors `CL_INVALID_CONTEXT`.
    InvalidContext(String),
    /// A buffer was accessed out of bounds or with a mismatched type.
    InvalidBufferAccess(String),
    /// Mirrors `CL_INVALID_KERNEL_ARGS`: an argument was missing or had the
    /// wrong type when the kernel was enqueued.
    InvalidKernelArgs(String),
    /// Mirrors `CL_INVALID_WORK_GROUP_SIZE`: the local size does not divide
    /// the global size, or exceeds the device limit.
    InvalidWorkGroupSize(String),
    /// Mirrors `CL_BUILD_PROGRAM_FAILURE`: the mini OpenCL-C source failed
    /// to compile. Carries the full build log.
    BuildFailure {
        /// Compiler diagnostics, one per line.
        log: String,
    },
    /// The named kernel does not exist in the program.
    KernelNotFound(String),
    /// A kernel trapped at runtime (out-of-bounds access, division by zero,
    /// stack overflow, ...). Real OpenCL would give you undefined behaviour;
    /// the simulator gives you this.
    KernelTrap {
        /// Which kernel trapped.
        kernel: String,
        /// What went wrong.
        message: String,
        /// Global id of the work-item that trapped.
        global_id: [usize; 3],
    },
    /// Memory allocation on the simulated device failed
    /// (mirrors `CL_MEM_OBJECT_ALLOCATION_FAILURE`).
    OutOfDeviceMemory {
        /// Bytes requested.
        requested: usize,
        /// Bytes available on the device.
        available: usize,
    },
    /// Operation attempted on a released object.
    ObjectReleased(String),
    /// The device momentarily refused the command (mirrors
    /// `CL_OUT_OF_RESOURCES` on real hardware — a queue-full / resource
    /// contention condition that a backed-off retry is expected to clear).
    /// Only produced by the fault-injection layer ([`crate::fault`]).
    DeviceBusy {
        /// Device that refused the command.
        device: String,
    },
    /// The device dropped off the platform mid-run (mirrors
    /// `CL_DEVICE_NOT_AVAILABLE` / the `cl_khr_device_uuid` lost-device
    /// class). Permanent: every subsequent upload or dispatch on the
    /// device fails with this error, and recovery requires re-dispatching
    /// on another device. Read-backs are still permitted as a best-effort
    /// *rescue* path so resident data can be evacuated — mirroring
    /// runtimes that keep already-mapped memory readable while the device
    /// is being torn down.
    DeviceLost {
        /// Device that was lost.
        device: String,
    },
    /// The calling actor was killed by the fault-injection layer
    /// ([`crate::fault::InjectedFault::Kill`] in
    /// [`crate::fault::KillMode::Exit`] mode): the operation did not
    /// execute and the actor is expected to exit *abruptly* — without
    /// retrying, without failing over, and without poisoning its
    /// channels — so a supervisor can observe the exit and restart it
    /// from a checkpoint. Neither transient nor a failover condition.
    ActorKilled {
        /// Device whose operation the kill was scheduled on.
        device: String,
    },
    /// Buffer contents failed checksum verification against the recorded
    /// provenance of the last known-good write (silent data corruption —
    /// a bit flip on the wire or in device memory). Real OpenCL has no
    /// such error: SDC is exactly the failure hardware does *not*
    /// report, which is why the integrity layer exists. The queue
    /// restores the buffer from its host shadow before returning this,
    /// so a retry of the same command recomputes from the last
    /// checkpoint and succeeds.
    IntegrityViolation {
        /// Device whose queue detected the mismatch.
        device: String,
        /// Identifier of the offending buffer.
        buffer: u64,
        /// Checksum recorded in the buffer's provenance.
        expected: u64,
        /// Checksum actually observed.
        actual: u64,
    },
    /// A dispatch exceeded the queue's per-dispatch watchdog budget on
    /// the virtual clock (a straggling kernel — e.g. an injected
    /// [`crate::fault::InjectedFault::Slowdown`]). The command's side
    /// effects were rolled back from provenance shadows and only the
    /// budget was charged; the recovery layer treats this as a failover
    /// condition and re-issues the dispatch on the next device.
    Straggler {
        /// Device whose dispatch straggled.
        device: String,
        /// Watchdog budget that was exceeded, in virtual nanoseconds.
        budget_ns: u64,
    },
    /// Catch-all for violated simulator invariants.
    Internal(String),
}

impl ClError {
    /// Whether a bounded retry (with backoff) is a sensible response.
    ///
    /// Only [`ClError::DeviceBusy`] is transient: every other variant is
    /// either a programming error (bad args, bad worksizes), a permanent
    /// device condition ([`ClError::DeviceLost`], out-of-memory), or a
    /// deterministic kernel bug, where retrying the identical command
    /// would fail identically. The supervised recovery layer in
    /// `ensemble-ocl` retries transient errors and *fails over* to the
    /// next device on everything else.
    ///
    /// [`ClError::IntegrityViolation`] is deliberately *not* transient:
    /// its retry must charge backoff to the queue's repair accounting
    /// (not the main virtual clock) so that recovered runs stay
    /// clock-identical to fault-free ones — see
    /// [`ClError::is_integrity`] and the recovery layer's dedicated
    /// branch. [`ClError::Straggler`] is a failover condition, like
    /// [`ClError::DeviceLost`].
    pub fn is_transient(&self) -> bool {
        matches!(self, ClError::DeviceBusy { .. })
    }

    /// Whether this error is a detected-and-repaired silent-corruption
    /// event: the queue already restored the buffer from its provenance
    /// shadow, so re-issuing the same command recomputes from the last
    /// checkpoint. The recovery layer retries these like transients but
    /// diverts the backoff to repair accounting, keeping the main
    /// virtual clock byte-identical to a fault-free run.
    pub fn is_integrity(&self) -> bool {
        matches!(self, ClError::IntegrityViolation { .. })
    }
}

impl fmt::Display for ClError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClError::PlatformNotFound => write!(f, "no OpenCL platform found"),
            ClError::DeviceNotFound { requested } => {
                write!(f, "no device matching request: {requested}")
            }
            ClError::InvalidContext(msg) => write!(f, "invalid context: {msg}"),
            ClError::InvalidBufferAccess(msg) => write!(f, "invalid buffer access: {msg}"),
            ClError::InvalidKernelArgs(msg) => write!(f, "invalid kernel arguments: {msg}"),
            ClError::InvalidWorkGroupSize(msg) => write!(f, "invalid work-group size: {msg}"),
            ClError::BuildFailure { log } => write!(f, "program build failure:\n{log}"),
            ClError::KernelNotFound(name) => write!(f, "kernel not found: {name}"),
            ClError::KernelTrap {
                kernel,
                message,
                global_id,
            } => write!(
                f,
                "kernel `{kernel}` trapped at global id {global_id:?}: {message}"
            ),
            ClError::OutOfDeviceMemory {
                requested,
                available,
            } => write!(
                f,
                "out of device memory: requested {requested} bytes, {available} available"
            ),
            ClError::ObjectReleased(what) => write!(f, "use after release: {what}"),
            ClError::DeviceBusy { device } => {
                write!(
                    f,
                    "device `{device}` is busy (transient; retry may succeed)"
                )
            }
            ClError::DeviceLost { device } => write!(f, "device `{device}` was lost"),
            ClError::ActorKilled { device } => {
                write!(f, "actor killed by injected fault on device `{device}`")
            }
            ClError::IntegrityViolation {
                device,
                buffer,
                expected,
                actual,
            } => write!(
                f,
                "integrity violation on device `{device}`: buffer {buffer} checksum \
                 {actual:#018x} != recorded provenance {expected:#018x} \
                 (restored from shadow; retry recomputes from last checkpoint)"
            ),
            ClError::Straggler { device, budget_ns } => write!(
                f,
                "dispatch on device `{device}` exceeded the {budget_ns} ns watchdog \
                 budget and was abandoned (straggler)"
            ),
            ClError::Internal(msg) => write!(f, "internal simulator error: {msg}"),
        }
    }
}

impl std::error::Error for ClError {}

/// Convenient result alias used across the simulator.
pub type ClResult<T> = Result<T, ClError>;
