//! Proof-guided multi-device co-execution: split one kernel dispatch
//! across two device queues and merge completion on the virtual clock.
//!
//! The analysis crate proves per-kernel `SplitProof`s — which NDRange
//! dimensions can be cut into group-aligned pieces with no cross-piece
//! traffic (see `crates/analysis` and [`crate::NdRange::split`]). This
//! module *consumes* those proofs: [`co_enqueue`] partitions a dispatch
//! along a proven-splittable dimension, assigns group chunks to a
//! *primary* and a *secondary* device lane under a pluggable
//! [`CoexecPolicy`] (EngineCL's static / dynamic-chunked / guided
//! trio), and commits one composite kernel command whose cost is the
//! **makespan** over lanes plus the secondary's transfer charges — the
//! honest virtual-clock model of two devices working concurrently.
//!
//! Work always *executes* on the primary queue (window execution keeps
//! global ids, `get_global_size` and `get_num_groups` full-range, so
//! output bytes are identical to a single-device run — a hard gate in
//! the test suite); the secondary lane contributes its cost model and
//! its fault surface. A secondary that fails mid-split has its groups
//! rescued onto the primary, mirroring the failover story of the rest
//! of the stack.
//!
//! Policy selection is per-run: the VM reads [`CoexecConfig::from_env`]
//! (`OCLSIM_COEXEC=static|chunked|guided[,batch][,min=N][,chunk=N]`)
//! unless a config is set programmatically, and falls back to plain
//! single-device dispatch whenever the proof says reduction/blocked,
//! the range is under [`CoexecConfig::min_items`], or no second device
//! resolves.

use crate::device::Device;
use crate::error::ClResult;
use crate::event::Event;
use crate::ndrange::NdRange;
use crate::program::Kernel;
use crate::queue::CommandQueue;
use trace::SpanKind;

/// Which load-balancing policy a run co-executes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// One cut, proportional to the device cost models' throughput
    /// ratio ([`NdRange::split_weighted`]). No runtime feedback.
    Static,
    /// Fixed-size chunk queue; the lane estimated to finish earliest
    /// pulls the next chunk.
    ChunkedDynamic,
    /// EngineCL-style guided chunks: each chunk is half the remaining
    /// work scaled by the lane's share, re-estimated from *observed*
    /// per-group costs — shrinking chunks that absorb load imbalance.
    Guided,
}

impl PolicyKind {
    /// Stable lowercase name (CLI / env-var / JSON spelling).
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Static => "static",
            PolicyKind::ChunkedDynamic => "chunked",
            PolicyKind::Guided => "guided",
        }
    }

    /// Parse the [`PolicyKind::label`] spelling.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s {
            "static" => Some(PolicyKind::Static),
            "chunked" => Some(PolicyKind::ChunkedDynamic),
            "guided" => Some(PolicyKind::Guided),
            _ => None,
        }
    }

    /// Instantiate the policy object for one dispatch.
    pub fn make(self, cfg: &CoexecConfig) -> Box<dyn CoexecPolicy> {
        match self {
            PolicyKind::Static => Box::new(StaticSplit::default()),
            PolicyKind::ChunkedDynamic => Box::new(ChunkedDynamic {
                chunk_groups: cfg.chunk_groups.max(1),
            }),
            PolicyKind::Guided => Box::new(Guided::default()),
        }
    }
}

/// Per-run co-execution configuration (see [`CoexecConfig::from_env`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CoexecConfig {
    /// Split policy, or `None` for single-device dispatch.
    pub policy: Option<PolicyKind>,
    /// Coalesce proven-fusable dispatch chains into batched submissions
    /// ([`CommandQueue::open_batch`]).
    pub batch: bool,
    /// Dispatches smaller than this many work-items are never split
    /// (the secondary's transfer latency would dominate).
    pub min_items: usize,
    /// Chunk size, in work-groups, for [`PolicyKind::ChunkedDynamic`].
    pub chunk_groups: usize,
    /// Maximum dispatches per batch session before it is closed and a
    /// fresh one (with a fresh arbiter grant) is opened — bounds how
    /// long one tenant's fused chain can hold a fairness slot.
    pub batch_cap: usize,
}

impl Default for CoexecConfig {
    fn default() -> CoexecConfig {
        CoexecConfig {
            policy: None,
            batch: false,
            min_items: 2048,
            chunk_groups: 8,
            batch_cap: 64,
        }
    }
}

impl CoexecConfig {
    /// Parse the `OCLSIM_COEXEC` environment variable: a comma- or
    /// space-separated token list. `static`/`chunked`/`guided` select
    /// the split policy, `batch` enables dispatch batching, `min=N`,
    /// `chunk=N` and `cap=N` override the numeric knobs, `off` is the
    /// default (no co-execution). Unset or empty → default config.
    pub fn from_env() -> CoexecConfig {
        match std::env::var("OCLSIM_COEXEC") {
            Ok(s) => CoexecConfig::parse(&s),
            Err(_) => CoexecConfig::default(),
        }
    }

    /// Parse a token list (the `OCLSIM_COEXEC` grammar — see
    /// [`CoexecConfig::from_env`]). Unknown tokens are ignored.
    pub fn parse(s: &str) -> CoexecConfig {
        let mut cfg = CoexecConfig::default();
        for tok in s.split([',', ' ']).filter(|t| !t.is_empty()) {
            if let Some(p) = PolicyKind::parse(tok) {
                cfg.policy = Some(p);
            } else if tok == "batch" {
                cfg.batch = true;
            } else if tok == "off" {
                cfg.policy = None;
            } else if let Some(v) = tok.strip_prefix("min=") {
                if let Ok(n) = v.parse() {
                    cfg.min_items = n;
                }
            } else if let Some(v) = tok.strip_prefix("chunk=") {
                if let Ok(n) = v.parse::<usize>() {
                    cfg.chunk_groups = n.max(1);
                }
            } else if let Some(v) = tok.strip_prefix("cap=") {
                if let Ok(n) = v.parse::<usize>() {
                    cfg.batch_cap = n.max(1);
                }
            }
        }
        cfg
    }
}

/// One device lane's scheduler-visible state, handed to
/// [`CoexecPolicy::next_chunk`] before every assignment.
#[derive(Debug, Clone, Copy)]
pub struct LaneView {
    /// Estimated virtual completion time of the work assigned to this
    /// lane so far — model-derived for untouched lanes, *observed*
    /// (actual per-group op counts, including transfer charges) for
    /// lanes that have run chunks.
    pub finish_ns: f64,
    /// The lane's fraction of combined device throughput, from the cost
    /// models (`compute_units × occupied_lanes × efficiency / ns_per_op`).
    pub share: f64,
    /// Predicted marginal cost, in virtual ns, of assigning this lane
    /// one more unit along the split dimension (one group-slice): the
    /// *average* marginal over all remaining slices, computed so that
    /// `finish_ns + remaining × unit_ns` equals the lane's exact
    /// cost-model prediction for draining everything that is left.
    /// Averaging matters because `kernel_ns` takes a max of
    /// longest-group and aggregate-throughput terms: a lane below its
    /// saturation point has near-zero true marginal cost, which a
    /// single-slice linearization would miss. Chunk policies weigh
    /// `finish_ns + take × unit_ns` so a chunk is never handed to a
    /// lane that would finish *later* with it.
    pub unit_ns: f64,
    /// Pessimistic marginal cost of one more slice: like `unit_ns` but
    /// priced at the *maximum* observed per-group op count rather than
    /// the mean. Group costs can be heavily skewed (Mandelbrot interior
    /// groups run the full iteration budget while edge groups escape
    /// almost immediately), and a helper lane that commits to a chunk
    /// priced at the mean can blow the makespan when the chunk lands on
    /// expensive slices. Policies use this for the *pulling* side of
    /// the straggler guard; the absorb side keeps the mean-based drain
    /// estimate. For uniform kernels max ≈ mean and the two agree.
    pub unit_hi_ns: f64,
}

/// A co-execution load-balancing policy: decides, chunk by chunk, which
/// lane takes how many work-groups. Implementations are per-dispatch
/// (freshly made via [`PolicyKind::make`]) and deterministic.
pub trait CoexecPolicy: Send {
    /// Stable lowercase policy name, recorded in the `CoexecSplit`
    /// trace instant.
    fn label(&self) -> &'static str;

    /// A one-shot weighted partition, if this policy splits statically:
    /// the scheduler hands the returned weights to
    /// [`NdRange::split_weighted`] and skips the chunk loop. `None`
    /// (the default) means chunked assignment via
    /// [`CoexecPolicy::next_chunk`].
    fn static_weights(&self, _lanes: &[LaneView; 2]) -> Option<[f64; 2]> {
        None
    }

    /// Assign the next chunk: `(lane index, group count)` given
    /// `remaining` unassigned groups along the split dimension. The
    /// scheduler clamps the count to `1..=remaining`.
    fn next_chunk(&mut self, remaining: usize, lanes: &[LaneView; 2]) -> (usize, usize);
}

/// [`PolicyKind::Static`]: profile-ratio split from the device cost
/// models, one contiguous piece per lane.
#[derive(Debug, Default)]
pub struct StaticSplit {
    turn: usize,
}

impl CoexecPolicy for StaticSplit {
    fn label(&self) -> &'static str {
        "static"
    }

    fn static_weights(&self, lanes: &[LaneView; 2]) -> Option<[f64; 2]> {
        Some([lanes[0].share, lanes[1].share])
    }

    fn next_chunk(&mut self, remaining: usize, lanes: &[LaneView; 2]) -> (usize, usize) {
        // Fallback shape if a scheduler ignores `static_weights`: lane 0
        // takes its proportional share in one piece, lane 1 the rest.
        let turn = self.turn;
        self.turn += 1;
        if turn == 0 {
            (0, ((remaining as f64 * lanes[0].share).round() as usize).max(1))
        } else {
            (1, remaining)
        }
    }
}

/// [`PolicyKind::ChunkedDynamic`]: fixed-size chunks pulled by the lane
/// estimated to finish earliest.
#[derive(Debug)]
pub struct ChunkedDynamic {
    /// Groups per chunk.
    pub chunk_groups: usize,
}

impl CoexecPolicy for ChunkedDynamic {
    fn label(&self) -> &'static str {
        "chunked"
    }

    fn next_chunk(&mut self, remaining: usize, lanes: &[LaneView; 2]) -> (usize, usize) {
        let take = self.chunk_groups.min(remaining);
        // Straggler guard: the secondary pulls a chunk only when it
        // would finish that chunk before the primary could absorb the
        // *entire* remaining range — a slow helper that outlives the
        // fast lane extends the makespan instead of shrinking it. The
        // helper's chunk is priced pessimistically (`unit_hi_ns`): a
        // grab that lands on expensive slices must still pay off.
        let absorb = lanes[0].finish_ns + remaining as f64 * lanes[0].unit_ns;
        let helper = lanes[1].finish_ns + take as f64 * lanes[1].unit_hi_ns;
        (usize::from(helper < absorb), take)
    }
}

/// [`PolicyKind::Guided`]: shrinking chunks — half the remaining work
/// scaled by the pulling lane's throughput share — assigned to the
/// earliest-finishing lane, whose finish estimate is *observed*, not
/// modeled. Imbalanced group costs (Mandelbrot's interior rows) shift
/// later chunks toward whichever lane the work actually favours.
#[derive(Debug)]
pub struct Guided {
    /// Cap on the secondary's next grab, doubling after each pull.
    /// Cost estimates before the secondary has run anything come from a
    /// single probe slice, which can be unrepresentative (Mandelbrot's
    /// fast-escape top rows); capping the first grab at one slice keeps
    /// a mispriced commitment cheap, and by the time the cap stops
    /// binding the pooled observations have corrected the estimates.
    sec_cap: usize,
}

impl Default for Guided {
    fn default() -> Self {
        Guided { sec_cap: 1 }
    }
}

impl CoexecPolicy for Guided {
    fn label(&self) -> &'static str {
        "guided"
    }

    fn next_chunk(&mut self, remaining: usize, lanes: &[LaneView; 2]) -> (usize, usize) {
        // Chunks are half the pulling lane's remaining fair share —
        // shrinking as the range drains, EngineCL-style — under the
        // same straggler guard as the chunked policy: the secondary
        // helps only while its chunk completion beats the primary
        // absorbing everything that is left.
        let rem = remaining as f64;
        let chunk = |l: &LaneView| ((rem * l.share / 2.0).round() as usize).clamp(1, remaining);
        let take1 = chunk(&lanes[1]).min(self.sec_cap);
        let absorb = lanes[0].finish_ns + rem * lanes[0].unit_ns;
        let helper = lanes[1].finish_ns + take1 as f64 * lanes[1].unit_hi_ns;
        if helper < absorb {
            self.sec_cap *= 2;
            (1, take1)
        } else {
            (0, chunk(&lanes[0]))
        }
    }
}

/// A lane's accumulating dispatch state inside [`co_enqueue`].
struct LaneState {
    /// Observed per-group op counts of every chunk this lane ran,
    /// pooled: back-to-back chunks on one in-order queue pipeline, so
    /// the lane's compute time is `kernel_ns` over the union (one
    /// launch overhead, waves packed across chunk boundaries).
    group_ops: Vec<u64>,
    /// Fixed input-transfer charge, committed when the lane first takes
    /// work (0 for the primary — its data is already resident).
    t_in_ns: f64,
    /// Whether the lane ever took an assignment (transfers happened).
    touched: bool,
    /// Lane lost mid-split; all further work reroutes to the survivor.
    dead: bool,
    /// Groups this lane was charged for.
    groups: usize,
}

/// Relative throughput share of each device lane for groups of
/// `items_per_group` work-items averaging `ops_per_group` simulated ops,
/// straight from the device cost models: a device retires one group in
/// `ceil(ops / occupied_lanes) × ns_per_op / efficiency +
/// group_schedule_ns` and keeps `compute_units` groups in flight, so its
/// throughput is `compute_units / per_group_ns`. This is the "profile
/// ratio" the static policy cuts by and the guided policy's seed;
/// [`co_enqueue`] feeds it the op count observed on a probe group.
pub fn model_shares(
    primary: &Device,
    secondary: &Device,
    items_per_group: usize,
    ops_per_group: f64,
) -> [f64; 2] {
    let per_group = |d: &Device| {
        let m = d.cost_model();
        let lanes = d.simd_width().min(items_per_group.max(1)) as f64;
        (ops_per_group / lanes).ceil() * m.ns_per_op / m.efficiency + m.group_schedule_ns
    };
    let tp = |d: &Device| d.compute_units() as f64 / per_group(d).max(1e-9);
    let (a, b) = (tp(primary), tp(secondary));
    [a / (a + b), b / (a + b)]
}

/// Co-execute one dispatch across `primary` and `secondary` along
/// proven-splittable dimension `dim`.
///
/// The caller (the VM's dispatch seam) is responsible for the proof
/// gate: `dim` must carry a `Splittable` classification in the kernel's
/// `SplitProof`, and the fallback conditions (reduction/blocked proof,
/// range under the configured minimum, no second device) must route to
/// plain [`CommandQueue::enqueue_nd_range`] instead. Given that, this
/// function:
///
/// 1. draws the primary's Enqueue fault exactly once (same fault
///    surface as an unsplit dispatch) and resolves the dispatch plan;
/// 2. lets `policy` assign group chunks along `dim` — executing every
///    chunk *functionally* on the primary queue via window execution
///    (full-range ids ⇒ byte-identical output), while charging chunks
///    assigned to the secondary lane to *its* cost model;
/// 3. probes the secondary's fault surface once per chunk it takes; any
///    failure marks the lane dead and rescues its remaining groups onto
///    the primary (an injected kill-panic still propagates);
/// 4. commits ONE composite kernel event whose duration is the makespan
///    over lanes — the secondary lane's span includes its input
///    transfers and its share of writable-buffer readback — and records
///    a [`SpanKind::CoexecSplit`] instant with the per-lane breakdown.
///
/// Returns the composite event, exactly like `enqueue_nd_range`.
pub fn co_enqueue(
    primary: &CommandQueue,
    secondary: &CommandQueue,
    kernel: &Kernel,
    nd: &NdRange,
    dim: usize,
    policy: &mut dyn CoexecPolicy,
) -> ClResult<Event> {
    let _slot = primary.composite_slot();
    let prep = primary.predispatch(kernel, nd)?;
    let local = nd.local[dim].max(1);
    let groups = nd.global[dim] / local;
    if groups < 2 {
        // Nothing to split; behave exactly like a plain dispatch.
        return primary.enqueue_nd_range_held(kernel, nd, 0.0);
    }

    let items_per_group = nd.group_size();
    let devs = [primary.device().clone(), secondary.device().clone()];
    let sec_model = devs[1].cost_model().clone();
    // Every input buffer must reach the secondary before it can start.
    let t_in_secondary: f64 = prep
        .plan
        .pooled
        .iter()
        .map(|b| sec_model.transfer_ns(b.len()))
        .sum();
    let mut lanes = [
        LaneState {
            group_ops: Vec::new(),
            t_in_ns: 0.0,
            touched: false,
            dead: false,
            groups: 0,
        },
        LaneState {
            group_ops: Vec::new(),
            t_in_ns: t_in_secondary,
            touched: false,
            dead: false,
            groups: 0,
        },
    ];
    let num_groups = [
        nd.global[0] / nd.local[0].max(1),
        nd.global[1] / nd.local[1].max(1),
        nd.global[2] / nd.local[2].max(1),
    ];

    // Deterministic micro-profile: run the first group-slice along `dim`
    // on the primary (its results are needed regardless) and observe the
    // per-group op count; each device's per-group cost — and from it the
    // profile ratio — then comes straight from its cost model. Deriving
    // the ratio from observed ops rather than raw lane counts is what
    // keeps the static cut honest about per-group schedule overhead,
    // which dominates for small groups.
    let mut probe_window = [0..num_groups[0], 0..num_groups[1], 0..num_groups[2]];
    probe_window[dim] = 0..1;
    let (probe, probe_engine) = primary.run_window(kernel, &prep.plan, nd, probe_window)?;
    let probe_ops = if probe.group_ops.is_empty() {
        0.0
    } else {
        probe.group_ops.iter().sum::<u64>() as f64 / probe.group_ops.len() as f64
    };
    let shares = model_shares(&devs[0], &devs[1], items_per_group, probe_ops);
    let mut total_items = probe.items;
    let mut engine = Some(probe_engine);
    // One unit along the split dimension is one *slice* — every group
    // whose `dim`-coordinate matches. The probe ran slice 0, so its
    // group count is the real groups per slice, and the probe average
    // prices one group on each device's cost model.
    let groups_per_slice = probe.group_ops.len().max(1);
    let group_cost = |i: usize, ops: f64| -> f64 {
        let m = devs[i].cost_model();
        m.kernel_ns(
            &[ops.round().max(0.0) as u64],
            items_per_group,
            devs[i].compute_units(),
            devs[i].simd_width(),
        ) - m.launch_overhead_ns
    };
    let per_group: [f64; 2] = std::array::from_fn(|i| group_cost(i, probe_ops));
    lanes[0].group_ops = probe.group_ops;
    lanes[0].groups = 1;
    let next_group = 1usize;

    let views = |lanes: &[LaneState; 2], remaining: usize| -> [LaneView; 2] {
        let mut out = [LaneView {
            finish_ns: 0.0,
            share: 0.0,
            unit_ns: 0.0,
            unit_hi_ns: 0.0,
        }; 2];
        // Re-price from the *observed* ops across everything run so
        // far, not just the probe slice. A biased probe (mandelbrot's
        // fast-escape top rows) would otherwise poison every chunk
        // decision; pooling both lanes' observed groups lets the
        // estimates self-correct as the run progresses.
        let (sum, max, cnt) = lanes.iter().fold((0u64, 0u64, 0usize), |(s, m, c), l| {
            (
                s + l.group_ops.iter().sum::<u64>(),
                m.max(l.group_ops.iter().copied().max().unwrap_or(0)),
                c + l.group_ops.len(),
            )
        });
        let avg_ops = if cnt == 0 {
            probe_ops
        } else {
            sum as f64 / cnt as f64
        };
        let max_ops = if cnt == 0 { probe_ops } else { max as f64 };
        for (i, lane) in lanes.iter().enumerate() {
            // A lane's finish always includes its input-transfer charge:
            // even before it takes anything, the transfers are the price
            // of *starting* it, and earliest-completion policies must
            // see that price.
            let lane_ns = |extra_slices: usize, fill_ops: f64| -> f64 {
                let mut pooled = lane.group_ops.clone();
                pooled.resize(
                    pooled.len() + extra_slices * groups_per_slice,
                    fill_ops.round().max(0.0) as u64,
                );
                let mut t = lane.t_in_ns;
                if !pooled.is_empty() {
                    t += devs[i].cost_model().kernel_ns(
                        &pooled,
                        items_per_group,
                        devs[i].compute_units(),
                        devs[i].simd_width(),
                    );
                }
                t
            };
            let finish = lane_ns(0, 0.0);
            // Average marginal over the remaining slices, so that
            // `finish + remaining × unit` is the lane's *exact*
            // drain-everything prediction (kernel_ns saturates — a
            // per-slice linearization would overprice an unsaturated
            // lane's marginal cost).
            let marginal = |fill_ops: f64| {
                if remaining > 0 {
                    (lane_ns(remaining, fill_ops) - finish) / remaining as f64
                } else {
                    0.0
                }
            };
            out[i] = LaneView {
                finish_ns: if lane.dead { f64::INFINITY } else { finish },
                share: shares[i],
                unit_ns: marginal(avg_ops),
                unit_hi_ns: marginal(max_ops),
            };
        }
        out
    };

    // Static policies cut once, up front; chunked policies are queried
    // per chunk. The policy's weights are advisory (a throughput
    // ratio): rounding them to whole slices can over-allocate the
    // slower lane by most of a slice — a large error when slices are
    // coarse (2D ranges split along one dimension). So the scheduler
    // refines the cut: scan every group-aligned split count for the
    // secondary and keep the one whose predicted makespan — probe ops
    // priced by each cost model, plus the secondary's transfer
    // charges — is smallest. The partition covers groups 0..groups, so
    // the first piece is shaved by one for the already-run probe slice.
    let mut is_static = false;
    let mut static_plan = std::collections::VecDeque::new();
    if policy.static_weights(&views(&lanes, groups - next_group)).is_some() {
        is_static = true;
        let t_out = |k: usize| -> f64 {
            prep.plan
                .pooled
                .iter()
                .zip(prep.plan.read_only.iter())
                .filter(|(_, ro)| !**ro)
                .map(|(b, _)| sec_model.transfer_ns(b.len() * k / groups))
                .sum()
        };
        let lane_time = |i: usize, slices: usize| -> f64 {
            if slices == 0 {
                return 0.0;
            }
            let real = (slices * groups_per_slice) as f64;
            devs[i].cost_model().launch_overhead_ns
                + per_group[i].max(real * per_group[i] / devs[i].compute_units().max(1) as f64)
        };
        let mut best = (0usize, f64::INFINITY);
        for k in 0..groups {
            let p = lane_time(0, groups - k);
            let s = if k == 0 {
                0.0
            } else {
                t_in_secondary + lane_time(1, k) + t_out(k)
            };
            let makespan = p.max(s);
            if makespan < best.1 {
                best = (k, makespan);
            }
        }
        let w = [(groups - best.0) as f64, best.0 as f64];
        let mut first = true;
        for (lane, piece) in nd.split_weighted(dim, &w)? {
            let mut take = piece.range.global[dim] / local;
            if first && lane == 0 {
                take -= 1;
                first = false;
            }
            if take > 0 {
                static_plan.push_back((lane, take));
            }
        }
    }

    // Two-ended dealing: the primary drains slices from the front, the
    // secondary steals from the back. When slice costs vary smoothly
    // along the split dimension (Mandelbrot's cheap edge rows bracket
    // an expensive interior), the helper's grabs start on the slices a
    // min-makespan static cut would hand it anyway, and a mispriced
    // extra grab lands on the next-cheapest slice, not an interior one.
    let mut rescued = 0usize;
    let mut lo = next_group;
    let mut hi = groups;
    while lo < hi {
        let remaining = hi - lo;
        let (mut lane, take) = match static_plan.pop_front() {
            Some(c) => c,
            None if is_static => (0, remaining),
            None => policy.next_chunk(remaining, &views(&lanes, remaining)),
        };
        let take = take.clamp(1, remaining);
        if lane == 1 && lanes[1].dead {
            lane = 0;
            rescued += take;
        }
        if lane == 1 {
            lanes[1].touched = true;
            // The secondary's own fault surface gates every piece it
            // takes: a lost device reroutes its groups to the survivor
            // (the functional result is unaffected — windows run on the
            // primary — only the cost attribution moves).
            if secondary.probe_enqueue_fault().is_err() {
                lanes[1].dead = true;
                rescued += take;
                lane = 0;
            }
        }
        let mut window = [0..num_groups[0], 0..num_groups[1], 0..num_groups[2]];
        window[dim] = if lane == 1 {
            hi - take..hi
        } else {
            lo..lo + take
        };
        let (stats, eng) = primary.run_window(kernel, &prep.plan, nd, window)?;
        engine = Some(eng);
        lanes[lane].group_ops.extend(stats.group_ops);
        lanes[lane].groups += take;
        total_items += stats.items;
        if lane == 1 {
            hi -= take;
        } else {
            lo += take;
        }
    }

    // Per-lane spans: input transfers + pooled compute (+ the secondary
    // lane's share of writable-buffer readback). The composite cost is
    // the makespan — both lanes run concurrently on the virtual clock.
    let mut lane_ns = [0.0f64; 2];
    for (i, lane) in lanes.iter().enumerate() {
        if !lane.touched && lane.group_ops.is_empty() {
            continue;
        }
        let mut t = lane.t_in_ns;
        if !lane.group_ops.is_empty() {
            t += devs[i].cost_model().kernel_ns(
                &lane.group_ops,
                items_per_group,
                devs[i].compute_units(),
                devs[i].simd_width(),
            );
        }
        if i == 1 && lane.groups > 0 {
            for (buf, ro) in prep.plan.pooled.iter().zip(&prep.plan.read_only) {
                if !*ro {
                    t += sec_model.transfer_ns(buf.len() * lane.groups / groups);
                }
            }
        }
        lane_ns[i] = t;
    }
    let makespan = lane_ns[0].max(lane_ns[1]);
    let ops = lanes[0]
        .group_ops
        .iter()
        .chain(lanes[1].group_ops.iter())
        .sum();
    let engine = engine.expect("groups >= 2 ran at least one window");
    let ev = primary.commit_kernel(
        kernel,
        &prep.plan,
        &prep.effect,
        total_items,
        ops,
        makespan,
        engine,
    )?;
    primary.record_instant(
        SpanKind::CoexecSplit,
        kernel.name(),
        &[
            ("policy", policy.label().to_string()),
            ("dim", dim.to_string()),
            ("groups", groups.to_string()),
            ("primary_groups", lanes[0].groups.to_string()),
            ("secondary_groups", lanes[1].groups.to_string()),
            ("primary_ns", format!("{}", lane_ns[0])),
            ("secondary_ns", format!("{}", lane_ns[1])),
            ("secondary_device", devs[1].name().to_string()),
            ("rescued_groups", rescued.to_string()),
        ],
    );
    Ok(ev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::MemFlags;
    use crate::context::Context;
    use crate::device::DeviceType;
    use crate::fault::{FaultInjector, FaultPlan, FaultOp, InjectedFault};
    use crate::platform::Platform;
    use crate::program::Program;

    const SRC: &str = "__kernel void scale(__global float* a, __global const float* b) {
        int i = get_global_id(0);
        int n = get_global_size(0);
        a[i] = a[i] * b[i % 16] + (float)n;
    }";

    fn gpu_setup() -> (Context, CommandQueue, CommandQueue) {
        let gpu = Platform::default_device(DeviceType::Gpu).unwrap();
        let cpu = Platform::default_device(DeviceType::Cpu).unwrap();
        let ctx = Context::new(std::slice::from_ref(&gpu)).unwrap();
        let primary = CommandQueue::new(&ctx, &gpu).unwrap();
        // The secondary queue needs its own context (different device);
        // only its cost model and fault surface are consulted.
        let cpu_ctx = Context::new(std::slice::from_ref(&cpu)).unwrap();
        let secondary = CommandQueue::new(&cpu_ctx, &cpu).unwrap();
        (ctx, primary, secondary)
    }

    fn run_reference(n: usize) -> (Vec<f32>, f64) {
        let (ctx, q, _) = gpu_setup();
        let program = Program::build(&ctx, SRC).unwrap();
        let k = program.create_kernel("scale").unwrap();
        let a = ctx.create_buffer(MemFlags::ReadWrite, n * 4).unwrap();
        let b = ctx.create_buffer(MemFlags::ReadOnly, 16 * 4).unwrap();
        q.write_f32(&a, &(0..n).map(|i| i as f32).collect::<Vec<_>>())
            .unwrap();
        q.write_f32(&b, &(0..16).map(|i| 1.0 + i as f32 / 16.0).collect::<Vec<_>>())
            .unwrap();
        k.set_arg_buffer(0, &a).unwrap();
        k.set_arg_buffer(1, &b).unwrap();
        let ev = q.enqueue_nd_range(&k, &NdRange::d1(n, 16)).unwrap();
        let (vals, _) = q.read_f32(&a).unwrap();
        (vals, ev.duration_ns())
    }

    fn run_coexec(n: usize, kind: PolicyKind, kill_secondary: bool) -> (Vec<f32>, f64, Vec<trace::TraceEvent>) {
        let (ctx, q, sec) = gpu_setup();
        let sink = trace::TraceSink::new();
        q.attach_trace(sink.clone());
        if kill_secondary {
            let inj = FaultInjector::new(FaultPlan::new().fail(
                FaultOp::Enqueue,
                0,
                InjectedFault::DeviceLost,
            ));
            sec.attach_faults(inj);
        }
        let program = Program::build(&ctx, SRC).unwrap();
        let k = program.create_kernel("scale").unwrap();
        let a = ctx.create_buffer(MemFlags::ReadWrite, n * 4).unwrap();
        let b = ctx.create_buffer(MemFlags::ReadOnly, 16 * 4).unwrap();
        q.write_f32(&a, &(0..n).map(|i| i as f32).collect::<Vec<_>>())
            .unwrap();
        q.write_f32(&b, &(0..16).map(|i| 1.0 + i as f32 / 16.0).collect::<Vec<_>>())
            .unwrap();
        k.set_arg_buffer(0, &a).unwrap();
        k.set_arg_buffer(1, &b).unwrap();
        let cfg = CoexecConfig::default();
        let mut policy = kind.make(&cfg);
        let ev = co_enqueue(&q, &sec, &k, &NdRange::d1(n, 16), 0, policy.as_mut()).unwrap();
        let (vals, _) = q.read_f32(&a).unwrap();
        (vals, ev.duration_ns(), sink.events())
    }

    #[test]
    fn all_policies_match_single_device_output() {
        let (reference, _) = run_reference(4096);
        for kind in [PolicyKind::Static, PolicyKind::ChunkedDynamic, PolicyKind::Guided] {
            let (vals, _, events) = run_coexec(4096, kind, false);
            assert_eq!(vals, reference, "{} output differs", kind.label());
            let split = events
                .iter()
                .find(|e| e.kind == SpanKind::CoexecSplit)
                .expect("CoexecSplit instant");
            assert!(split
                .args
                .iter()
                .any(|(k, v)| k == "policy" && v == kind.label()));
            // Both lanes took work on a 256-group range.
            for key in ["primary_groups", "secondary_groups"] {
                let v: usize = split
                    .args
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.parse().unwrap())
                    .unwrap();
                assert!(v > 0, "{} assigned no groups under {}", key, kind.label());
            }
        }
    }

    #[test]
    fn coexec_clock_is_deterministic_across_runs() {
        for kind in [PolicyKind::Static, PolicyKind::ChunkedDynamic, PolicyKind::Guided] {
            let (_, t1, _) = run_coexec(4096, kind, false);
            let (_, t2, _) = run_coexec(4096, kind, false);
            assert_eq!(t1.to_bits(), t2.to_bits(), "{}", kind.label());
        }
    }

    #[test]
    fn lost_secondary_rescues_groups_onto_primary() {
        let (reference, _) = run_reference(4096);
        let (vals, _, events) = run_coexec(4096, PolicyKind::ChunkedDynamic, true);
        assert_eq!(vals, reference, "rescued run must stay byte-identical");
        let split = events
            .iter()
            .find(|e| e.kind == SpanKind::CoexecSplit)
            .unwrap();
        let rescued: usize = split
            .args
            .iter()
            .find(|(k, _)| k == "rescued_groups")
            .map(|(_, v)| v.parse().unwrap())
            .unwrap();
        assert!(rescued > 0, "no groups were rescued: {:?}", split.args);
        let secondary_groups: usize = split
            .args
            .iter()
            .find(|(k, _)| k == "secondary_groups")
            .map(|(_, v)| v.parse().unwrap())
            .unwrap();
        assert_eq!(secondary_groups, 0, "dead lane must keep no groups");
    }

    #[test]
    fn large_ranges_beat_single_device_small_ones_do_not() {
        // The crossover: at 64 Ki items the split pays for the
        // secondary's transfers; at 256 items it cannot.
        let (_, single_large) = run_reference(65536);
        let (_, co_large, _) = run_coexec(65536, PolicyKind::Static, false);
        assert!(
            co_large < single_large,
            "co-exec {co_large} !< single {single_large} at 64Ki"
        );
        // Below the crossover the split buys nothing: the primary's
        // launch overhead and longest group still bound the makespan.
        let (_, single_small) = run_reference(256);
        let (_, co_small, _) = run_coexec(256, PolicyKind::Static, false);
        assert!(
            co_small >= single_small,
            "co-exec {co_small} must not beat single {single_small} at 256 items"
        );
    }

    #[test]
    fn config_parse_grammar() {
        let cfg = CoexecConfig::parse("guided,batch,min=512,chunk=4,cap=16");
        assert_eq!(cfg.policy, Some(PolicyKind::Guided));
        assert!(cfg.batch);
        assert_eq!(cfg.min_items, 512);
        assert_eq!(cfg.chunk_groups, 4);
        assert_eq!(cfg.batch_cap, 16);
        assert_eq!(CoexecConfig::parse("").policy, None);
        assert_eq!(CoexecConfig::parse("off").policy, None);
        assert_eq!(CoexecConfig::parse("static nonsense").policy, Some(PolicyKind::Static));
    }
}
