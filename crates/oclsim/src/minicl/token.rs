//! Lexer for the mini OpenCL-C kernel language.
//!
//! The dialect covers the subset of OpenCL C that the paper's applications
//! need: scalar `int`/`uint`/`long`/`float`, the `float4` short-vector type,
//! address-space qualifiers, control flow, and the work-item builtins.

use std::fmt;

/// A source position (1-based line and column) for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds produced by the lexer.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // punctuation variants are self-describing
pub enum Tok {
    /// Identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// Integer literal (decimal or `0x` hex).
    IntLit(i64),
    /// Floating-point literal (an optional `f` suffix is consumed).
    FloatLit(f64),
    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Dot,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PlusPlus,
    MinusMinus,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    ShrAssign,
    ShlAssign,
    Question,
    Colon,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::IntLit(v) => write!(f, "integer literal {v}"),
            Tok::FloatLit(v) => write!(f, "float literal {v}"),
            other => {
                let s = match other {
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Comma => ",",
                    Tok::Semi => ";",
                    Tok::Dot => ".",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    Tok::Assign => "=",
                    Tok::PlusAssign => "+=",
                    Tok::MinusAssign => "-=",
                    Tok::StarAssign => "*=",
                    Tok::SlashAssign => "/=",
                    Tok::PlusPlus => "++",
                    Tok::MinusMinus => "--",
                    Tok::Eq => "==",
                    Tok::Ne => "!=",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::AndAnd => "&&",
                    Tok::OrOr => "||",
                    Tok::Not => "!",
                    Tok::Amp => "&",
                    Tok::Pipe => "|",
                    Tok::Caret => "^",
                    Tok::Tilde => "~",
                    Tok::Shl => "<<",
                    Tok::Shr => ">>",
                    Tok::ShrAssign => ">>=",
                    Tok::ShlAssign => "<<=",
                    Tok::Question => "?",
                    Tok::Colon => ":",
                    Tok::Eof => "end of input",
                    _ => unreachable!(),
                };
                write!(f, "`{s}`")
            }
        }
    }
}

/// A token paired with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token itself.
    pub tok: Tok,
    /// Where it starts in the source.
    pub pos: Pos,
}

/// A lexical error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Where the error occurred.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: lex error: {}", self.pos, self.message)
    }
}

/// Tokens plus the `(line, text)` pairs of any `#pragma` lines, which are
/// lifted out of the token stream rather than lexed.
pub type Lexed = (Vec<Spanned>, Vec<(u32, String)>);

/// Tokenize `src`, handling `//` and `/* */` comments and `#pragma` lines.
///
/// `#pragma` lines are returned to the caller via `pragmas` as
/// `(line, text)` pairs rather than as tokens — the OpenACC-style baseline
/// consumes them, and plain kernel compilation ignores them.
pub fn lex(src: &str) -> Result<Lexed, LexError> {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut pragmas = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! pos {
        () => {
            Pos { line, col }
        };
    }

    macro_rules! bump {
        () => {{
            if bytes[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == '/' {
                while i < bytes.len() && bytes[i] != '\n' {
                    bump!();
                }
                continue;
            }
            if bytes[i + 1] == '*' {
                let start = pos!();
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated block comment".to_string(),
                            pos: start,
                        });
                    }
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
                continue;
            }
        }
        // Preprocessor-ish lines: keep pragmas, ignore other directives.
        if c == '#' {
            let at_line = line;
            let mut text = String::new();
            while i < bytes.len() && bytes[i] != '\n' {
                text.push(bytes[i]);
                bump!();
            }
            if let Some(rest) = text.strip_prefix("#pragma") {
                pragmas.push((at_line, rest.trim().to_string()));
            }
            continue;
        }
        let p = pos!();
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                s.push(bytes[i]);
                bump!();
            }
            out.push(Spanned {
                tok: Tok::Ident(s),
                pos: p,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() || (c == '.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit())
        {
            let mut s = String::new();
            let mut is_float = false;
            if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] == 'x' || bytes[i + 1] == 'X') {
                bump!();
                bump!();
                let mut h = String::new();
                while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                    h.push(bytes[i]);
                    bump!();
                }
                let v = i64::from_str_radix(&h, 16).map_err(|_| LexError {
                    message: format!("invalid hex literal 0x{h}"),
                    pos: p,
                })?;
                out.push(Spanned {
                    tok: Tok::IntLit(v),
                    pos: p,
                });
                continue;
            }
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                if bytes[i] == '.' {
                    // Don't eat a member access like `4.x` (float4 swizzle).
                    if is_float {
                        break;
                    }
                    if i + 1 < bytes.len() && !bytes[i + 1].is_ascii_digit() {
                        break;
                    }
                    is_float = true;
                }
                s.push(bytes[i]);
                bump!();
            }
            // Exponent.
            if i < bytes.len() && (bytes[i] == 'e' || bytes[i] == 'E') {
                is_float = true;
                s.push(bytes[i]);
                bump!();
                if i < bytes.len() && (bytes[i] == '+' || bytes[i] == '-') {
                    s.push(bytes[i]);
                    bump!();
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    s.push(bytes[i]);
                    bump!();
                }
            }
            // Suffixes: f => float, u/l ignored for ints.
            if i < bytes.len() && (bytes[i] == 'f' || bytes[i] == 'F') {
                is_float = true;
                bump!();
            } else if i < bytes.len() && (bytes[i] == 'u' || bytes[i] == 'U' || bytes[i] == 'l') {
                bump!();
            }
            if is_float {
                let v: f64 = s.parse().map_err(|_| LexError {
                    message: format!("invalid float literal {s}"),
                    pos: p,
                })?;
                out.push(Spanned {
                    tok: Tok::FloatLit(v),
                    pos: p,
                });
            } else {
                let v: i64 = s.parse().map_err(|_| LexError {
                    message: format!("invalid integer literal {s}"),
                    pos: p,
                })?;
                out.push(Spanned {
                    tok: Tok::IntLit(v),
                    pos: p,
                });
            }
            continue;
        }
        // Operators / punctuation.
        let two = if i + 1 < bytes.len() {
            Some(bytes[i + 1])
        } else {
            None
        };
        let three = if i + 2 < bytes.len() {
            Some(bytes[i + 2])
        } else {
            None
        };
        let (tok, len) = match (c, two, three) {
            ('<', Some('<'), Some('=')) => (Tok::ShlAssign, 3),
            ('>', Some('>'), Some('=')) => (Tok::ShrAssign, 3),
            ('+', Some('+'), _) => (Tok::PlusPlus, 2),
            ('-', Some('-'), _) => (Tok::MinusMinus, 2),
            ('+', Some('='), _) => (Tok::PlusAssign, 2),
            ('-', Some('='), _) => (Tok::MinusAssign, 2),
            ('*', Some('='), _) => (Tok::StarAssign, 2),
            ('/', Some('='), _) => (Tok::SlashAssign, 2),
            ('=', Some('='), _) => (Tok::Eq, 2),
            ('!', Some('='), _) => (Tok::Ne, 2),
            ('<', Some('='), _) => (Tok::Le, 2),
            ('>', Some('='), _) => (Tok::Ge, 2),
            ('<', Some('<'), _) => (Tok::Shl, 2),
            ('>', Some('>'), _) => (Tok::Shr, 2),
            ('&', Some('&'), _) => (Tok::AndAnd, 2),
            ('|', Some('|'), _) => (Tok::OrOr, 2),
            ('(', _, _) => (Tok::LParen, 1),
            (')', _, _) => (Tok::RParen, 1),
            ('{', _, _) => (Tok::LBrace, 1),
            ('}', _, _) => (Tok::RBrace, 1),
            ('[', _, _) => (Tok::LBracket, 1),
            (']', _, _) => (Tok::RBracket, 1),
            (',', _, _) => (Tok::Comma, 1),
            (';', _, _) => (Tok::Semi, 1),
            ('.', _, _) => (Tok::Dot, 1),
            ('+', _, _) => (Tok::Plus, 1),
            ('-', _, _) => (Tok::Minus, 1),
            ('*', _, _) => (Tok::Star, 1),
            ('/', _, _) => (Tok::Slash, 1),
            ('%', _, _) => (Tok::Percent, 1),
            ('=', _, _) => (Tok::Assign, 1),
            ('<', _, _) => (Tok::Lt, 1),
            ('>', _, _) => (Tok::Gt, 1),
            ('!', _, _) => (Tok::Not, 1),
            ('&', _, _) => (Tok::Amp, 1),
            ('|', _, _) => (Tok::Pipe, 1),
            ('^', _, _) => (Tok::Caret, 1),
            ('~', _, _) => (Tok::Tilde, 1),
            ('?', _, _) => (Tok::Question, 1),
            (':', _, _) => (Tok::Colon, 1),
            _ => {
                return Err(LexError {
                    message: format!("unexpected character `{c}`"),
                    pos: p,
                })
            }
        };
        for _ in 0..len {
            bump!();
        }
        out.push(Spanned { tok, pos: p });
    }
    out.push(Spanned {
        tok: Tok::Eof,
        pos: pos!(),
    });
    Ok((out, pragmas))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().0.into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_kernel_header() {
        let t = toks("__kernel void square(__global float* in)");
        assert_eq!(t[0], Tok::Ident("__kernel".into()));
        assert_eq!(t[1], Tok::Ident("void".into()));
        assert_eq!(t[4], Tok::Ident("__global".into()));
        assert!(t.contains(&Tok::Star));
    }

    #[test]
    fn float_suffix_and_exponent() {
        assert_eq!(toks("1.5f")[0], Tok::FloatLit(1.5));
        assert_eq!(toks("2e3")[0], Tok::FloatLit(2000.0));
        assert_eq!(toks("4.0")[0], Tok::FloatLit(4.0));
    }

    #[test]
    fn hex_and_decimal_ints() {
        assert_eq!(toks("0x10")[0], Tok::IntLit(16));
        assert_eq!(toks("42")[0], Tok::IntLit(42));
    }

    #[test]
    fn swizzle_dot_is_not_consumed_by_number() {
        // `v.x` after an int-like prefix must not merge into a float.
        let t = toks("v.x + 4.x");
        assert!(t.contains(&Tok::Dot));
        assert_eq!(t[0], Tok::Ident("v".into()));
    }

    #[test]
    fn comments_and_pragmas() {
        let (t, pragmas) = lex("// line\n#pragma acc parallel loop\n/* block */ int x;").unwrap();
        assert_eq!(pragmas.len(), 1);
        assert_eq!(pragmas[0].1, "acc parallel loop");
        assert_eq!(t[0].tok, Tok::Ident("int".into()));
    }

    #[test]
    fn three_char_operators() {
        assert_eq!(toks(">>=")[0], Tok::ShrAssign);
        assert_eq!(toks("<<=")[0], Tok::ShlAssign);
    }

    #[test]
    fn error_on_stray_character() {
        assert!(lex("int @;").is_err());
    }

    #[test]
    fn positions_track_lines() {
        let (t, _) = lex("int\nx").unwrap();
        assert_eq!(t[1].pos.line, 2);
    }
}
