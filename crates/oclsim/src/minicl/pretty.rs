//! Pretty-printer: mini OpenCL-C AST → source text.
//!
//! Both source-to-source consumers need this: the OpenACC-style baseline
//! turns annotated sequential loops into generated `__kernel` functions, and
//! the Ensemble compiler emits a C representation of a kernel actor's
//! behaviour "stored as a string within the actor's bytecode" (§6.1.3).
//! Emitted text re-parses to an equivalent AST (round-trip tested).

use super::ast::*;

/// Render a whole translation unit.
pub fn emit_unit(unit: &Unit) -> String {
    let mut out = String::new();
    for f in &unit.funcs {
        emit_func(&mut out, f);
        out.push('\n');
    }
    out
}

/// Render a single function.
pub fn emit_func(out: &mut String, f: &Func) {
    if f.is_kernel {
        out.push_str("__kernel ");
    }
    out.push_str(&type_name(&f.ret));
    out.push(' ');
    out.push_str(&f.name);
    out.push('(');
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        emit_param(out, p);
    }
    out.push_str(") {\n");
    for s in &f.body {
        emit_stmt(out, s, 1);
    }
    out.push_str("}\n");
}

fn emit_param(out: &mut String, p: &Param) {
    match &p.ty {
        Type::Ptr(space, inner) => {
            out.push_str(space_kw(*space));
            out.push(' ');
            if p.is_const && *space != Space::Constant {
                out.push_str("const ");
            }
            out.push_str(&type_name(inner));
            out.push_str("* ");
            out.push_str(&p.name);
        }
        other => {
            if p.is_const {
                out.push_str("const ");
            }
            out.push_str(&type_name(other));
            out.push(' ');
            out.push_str(&p.name);
        }
    }
}

fn space_kw(s: Space) -> &'static str {
    match s {
        Space::Global => "__global",
        Space::Local => "__local",
        Space::Constant => "__constant",
        Space::Private => "__private",
    }
}

fn type_name(t: &Type) -> String {
    match t {
        Type::Void => "void".into(),
        Type::Bool => "bool".into(),
        Type::Int => "int".into(),
        Type::Uint => "uint".into(),
        Type::Long => "long".into(),
        Type::Float => "float".into(),
        Type::Float4 => "float4".into(),
        Type::Ptr(_, inner) => format!("{}*", type_name(inner)),
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

/// Render one statement at the given indent level.
pub fn emit_stmt(out: &mut String, s: &Stmt, level: usize) {
    match s {
        Stmt::Decl {
            name,
            ty,
            space,
            array_len,
            init,
            ..
        } => {
            indent(out, level);
            if *space == Space::Local {
                out.push_str("__local ");
            }
            out.push_str(&type_name(ty));
            out.push(' ');
            out.push_str(name);
            if let Some(n) = array_len {
                out.push_str(&format!("[{n}]"));
            }
            if let Some(e) = init {
                out.push_str(" = ");
                out.push_str(&emit_expr(e));
            }
            out.push_str(";\n");
        }
        Stmt::Assign {
            target, op, value, ..
        } => {
            indent(out, level);
            out.push_str(&emit_assign(target, *op, value));
            out.push_str(";\n");
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            indent(out, level);
            out.push_str(&format!("if ({}) {{\n", emit_expr(cond)));
            for s in then_blk {
                emit_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push('}');
            if !else_blk.is_empty() {
                out.push_str(" else {\n");
                for s in else_blk {
                    emit_stmt(out, s, level + 1);
                }
                indent(out, level);
                out.push('}');
            }
            out.push('\n');
        }
        Stmt::While { cond, body } => {
            indent(out, level);
            out.push_str(&format!("while ({}) {{\n", emit_expr(cond)));
            for s in body {
                emit_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            indent(out, level);
            out.push_str("for (");
            if let Some(i) = init {
                out.push_str(emit_stmt_inline(i).trim_end_matches(";\n"));
            }
            out.push_str("; ");
            if let Some(c) = cond {
                out.push_str(&emit_expr(c));
            }
            out.push_str("; ");
            if let Some(st) = step {
                out.push_str(emit_stmt_inline(st).trim_end_matches(";\n"));
            }
            out.push_str(") {\n");
            for s in body {
                emit_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::Return { value, .. } => {
            indent(out, level);
            match value {
                Some(v) => out.push_str(&format!("return {};\n", emit_expr(v))),
                None => out.push_str("return;\n"),
            }
        }
        Stmt::Barrier { .. } => {
            indent(out, level);
            out.push_str("barrier(CLK_LOCAL_MEM_FENCE);\n");
        }
        Stmt::ExprStmt(e) => {
            indent(out, level);
            out.push_str(&emit_expr(e));
            out.push_str(";\n");
        }
        Stmt::Block(b) => {
            indent(out, level);
            out.push_str("{\n");
            for s in b {
                emit_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
    }
}

fn emit_stmt_inline(s: &Stmt) -> String {
    let mut out = String::new();
    emit_stmt(&mut out, s, 0);
    out
}

fn emit_assign(target: &LValue, op: AssignOp, value: &Expr) -> String {
    let t = match target {
        LValue::Var(n, _) => n.clone(),
        LValue::Index(n, idx, _) => format!("{n}[{}]", emit_expr(idx)),
        LValue::Comp(n, c, _) => format!("{n}.{}", comp_name(*c)),
    };
    let o = match op {
        AssignOp::Set => "=",
        AssignOp::Add => "+=",
        AssignOp::Sub => "-=",
        AssignOp::Mul => "*=",
        AssignOp::Div => "/=",
        AssignOp::Shl => "<<=",
        AssignOp::Shr => ">>=",
    };
    format!("{t} {o} {}", emit_expr(value))
}

fn comp_name(c: u8) -> char {
    match c {
        0 => 'x',
        1 => 'y',
        2 => 'z',
        _ => 'w',
    }
}

/// Render an expression (fully parenthesised — correctness over beauty).
pub fn emit_expr(e: &Expr) -> String {
    match e {
        Expr::IntLit(v, _) => v.to_string(),
        Expr::FloatLit(v, _) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{v:.1}f")
            } else {
                format!("{v}f")
            }
        }
        Expr::BoolLit(b, _) => b.to_string(),
        Expr::Var(n, _) => n.clone(),
        Expr::Unary(op, inner, _) => {
            let o = match op {
                UnOp::Neg => "-",
                UnOp::LNot => "!",
                UnOp::BNot => "~",
            };
            format!("({o}{})", emit_expr(inner))
        }
        Expr::Binary(op, l, r, _) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::LAnd => "&&",
                BinOp::LOr => "||",
                BinOp::BAnd => "&",
                BinOp::BOr => "|",
                BinOp::BXor => "^",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
            };
            format!("({} {o} {})", emit_expr(l), emit_expr(r))
        }
        Expr::Ternary(c, a, b, _) => {
            format!("({} ? {} : {})", emit_expr(c), emit_expr(a), emit_expr(b))
        }
        Expr::Index(base, idx, _) => format!("{}[{}]", emit_expr(base), emit_expr(idx)),
        Expr::Call(name, args, _) => {
            let args: Vec<String> = args.iter().map(emit_expr).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Cast(ty, inner, _) => format!("(({}){})", type_name(ty), emit_expr(inner)),
        Expr::MakeF4(comps, _) => {
            let parts: Vec<String> = comps.iter().map(emit_expr).collect();
            format!("(float4)({})", parts.join(", "))
        }
        Expr::Comp(base, c, _) => format!("{}.{}", emit_expr(base), comp_name(*c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minicl::parser::parse;

    fn roundtrip(src: &str) {
        let unit = parse(src).unwrap();
        let emitted = emit_unit(&unit);
        let reparsed = parse(&emitted).unwrap_or_else(|e| {
            panic!("emitted source failed to re-parse: {e}\n--- emitted ---\n{emitted}")
        });
        // Compare shapes (positions differ); a second emit must be stable.
        let emitted2 = emit_unit(&reparsed);
        assert_eq!(emitted, emitted2, "pretty-printing is not a fixpoint");
        assert_eq!(unit.funcs.len(), reparsed.funcs.len());
    }

    #[test]
    fn roundtrips_square() {
        roundtrip(
            "__kernel void square(__global float* in, __global float* out, const int n) {
                int i = get_global_id(0);
                if (i < n) { out[i] = in[i] * in[i]; }
            }",
        );
    }

    #[test]
    fn roundtrips_barrier_reduction() {
        roundtrip(
            "__kernel void r(__global float* a, __global float* o, __local float* s) {
                int l = get_local_id(0);
                s[l] = a[get_global_id(0)];
                barrier(CLK_LOCAL_MEM_FENCE);
                for (int st = get_local_size(0) / 2; st > 0; st >>= 1) {
                    if (l < st) { s[l] = fmin(s[l], s[l + st]); }
                    barrier(CLK_LOCAL_MEM_FENCE);
                }
                if (l == 0) { o[get_group_id(0)] = s[0]; }
            }",
        );
    }

    #[test]
    fn roundtrips_float4_and_casts() {
        roundtrip(
            "__kernel void v(__global float4* a, __global float* o, const int n) {
                float4 t = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
                float s = dot(t, a[0]) + (float)n;
                o[0] = s > 0.0f ? s : -s;
                t.x = t.w;
                a[1] = t;
            }",
        );
    }

    #[test]
    fn roundtrips_device_functions_and_while() {
        roundtrip(
            "float f(float x) { while (x > 1.0f) { x = x / 2.0f; } return x; }
            __kernel void k(__global float* a) { a[0] = f(a[0]); }",
        );
    }

    #[test]
    fn emitted_kernel_compiles() {
        let unit = parse(
            "__kernel void k(__global float* a, const int n) {
                for (int i = 0; i < n; i++) { a[i] = (float)(i * i); }
            }",
        )
        .unwrap();
        let emitted = emit_unit(&unit);
        let re = parse(&emitted).unwrap();
        assert!(crate::minicl::codegen::compile(&re).is_ok());
    }
}
