//! Combined semantic analysis and bytecode emission.
//!
//! Compilation is a single pass per function (after a signature-collection
//! pass), accumulating diagnostics instead of bailing at the first error —
//! the build log a real OpenCL driver would hand back. This is also where
//! the paper's compile-time guarantees live: type errors, writes through
//! `const` pointers, and malformed kernels are reported with line/column
//! positions *before* any dispatch happens.

use super::ast::*;
use super::bytecode::*;
use super::token::Pos;
use std::collections::HashMap;

/// One diagnostic in the build log.
#[derive(Debug, Clone, PartialEq)]
pub struct Diag {
    /// Human-readable message.
    pub message: String,
    /// Source position.
    pub pos: Pos,
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: error: {}", self.pos, self.message)
    }
}

/// Compile a parsed unit to bytecode, or return every diagnostic found.
pub fn compile(unit: &Unit) -> Result<CompiledUnit, Vec<Diag>> {
    let mut cg = Compiler::new(unit);
    cg.run();
    if cg.diags.is_empty() {
        Ok(cg.out)
    } else {
        Err(cg.diags)
    }
}

#[derive(Clone)]
struct Sig {
    index: usize,
    is_kernel: bool,
    ret: Type,
    params: Vec<Type>,
}

#[derive(Clone)]
struct LocalVar {
    slot: u16,
    ty: Type,
    is_const: bool,
}

struct Compiler<'a> {
    unit: &'a Unit,
    sigs: HashMap<String, Sig>,
    out: CompiledUnit,
    diags: Vec<Diag>,
    // Per-function state.
    scopes: Vec<HashMap<String, LocalVar>>,
    next_slot: u16,
    max_slot: u16,
    ret_ty: Type,
    in_kernel: bool,
    // Kernel-only state.
    n_local_param_regions: u16,
    local_decl_bytes: Vec<usize>,
    priv_offset: u32,
    saw_barrier: bool,
    called: Vec<usize>,
}

impl<'a> Compiler<'a> {
    fn new(unit: &'a Unit) -> Self {
        Compiler {
            unit,
            sigs: HashMap::new(),
            out: CompiledUnit::default(),
            diags: Vec::new(),
            scopes: Vec::new(),
            next_slot: 0,
            max_slot: 0,
            ret_ty: Type::Void,
            in_kernel: false,
            n_local_param_regions: 0,
            local_decl_bytes: Vec::new(),
            priv_offset: 0,
            saw_barrier: false,
            called: Vec::new(),
        }
    }

    fn err(&mut self, pos: Pos, message: impl Into<String>) {
        self.diags.push(Diag {
            message: message.into(),
            pos,
        });
    }

    fn run(&mut self) {
        // Pass 1: signatures (enables forward calls between device funcs).
        let mut dev_index = 0usize;
        for f in &self.unit.funcs {
            if self.sigs.contains_key(&f.name) {
                self.err(f.pos, format!("duplicate function `{}`", f.name));
                continue;
            }
            let sig = Sig {
                index: if f.is_kernel { usize::MAX } else { dev_index },
                is_kernel: f.is_kernel,
                ret: f.ret.clone(),
                params: f.params.iter().map(|p| p.ty.clone()).collect(),
            };
            if !f.is_kernel {
                dev_index += 1;
            }
            self.sigs.insert(f.name.clone(), sig);
        }
        if self.unit.funcs.iter().all(|f| !f.is_kernel) {
            self.diags.push(Diag {
                message: "translation unit contains no __kernel function".to_string(),
                pos: Pos { line: 1, col: 1 },
            });
        }
        // Pass 2: compile device functions first, then kernels (order in the
        // code array is irrelevant; entries are recorded).
        let mut fn_barriers: Vec<(bool, Vec<usize>)> = Vec::new();
        for f in &self.unit.funcs {
            if !f.is_kernel {
                let info = self.compile_func(f);
                self.out.funcs.push(info);
                fn_barriers.push((self.saw_barrier, self.called.clone()));
            }
        }
        // Fixpoint barrier propagation through the device-function call graph.
        let mut flags: Vec<bool> = fn_barriers.iter().map(|(b, _)| *b).collect();
        loop {
            let mut changed = false;
            for (i, (_, calls)) in fn_barriers.iter().enumerate() {
                if !flags[i] && calls.iter().any(|&c| flags[c]) {
                    flags[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for f in &self.unit.funcs {
            if f.is_kernel {
                let mut info = self.compile_kernel(f);
                if !info.has_barrier {
                    info.has_barrier = self.called.iter().any(|&c| flags[c]);
                }
                self.out.kernels.insert(f.name.clone(), info);
            }
        }
    }

    fn begin_func(&mut self, f: &Func) {
        self.scopes.clear();
        self.scopes.push(HashMap::new());
        self.next_slot = 0;
        self.max_slot = 0;
        self.ret_ty = f.ret.clone();
        self.in_kernel = f.is_kernel;
        self.n_local_param_regions = 0;
        self.local_decl_bytes.clear();
        self.priv_offset = 0;
        self.saw_barrier = false;
        self.called.clear();
        for p in &f.params {
            if let Type::Ptr(Space::Local, _) = &p.ty {
                if !f.is_kernel {
                    self.err(
                        p.pos,
                        "__local pointer parameters are only allowed on kernels",
                    );
                }
                self.n_local_param_regions += 1;
            }
            let slot = self.alloc_slot();
            self.bind(p.name.clone(), slot, p.ty.clone(), p.is_const, p.pos);
        }
    }

    fn compile_func(&mut self, f: &Func) -> FuncInfo {
        self.begin_func(f);
        let entry = self.out.code.len() as u32;
        self.stmts(&f.body);
        // Implicit return. Non-void functions falling off the end return a
        // zero value of the declared type (C would be UB; we are kinder).
        if f.ret == Type::Void {
            self.emit(Op::Ret);
        } else {
            self.push_zero(&f.ret);
            self.emit(Op::RetV);
        }
        FuncInfo {
            name: f.name.clone(),
            entry,
            nargs: f.params.len() as u8,
            nlocals: self.max_slot,
        }
    }

    fn compile_kernel(&mut self, f: &Func) -> KernelInfo {
        self.begin_func(f);
        let entry = self.out.code.len() as u32;
        self.stmts(&f.body);
        self.emit(Op::Ret);
        let has_barrier = self.saw_barrier;
        let params = f
            .params
            .iter()
            .map(|p| KParam {
                name: p.name.clone(),
                ty: p.ty.clone(),
                is_const: p.is_const,
            })
            .collect();
        KernelInfo {
            name: f.name.clone(),
            entry,
            nlocals: self.max_slot,
            params,
            local_decl_bytes: self.local_decl_bytes.clone(),
            has_barrier,
            priv_bytes: self.priv_offset as usize,
        }
    }

    // ---- helpers ----

    fn emit(&mut self, op: Op) -> usize {
        self.out.code.push(op);
        self.out.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.out.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.out.code[at] {
            Op::Jmp(t) | Op::Jz(t) | Op::Jnz(t) => *t = target,
            other => panic!("patching non-jump {other:?}"),
        }
    }

    fn alloc_slot(&mut self) -> u16 {
        let s = self.next_slot;
        self.next_slot += 1;
        self.max_slot = self.max_slot.max(self.next_slot);
        s
    }

    fn bind(&mut self, name: String, slot: u16, ty: Type, is_const: bool, pos: Pos) {
        let already = self
            .scopes
            .last()
            .map(|s| s.contains_key(&name))
            .unwrap_or(false);
        if already {
            self.err(pos, format!("`{name}` is already defined in this scope"));
        }
        let top = self.scopes.last_mut().expect("scope stack");
        top.insert(name, LocalVar { slot, ty, is_const });
    }

    fn lookup(&self, name: &str) -> Option<LocalVar> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn push_scope(&mut self) -> u16 {
        self.scopes.push(HashMap::new());
        self.next_slot
    }

    fn pop_scope(&mut self, saved: u16) {
        self.scopes.pop();
        self.next_slot = saved;
    }

    fn push_zero(&mut self, ty: &Type) {
        match ty {
            Type::Float => {
                self.emit(Op::PushF(0.0));
            }
            Type::Float4 => {
                self.emit(Op::PushF(0.0));
                self.emit(Op::SplatF4);
            }
            _ => {
                self.emit(Op::PushI(0));
            }
        }
    }

    /// Convert the value on top of the stack from `from` to `to`.
    fn convert(&mut self, from: &Type, to: &Type, pos: Pos) {
        if from == to {
            return;
        }
        match (from, to) {
            (f, t) if f.is_integer() && t.is_integer() => {}
            (f, Type::Float) if f.is_integer() => {
                self.emit(Op::I2F);
            }
            (Type::Float, t) if t.is_integer() => {
                self.emit(Op::F2I);
            }
            (Type::Float, Type::Float4) => {
                self.emit(Op::SplatF4);
            }
            (f, Type::Float4) if f.is_integer() => {
                self.emit(Op::I2F);
                self.emit(Op::SplatF4);
            }
            (Type::Ptr(s1, e1), Type::Ptr(s2, e2)) if s1 == s2 && e1 == e2 => {}
            _ => self.err(pos, format!("cannot convert `{from}` to `{to}`")),
        }
    }

    /// Emit a truthiness test so the top of stack is an int 0/1.
    fn truthify(&mut self, ty: &Type, pos: Pos) {
        match ty {
            Type::Float => {
                self.emit(Op::PushF(0.0));
                self.emit(Op::CmpF(Cmp::Ne));
            }
            t if t.is_integer() => {}
            other => self.err(pos, format!("`{other}` is not usable as a condition")),
        }
    }

    // ---- statements ----

    fn stmts(&mut self, body: &[Stmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Block(b) => {
                let saved = self.push_scope();
                self.stmts(b);
                self.pop_scope(saved);
            }
            Stmt::Decl {
                name,
                ty,
                space,
                array_len,
                init,
                pos,
            } => self.decl(name, ty, *space, *array_len, init.as_ref(), *pos),
            Stmt::Assign {
                target,
                op,
                value,
                pos,
            } => self.assign(target, *op, value, *pos),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let cty = self.expr(cond);
                self.truthify(&cty, cond.pos());
                let jz = self.emit(Op::Jz(0));
                let saved = self.push_scope();
                self.stmts(then_blk);
                self.pop_scope(saved);
                if else_blk.is_empty() {
                    let end = self.here();
                    self.patch(jz, end);
                } else {
                    let jend = self.emit(Op::Jmp(0));
                    let else_at = self.here();
                    self.patch(jz, else_at);
                    let saved = self.push_scope();
                    self.stmts(else_blk);
                    self.pop_scope(saved);
                    let end = self.here();
                    self.patch(jend, end);
                }
            }
            Stmt::While { cond, body } => {
                let start = self.here();
                let cty = self.expr(cond);
                self.truthify(&cty, cond.pos());
                let jz = self.emit(Op::Jz(0));
                let saved = self.push_scope();
                self.stmts(body);
                self.pop_scope(saved);
                self.emit(Op::Jmp(start));
                let end = self.here();
                self.patch(jz, end);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                let saved = self.push_scope();
                if let Some(i) = init {
                    self.stmt(i);
                }
                let start = self.here();
                let jz = if let Some(c) = cond {
                    let cty = self.expr(c);
                    self.truthify(&cty, c.pos());
                    Some(self.emit(Op::Jz(0)))
                } else {
                    None
                };
                let inner = self.push_scope();
                self.stmts(body);
                self.pop_scope(inner);
                if let Some(st) = step {
                    self.stmt(st);
                }
                self.emit(Op::Jmp(start));
                let end = self.here();
                if let Some(jz) = jz {
                    self.patch(jz, end);
                }
                self.pop_scope(saved);
            }
            Stmt::Return { value, pos } => {
                if self.in_kernel {
                    if value.is_some() {
                        self.err(*pos, "kernels cannot return a value");
                    }
                    self.emit(Op::Ret);
                    return;
                }
                match (value, self.ret_ty.clone()) {
                    (None, Type::Void) => {
                        self.emit(Op::Ret);
                    }
                    (Some(v), Type::Void) => {
                        self.err(v.pos(), "void function cannot return a value");
                    }
                    (Some(v), ret) => {
                        let vt = self.expr(v);
                        self.convert(&vt, &ret, v.pos());
                        self.emit(Op::RetV);
                    }
                    (None, ret) => {
                        self.err(*pos, format!("function must return `{ret}`"));
                    }
                }
            }
            Stmt::Barrier { pos: _ } => {
                self.saw_barrier = true;
                self.emit(Op::Barrier);
            }
            Stmt::ExprStmt(e) => {
                let ty = self.expr(e);
                if ty != Type::Void {
                    self.emit(Op::Pop);
                }
            }
        }
    }

    fn decl(
        &mut self,
        name: &str,
        ty: &Type,
        space: Space,
        array_len: Option<usize>,
        init: Option<&Expr>,
        pos: Pos,
    ) {
        if let Some(len) = array_len {
            let elem = match ElemTy::of(ty) {
                Some(e) => e,
                None => {
                    self.err(pos, format!("`{ty}` cannot be an array element type"));
                    return;
                }
            };
            let bytes = len * elem.byte_size();
            let slot = self.alloc_slot();
            match space {
                Space::Local => {
                    if !self.in_kernel {
                        self.err(pos, "__local arrays may only be declared in kernels");
                        return;
                    }
                    let region = self.n_local_param_regions + self.local_decl_bytes.len() as u16;
                    self.local_decl_bytes.push(bytes);
                    self.emit(Op::PushPtr {
                        space: Space::Local,
                        slot: region,
                        base: 0,
                    });
                    self.emit(Op::St(slot));
                    self.bind(
                        name.to_string(),
                        slot,
                        Type::Ptr(Space::Local, Box::new(ty.clone())),
                        false,
                        pos,
                    );
                }
                Space::Private => {
                    if !self.in_kernel {
                        // A device function would index the calling
                        // kernel's private region with offsets the kernel
                        // never reserved.
                        self.err(pos, "private arrays may only be declared in kernel bodies");
                        return;
                    }
                    // 16-byte align so float4 arrays are well-formed.
                    let base = (self.priv_offset + 15) & !15;
                    self.priv_offset = base + bytes as u32;
                    self.emit(Op::PushPtr {
                        space: Space::Private,
                        slot: 0,
                        base,
                    });
                    self.emit(Op::St(slot));
                    self.bind(
                        name.to_string(),
                        slot,
                        Type::Ptr(Space::Private, Box::new(ty.clone())),
                        false,
                        pos,
                    );
                }
                other => self.err(pos, format!("arrays cannot be declared {other:?}")),
            }
            return;
        }
        if space == Space::Local {
            self.err(pos, "__local scalars are not supported; use an array");
        }
        let slot = self.alloc_slot();
        match init {
            Some(e) => {
                let et = self.expr(e);
                self.convert(&et, ty, e.pos());
            }
            None => self.push_zero(ty),
        }
        self.emit(Op::St(slot));
        self.bind(name.to_string(), slot, ty.clone(), false, pos);
    }

    fn assign(&mut self, target: &LValue, op: AssignOp, value: &Expr, pos: Pos) {
        match target {
            LValue::Var(name, vpos) => {
                let var = match self.lookup(name) {
                    Some(v) => v,
                    None => {
                        self.err(*vpos, format!("unknown variable `{name}`"));
                        return;
                    }
                };
                if var.is_const {
                    self.err(pos, format!("cannot assign to const `{name}`"));
                }
                if op == AssignOp::Set {
                    let vt = self.expr(value);
                    self.convert(&vt, &var.ty, value.pos());
                    self.emit(Op::St(var.slot));
                } else {
                    self.emit(Op::Ld(var.slot));
                    let vt = self.expr(value);
                    self.compound(&var.ty, &vt, op, pos);
                    self.emit(Op::St(var.slot));
                }
            }
            LValue::Index(name, idx, vpos) => {
                let var = match self.lookup(name) {
                    Some(v) => v,
                    None => {
                        self.err(*vpos, format!("unknown variable `{name}`"));
                        return;
                    }
                };
                let (space, elem_ast) = match &var.ty {
                    Type::Ptr(s, e) => (*s, (**e).clone()),
                    other => {
                        self.err(*vpos, format!("`{name}` ({other}) is not indexable"));
                        return;
                    }
                };
                if space == Space::Constant || var.is_const {
                    self.err(pos, format!("cannot write through const pointer `{name}`"));
                }
                let elem = match ElemTy::of(&elem_ast) {
                    Some(e) => e,
                    None => {
                        self.err(*vpos, format!("`{elem_ast}` elements are not storable"));
                        return;
                    }
                };
                self.emit(Op::Ld(var.slot));
                let it = self.expr(idx);
                if !it.is_integer() {
                    self.err(idx.pos(), "array index must be an integer");
                }
                if op == AssignOp::Set {
                    let vt = self.expr(value);
                    self.convert(&vt, &elem_ast, value.pos());
                    self.emit(Op::StElem(elem));
                } else {
                    self.emit(Op::Dup2);
                    self.emit(Op::LdElem(elem));
                    let vt = self.expr(value);
                    self.compound(&elem_ast, &vt, op, pos);
                    self.emit(Op::StElem(elem));
                }
            }
            LValue::Comp(name, c, vpos) => {
                let var = match self.lookup(name) {
                    Some(v) => v,
                    None => {
                        self.err(*vpos, format!("unknown variable `{name}`"));
                        return;
                    }
                };
                if var.ty != Type::Float4 {
                    self.err(*vpos, format!("`{name}` is not a float4"));
                    return;
                }
                self.emit(Op::Ld(var.slot));
                if op == AssignOp::Set {
                    let vt = self.expr(value);
                    self.convert(&vt, &Type::Float, value.pos());
                } else {
                    self.emit(Op::Dup);
                    self.emit(Op::GetComp(*c));
                    let vt = self.expr(value);
                    self.compound(&Type::Float, &vt, op, pos);
                }
                self.emit(Op::SetComp(*c));
                self.emit(Op::St(var.slot));
            }
        }
    }

    /// Emit the arithmetic for a compound assignment. Stack holds
    /// `[current, rhs]`; leaves `[new]`. `lhs_ty` is the target's type.
    fn compound(&mut self, lhs_ty: &Type, rhs_ty: &Type, op: AssignOp, pos: Pos) {
        self.convert(rhs_ty, lhs_ty, pos);
        let o = match (op, lhs_ty) {
            (AssignOp::Add, Type::Float) => Op::AddF,
            (AssignOp::Sub, Type::Float) => Op::SubF,
            (AssignOp::Mul, Type::Float) => Op::MulF,
            (AssignOp::Div, Type::Float) => Op::DivF,
            (AssignOp::Add, Type::Float4) => Op::AddF4,
            (AssignOp::Sub, Type::Float4) => Op::SubF4,
            (AssignOp::Mul, Type::Float4) => Op::MulF4,
            (AssignOp::Div, Type::Float4) => Op::DivF4,
            (AssignOp::Add, t) if t.is_integer() => Op::AddI,
            (AssignOp::Sub, t) if t.is_integer() => Op::SubI,
            (AssignOp::Mul, t) if t.is_integer() => Op::MulI,
            (AssignOp::Div, t) if t.is_integer() => Op::DivI,
            (AssignOp::Shl, t) if t.is_integer() => Op::Shl,
            (AssignOp::Shr, t) if t.is_integer() => Op::Shr,
            (o, t) => {
                self.err(pos, format!("operator {o:?} not defined for `{t}`"));
                Op::Pop
            }
        };
        self.emit(o);
    }

    // ---- expressions ----

    /// Emit code for `e`; returns its static type.
    fn expr(&mut self, e: &Expr) -> Type {
        match e {
            Expr::IntLit(v, _) => {
                self.emit(Op::PushI(*v));
                Type::Int
            }
            Expr::FloatLit(v, _) => {
                self.emit(Op::PushF(*v));
                Type::Float
            }
            Expr::BoolLit(b, _) => {
                self.emit(Op::PushI(*b as i64));
                Type::Bool
            }
            Expr::Var(name, pos) => match self.lookup(name) {
                Some(v) => {
                    self.emit(Op::Ld(v.slot));
                    v.ty
                }
                None => {
                    self.err(*pos, format!("unknown variable `{name}`"));
                    self.emit(Op::PushI(0));
                    Type::Int
                }
            },
            Expr::Unary(op, inner, pos) => {
                let t = self.expr(inner);
                match op {
                    UnOp::Neg => match &t {
                        Type::Float => {
                            self.emit(Op::NegF);
                            Type::Float
                        }
                        Type::Float4 => {
                            self.emit(Op::PushF(-1.0));
                            self.emit(Op::SplatF4);
                            self.emit(Op::MulF4);
                            Type::Float4
                        }
                        x if x.is_integer() => {
                            self.emit(Op::NegI);
                            t
                        }
                        other => {
                            self.err(*pos, format!("cannot negate `{other}`"));
                            t
                        }
                    },
                    UnOp::LNot => {
                        self.truthify(&t, *pos);
                        self.emit(Op::LNot);
                        Type::Bool
                    }
                    UnOp::BNot => {
                        if !t.is_integer() {
                            self.err(*pos, format!("`~` requires an integer, got `{t}`"));
                        }
                        self.emit(Op::BNot);
                        t
                    }
                }
            }
            Expr::Binary(op, l, r, pos) => self.binary(*op, l, r, *pos),
            Expr::Ternary(c, a, b, pos) => {
                let ct = self.expr(c);
                self.truthify(&ct, c.pos());
                let jz = self.emit(Op::Jz(0));
                let at = self.expr(a);
                // Decide the merged type by probing `b`'s type with a dry
                // emit would be complex; instead require numeric operands and
                // promote the `a` side to float if `b` turns out to be float
                // (via a patched conversion slot).
                let conv_slot = self.emit(Op::Pop); // placeholder
                let jend = self.emit(Op::Jmp(0));
                let else_at = self.here();
                self.patch(jz, else_at);
                let bt = self.expr(b);
                let merged = self.merge_types(&at, &bt, *pos);
                self.convert(&bt, &merged, b.pos());
                // Fix up the placeholder on the `a` path.
                self.out.code[conv_slot] = if at == merged {
                    Op::Jmp(conv_slot as u32 + 1) // no-op
                } else if at.is_integer() && merged == Type::Float {
                    Op::I2F
                } else if at == Type::Float && merged.is_integer() {
                    Op::F2I
                } else {
                    // float4-vs-scalar (or other) mixes need a multi-op
                    // conversion that the one-slot placeholder cannot
                    // hold; demand matching branch types instead of
                    // emitting wrong code.
                    self.err(
                        *pos,
                        format!("ternary branches have incompatible types `{at}` and `{bt}`"),
                    );
                    Op::Jmp(conv_slot as u32 + 1)
                };
                let end = self.here();
                self.patch(jend, end);
                merged
            }
            Expr::Index(base, idx, pos) => {
                let bt = self.expr(base);
                let (_space, elem_ast) = match &bt {
                    Type::Ptr(s, e) => (*s, (**e).clone()),
                    other => {
                        self.err(*pos, format!("`{other}` is not indexable"));
                        self.emit(Op::PushI(0));
                        return Type::Int;
                    }
                };
                let it = self.expr(idx);
                if !it.is_integer() {
                    self.err(idx.pos(), "array index must be an integer");
                }
                match ElemTy::of(&elem_ast) {
                    Some(elem) => {
                        self.emit(Op::LdElem(elem));
                        elem_ast
                    }
                    None => {
                        self.err(*pos, format!("`{elem_ast}` elements are not loadable"));
                        Type::Int
                    }
                }
            }
            Expr::Call(name, args, pos) => self.call(name, args, *pos),
            Expr::Cast(ty, inner, pos) => {
                let it = self.expr(inner);
                self.convert(&it, ty, *pos);
                ty.clone()
            }
            Expr::MakeF4(comps, pos) => {
                if comps.len() == 1 {
                    let t = self.expr(&comps[0]);
                    self.convert(&t, &Type::Float, *pos);
                    self.emit(Op::SplatF4);
                } else {
                    for c in comps {
                        let t = self.expr(c);
                        self.convert(&t, &Type::Float, c.pos());
                    }
                    self.emit(Op::MakeF4);
                }
                Type::Float4
            }
            Expr::Comp(base, c, pos) => {
                let bt = self.expr(base);
                if bt != Type::Float4 {
                    self.err(*pos, format!("`.{}` requires a float4, got `{bt}`", c));
                }
                self.emit(Op::GetComp(*c));
                Type::Float
            }
        }
    }

    fn merge_types(&mut self, a: &Type, b: &Type, pos: Pos) -> Type {
        if a == b {
            return a.clone();
        }
        match (a, b) {
            (Type::Float4, _) | (_, Type::Float4) => Type::Float4,
            (Type::Float, x) | (x, Type::Float) if x.is_integer() => Type::Float,
            (x, y) if x.is_integer() && y.is_integer() => {
                if *x == Type::Long || *y == Type::Long {
                    Type::Long
                } else {
                    Type::Int
                }
            }
            _ => {
                self.err(pos, format!("incompatible operand types `{a}` and `{b}`"));
                Type::Int
            }
        }
    }

    fn binary(&mut self, op: BinOp, l: &Expr, r: &Expr, pos: Pos) -> Type {
        // Short-circuit logical operators.
        if op == BinOp::LAnd || op == BinOp::LOr {
            let lt = self.expr(l);
            self.truthify(&lt, l.pos());
            let jshort = if op == BinOp::LAnd {
                self.emit(Op::Jz(0))
            } else {
                self.emit(Op::Jnz(0))
            };
            let rt = self.expr(r);
            self.truthify(&rt, r.pos());
            let jend = self.emit(Op::Jmp(0));
            let short_at = self.here();
            self.patch(jshort, short_at);
            self.emit(Op::PushI(if op == BinOp::LAnd { 0 } else { 1 }));
            let end = self.here();
            self.patch(jend, end);
            return Type::Bool;
        }
        let lt = self.expr(l);
        let rt = self.expr(r);
        let merged = self.merge_types(&lt, &rt, pos);
        // Convert rhs (top of stack) directly; lhs needs a swap dance.
        self.convert(&rt, &merged, r.pos());
        if lt != merged {
            self.emit(Op::Swap);
            self.convert(&lt, &merged, l.pos());
            self.emit(Op::Swap);
        }
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                let o = match (&merged, op) {
                    (Type::Float, BinOp::Add) => Op::AddF,
                    (Type::Float, BinOp::Sub) => Op::SubF,
                    (Type::Float, BinOp::Mul) => Op::MulF,
                    (Type::Float, BinOp::Div) => Op::DivF,
                    (Type::Float4, BinOp::Add) => Op::AddF4,
                    (Type::Float4, BinOp::Sub) => Op::SubF4,
                    (Type::Float4, BinOp::Mul) => Op::MulF4,
                    (Type::Float4, BinOp::Div) => Op::DivF4,
                    (t, BinOp::Add) if t.is_integer() => Op::AddI,
                    (t, BinOp::Sub) if t.is_integer() => Op::SubI,
                    (t, BinOp::Mul) if t.is_integer() => Op::MulI,
                    (t, BinOp::Div) if t.is_integer() => Op::DivI,
                    (t, BinOp::Rem) if t.is_integer() => Op::RemI,
                    (t, o) => {
                        self.err(pos, format!("operator {o:?} not defined for `{t}`"));
                        Op::Pop
                    }
                };
                self.emit(o);
                merged
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let c = match op {
                    BinOp::Eq => Cmp::Eq,
                    BinOp::Ne => Cmp::Ne,
                    BinOp::Lt => Cmp::Lt,
                    BinOp::Le => Cmp::Le,
                    BinOp::Gt => Cmp::Gt,
                    _ => Cmp::Ge,
                };
                match &merged {
                    Type::Float => {
                        self.emit(Op::CmpF(c));
                    }
                    t if t.is_integer() => {
                        self.emit(Op::CmpI(c));
                    }
                    other => {
                        self.err(pos, format!("cannot compare `{other}` values"));
                    }
                }
                Type::Bool
            }
            BinOp::BAnd | BinOp::BOr | BinOp::BXor | BinOp::Shl | BinOp::Shr => {
                if !merged.is_integer() {
                    self.err(
                        pos,
                        format!("bitwise operator requires integers, got `{merged}`"),
                    );
                }
                let o = match op {
                    BinOp::BAnd => Op::BAnd,
                    BinOp::BOr => Op::BOr,
                    BinOp::BXor => Op::BXor,
                    BinOp::Shl => Op::Shl,
                    _ => Op::Shr,
                };
                self.emit(o);
                merged
            }
            BinOp::LAnd | BinOp::LOr => unreachable!("handled above"),
        }
    }

    fn call(&mut self, name: &str, args: &[Expr], pos: Pos) -> Type {
        if let Some(ret) = self.builtin_call(name, args, pos) {
            return ret;
        }
        let sig = match self.sigs.get(name).cloned() {
            Some(s) => s,
            None => {
                self.err(pos, format!("unknown function `{name}`"));
                self.emit(Op::PushI(0));
                return Type::Int;
            }
        };
        if sig.is_kernel {
            self.err(
                pos,
                format!("kernel `{name}` cannot be called from device code"),
            );
            self.emit(Op::PushI(0));
            return Type::Int;
        }
        if args.len() != sig.params.len() {
            self.err(
                pos,
                format!(
                    "`{name}` expects {} arguments, got {}",
                    sig.params.len(),
                    args.len()
                ),
            );
        }
        for (i, a) in args.iter().enumerate() {
            let at = self.expr(a);
            if let Some(pt) = sig.params.get(i) {
                self.convert(&at, pt, a.pos());
            }
        }
        self.called.push(sig.index);
        self.emit(Op::Call {
            func: sig.index as u16,
            nargs: args.len() as u8,
        });
        sig.ret
    }

    /// Emit a builtin call if `name` names one; returns its result type.
    fn builtin_call(&mut self, name: &str, args: &[Expr], pos: Pos) -> Option<Type> {
        use Builtin::*;
        // Work-item query builtins: one int argument, int result.
        let wi = match name {
            "get_global_id" => Some(GetGlobalId),
            "get_local_id" => Some(GetLocalId),
            "get_group_id" => Some(GetGroupId),
            "get_global_size" => Some(GetGlobalSize),
            "get_local_size" => Some(GetLocalSize),
            "get_num_groups" => Some(GetNumGroups),
            _ => None,
        };
        if let Some(b) = wi {
            self.fixed_args(name, args, &[Type::Int], pos);
            self.emit(Op::CallB(b, 1));
            return Some(Type::Int);
        }
        let fl1 = |b| (b, vec![Type::Float], Type::Float);
        let fl2 = |b| (b, vec![Type::Float, Type::Float], Type::Float);
        let spec: Option<(Builtin, Vec<Type>, Type)> = match name {
            "sqrt" | "native_sqrt" => Some(fl1(Sqrt)),
            "rsqrt" | "native_rsqrt" => Some(fl1(Rsqrt)),
            "fabs" => Some(fl1(Fabs)),
            "floor" => Some(fl1(Floor)),
            "ceil" => Some(fl1(Ceil)),
            "exp" | "native_exp" => Some(fl1(Exp)),
            "log" | "native_log" => Some(fl1(Log)),
            "sin" | "native_sin" => Some(fl1(Sin)),
            "cos" | "native_cos" => Some(fl1(Cos)),
            "pow" => Some(fl2(Pow)),
            "fmin" => Some(fl2(Fmin)),
            "fmax" => Some(fl2(Fmax)),
            "native_divide" => None, // plain division; handled below
            "abs" => Some((AbsI, vec![Type::Int], Type::Int)),
            "clamp" => Some((
                Clamp,
                vec![Type::Float, Type::Float, Type::Float],
                Type::Float,
            )),
            "mad" => Some((
                Mad,
                vec![Type::Float, Type::Float, Type::Float],
                Type::Float,
            )),
            "dot" => Some((Dot, vec![Type::Float4, Type::Float4], Type::Float)),
            _ => None,
        };
        if let Some((b, params, ret)) = spec {
            self.fixed_args(name, args, &params, pos);
            self.emit(Op::CallB(b, params.len() as u8));
            return Some(ret);
        }
        if name == "native_divide" {
            self.fixed_args(name, args, &[Type::Float, Type::Float], pos);
            self.emit(Op::DivF);
            return Some(Type::Float);
        }
        // min/max dispatch on the first argument's type (int vs float).
        if name == "min" || name == "max" {
            if args.len() != 2 {
                self.err(pos, format!("`{name}` expects 2 arguments"));
                self.emit(Op::PushI(0));
                return Some(Type::Int);
            }
            let at = self.expr(&args[0]);
            if at == Type::Float {
                let bt = self.expr(&args[1]);
                self.convert(&bt, &Type::Float, args[1].pos());
                self.emit(Op::CallB(if name == "min" { Fmin } else { Fmax }, 2));
                return Some(Type::Float);
            }
            let bt = self.expr(&args[1]);
            self.convert(&bt, &Type::Int, args[1].pos());
            self.emit(Op::CallB(if name == "min" { MinI } else { MaxI }, 2));
            return Some(Type::Int);
        }
        None
    }

    fn fixed_args(&mut self, name: &str, args: &[Expr], params: &[Type], pos: Pos) {
        if args.len() != params.len() {
            self.err(
                pos,
                format!(
                    "`{name}` expects {} arguments, got {}",
                    params.len(),
                    args.len()
                ),
            );
        }
        for (i, a) in args.iter().enumerate() {
            let at = self.expr(a);
            if let Some(pt) = params.get(i) {
                self.convert(&at, pt, a.pos());
            }
        }
        // Missing args: push zeros so the stack stays balanced.
        for pt in params.iter().skip(args.len()) {
            self.push_zero(pt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minicl::parser::parse;

    fn build(src: &str) -> Result<CompiledUnit, Vec<Diag>> {
        compile(&parse(src).unwrap())
    }

    #[test]
    fn compiles_square_kernel() {
        let unit = build(
            "__kernel void square(__global float* in, __global float* out, const int n) {
                int i = get_global_id(0);
                if (i < n) { out[i] = in[i] * in[i]; }
            }",
        )
        .unwrap();
        let k = &unit.kernels["square"];
        assert!(!k.has_barrier);
        assert_eq!(k.params.len(), 3);
        assert!(k.params[2].is_const);
    }

    #[test]
    fn detects_barrier() {
        let unit = build(
            "__kernel void k(__global float* a, __local float* s) {
                s[get_local_id(0)] = a[get_global_id(0)];
                barrier(CLK_LOCAL_MEM_FENCE);
                a[get_global_id(0)] = s[0];
            }",
        )
        .unwrap();
        assert!(unit.kernels["k"].has_barrier);
    }

    #[test]
    fn rejects_write_through_const_pointer() {
        let err = build("__kernel void k(__constant float* a) { a[0] = 1.0f; }").unwrap_err();
        assert!(err[0].message.contains("const"));
    }

    #[test]
    fn rejects_unknown_variable_with_position() {
        let err = build("__kernel void k(__global float* a) {\n a[0] = bogus; }").unwrap_err();
        assert_eq!(err[0].pos.line, 2);
        assert!(err[0].message.contains("bogus"));
    }

    #[test]
    fn rejects_unit_without_kernel() {
        assert!(build("float f(float x) { return x; }").is_err());
    }

    #[test]
    fn local_array_declaration_registers_region() {
        let unit = build(
            "__kernel void k(__global float* a) {
                __local float s[64];
                s[get_local_id(0)] = a[get_global_id(0)];
                barrier(CLK_LOCAL_MEM_FENCE);
                a[get_global_id(0)] = s[0];
            }",
        )
        .unwrap();
        assert_eq!(unit.kernels["k"].local_decl_bytes, vec![256]);
    }

    #[test]
    fn private_array_allocates_item_memory() {
        let unit = build(
            "__kernel void k(__global float* a) {
                float tmp[8];
                tmp[0] = a[0];
                a[0] = tmp[0];
            }",
        )
        .unwrap();
        assert_eq!(unit.kernels["k"].priv_bytes, 32);
    }

    #[test]
    fn device_function_calls_compile() {
        let unit = build(
            "float sq(float x) { return x * x; }
             __kernel void k(__global float* a) { a[0] = sq(a[0]); }",
        )
        .unwrap();
        assert_eq!(unit.funcs.len(), 1);
        assert_eq!(unit.funcs[0].name, "sq");
    }

    #[test]
    fn barrier_in_called_function_propagates() {
        let unit = build(
            "void sync2() { barrier(CLK_LOCAL_MEM_FENCE); }
             __kernel void k(__global float* a) { sync2(); a[0] = 1.0f; }",
        )
        .unwrap();
        assert!(unit.kernels["k"].has_barrier);
    }

    #[test]
    fn mixed_arithmetic_promotes_to_float() {
        // Exercises the Swap-based lhs promotion.
        let unit = build(
            "__kernel void k(__global float* a, const int n) {
                a[0] = n + a[0];
                a[1] = a[1] + n;
            }",
        )
        .unwrap();
        assert!(unit.code.contains(&Op::Swap));
    }

    #[test]
    fn collects_multiple_errors() {
        let err = build(
            "__kernel void k(__global float* a) {
                a[0] = bogus1;
                a[1] = bogus2;
            }",
        )
        .unwrap_err();
        assert_eq!(err.len(), 2);
    }
}
