//! The mini OpenCL-C kernel language: lexer, parser, compiler, interpreter.
//!
//! Real OpenCL compiles kernel source *at runtime* on whatever device the
//! host selected; `minicl` mirrors that: [`crate::program::Program::build`]
//! parses and compiles a source string when the host calls it, and hands
//! back either kernels or a build log — the same moment a real driver would.
//!
//! Dialect summary (see the crate root for the full table):
//! * scalars `int`, `uint`, `long`, `float`, `bool`; short-vector `float4`
//! * address spaces `__global`, `__local`, `__constant`, `__private`
//! * work-item builtins (`get_global_id`, ...), math builtins, `barrier()`
//! * device functions callable from kernels
//! * `#pragma` lines are collected (consumed by the OpenACC-style baseline)

pub mod ast;
pub mod bytecode;
pub mod codegen;
pub mod interp;
pub mod native;
pub mod parser;
pub mod pretty;
pub mod regir;
pub mod token;

pub use ast::{Space, Type as ClType, Unit};
pub use bytecode::{Builtin, CompiledUnit, ElemTy, KernelInfo, Op};
pub use codegen::{compile, Diag};
pub use interp::{MemPool, NdStats, RtArg, Trap, Val};
pub use native::NativeProgram;
pub use parser::{parse, parse_expr, ParseError};
pub use regir::RegProgram;
pub use pretty::{emit_expr, emit_unit};
