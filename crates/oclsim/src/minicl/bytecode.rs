//! Flat bytecode for compiled mini OpenCL-C kernels.
//!
//! Kernels are compiled to a stack machine with an explicit [`Op::Barrier`]
//! opcode. The flat encoding is what makes work-group barriers cheap to
//! simulate: a work-item's execution state is just an instruction pointer,
//! an operand stack and a locals array, so the interpreter can suspend every
//! item at a barrier and resume them in lock-step rounds.

use super::ast::{Space, Type};
use std::collections::HashMap;

/// Element types that can live in buffers (global/local/private memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemTy {
    /// 32-bit signed int.
    I32,
    /// 64-bit signed int.
    I64,
    /// 32-bit float.
    F32,
    /// Four packed 32-bit floats.
    F4,
}

impl ElemTy {
    /// Bytes occupied by one element.
    pub fn byte_size(self) -> usize {
        match self {
            ElemTy::I32 | ElemTy::F32 => 4,
            ElemTy::I64 => 8,
            ElemTy::F4 => 16,
        }
    }

    /// The buffer element type corresponding to an AST type, if storable.
    pub fn of(ty: &Type) -> Option<ElemTy> {
        match ty {
            Type::Int | Type::Uint | Type::Bool => Some(ElemTy::I32),
            Type::Long => Some(ElemTy::I64),
            Type::Float => Some(ElemTy::F32),
            Type::Float4 => Some(ElemTy::F4),
            _ => None,
        }
    }
}

/// Comparison kinds for `CmpI`/`CmpF`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // comparison variants are self-describing
pub enum Cmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Work-item builtins (OpenCL intrinsics available inside kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `get_global_id(dim)`.
    GetGlobalId,
    /// `get_local_id(dim)`.
    GetLocalId,
    /// `get_group_id(dim)`.
    GetGroupId,
    /// `get_global_size(dim)`.
    GetGlobalSize,
    /// `get_local_size(dim)`.
    GetLocalSize,
    /// `get_num_groups(dim)`.
    GetNumGroups,
    /// `sqrt(x)`.
    Sqrt,
    /// `rsqrt(x)` = 1/sqrt(x).
    Rsqrt,
    /// `fabs(x)`.
    Fabs,
    /// `floor(x)`.
    Floor,
    /// `ceil(x)`.
    Ceil,
    /// `exp(x)`.
    Exp,
    /// `log(x)` (natural).
    Log,
    /// `pow(x, y)`.
    Pow,
    /// `sin(x)`.
    Sin,
    /// `cos(x)`.
    Cos,
    /// `fmin(a, b)` on floats.
    Fmin,
    /// `fmax(a, b)` on floats.
    Fmax,
    /// `min(a, b)` on ints.
    MinI,
    /// `max(a, b)` on ints.
    MaxI,
    /// `abs(a)` on ints.
    AbsI,
    /// `clamp(v, lo, hi)` on floats.
    Clamp,
    /// `mad(a, b, c)` = a*b + c on floats.
    Mad,
    /// `dot(a, b)` on float4.
    Dot,
}

/// One bytecode instruction.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // arithmetic variants are self-describing
pub enum Op {
    /// Push an integer constant.
    PushI(i64),
    /// Push a float constant.
    PushF(f64),
    /// Push a pointer constant (used for local/private array declarations).
    PushPtr {
        /// Address space of the pointer.
        space: Space,
        /// Arg index (global), region index (local) — unused for private.
        slot: u16,
        /// Byte offset of the array base within its region.
        base: u32,
    },
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Duplicate the top two stack values: `[a, b] -> [a, b, a, b]`.
    Dup2,
    /// Exchange the top two stack values.
    Swap,
    /// Push local variable `slot` (frame-relative).
    Ld(u16),
    /// Pop into local variable `slot` (frame-relative).
    St(u16),
    // Integer arithmetic (64-bit two's complement).
    AddI,
    SubI,
    MulI,
    /// Traps on division by zero.
    DivI,
    /// Traps on division by zero.
    RemI,
    NegI,
    // Float arithmetic (f64 internally; stored as f32 in buffers).
    AddF,
    SubF,
    MulF,
    DivF,
    NegF,
    // float4 component-wise arithmetic.
    AddF4,
    SubF4,
    MulF4,
    DivF4,
    /// Broadcast a scalar float to all four lanes.
    SplatF4,
    /// Build a float4 from four scalar floats (stack order x,y,z,w).
    MakeF4,
    /// Extract component `0..=3` of a float4.
    GetComp(u8),
    /// `[vec, scalar] -> vec` with component replaced.
    SetComp(u8),
    // Integer bitwise.
    Shl,
    Shr,
    BAnd,
    BOr,
    BXor,
    BNot,
    /// Integer comparison; pushes 0 or 1.
    CmpI(Cmp),
    /// Float comparison; pushes 0 or 1.
    CmpF(Cmp),
    /// Logical not on an integer truth value.
    LNot,
    /// int → float conversion.
    I2F,
    /// float → int conversion (truncating, like C).
    F2I,
    /// Unconditional jump to absolute instruction index.
    Jmp(u32),
    /// Jump if top of stack (int) is zero.
    Jz(u32),
    /// Jump if top of stack (int) is non-zero.
    Jnz(u32),
    /// `[ptr, idx] -> value`: load an element from memory.
    LdElem(ElemTy),
    /// `[ptr, idx, value] -> ()`: store an element to memory.
    StElem(ElemTy),
    /// Call user function: args are on the stack in declaration order.
    Call {
        /// Index into [`CompiledUnit::funcs`].
        func: u16,
        /// Number of arguments to pop into the new frame.
        nargs: u8,
    },
    /// Call a builtin with `argc` stack arguments.
    CallB(Builtin, u8),
    /// Work-group barrier: suspends the item until every item in the group
    /// reaches the same barrier.
    Barrier,
    /// Return void from the current function (or finish the kernel).
    Ret,
    /// Return a value from the current function.
    RetV,
}

impl Op {
    /// Abstract cost in device "ops" charged to the virtual clock.
    ///
    /// The weights encode the performance folklore the paper's figures rely
    /// on: memory traffic is ~4× ALU cost, transcendental math ~8×, and a
    /// `float4` arithmetic op costs the same as a scalar one (that is the
    /// whole point of short vectors, and the reason the C-OpenCL document
    /// ranking kernel beats the scalar Ensemble one in Figure 3e).
    pub fn cost(&self) -> u64 {
        match self {
            Op::LdElem(_) | Op::StElem(_) => 4,
            Op::DivI | Op::RemI | Op::DivF | Op::DivF4 => 8,
            Op::CallB(b, _) => match b {
                Builtin::Sqrt
                | Builtin::Rsqrt
                | Builtin::Exp
                | Builtin::Log
                | Builtin::Pow
                | Builtin::Sin
                | Builtin::Cos => 8,
                Builtin::Dot | Builtin::Mad | Builtin::Clamp => 2,
                _ => 1,
            },
            Op::Call { .. } => 4,
            Op::Barrier => 2,
            _ => 1,
        }
    }
}

/// Kernel parameter descriptor kept for host-side argument validation.
#[derive(Debug, Clone, PartialEq)]
pub struct KParam {
    /// Parameter name (for error messages).
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Declared `const` / `__constant` (writes trap).
    pub is_const: bool,
}

/// Metadata for one compiled `__kernel` entry point.
#[derive(Debug, Clone)]
pub struct KernelInfo {
    /// Kernel name.
    pub name: String,
    /// Entry instruction index.
    pub entry: u32,
    /// Locals-frame size (including parameters).
    pub nlocals: u16,
    /// Parameter descriptors.
    pub params: Vec<KParam>,
    /// Byte sizes of in-body `__local` array declarations, in declaration
    /// order. Region indices for these start after the `__local` params.
    pub local_decl_bytes: Vec<usize>,
    /// Whether the kernel (or anything it calls) contains a barrier; the
    /// interpreter picks the cheap run-to-completion path when false.
    pub has_barrier: bool,
    /// Per-item private array bytes.
    pub priv_bytes: usize,
}

/// Metadata for a device function.
#[derive(Debug, Clone)]
pub struct FuncInfo {
    /// Function name.
    pub name: String,
    /// Entry instruction index.
    pub entry: u32,
    /// Number of parameters.
    pub nargs: u8,
    /// Locals-frame size (including parameters).
    pub nlocals: u16,
}

/// A compiled translation unit: one flat code array plus per-kernel and
/// per-function metadata.
#[derive(Debug, Clone, Default)]
pub struct CompiledUnit {
    /// All instructions (functions concatenated; kernels end with `Ret`).
    pub code: Vec<Op>,
    /// Kernel metadata by name.
    pub kernels: HashMap<String, KernelInfo>,
    /// Device-function table referenced by `Op::Call`.
    pub funcs: Vec<FuncInfo>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_sizes() {
        assert_eq!(ElemTy::I32.byte_size(), 4);
        assert_eq!(ElemTy::I64.byte_size(), 8);
        assert_eq!(ElemTy::F32.byte_size(), 4);
        assert_eq!(ElemTy::F4.byte_size(), 16);
    }

    #[test]
    fn elem_of_ast_types() {
        assert_eq!(ElemTy::of(&Type::Float), Some(ElemTy::F32));
        assert_eq!(ElemTy::of(&Type::Float4), Some(ElemTy::F4));
        assert_eq!(ElemTy::of(&Type::Void), None);
    }

    #[test]
    fn memory_ops_cost_more_than_alu() {
        assert!(Op::LdElem(ElemTy::F32).cost() > Op::AddF.cost());
        assert!(Op::CallB(Builtin::Sqrt, 1).cost() > Op::MulF.cost());
    }

    #[test]
    fn vector_arith_costs_like_scalar() {
        assert_eq!(Op::AddF4.cost(), Op::AddF.cost());
    }
}
