//! Work-group interpreter for compiled mini OpenCL-C kernels.
//!
//! Work-groups execute sequentially (the *virtual clock*, not the host
//! clock, models device parallelism — see [`crate::timing`]). Within a
//! group, items run to completion when the kernel has no barriers; when it
//! does, every item is a resumable state machine and the group advances in
//! lock-step rounds between [`Op::Barrier`] instructions, exactly the
//! semantics OpenCL guarantees (and traps on the divergent-barrier case
//! OpenCL declares undefined).

use super::ast::{Space, Type};
use super::bytecode::*;

/// Runtime argument for a dispatch, already resolved by the host layer.
#[derive(Debug, Clone)]
pub enum RtArg {
    /// A device buffer: index into the [`MemPool`].
    Buf {
        /// Pool slot holding the bytes.
        pool_slot: usize,
    },
    /// An immediate scalar.
    Scalar(Val),
    /// A `__local` allocation of the given size (set by the host with
    /// `set_arg_local`, mirroring `clSetKernelArg(size, NULL)`).
    Local {
        /// Bytes to allocate per work-group.
        bytes: usize,
    },
}

/// Buffer bytes checked out for the duration of one dispatch.
#[derive(Debug, Default)]
pub struct MemPool {
    /// Byte storage per pool slot.
    pub bufs: Vec<Vec<u8>>,
    /// Whether writes to the slot should trap (const / `__constant`).
    pub read_only: Vec<bool>,
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    /// Integer register (int/uint/long/bool).
    I(i64),
    /// Float register (f32 semantics, f64 storage).
    F(f64),
    /// float4 register.
    F4([f32; 4]),
    /// Pointer register.
    Ptr(PtrV),
}

/// A pointer value: address space + region slot + byte base.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtrV {
    /// Address space.
    pub space: Space,
    /// Pool slot (global/constant) or local-region index (local).
    pub slot: u16,
    /// Byte offset of the pointed-to base within the region.
    pub base: u32,
}

/// A kernel runtime fault.
#[derive(Debug, Clone, PartialEq)]
pub struct Trap {
    /// Description of the fault.
    pub message: String,
    /// Global id of the faulting work-item.
    pub global_id: [usize; 3],
}

/// Per-dispatch statistics feeding the virtual clock.
#[derive(Debug, Clone, Default)]
pub struct NdStats {
    /// Total abstract ops per work-group (input to the cost model).
    pub group_ops: Vec<u64>,
    /// Number of work-items executed.
    pub items: u64,
}

/// Abort threshold: a single work-item retiring this many ops is assumed to
/// be stuck in an infinite loop (no paper kernel comes within 10⁴× of it).
/// Shared with the register engine so both trap identically.
pub(super) const MAX_ITEM_OPS: u64 = 2_000_000_000;

struct Frame {
    ret_ip: usize,
    base: usize,
}

struct Item {
    ip: usize,
    stack: Vec<Val>,
    locals: Vec<Val>,
    frames: Vec<Frame>,
    priv_mem: Vec<u8>,
    gid: [usize; 3],
    lid: [usize; 3],
    ops: u64,
    done: bool,
}

enum StopReason {
    Done,
    Barrier,
}

struct GroupCtx<'a> {
    code: &'a [Op],
    funcs: &'a [FuncInfo],
    pool: &'a mut MemPool,
    local_regions: Vec<Vec<u8>>,
    group_id: [usize; 3],
    global_size: [usize; 3],
    local_size: [usize; 3],
    num_groups: [usize; 3],
}

/// Execute a full ND-range. `args` must already be validated against the
/// kernel's parameters (the host layer does this in
/// [`crate::program::Kernel`]).
pub fn run_ndrange(
    unit: &CompiledUnit,
    kernel: &KernelInfo,
    args: &[RtArg],
    pool: &mut MemPool,
    global: [usize; 3],
    local: [usize; 3],
) -> Result<NdStats, Trap> {
    let num_groups = [
        global[0] / local[0].max(1),
        global[1] / local[1].max(1),
        global[2] / local[2].max(1),
    ];
    let window = [0..num_groups[0], 0..num_groups[1], 0..num_groups[2]];
    run_ndrange_window(unit, kernel, args, pool, global, local, window)
}

/// Execute a *window* of a larger ND-range: only work-groups whose
/// per-dimension group index falls inside `window` run, but
/// `get_global_size` / `get_num_groups` / global ids all report the full
/// range — the semantics a co-execution scheduler needs when it assigns
/// disjoint group slices of one dispatch to different devices.
pub fn run_ndrange_window(
    unit: &CompiledUnit,
    kernel: &KernelInfo,
    args: &[RtArg],
    pool: &mut MemPool,
    global: [usize; 3],
    local: [usize; 3],
    window: [std::ops::Range<usize>; 3],
) -> Result<NdStats, Trap> {
    let num_groups = [
        global[0] / local[0].max(1),
        global[1] / local[1].max(1),
        global[2] / local[2].max(1),
    ];
    let region_bytes = local_region_sizes(kernel, args)?;

    let mut stats = NdStats::default();
    let items_per_group = local[0] * local[1] * local[2];
    // The parameter-binding part of a work-item's locals frame is the same
    // for every item of the dispatch: build it once and memcpy per item.
    let locals_template = locals_template(kernel, args);
    let mut ctx = GroupCtx {
        code: &unit.code,
        funcs: &unit.funcs,
        pool,
        local_regions: region_bytes.iter().map(|&b| vec![0u8; b]).collect(),
        group_id: [0; 3],
        global_size: global,
        local_size: local,
        num_groups,
    };

    let mut first_group = true;
    for gz in window[2].clone() {
        for gy in window[1].clone() {
            for gx in window[0].clone() {
                ctx.group_id = [gx, gy, gz];
                // Zero local memory between groups for determinism. The
                // first group sees freshly allocated (zeroed) regions, and
                // kernels with no local memory skip the pass entirely.
                if !first_group {
                    for r in &mut ctx.local_regions {
                        r.fill(0);
                    }
                }
                first_group = false;
                let ops = if kernel.has_barrier {
                    run_group_lockstep(&mut ctx, kernel, &locals_template, items_per_group)?
                } else {
                    run_group_fast(&mut ctx, kernel, &locals_template)?
                };
                stats.group_ops.push(ops);
                stats.items += items_per_group as u64;
            }
        }
    }
    Ok(stats)
}

/// Byte sizes of the dispatch's `__local` regions: host-set `__local`
/// params (in param order) then in-body declarations. Shared by both
/// execution engines so the missing-arg trap is identical.
pub(super) fn local_region_sizes(kernel: &KernelInfo, args: &[RtArg]) -> Result<Vec<usize>, Trap> {
    let mut region_bytes: Vec<usize> = Vec::new();
    for (param, arg) in kernel.params.iter().zip(args) {
        if matches!(param.ty, Type::Ptr(Space::Local, _)) {
            match arg {
                RtArg::Local { bytes } => region_bytes.push(*bytes),
                _ => {
                    return Err(Trap {
                        message: format!(
                            "__local param `{}` not set via set_arg_local",
                            param.name
                        ),
                        global_id: [0; 3],
                    })
                }
            }
        }
    }
    region_bytes.extend_from_slice(&kernel.local_decl_bytes);
    Ok(region_bytes)
}

/// The dispatch-invariant initial locals frame: parameters bound, every
/// other slot `I(0)`. Shared by both execution engines (the register
/// engine converts each [`Val`] to its raw register form).
pub(super) fn locals_template(kernel: &KernelInfo, args: &[RtArg]) -> Vec<Val> {
    let mut locals = vec![Val::I(0); kernel.nlocals as usize];
    let mut local_region = 0u16;
    for (i, (param, arg)) in kernel.params.iter().zip(args).enumerate() {
        let v = match (&param.ty, arg) {
            (Type::Ptr(Space::Local, _), RtArg::Local { .. }) => {
                let p = Val::Ptr(PtrV {
                    space: Space::Local,
                    slot: local_region,
                    base: 0,
                });
                local_region += 1;
                p
            }
            (Type::Ptr(space, _), RtArg::Buf { pool_slot }) => Val::Ptr(PtrV {
                space: *space,
                slot: *pool_slot as u16,
                base: 0,
            }),
            (_, RtArg::Scalar(v)) => *v,
            // Validated by the host layer; defensive default.
            _ => Val::I(0),
        };
        locals[i] = v;
    }
    locals
}

fn init_item(item: &mut Item, kernel: &KernelInfo, locals_template: &[Val]) {
    item.ip = kernel.entry as usize;
    item.stack.clear();
    item.frames.clear();
    item.locals.clear();
    item.locals.extend_from_slice(locals_template);
    item.priv_mem.clear();
    item.priv_mem.resize(kernel.priv_bytes, 0);
    item.done = false;
}

fn run_group_fast(
    ctx: &mut GroupCtx<'_>,
    kernel: &KernelInfo,
    locals_template: &[Val],
) -> Result<u64, Trap> {
    let mut item = Item {
        ip: 0,
        stack: Vec::with_capacity(16),
        locals: Vec::new(),
        frames: Vec::new(),
        priv_mem: Vec::new(),
        gid: [0; 3],
        lid: [0; 3],
        ops: 0,
        done: false,
    };
    let mut group_ops = 0u64;
    let [lx, ly, lz] = ctx.local_size;
    for iz in 0..lz {
        for iy in 0..ly {
            for ix in 0..lx {
                init_item(&mut item, kernel, locals_template);
                item.lid = [ix, iy, iz];
                item.gid = [
                    ctx.group_id[0] * lx + ix,
                    ctx.group_id[1] * ly + iy,
                    ctx.group_id[2] * lz + iz,
                ];
                item.ops = 0;
                match step_until_stop(&mut item, ctx)? {
                    StopReason::Done => {}
                    StopReason::Barrier => {
                        return Err(Trap {
                            message: "barrier reached in kernel compiled without barriers"
                                .to_string(),
                            global_id: item.gid,
                        })
                    }
                }
                group_ops += item.ops;
            }
        }
    }
    Ok(group_ops)
}

fn run_group_lockstep(
    ctx: &mut GroupCtx<'_>,
    kernel: &KernelInfo,
    locals_template: &[Val],
    items_per_group: usize,
) -> Result<u64, Trap> {
    let [lx, ly, lz] = ctx.local_size;
    let mut items: Vec<Item> = Vec::with_capacity(items_per_group);
    for iz in 0..lz {
        for iy in 0..ly {
            for ix in 0..lx {
                let mut item = Item {
                    ip: 0,
                    stack: Vec::with_capacity(16),
                    locals: Vec::new(),
                    frames: Vec::new(),
                    priv_mem: Vec::new(),
                    gid: [0; 3],
                    lid: [0; 3],
                    ops: 0,
                    done: false,
                };
                init_item(&mut item, kernel, locals_template);
                item.lid = [ix, iy, iz];
                item.gid = [
                    ctx.group_id[0] * lx + ix,
                    ctx.group_id[1] * ly + iy,
                    ctx.group_id[2] * lz + iz,
                ];
                items.push(item);
            }
        }
    }
    loop {
        let mut at_barrier = 0usize;
        let mut running = 0usize;
        for item in items.iter_mut() {
            if item.done {
                continue;
            }
            running += 1;
            match step_until_stop(item, ctx)? {
                StopReason::Done => item.done = true,
                StopReason::Barrier => at_barrier += 1,
            }
        }
        if running == 0 {
            break;
        }
        if at_barrier == 0 {
            // Every still-running item finished this round.
            continue;
        }
        if at_barrier != running {
            let culprit = items
                .iter()
                .find(|i| !i.done)
                .map(|i| i.gid)
                .unwrap_or([0; 3]);
            return Err(Trap {
                message: format!(
                    "divergent barrier: {at_barrier} of {running} running items reached barrier"
                ),
                global_id: culprit,
            });
        }
    }
    Ok(items.iter().map(|i| i.ops).sum())
}

macro_rules! pop {
    ($item:expr) => {
        $item.stack.pop().ok_or_else(|| Trap {
            message: "operand stack underflow".to_string(),
            global_id: $item.gid,
        })?
    };
}

macro_rules! pop_i {
    ($item:expr) => {
        match pop!($item) {
            Val::I(v) => v,
            other => {
                return Err(Trap {
                    message: format!("expected int on stack, found {other:?}"),
                    global_id: $item.gid,
                })
            }
        }
    };
}

macro_rules! pop_f {
    ($item:expr) => {
        match pop!($item) {
            Val::F(v) => v,
            other => {
                return Err(Trap {
                    message: format!("expected float on stack, found {other:?}"),
                    global_id: $item.gid,
                })
            }
        }
    };
}

macro_rules! pop_f4 {
    ($item:expr) => {
        match pop!($item) {
            Val::F4(v) => v,
            other => {
                return Err(Trap {
                    message: format!("expected float4 on stack, found {other:?}"),
                    global_id: $item.gid,
                })
            }
        }
    };
}

macro_rules! pop_ptr {
    ($item:expr) => {
        match pop!($item) {
            Val::Ptr(p) => p,
            other => {
                return Err(Trap {
                    message: format!("expected pointer on stack, found {other:?}"),
                    global_id: $item.gid,
                })
            }
        }
    };
}

fn step_until_stop(item: &mut Item, ctx: &mut GroupCtx<'_>) -> Result<StopReason, Trap> {
    loop {
        let op = &ctx.code[item.ip];
        item.ops += op.cost();
        if item.ops > MAX_ITEM_OPS {
            return Err(Trap {
                message: "work-item exceeded the op budget (infinite loop?)".to_string(),
                global_id: item.gid,
            });
        }
        item.ip += 1;
        match op {
            Op::PushI(v) => item.stack.push(Val::I(*v)),
            Op::PushF(v) => item.stack.push(Val::F(*v)),
            Op::PushPtr { space, slot, base } => item.stack.push(Val::Ptr(PtrV {
                space: *space,
                slot: *slot,
                base: *base,
            })),
            Op::Pop => {
                pop!(item);
            }
            Op::Dup => {
                let v = *item.stack.last().ok_or_else(|| Trap {
                    message: "dup on empty stack".to_string(),
                    global_id: item.gid,
                })?;
                item.stack.push(v);
            }
            Op::Dup2 => {
                let n = item.stack.len();
                if n < 2 {
                    return Err(Trap {
                        message: "dup2 on short stack".to_string(),
                        global_id: item.gid,
                    });
                }
                let a = item.stack[n - 2];
                let b = item.stack[n - 1];
                item.stack.push(a);
                item.stack.push(b);
            }
            Op::Swap => {
                let n = item.stack.len();
                if n < 2 {
                    return Err(Trap {
                        message: "swap on short stack".to_string(),
                        global_id: item.gid,
                    });
                }
                item.stack.swap(n - 2, n - 1);
            }
            Op::Ld(slot) => {
                let base = item.frames.last().map(|f| f.base).unwrap_or(0);
                item.stack.push(item.locals[base + *slot as usize]);
            }
            Op::St(slot) => {
                let v = pop!(item);
                let base = item.frames.last().map(|f| f.base).unwrap_or(0);
                item.locals[base + *slot as usize] = v;
            }
            Op::AddI => {
                let b = pop_i!(item);
                let a = pop_i!(item);
                item.stack.push(Val::I(a.wrapping_add(b)));
            }
            Op::SubI => {
                let b = pop_i!(item);
                let a = pop_i!(item);
                item.stack.push(Val::I(a.wrapping_sub(b)));
            }
            Op::MulI => {
                let b = pop_i!(item);
                let a = pop_i!(item);
                item.stack.push(Val::I(a.wrapping_mul(b)));
            }
            Op::DivI => {
                let b = pop_i!(item);
                let a = pop_i!(item);
                if b == 0 {
                    return Err(Trap {
                        message: "integer division by zero".to_string(),
                        global_id: item.gid,
                    });
                }
                item.stack.push(Val::I(a.wrapping_div(b)));
            }
            Op::RemI => {
                let b = pop_i!(item);
                let a = pop_i!(item);
                if b == 0 {
                    return Err(Trap {
                        message: "integer remainder by zero".to_string(),
                        global_id: item.gid,
                    });
                }
                item.stack.push(Val::I(a.wrapping_rem(b)));
            }
            Op::NegI => {
                let a = pop_i!(item);
                item.stack.push(Val::I(a.wrapping_neg()));
            }
            Op::AddF => {
                let b = pop_f!(item);
                let a = pop_f!(item);
                item.stack.push(Val::F(a + b));
            }
            Op::SubF => {
                let b = pop_f!(item);
                let a = pop_f!(item);
                item.stack.push(Val::F(a - b));
            }
            Op::MulF => {
                let b = pop_f!(item);
                let a = pop_f!(item);
                item.stack.push(Val::F(a * b));
            }
            Op::DivF => {
                let b = pop_f!(item);
                let a = pop_f!(item);
                item.stack.push(Val::F(a / b));
            }
            Op::NegF => {
                let a = pop_f!(item);
                item.stack.push(Val::F(-a));
            }
            Op::AddF4 => {
                let b = pop_f4!(item);
                let a = pop_f4!(item);
                item.stack.push(Val::F4([
                    a[0] + b[0],
                    a[1] + b[1],
                    a[2] + b[2],
                    a[3] + b[3],
                ]));
            }
            Op::SubF4 => {
                let b = pop_f4!(item);
                let a = pop_f4!(item);
                item.stack.push(Val::F4([
                    a[0] - b[0],
                    a[1] - b[1],
                    a[2] - b[2],
                    a[3] - b[3],
                ]));
            }
            Op::MulF4 => {
                let b = pop_f4!(item);
                let a = pop_f4!(item);
                item.stack.push(Val::F4([
                    a[0] * b[0],
                    a[1] * b[1],
                    a[2] * b[2],
                    a[3] * b[3],
                ]));
            }
            Op::DivF4 => {
                let b = pop_f4!(item);
                let a = pop_f4!(item);
                item.stack.push(Val::F4([
                    a[0] / b[0],
                    a[1] / b[1],
                    a[2] / b[2],
                    a[3] / b[3],
                ]));
            }
            Op::SplatF4 => {
                let a = pop_f!(item) as f32;
                item.stack.push(Val::F4([a; 4]));
            }
            Op::MakeF4 => {
                let w = pop_f!(item) as f32;
                let z = pop_f!(item) as f32;
                let y = pop_f!(item) as f32;
                let x = pop_f!(item) as f32;
                item.stack.push(Val::F4([x, y, z, w]));
            }
            Op::GetComp(c) => {
                let v = pop_f4!(item);
                item.stack.push(Val::F(v[*c as usize] as f64));
            }
            Op::SetComp(c) => {
                let s = pop_f!(item) as f32;
                let mut v = pop_f4!(item);
                v[*c as usize] = s;
                item.stack.push(Val::F4(v));
            }
            Op::Shl => {
                let b = pop_i!(item);
                let a = pop_i!(item);
                item.stack.push(Val::I(a.wrapping_shl(b as u32)));
            }
            Op::Shr => {
                let b = pop_i!(item);
                let a = pop_i!(item);
                item.stack.push(Val::I(a.wrapping_shr(b as u32)));
            }
            Op::BAnd => {
                let b = pop_i!(item);
                let a = pop_i!(item);
                item.stack.push(Val::I(a & b));
            }
            Op::BOr => {
                let b = pop_i!(item);
                let a = pop_i!(item);
                item.stack.push(Val::I(a | b));
            }
            Op::BXor => {
                let b = pop_i!(item);
                let a = pop_i!(item);
                item.stack.push(Val::I(a ^ b));
            }
            Op::BNot => {
                let a = pop_i!(item);
                item.stack.push(Val::I(!a));
            }
            Op::CmpI(c) => {
                let b = pop_i!(item);
                let a = pop_i!(item);
                let r = match c {
                    Cmp::Eq => a == b,
                    Cmp::Ne => a != b,
                    Cmp::Lt => a < b,
                    Cmp::Le => a <= b,
                    Cmp::Gt => a > b,
                    Cmp::Ge => a >= b,
                };
                item.stack.push(Val::I(r as i64));
            }
            Op::CmpF(c) => {
                let b = pop_f!(item);
                let a = pop_f!(item);
                let r = match c {
                    Cmp::Eq => a == b,
                    Cmp::Ne => a != b,
                    Cmp::Lt => a < b,
                    Cmp::Le => a <= b,
                    Cmp::Gt => a > b,
                    Cmp::Ge => a >= b,
                };
                item.stack.push(Val::I(r as i64));
            }
            Op::LNot => {
                let a = pop_i!(item);
                item.stack.push(Val::I((a == 0) as i64));
            }
            Op::I2F => {
                let a = pop_i!(item);
                item.stack.push(Val::F(a as f64));
            }
            Op::F2I => {
                let a = pop_f!(item);
                let v = if a.is_nan() { 0 } else { a as i64 };
                item.stack.push(Val::I(v));
            }
            Op::Jmp(t) => item.ip = *t as usize,
            Op::Jz(t) => {
                let a = pop_i!(item);
                if a == 0 {
                    item.ip = *t as usize;
                }
            }
            Op::Jnz(t) => {
                let a = pop_i!(item);
                if a != 0 {
                    item.ip = *t as usize;
                }
            }
            Op::LdElem(ty) => {
                let idx = pop_i!(item);
                let ptr = pop_ptr!(item);
                let v = load_elem(item, ctx, ptr, idx, *ty)?;
                item.stack.push(v);
            }
            Op::StElem(ty) => {
                let v = pop!(item);
                let idx = pop_i!(item);
                let ptr = pop_ptr!(item);
                store_elem(item, ctx, ptr, idx, *ty, v)?;
            }
            Op::Call { func, nargs } => {
                let f = &ctx.funcs[*func as usize];
                if item.frames.len() >= 192 {
                    return Err(Trap {
                        message: "call stack overflow".to_string(),
                        global_id: item.gid,
                    });
                }
                let base = item.locals.len();
                item.locals.resize(base + f.nlocals as usize, Val::I(0));
                for k in (0..*nargs as usize).rev() {
                    item.locals[base + k] = pop!(item);
                }
                item.frames.push(Frame {
                    ret_ip: item.ip,
                    base,
                });
                item.ip = f.entry as usize;
            }
            Op::CallB(b, argc) => {
                builtin(item, ctx, *b, *argc)?;
            }
            Op::Barrier => return Ok(StopReason::Barrier),
            Op::Ret => match item.frames.pop() {
                Some(fr) => {
                    item.locals.truncate(fr.base);
                    item.ip = fr.ret_ip;
                }
                None => return Ok(StopReason::Done),
            },
            Op::RetV => {
                let v = pop!(item);
                match item.frames.pop() {
                    Some(fr) => {
                        item.locals.truncate(fr.base);
                        item.ip = fr.ret_ip;
                        item.stack.push(v);
                    }
                    None => return Ok(StopReason::Done),
                }
            }
        }
    }
}

fn region<'c>(
    item: &mut Item,
    ctx: &'c mut GroupCtx<'_>,
    ptr: PtrV,
) -> Result<(&'c mut [u8], bool), Trap>
where
{
    // Private memory lives in the item, not the ctx, so handle it first via
    // a raw split: the caller guarantees item and ctx are distinct objects.
    match ptr.space {
        Space::Global | Space::Constant => {
            let slot = ptr.slot as usize;
            if slot >= ctx.pool.bufs.len() {
                return Err(Trap {
                    message: format!("pointer to unknown buffer slot {slot}"),
                    global_id: item.gid,
                });
            }
            let ro = ctx.pool.read_only[slot] || ptr.space == Space::Constant;
            Ok((ctx.pool.bufs[slot].as_mut_slice(), ro))
        }
        Space::Local => {
            let slot = ptr.slot as usize;
            if slot >= ctx.local_regions.len() {
                return Err(Trap {
                    message: format!("pointer to unknown local region {slot}"),
                    global_id: item.gid,
                });
            }
            Ok((ctx.local_regions[slot].as_mut_slice(), false))
        }
        Space::Private => Err(Trap {
            message: "private pointers are resolved by the caller".to_string(),
            global_id: item.gid,
        }),
    }
}

fn load_elem(
    item: &mut Item,
    ctx: &mut GroupCtx<'_>,
    ptr: PtrV,
    idx: i64,
    ty: ElemTy,
) -> Result<Val, Trap> {
    let size = ty.byte_size();
    let gid = item.gid;
    let byte = checked_offset(gid, ptr.base, idx, size)?;
    if ptr.space == Space::Private {
        let bytes = &item.priv_mem;
        return read_val(bytes, byte, ty).ok_or_else(|| oob(gid, byte, size, bytes.len()));
    }
    let (bytes, _) = region(item, ctx, ptr)?;
    let len = bytes.len();
    read_val(bytes, byte, ty).ok_or_else(|| oob(gid, byte, size, len))
}

fn store_elem(
    item: &mut Item,
    ctx: &mut GroupCtx<'_>,
    ptr: PtrV,
    idx: i64,
    ty: ElemTy,
    v: Val,
) -> Result<(), Trap> {
    let size = ty.byte_size();
    let gid = item.gid;
    let byte = checked_offset(gid, ptr.base, idx, size)?;
    if ptr.space == Space::Private {
        let len = item.priv_mem.len();
        return write_val(&mut item.priv_mem, byte, ty, v, gid)
            .ok_or_else(|| oob(gid, byte, size, len));
    }
    let (bytes, read_only) = region(item, ctx, ptr)?;
    if read_only {
        return Err(Trap {
            message: "write through const/__constant pointer".to_string(),
            global_id: gid,
        });
    }
    let len = bytes.len();
    write_val(bytes, byte, ty, v, gid).ok_or_else(|| oob(gid, byte, size, len))
}

#[inline(always)]
pub(super) fn checked_offset(
    gid: [usize; 3],
    base: u32,
    idx: i64,
    size: usize,
) -> Result<usize, Trap> {
    if idx < 0 {
        return Err(Trap {
            message: format!("negative array index {idx}"),
            global_id: gid,
        });
    }
    (idx as usize)
        .checked_mul(size)
        .and_then(|b| b.checked_add(base as usize))
        .ok_or_else(|| Trap {
            message: format!("array index {idx} overflows the address range"),
            global_id: gid,
        })
}

pub(super) fn oob(gid: [usize; 3], byte: usize, size: usize, len: usize) -> Trap {
    Trap {
        message: format!(
            "out-of-bounds access: bytes {byte}..{} of {len}",
            byte + size
        ),
        global_id: gid,
    }
}

fn read_val(bytes: &[u8], at: usize, ty: ElemTy) -> Option<Val> {
    let size = ty.byte_size();
    let slice = bytes.get(at..at + size)?;
    Some(match ty {
        ElemTy::I32 => Val::I(i32::from_le_bytes(slice.try_into().ok()?) as i64),
        ElemTy::I64 => Val::I(i64::from_le_bytes(slice.try_into().ok()?)),
        ElemTy::F32 => Val::F(f32::from_le_bytes(slice.try_into().ok()?) as f64),
        ElemTy::F4 => {
            let mut v = [0f32; 4];
            for (k, item_v) in v.iter_mut().enumerate() {
                *item_v = f32::from_le_bytes(slice[k * 4..k * 4 + 4].try_into().ok()?);
            }
            Val::F4(v)
        }
    })
}

fn write_val(bytes: &mut [u8], at: usize, ty: ElemTy, v: Val, _gid: [usize; 3]) -> Option<()> {
    let size = ty.byte_size();
    let slice = bytes.get_mut(at..at + size)?;
    match (ty, v) {
        (ElemTy::I32, Val::I(x)) => slice.copy_from_slice(&(x as i32).to_le_bytes()),
        (ElemTy::I64, Val::I(x)) => slice.copy_from_slice(&x.to_le_bytes()),
        (ElemTy::F32, Val::F(x)) => slice.copy_from_slice(&(x as f32).to_le_bytes()),
        (ElemTy::F4, Val::F4(x)) => {
            for (k, c) in x.iter().enumerate() {
                slice[k * 4..k * 4 + 4].copy_from_slice(&c.to_le_bytes());
            }
        }
        _ => return None,
    }
    Some(())
}

fn builtin(item: &mut Item, ctx: &GroupCtx<'_>, b: Builtin, _argc: u8) -> Result<(), Trap> {
    use Builtin::*;
    match b {
        GetGlobalId | GetLocalId | GetGroupId | GetGlobalSize | GetLocalSize | GetNumGroups => {
            let d = pop_i!(item);
            // OpenCL semantics for an out-of-range dimension: the id
            // builtins return 0, the size builtins return 1.
            let v = if !(0..=2).contains(&d) {
                match b {
                    GetGlobalSize | GetLocalSize | GetNumGroups => 1,
                    _ => 0,
                }
            } else {
                let d = d as usize;
                match b {
                    GetGlobalId => item.gid[d],
                    GetLocalId => item.lid[d],
                    GetGroupId => ctx.group_id[d],
                    GetGlobalSize => ctx.global_size[d],
                    GetLocalSize => ctx.local_size[d],
                    GetNumGroups => ctx.num_groups[d],
                    _ => unreachable!(),
                }
            };
            item.stack.push(Val::I(v as i64));
        }
        Sqrt | Rsqrt | Fabs | Floor | Ceil | Exp | Log | Sin | Cos => {
            let x = pop_f!(item);
            let r = match b {
                Sqrt => x.sqrt(),
                Rsqrt => 1.0 / x.sqrt(),
                Fabs => x.abs(),
                Floor => x.floor(),
                Ceil => x.ceil(),
                Exp => x.exp(),
                Log => x.ln(),
                Sin => x.sin(),
                Cos => x.cos(),
                _ => unreachable!(),
            };
            item.stack.push(Val::F(r));
        }
        Pow | Fmin | Fmax => {
            let y = pop_f!(item);
            let x = pop_f!(item);
            let r = match b {
                Pow => x.powf(y),
                Fmin => x.min(y),
                Fmax => x.max(y),
                _ => unreachable!(),
            };
            item.stack.push(Val::F(r));
        }
        MinI | MaxI => {
            let y = pop_i!(item);
            let x = pop_i!(item);
            item.stack
                .push(Val::I(if b == MinI { x.min(y) } else { x.max(y) }));
        }
        AbsI => {
            let x = pop_i!(item);
            item.stack.push(Val::I(x.abs()));
        }
        Clamp => {
            let hi = pop_f!(item);
            let lo = pop_f!(item);
            let v = pop_f!(item);
            item.stack.push(Val::F(v.max(lo).min(hi)));
        }
        Mad => {
            let c = pop_f!(item);
            let bb = pop_f!(item);
            let a = pop_f!(item);
            item.stack.push(Val::F(a * bb + c));
        }
        Dot => {
            let y = pop_f4!(item);
            let x = pop_f4!(item);
            let mut acc = 0f64;
            for k in 0..4 {
                acc += x[k] as f64 * y[k] as f64;
            }
            item.stack.push(Val::F(acc));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minicl::codegen::compile;
    use crate::minicl::parser::parse;

    fn run(
        src: &str,
        kernel: &str,
        args: Vec<RtArg>,
        pool: &mut MemPool,
        global: [usize; 3],
        local: [usize; 3],
    ) -> Result<NdStats, Trap> {
        let unit = compile(&parse(src).unwrap()).unwrap();
        let k = unit.kernels[kernel].clone();
        run_ndrange(&unit, &k, &args, pool, global, local)
    }

    fn f32_buf(vals: &[f32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn buf_f32(bytes: &[u8]) -> Vec<f32> {
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn square_kernel_squares() {
        let src = "__kernel void square(__global float* in, __global float* out, const int n) {
            int i = get_global_id(0);
            if (i < n) { out[i] = in[i] * in[i]; }
        }";
        let mut pool = MemPool {
            bufs: vec![f32_buf(&[1.0, 2.0, 3.0, 4.0]), vec![0u8; 16]],
            read_only: vec![false, false],
        };
        let args = vec![
            RtArg::Buf { pool_slot: 0 },
            RtArg::Buf { pool_slot: 1 },
            RtArg::Scalar(Val::I(4)),
        ];
        let stats = run(src, "square", args, &mut pool, [4, 1, 1], [2, 1, 1]).unwrap();
        assert_eq!(buf_f32(&pool.bufs[1]), vec![1.0, 4.0, 9.0, 16.0]);
        assert_eq!(stats.items, 4);
        assert_eq!(stats.group_ops.len(), 2);
    }

    #[test]
    fn barrier_reduction_finds_minimum() {
        let src =
            "__kernel void rmin(__global float* data, __global float* out, __local float* s) {
            int l = get_local_id(0);
            int g = get_global_id(0);
            s[l] = data[g];
            barrier(CLK_LOCAL_MEM_FENCE);
            for (int st = get_local_size(0) / 2; st > 0; st = st / 2) {
                if (l < st) { s[l] = fmin(s[l], s[l + st]); }
                barrier(CLK_LOCAL_MEM_FENCE);
            }
            if (l == 0) { out[get_group_id(0)] = s[0]; }
        }";
        let data: Vec<f32> = (0..16).map(|i| (16 - i) as f32).collect();
        let mut pool = MemPool {
            bufs: vec![f32_buf(&data), vec![0u8; 8]],
            read_only: vec![false, false],
        };
        let args = vec![
            RtArg::Buf { pool_slot: 0 },
            RtArg::Buf { pool_slot: 1 },
            RtArg::Local { bytes: 8 * 4 },
        ];
        run(src, "rmin", args, &mut pool, [16, 1, 1], [8, 1, 1]).unwrap();
        let out = buf_f32(&pool.bufs[1]);
        assert_eq!(out, vec![9.0, 1.0]);
    }

    #[test]
    fn two_dimensional_ids() {
        let src = "__kernel void idx(__global int* out) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            out[y * get_global_size(0) + x] = y * 100 + x;
        }";
        let mut pool = MemPool {
            bufs: vec![vec![0u8; 4 * 4 * 4]],
            read_only: vec![false],
        };
        run(
            src,
            "idx",
            vec![RtArg::Buf { pool_slot: 0 }],
            &mut pool,
            [4, 4, 1],
            [2, 2, 1],
        )
        .unwrap();
        let out: Vec<i32> = pool.bufs[0]
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(out[0], 0);
        assert_eq!(out[5], 101);
        assert_eq!(out[15], 303);
    }

    #[test]
    fn out_of_bounds_traps_with_global_id() {
        let src = "__kernel void bad(__global float* a) { a[get_global_id(0) + 100] = 1.0f; }";
        let mut pool = MemPool {
            bufs: vec![vec![0u8; 16]],
            read_only: vec![false],
        };
        let err = run(
            src,
            "bad",
            vec![RtArg::Buf { pool_slot: 0 }],
            &mut pool,
            [4, 1, 1],
            [4, 1, 1],
        )
        .unwrap_err();
        assert!(err.message.contains("out-of-bounds"));
    }

    #[test]
    fn divergent_barrier_traps() {
        let src = "__kernel void div(__global float* a) {
            if (get_local_id(0) == 0) { barrier(CLK_LOCAL_MEM_FENCE); }
            a[get_global_id(0)] = 1.0f;
        }";
        let mut pool = MemPool {
            bufs: vec![vec![0u8; 16]],
            read_only: vec![false],
        };
        let err = run(
            src,
            "div",
            vec![RtArg::Buf { pool_slot: 0 }],
            &mut pool,
            [4, 1, 1],
            [4, 1, 1],
        )
        .unwrap_err();
        assert!(err.message.contains("divergent barrier"));
    }

    #[test]
    fn write_to_constant_buffer_traps() {
        let src = "__kernel void w(__global float* a, __constant float* c) { a[0] = c[0]; }";
        let mut pool = MemPool {
            bufs: vec![vec![0u8; 4], f32_buf(&[5.0])],
            read_only: vec![false, true],
        };
        run(
            src,
            "w",
            vec![RtArg::Buf { pool_slot: 0 }, RtArg::Buf { pool_slot: 1 }],
            &mut pool,
            [1, 1, 1],
            [1, 1, 1],
        )
        .unwrap();
        assert_eq!(buf_f32(&pool.bufs[0]), vec![5.0]);
    }

    #[test]
    fn device_function_call_works() {
        let src = "float sq(float x) { return x * x; }
        __kernel void k(__global float* a) {
            int i = get_global_id(0);
            a[i] = sq(a[i]) + sq(2.0f);
        }";
        let mut pool = MemPool {
            bufs: vec![f32_buf(&[3.0])],
            read_only: vec![false],
        };
        run(
            src,
            "k",
            vec![RtArg::Buf { pool_slot: 0 }],
            &mut pool,
            [1, 1, 1],
            [1, 1, 1],
        )
        .unwrap();
        assert_eq!(buf_f32(&pool.bufs[0]), vec![13.0]);
    }

    #[test]
    fn float4_roundtrip_and_dot() {
        let src = "__kernel void v(__global float4* a, __global float* out) {
            float4 x = a[0];
            float4 y = (float4)(2.0f);
            out[0] = dot(x, y);
            a[1] = x * y;
        }";
        let mut pool = MemPool {
            bufs: vec![
                f32_buf(&[1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0]),
                vec![0u8; 4],
            ],
            read_only: vec![false, false],
        };
        run(
            src,
            "v",
            vec![RtArg::Buf { pool_slot: 0 }, RtArg::Buf { pool_slot: 1 }],
            &mut pool,
            [1, 1, 1],
            [1, 1, 1],
        )
        .unwrap();
        assert_eq!(buf_f32(&pool.bufs[1]), vec![20.0]);
        assert_eq!(buf_f32(&pool.bufs[0])[4..], [2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn private_array_is_per_item() {
        let src = "__kernel void p(__global float* out) {
            float tmp[4];
            int i = get_global_id(0);
            for (int k = 0; k < 4; k++) { tmp[k] = (float)(i * 10 + k); }
            out[i] = tmp[3];
        }";
        let mut pool = MemPool {
            bufs: vec![vec![0u8; 8]],
            read_only: vec![false],
        };
        run(
            src,
            "p",
            vec![RtArg::Buf { pool_slot: 0 }],
            &mut pool,
            [2, 1, 1],
            [1, 1, 1],
        )
        .unwrap();
        assert_eq!(buf_f32(&pool.bufs[0]), vec![3.0, 13.0]);
    }

    #[test]
    fn group_ops_accounting_is_positive_and_balanced() {
        let src = "__kernel void k(__global float* a) { a[get_global_id(0)] = 1.0f; }";
        let mut pool = MemPool {
            bufs: vec![vec![0u8; 64]],
            read_only: vec![false],
        };
        let stats = run(
            src,
            "k",
            vec![RtArg::Buf { pool_slot: 0 }],
            &mut pool,
            [16, 1, 1],
            [4, 1, 1],
        )
        .unwrap();
        assert_eq!(stats.group_ops.len(), 4);
        let first = stats.group_ops[0];
        assert!(first > 0);
        assert!(stats.group_ops.iter().all(|&g| g == first));
    }

    #[test]
    fn division_by_zero_traps() {
        let src = "__kernel void d(__global int* a) { a[0] = 1 / a[1]; }";
        let mut pool = MemPool {
            bufs: vec![vec![0u8; 8]],
            read_only: vec![false],
        };
        let err = run(
            src,
            "d",
            vec![RtArg::Buf { pool_slot: 0 }],
            &mut pool,
            [1, 1, 1],
            [1, 1, 1],
        )
        .unwrap_err();
        assert!(err.message.contains("division by zero"));
    }
}
