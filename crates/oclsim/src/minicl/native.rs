//! Work-group native engine: direct-threaded execution of the register IR.
//!
//! [`compile_native`] lowers a *validated* [`RegProgram`] one rung further,
//! from interpreted register code to a pre-resolved handler chain that is
//! dispatched with one indirect call per (possibly fused) instruction:
//!
//! * **Device-function inlining.** Every `Call` site is expanded in place
//!   with its own register *window* — a fresh absolute register range that
//!   plays the role of the callee frame. The PR 4/6 validator proved every
//!   call shape consistent (arity, frame size, single return convention),
//!   which is what licenses replacing the dynamic frame stack with
//!   compile-time window assignment: no frame pushes, no frame pops, no
//!   return-ip bookkeeping at run time. Recursive or uncompiled device
//!   functions make the lowering decline and the dispatcher falls back to
//!   the register engine.
//! * **Pre-decoded handlers.** Each instruction becomes an `NInstr`: a
//!   handler function pointer plus absolute register indices — no operand
//!   decoding, no `match` on the opcode, no frame-base addition in the hot
//!   loop. Conditional branches are specialised per comparison and
//!   polarity, builtins per function, loads and stores per element type.
//! * **Pre-resolved memory sites.** A load/store whose pointer register is
//!   never written holds its dispatch template value for the whole run, so
//!   the pointer is decoded *once per dispatch* into a `Site` (buffer
//!   slot, local region, or private memory, with the read-only bit and any
//!   unknown-slot trap pre-computed). The hot path keeps only the
//!   `checked_offset` bounds test the validator could not discharge
//!   statically.
//! * **Superinstruction fusion.** Block-entry `Ops` charges fold into the
//!   following instruction — every handler has a charge slot (`t` for
//!   straight-line handlers, `imm` for branches), so op accounting costs
//!   no dispatch of its own. Frequent adjacent pairs (loop increment +
//!   compare-branch, address compute + load, load + load, load +
//!   multiply-add, store + increment, …) collapse into one handler, and
//!   the code is compacted — fused slots disappear and jump targets are
//!   remapped — roughly halving dispatches on the benchmark hot loops.
//! * **Work-group specialisation.** Barrier-free kernels run each
//!   work-item straight through one reused register arena (pocl's
//!   work-group function transformation, specialised to the no-barrier
//!   case): per-item set-up is one `memcpy` of the locals/stack region and
//!   a `fill(0)` of private memory. Kernels with barriers run the same
//!   lockstep sweep as the register engine, resuming each item at its
//!   saved instruction pointer.
//!
//! The engine is observationally identical to the stack and register
//! engines: byte-identical buffers, identical `group_ops` (the `Ops`
//! block-entry charges are kept as-is, fused but never re-associated),
//! and identical trap messages/global-ids in the same order. The
//! differential triangle in `tests/engine_diff.rs` pins all three engines
//! together on every generated app kernel and the proptest corpus.

use super::ast::Space;
use super::bytecode::{Builtin, Cmp, ElemTy, KernelInfo};
use super::interp::{
    checked_offset, local_region_sizes, locals_template, oob, MemPool, NdStats, PtrV, RtArg, Trap,
    Val, MAX_ITEM_OPS,
};
use super::regir::{read_reg, write_reg, RFunc, ROp, RVal, RegProgram};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Instruction format
// ---------------------------------------------------------------------------

/// Handler function: executes one (possibly fused) instruction and returns
/// the next instruction index, or a halt sentinel (`>= IP_HALT_MIN`).
type H = for<'a, 'b, 'c> fn(&'a mut NState<'b>, &'c NInstr, u32) -> u32;

/// Halt sentinels returned in place of a next-instruction index.
const IP_DONE: u32 = u32::MAX;
const IP_BARRIER: u32 = u32::MAX - 1;
const IP_TRAP: u32 = u32::MAX - 2;
const IP_HALT_MIN: u32 = IP_TRAP;

/// One pre-decoded native instruction: a handler pointer plus flat operand
/// fields. Register fields (`a`..`g`) are *absolute* indices into the
/// dispatch register file (windows already applied). `t` is the jump
/// target for branch handlers and the folded block-entry op charge for
/// every other handler; branches take their folded charge through `imm`
/// instead, which otherwise carries a memory-site index, a constant, or a
/// packed extra operand depending on the handler.
#[derive(Clone, Copy)]
struct NInstr {
    f: H,
    imm: u64,
    t: u32,
    a: u16,
    b: u16,
    c: u16,
    d: u16,
    e: u16,
    g: u16,
}

impl std::fmt::Debug for NInstr {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("NInstr")
            .field("imm", &self.imm)
            .field("t", &self.t)
            .field("a", &self.a)
            .field("b", &self.b)
            .field("c", &self.c)
            .field("d", &self.d)
            .field("e", &self.e)
            .field("g", &self.g)
            .finish()
    }
}

/// Where a pre-resolved memory access lands. Resolved once per dispatch
/// from the (never-written) pointer register's template value — including
/// the *failure* cases, which must still trap at first execution with the
/// exact message the register engine produces, not at resolve time.
#[derive(Debug, Clone, Copy)]
struct Site {
    kind: SiteKind,
    slot: u32,
    base: u32,
    ro: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SiteKind {
    Global,
    Local,
    Priv,
    BadGlobal,
    BadLocal,
}

/// Per-item execution state handed to every handler.
struct NState<'a> {
    regs: &'a mut [RVal],
    priv_mem: &'a mut [u8],
    bufs: &'a mut [Vec<u8>],
    read_only: &'a [bool],
    local_regions: &'a mut [Vec<u8>],
    sites: &'a [Site],
    gid: [usize; 3],
    lid: [usize; 3],
    group_id: [usize; 3],
    global_size: [usize; 3],
    local_size: [usize; 3],
    num_groups: [usize; 3],
    ops: u64,
    /// Instruction index to resume at after a barrier.
    resume: u32,
    trap: Option<Trap>,
}

/// A kernel lowered to the native engine, ready to dispatch any number of
/// times.
///
/// Produced by [`compile_native`] from an already-validated
/// [`RegProgram`], executed by [`run_ndrange`]. Observationally identical
/// to the register engine (buffers, `group_ops`, traps).
///
/// ```
/// use oclsim::minicl::{self, native, regir};
/// use oclsim::minicl::interp::{MemPool, RtArg};
///
/// // Lower a tiny kernel all the way down the ladder: source -> stack
/// // bytecode -> register IR -> native, then dispatch over 4 items.
/// let unit = minicl::parse("__kernel void dbl(__global float* a) {
///     int i = get_global_id(0);
///     a[i] = a[i] * 2.0f;
/// }").unwrap();
/// let compiled = minicl::compile(&unit).unwrap();
/// let info = compiled.kernels.get("dbl").unwrap().clone();
/// let reg = regir::compile_kernel(&compiled, &info).expect("register-lowerable");
/// let prog = native::compile_native(&reg, &info).expect("native-lowerable");
/// assert!(!prog.is_empty());
///
/// let mut pool = MemPool {
///     bufs: vec![[1.0f32, 2.0, 3.0, 4.0].iter().flat_map(|v| v.to_le_bytes()).collect()],
///     read_only: vec![false],
/// };
/// let stats = native::run_ndrange(
///     &prog, &info, &[RtArg::Buf { pool_slot: 0 }], &mut pool, [4, 1, 1], [2, 1, 1],
/// ).unwrap();
/// assert_eq!(stats.items, 4);
/// let out: Vec<f32> = pool.bufs[0].chunks(4)
///     .map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
/// assert_eq!(out, vec![2.0, 4.0, 6.0, 8.0]);
/// ```
#[derive(Debug, Clone)]
pub struct NativeProgram {
    code: Vec<NInstr>,
    entry: u32,
    /// Total absolute registers: the main frame plus every inline window.
    total_regs: u32,
    /// End of the per-item reset span: the main frame's locals + canonical
    /// stack slots. Everything at or above this is either a constant
    /// (never written — enforced by the lowering) or an inline window
    /// (written before read on every activation by the call sequence).
    main_const_base: u16,
    /// Static template tail covering `[main_const_base, total_regs)`:
    /// the main constant pool followed by every window's zeroed locals and
    /// constant pool.
    template_static: Vec<RVal>,
    /// Pointer register feeding each pre-resolved memory [`Site`]; decoded
    /// per dispatch from the template.
    site_specs: Vec<u16>,
}

impl NativeProgram {
    /// Number of native instructions (fused pairs count once, plus their
    /// padding slot).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the program has no instructions (never produced by
    /// [`compile_native`], which emits at least a halt).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Handler building blocks
// ---------------------------------------------------------------------------

// SAFETY argument for the unchecked register accesses in the handlers:
// `compile_native` checks every register field of every emitted instruction
// against `total_regs`, and both dispatch paths hand each handler a `regs`
// slice of exactly `total_regs` elements. Instruction fetch is unchecked
// too: every jump target is checked against the code length at lowering
// time, and a fall-through `ip + 1` successor is checked to exist for
// every non-terminal instruction.
macro_rules! rg {
    ($st:expr, $r:expr) => {
        // SAFETY: see the module invariant above.
        unsafe { *$st.regs.get_unchecked($r as usize) }
    };
}
macro_rules! sw {
    ($st:expr, $r:expr, $v:expr) => {{
        let v = $v;
        // SAFETY: see the module invariant above.
        unsafe { *$st.regs.get_unchecked_mut($r as usize) = v };
    }};
}

// Folded block-entry op charge. The lowering absorbs each `ROp::Ops(n)`
// into the *following* instruction: straight-line handlers carry the
// charge in `i.t` (their jump-target field is otherwise unused), branch
// handlers carry it in `i.imm`. The charge is applied before the
// instruction's own effects, so a budget trap fires at exactly the same
// program point where the register engine charges the block.
macro_rules! chgt {
    ($st:expr, $i:expr) => {
        if $i.t != 0 {
            $st.ops += $i.t as u64;
            if $st.ops > MAX_ITEM_OPS {
                return trap_budget($st);
            }
        }
    };
}
macro_rules! chgi {
    ($st:expr, $i:expr) => {
        if $i.imm != 0 {
            $st.ops += $i.imm;
            if $st.ops > MAX_ITEM_OPS {
                return trap_budget($st);
            }
        }
    };
}

#[cold]
#[inline(never)]
fn trap(st: &mut NState, message: String) -> u32 {
    st.trap = Some(Trap {
        message,
        global_id: st.gid,
    });
    IP_TRAP
}

#[cold]
#[inline(never)]
fn trap_budget(st: &mut NState) -> u32 {
    trap(
        st,
        "work-item exceeded the op budget (infinite loop?)".to_string(),
    )
}

/// Load through a pre-resolved site. Trap order mirrors the register
/// engine's `load`: `checked_offset` first, then the unknown-slot cases,
/// then the bounds check against the region.
#[inline(always)]
fn load_site(st: &mut NState, site: usize, idx: i64, ty: ElemTy) -> Result<RVal, u32> {
    // SAFETY: site indices are assigned densely at lowering time and the
    // dispatch builds `sites` with exactly that many entries; `Global` /
    // `Local` sites are only resolved when the slot was in range (see
    // `resolve_site`), and neither collection changes during a dispatch.
    let s = unsafe { *st.sites.get_unchecked(site) };
    let size = ty.byte_size();
    let byte = match checked_offset(st.gid, s.base, idx, size) {
        Ok(b) => b,
        Err(t) => {
            st.trap = Some(t);
            return Err(IP_TRAP);
        }
    };
    let bytes: &[u8] = match s.kind {
        // SAFETY: see above — slot range was proven at site resolution.
        SiteKind::Global => unsafe { st.bufs.get_unchecked(s.slot as usize) },
        SiteKind::Local => unsafe { st.local_regions.get_unchecked(s.slot as usize) },
        SiteKind::Priv => st.priv_mem,
        SiteKind::BadGlobal => {
            return Err(trap(
                st,
                format!("pointer to unknown buffer slot {}", s.slot),
            ))
        }
        SiteKind::BadLocal => {
            return Err(trap(
                st,
                format!("pointer to unknown local region {}", s.slot),
            ))
        }
    };
    match read_reg(bytes, byte, ty) {
        Some(v) => Ok(v),
        None => {
            let len = bytes.len();
            st.trap = Some(oob(st.gid, byte, size, len));
            Err(IP_TRAP)
        }
    }
}

/// Store through a pre-resolved site; trap order mirrors the register
/// engine's `store` (`checked_offset`, unknown slot, read-only, bounds).
#[inline(always)]
fn store_site(st: &mut NState, site: usize, idx: i64, ty: ElemTy, v: RVal) -> Result<(), u32> {
    // SAFETY: same invariants as `load_site`.
    let s = unsafe { *st.sites.get_unchecked(site) };
    let size = ty.byte_size();
    let byte = match checked_offset(st.gid, s.base, idx, size) {
        Ok(b) => b,
        Err(t) => {
            st.trap = Some(t);
            return Err(IP_TRAP);
        }
    };
    let bytes: &mut [u8] = match s.kind {
        // SAFETY: see `load_site` — slot range proven at site resolution.
        SiteKind::Global => unsafe { st.bufs.get_unchecked_mut(s.slot as usize) },
        SiteKind::Local => unsafe { st.local_regions.get_unchecked_mut(s.slot as usize) },
        SiteKind::Priv => st.priv_mem,
        SiteKind::BadGlobal => {
            return Err(trap(
                st,
                format!("pointer to unknown buffer slot {}", s.slot),
            ))
        }
        SiteKind::BadLocal => {
            return Err(trap(
                st,
                format!("pointer to unknown local region {}", s.slot),
            ))
        }
    };
    if s.ro {
        return Err(trap(
            st,
            "write through const/__constant pointer".to_string(),
        ));
    }
    let len = bytes.len();
    match write_reg(bytes, byte, ty, v) {
        Some(()) => Ok(()),
        None => {
            st.trap = Some(oob(st.gid, byte, size, len));
            Err(IP_TRAP)
        }
    }
}

/// Dynamic load: decode the pointer register at run time (only used when
/// the pointer register is written somewhere, e.g. a pointer passed into
/// an inlined device function). Mirrors the register engine's `load`.
fn dyn_load(st: &mut NState, p: PtrV, idx: i64, ty: ElemTy) -> Result<RVal, u32> {
    let size = ty.byte_size();
    let byte = match checked_offset(st.gid, p.base, idx, size) {
        Ok(b) => b,
        Err(t) => {
            st.trap = Some(t);
            return Err(IP_TRAP);
        }
    };
    let bytes: &[u8] = match p.space {
        Space::Private => st.priv_mem,
        Space::Global | Space::Constant => {
            let slot = p.slot as usize;
            if slot >= st.bufs.len() {
                return Err(trap(st, format!("pointer to unknown buffer slot {slot}")));
            }
            &st.bufs[slot]
        }
        Space::Local => {
            let slot = p.slot as usize;
            if slot >= st.local_regions.len() {
                return Err(trap(st, format!("pointer to unknown local region {slot}")));
            }
            &st.local_regions[slot]
        }
    };
    match read_reg(bytes, byte, ty) {
        Some(v) => Ok(v),
        None => {
            let len = bytes.len();
            st.trap = Some(oob(st.gid, byte, size, len));
            Err(IP_TRAP)
        }
    }
}

/// Dynamic store; mirrors the register engine's `store`.
fn dyn_store(st: &mut NState, p: PtrV, idx: i64, ty: ElemTy, v: RVal) -> Result<(), u32> {
    let size = ty.byte_size();
    let byte = match checked_offset(st.gid, p.base, idx, size) {
        Ok(b) => b,
        Err(t) => {
            st.trap = Some(t);
            return Err(IP_TRAP);
        }
    };
    let bytes: &mut [u8] = match p.space {
        Space::Private => st.priv_mem,
        Space::Global | Space::Constant => {
            let slot = p.slot as usize;
            if slot >= st.bufs.len() {
                return Err(trap(st, format!("pointer to unknown buffer slot {slot}")));
            }
            if st.read_only[slot] || p.space == Space::Constant {
                return Err(trap(
                    st,
                    "write through const/__constant pointer".to_string(),
                ));
            }
            &mut st.bufs[slot]
        }
        Space::Local => {
            let slot = p.slot as usize;
            if slot >= st.local_regions.len() {
                return Err(trap(st, format!("pointer to unknown local region {slot}")));
            }
            &mut st.local_regions[slot]
        }
    };
    let len = bytes.len();
    match write_reg(bytes, byte, ty, v) {
        Some(()) => Ok(()),
        None => {
            st.trap = Some(oob(st.gid, byte, size, len));
            Err(IP_TRAP)
        }
    }
}

/// The direct-threaded dispatch loop: fetch, call handler, follow the
/// returned instruction index until a halt sentinel comes back.
#[inline(always)]
fn exec(code: &[NInstr], mut ip: u32, st: &mut NState) -> u32 {
    loop {
        // SAFETY: jump targets and fall-through successors were checked
        // against the code length at lowering time.
        let i = unsafe { code.get_unchecked(ip as usize) };
        let next = (i.f)(st, i, ip);
        if next >= IP_HALT_MIN {
            return next;
        }
        ip = next;
    }
}

// ---------------------------------------------------------------------------
// Single-instruction handlers
// ---------------------------------------------------------------------------

/// Comparison selected at monomorphisation time (0=Eq 1=Ne 2=Lt 3=Le 4=Gt
/// 5=Ge) — each conditional branch gets its own specialised handler.
#[inline(always)]
fn cmpi_c<const C: u8>(a: i64, b: i64) -> bool {
    match C {
        0 => a == b,
        1 => a != b,
        2 => a < b,
        3 => a <= b,
        4 => a > b,
        _ => a >= b,
    }
}

#[inline(always)]
fn cmpf_c<const C: u8>(a: f64, b: f64) -> bool {
    match C {
        0 => a == b,
        1 => a != b,
        2 => a < b,
        3 => a <= b,
        4 => a > b,
        _ => a >= b,
    }
}

const fn cmp_code(c: Cmp) -> u8 {
    match c {
        Cmp::Eq => 0,
        Cmp::Ne => 1,
        Cmp::Lt => 2,
        Cmp::Le => 3,
        Cmp::Gt => 4,
        Cmp::Ge => 5,
    }
}

/// Invert an integer comparison; exact for integers (unlike floats, where
/// `!(a < b)` differs from `a >= b` under NaN — float branches keep both
/// polarities instead).
fn cmp_inv(c: Cmp) -> Cmp {
    match c {
        Cmp::Eq => Cmp::Ne,
        Cmp::Ne => Cmp::Eq,
        Cmp::Lt => Cmp::Ge,
        Cmp::Ge => Cmp::Lt,
        Cmp::Gt => Cmp::Le,
        Cmp::Le => Cmp::Gt,
    }
}

fn h_ops(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    st.ops += i.imm;
    if st.ops > MAX_ITEM_OPS {
        return trap_budget(st);
    }
    ip + 1
}

fn h_mov(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    sw!(st, i.a, rg!(st, i.b));
    ip + 1
}

fn h_swap(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    st.regs.swap(i.a as usize, i.b as usize);
    ip + 1
}

/// Integer binary op: `a = expr(b, c)`.
macro_rules! hbi {
    ($name:ident, $x:ident, $y:ident, $e:expr) => {
        fn $name(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
            chgt!(st, i);
            let ($x, $y) = (rg!(st, i.b).i(), rg!(st, i.c).i());
            sw!(st, i.a, RVal::from_i($e));
            ip + 1
        }
    };
}
hbi!(h_addi, x, y, x.wrapping_add(y));
hbi!(h_subi, x, y, x.wrapping_sub(y));
hbi!(h_muli, x, y, x.wrapping_mul(y));
hbi!(h_shl, x, y, x.wrapping_shl(y as u32));
hbi!(h_shr, x, y, x.wrapping_shr(y as u32));
hbi!(h_band, x, y, x & y);
hbi!(h_bor, x, y, x | y);
hbi!(h_bxor, x, y, x ^ y);
hbi!(h_mini, x, y, x.min(y));
hbi!(h_maxi, x, y, x.max(y));

fn h_divi(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    let (x, y) = (rg!(st, i.b).i(), rg!(st, i.c).i());
    if y == 0 {
        return trap(st, "integer division by zero".to_string());
    }
    sw!(st, i.a, RVal::from_i(x.wrapping_div(y)));
    ip + 1
}

fn h_remi(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    let (x, y) = (rg!(st, i.b).i(), rg!(st, i.c).i());
    if y == 0 {
        return trap(st, "integer remainder by zero".to_string());
    }
    sw!(st, i.a, RVal::from_i(x.wrapping_rem(y)));
    ip + 1
}

/// Float binary op: `a = expr(b, c)`.
macro_rules! hbf {
    ($name:ident, $x:ident, $y:ident, $e:expr) => {
        fn $name(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
            chgt!(st, i);
            let ($x, $y) = (rg!(st, i.b).f(), rg!(st, i.c).f());
            sw!(st, i.a, RVal::from_f($e));
            ip + 1
        }
    };
}
hbf!(h_addf, x, y, x + y);
hbf!(h_subf, x, y, x - y);
hbf!(h_mulf, x, y, x * y);
hbf!(h_divf, x, y, x / y);
hbf!(h_pow, x, y, x.powf(y));
hbf!(h_fmin, x, y, x.min(y));
hbf!(h_fmax, x, y, x.max(y));
hbf!(h_m2f_other, x, _y, x);

/// Unary int op: `a = expr(b)`.
macro_rules! hui {
    ($name:ident, $x:ident, $e:expr) => {
        fn $name(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
            chgt!(st, i);
            let $x = rg!(st, i.b).i();
            sw!(st, i.a, RVal::from_i($e));
            ip + 1
        }
    };
}
hui!(h_negi, x, x.wrapping_neg());
hui!(h_bnot, x, !x);
hui!(h_lnot, x, (x == 0) as i64);
hui!(h_absi, x, x.abs());

/// Unary float op: `a = expr(b)`.
macro_rules! huf {
    ($name:ident, $x:ident, $e:expr) => {
        fn $name(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
            chgt!(st, i);
            let $x = rg!(st, i.b).f();
            sw!(st, i.a, RVal::from_f($e));
            ip + 1
        }
    };
}
huf!(h_negf, x, -x);
huf!(h_sqrt, x, x.sqrt());
huf!(h_rsqrt, x, 1.0 / x.sqrt());
huf!(h_fabs, x, x.abs());
huf!(h_floor, x, x.floor());
huf!(h_ceil, x, x.ceil());
huf!(h_exp, x, x.exp());
huf!(h_log, x, x.ln());
huf!(h_sin, x, x.sin());
huf!(h_cos, x, x.cos());
huf!(h_m1_other, x, x);

fn h_i2f(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    sw!(st, i.a, RVal::from_f(rg!(st, i.b).i() as f64));
    ip + 1
}

fn h_f2i(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    let x = rg!(st, i.b).f();
    sw!(st, i.a, RVal::from_i(if x.is_nan() { 0 } else { x as i64 }));
    ip + 1
}

/// Float4 binary op: `a = expr(b, c)` lane-wise.
macro_rules! hbf4 {
    ($name:ident, $x:ident, $y:ident, $e:expr) => {
        fn $name(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
            chgt!(st, i);
            let ($x, $y) = (rg!(st, i.b).f4(), rg!(st, i.c).f4());
            sw!(st, i.a, RVal::from_f4($e));
            ip + 1
        }
    };
}
hbf4!(h_addf4, x, y, [x[0] + y[0], x[1] + y[1], x[2] + y[2], x[3] + y[3]]);
hbf4!(h_subf4, x, y, [x[0] - y[0], x[1] - y[1], x[2] - y[2], x[3] - y[3]]);
hbf4!(h_mulf4, x, y, [x[0] * y[0], x[1] * y[1], x[2] * y[2], x[3] * y[3]]);
hbf4!(h_divf4, x, y, [x[0] / y[0], x[1] / y[1], x[2] / y[2], x[3] / y[3]]);

fn h_splatf4(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    let x = rg!(st, i.b).f() as f32;
    sw!(st, i.a, RVal::from_f4([x; 4]));
    ip + 1
}

fn h_makef4(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    let v = [
        rg!(st, i.b).f() as f32,
        rg!(st, i.c).f() as f32,
        rg!(st, i.d).f() as f32,
        rg!(st, i.e).f() as f32,
    ];
    sw!(st, i.a, RVal::from_f4(v));
    ip + 1
}

fn h_getcomp(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    sw!(st, i.a, RVal::from_f(rg!(st, i.b).f4()[i.g as usize] as f64));
    ip + 1
}

fn h_setcomp(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    let mut v = rg!(st, i.b).f4();
    v[i.g as usize] = rg!(st, i.c).f() as f32;
    sw!(st, i.a, RVal::from_f4(v));
    ip + 1
}

fn h_dot(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    let (x, y) = (rg!(st, i.b).f4(), rg!(st, i.c).f4());
    let mut acc = 0f64;
    for k in 0..4 {
        acc += x[k] as f64 * y[k] as f64;
    }
    sw!(st, i.a, RVal::from_f(acc));
    ip + 1
}

fn h_clamp(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    let (x, l, h) = (rg!(st, i.b).f(), rg!(st, i.c).f(), rg!(st, i.d).f());
    sw!(st, i.a, RVal::from_f(x.max(l).min(h)));
    ip + 1
}

fn h_mad(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    sw!(
        st,
        i.a,
        RVal::from_f(rg!(st, i.b).f() * rg!(st, i.c).f() + rg!(st, i.d).f())
    );
    ip + 1
}

/// `dst = c + a * b` — operand order preserved for float identity.
fn h_madrf(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    sw!(
        st,
        i.a,
        RVal::from_f(rg!(st, i.b).f() + rg!(st, i.c).f() * rg!(st, i.d).f())
    );
    ip + 1
}

fn h_madi(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    sw!(
        st,
        i.a,
        RVal::from_i(
            rg!(st, i.b)
                .i()
                .wrapping_mul(rg!(st, i.c).i())
                .wrapping_add(rg!(st, i.d).i())
        )
    );
    ip + 1
}

fn h_cmpi_c<const C: u8>(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    sw!(
        st,
        i.a,
        RVal::from_i(cmpi_c::<C>(rg!(st, i.b).i(), rg!(st, i.c).i()) as i64)
    );
    ip + 1
}

fn h_cmpf_c<const C: u8>(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    sw!(
        st,
        i.a,
        RVal::from_i(cmpf_c::<C>(rg!(st, i.b).f(), rg!(st, i.c).f()) as i64)
    );
    ip + 1
}

fn h_jmp(st: &mut NState, i: &NInstr, _ip: u32) -> u32 {
    chgi!(st, i);
    i.t
}

fn h_jz(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgi!(st, i);
    if rg!(st, i.a).i() == 0 {
        i.t
    } else {
        ip + 1
    }
}

fn h_jnz(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgi!(st, i);
    if rg!(st, i.a).i() != 0 {
        i.t
    } else {
        ip + 1
    }
}

/// Integer compare-and-branch, canonicalised to `when == true` (the
/// lowering inverts the comparison instead — exact for integers).
fn h_jci_c<const C: u8>(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgi!(st, i);
    if cmpi_c::<C>(rg!(st, i.a).i(), rg!(st, i.b).i()) {
        i.t
    } else {
        ip + 1
    }
}

/// Float compare-and-branch: both polarities kept (NaN makes inversion
/// inexact for floats).
fn h_jcf_c<const C: u8, const W: bool>(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgi!(st, i);
    if cmpf_c::<C>(rg!(st, i.a).f(), rg!(st, i.b).f()) == W {
        i.t
    } else {
        ip + 1
    }
}

fn jci_h(c: Cmp) -> H {
    match cmp_code(c) {
        0 => h_jci_c::<0>,
        1 => h_jci_c::<1>,
        2 => h_jci_c::<2>,
        3 => h_jci_c::<3>,
        4 => h_jci_c::<4>,
        _ => h_jci_c::<5>,
    }
}

fn jcf_h(c: Cmp, when: bool) -> H {
    match (cmp_code(c), when) {
        (0, true) => h_jcf_c::<0, true>,
        (1, true) => h_jcf_c::<1, true>,
        (2, true) => h_jcf_c::<2, true>,
        (3, true) => h_jcf_c::<3, true>,
        (4, true) => h_jcf_c::<4, true>,
        (5, true) => h_jcf_c::<5, true>,
        (0, false) => h_jcf_c::<0, false>,
        (1, false) => h_jcf_c::<1, false>,
        (2, false) => h_jcf_c::<2, false>,
        (3, false) => h_jcf_c::<3, false>,
        (4, false) => h_jcf_c::<4, false>,
        _ => h_jcf_c::<5, false>,
    }
}

fn cmpi_h(c: Cmp) -> H {
    match cmp_code(c) {
        0 => h_cmpi_c::<0>,
        1 => h_cmpi_c::<1>,
        2 => h_cmpi_c::<2>,
        3 => h_cmpi_c::<3>,
        4 => h_cmpi_c::<4>,
        _ => h_cmpi_c::<5>,
    }
}

fn cmpf_h(c: Cmp) -> H {
    match cmp_code(c) {
        0 => h_cmpf_c::<0>,
        1 => h_cmpf_c::<1>,
        2 => h_cmpf_c::<2>,
        3 => h_cmpf_c::<3>,
        4 => h_cmpf_c::<4>,
        _ => h_cmpf_c::<5>,
    }
}

/// Sited load, element type selected at monomorphisation time
/// (0=I32 1=I64 2=F32 3=F4). `a`=dst, `b`=idx, `imm`=site.
fn h_ld_c<const T: u8>(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    let idx = rg!(st, i.b).i();
    match load_site(st, i.imm as usize, idx, ty_of::<T>()) {
        Ok(v) => {
            sw!(st, i.a, v);
            ip + 1
        }
        Err(h) => h,
    }
}

/// Sited store. `b`=idx, `c`=val, `imm`=site.
fn h_st_c<const T: u8>(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    let (idx, v) = (rg!(st, i.b).i(), rg!(st, i.c));
    match store_site(st, i.imm as usize, idx, ty_of::<T>(), v) {
        Ok(()) => ip + 1,
        Err(h) => h,
    }
}

const fn ty_of<const T: u8>() -> ElemTy {
    match T {
        0 => ElemTy::I32,
        1 => ElemTy::I64,
        2 => ElemTy::F32,
        _ => ElemTy::F4,
    }
}

const fn ty_code(ty: ElemTy) -> u8 {
    match ty {
        ElemTy::I32 => 0,
        ElemTy::I64 => 1,
        ElemTy::F32 => 2,
        ElemTy::F4 => 3,
    }
}

fn ld_h(ty: ElemTy) -> H {
    match ty_code(ty) {
        0 => h_ld_c::<0>,
        1 => h_ld_c::<1>,
        2 => h_ld_c::<2>,
        _ => h_ld_c::<3>,
    }
}

fn st_h(ty: ElemTy) -> H {
    match ty_code(ty) {
        0 => h_st_c::<0>,
        1 => h_st_c::<1>,
        2 => h_st_c::<2>,
        _ => h_st_c::<3>,
    }
}

/// Dynamic load: `a`=dst, `b`=idx, `c`=ptr reg, `g`=element-type code.
fn h_ld_dyn(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    let (p, idx) = (rg!(st, i.c).ptr(), rg!(st, i.b).i());
    let ty = match i.g {
        0 => ElemTy::I32,
        1 => ElemTy::I64,
        2 => ElemTy::F32,
        _ => ElemTy::F4,
    };
    match dyn_load(st, p, idx, ty) {
        Ok(v) => {
            sw!(st, i.a, v);
            ip + 1
        }
        Err(h) => h,
    }
}

/// Dynamic store: `b`=idx, `c`=val, `d`=ptr reg, `g`=element-type code.
fn h_st_dyn(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    let (p, idx, v) = (rg!(st, i.d).ptr(), rg!(st, i.b).i(), rg!(st, i.c));
    let ty = match i.g {
        0 => ElemTy::I32,
        1 => ElemTy::I64,
        2 => ElemTy::F32,
        _ => ElemTy::F4,
    };
    match dyn_store(st, p, idx, ty, v) {
        Ok(()) => ip + 1,
        Err(h) => h,
    }
}

/// Work-item id builtin with a compile-time-known dimension (`imm`).
macro_rules! hid_const {
    ($name:ident, $field:ident) => {
        fn $name(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
            chgt!(st, i);
            sw!(st, i.a, RVal::from_i(st.$field[i.imm as usize] as i64));
            ip + 1
        }
    };
}
hid_const!(h_gid_c, gid);
hid_const!(h_lid_c, lid);
hid_const!(h_grp_c, group_id);
hid_const!(h_gsz_c, global_size);
hid_const!(h_lsz_c, local_size);
hid_const!(h_ngr_c, num_groups);

/// Work-item id builtin with a dynamic dimension register (`b`);
/// out-of-range dimensions read `imm` (0 for ids, 1 for sizes).
macro_rules! hid_dyn {
    ($name:ident, $field:ident) => {
        fn $name(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
            chgt!(st, i);
            let d = rg!(st, i.b).i();
            let v = if (0..=2).contains(&d) {
                st.$field[d as usize] as i64
            } else {
                i.imm as i64
            };
            sw!(st, i.a, RVal::from_i(v));
            ip + 1
        }
    };
}
hid_dyn!(h_gid_d, gid);
hid_dyn!(h_lid_d, lid);
hid_dyn!(h_grp_d, group_id);
hid_dyn!(h_gsz_d, global_size);
hid_dyn!(h_lsz_d, local_size);
hid_dyn!(h_ngr_d, num_groups);

/// Constant integer result (out-of-range dim with a known register).
fn h_const_i(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    sw!(st, i.a, RVal::from_i(i.imm as i64));
    ip + 1
}

/// Inline-call prologue: copy `c` argument registers from `b..` to `a..`.
fn h_copyargs(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    st.regs
        .copy_within(i.b as usize..(i.b + i.c) as usize, i.a as usize);
    ip + 1
}

/// Inline-call prologue: zero `b` callee locals starting at `a`.
fn h_zerolocals(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    st.regs[i.a as usize..(i.a + i.b) as usize].fill(RVal::default());
    ip + 1
}

fn h_barrier(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    st.resume = ip + 1;
    IP_BARRIER
}

fn h_done(st: &mut NState, i: &NInstr, _ip: u32) -> u32 {
    chgt!(st, i);
    IP_DONE
}

// ---------------------------------------------------------------------------
// Fused superinstruction handlers
// ---------------------------------------------------------------------------
//
// Each fused handler executes two adjacent instructions in one dispatch.
// The code stream is *compacted*: a fused pair occupies a single slot and
// falls through to `ip + 1` like any other instruction (jump targets are
// remapped by the lowering). Fusion never re-orders or re-associates: the
// first instruction's effects (including its trap, if any) land before the
// second's, so the observable behaviour is exactly that of the unfused
// pair. Like the single handlers, straight-line pairs carry a folded
// block-entry op charge in `t` and branch pairs carry it in `imm`.

/// Loop increment + compare-and-branch: `a = b + c; if (d cmp e) goto t`.
fn h_addi_jci_c<const C: u8>(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgi!(st, i);
    sw!(
        st,
        i.a,
        RVal::from_i(rg!(st, i.b).i().wrapping_add(rg!(st, i.c).i()))
    );
    if cmpi_c::<C>(rg!(st, i.d).i(), rg!(st, i.e).i()) {
        i.t
    } else {
        ip + 1
    }
}

/// Loop decrement + compare-and-branch: `a = b - c; if (d cmp e) goto t`.
fn h_subi_jci_c<const C: u8>(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgi!(st, i);
    sw!(
        st,
        i.a,
        RVal::from_i(rg!(st, i.b).i().wrapping_sub(rg!(st, i.c).i()))
    );
    if cmpi_c::<C>(rg!(st, i.d).i(), rg!(st, i.e).i()) {
        i.t
    } else {
        ip + 1
    }
}

/// Two adjacent sited loads of the same element type:
/// `a = [site1][b]; c = [site2][d]`, `imm = site1 | site2 << 32`.
fn h_ld_ld_c<const T: u8>(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    let idx1 = rg!(st, i.b).i();
    match load_site(st, (i.imm & 0xffff_ffff) as usize, idx1, ty_of::<T>()) {
        Ok(v) => sw!(st, i.a, v),
        Err(h) => return h,
    }
    let idx2 = rg!(st, i.d).i();
    match load_site(st, (i.imm >> 32) as usize, idx2, ty_of::<T>()) {
        Ok(v) => {
            sw!(st, i.c, v);
            ip + 1
        }
        Err(h) => h,
    }
}

/// Integer add + sited load: `a = b + c; d = [site][e]`.
fn h_addi_ld_c<const T: u8>(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    sw!(
        st,
        i.a,
        RVal::from_i(rg!(st, i.b).i().wrapping_add(rg!(st, i.c).i()))
    );
    let idx = rg!(st, i.e).i();
    match load_site(st, i.imm as usize, idx, ty_of::<T>()) {
        Ok(v) => {
            sw!(st, i.d, v);
            ip + 1
        }
        Err(h) => h,
    }
}

/// Integer multiply-add + sited load: `a = b * c + d; e = [site][g]`
/// (the matmul row/column address-compute + fetch pair).
fn h_madi_ld_c<const T: u8>(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    sw!(
        st,
        i.a,
        RVal::from_i(
            rg!(st, i.b)
                .i()
                .wrapping_mul(rg!(st, i.c).i())
                .wrapping_add(rg!(st, i.d).i())
        )
    );
    let idx = rg!(st, i.g).i();
    match load_site(st, i.imm as usize, idx, ty_of::<T>()) {
        Ok(v) => {
            sw!(st, i.e, v);
            ip + 1
        }
        Err(h) => h,
    }
}

/// Sited store + integer add: `[site][b] = c; a = d + e`
/// (store result, bump the index).
fn h_st_addi_c<const T: u8>(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    let (idx, v) = (rg!(st, i.b).i(), rg!(st, i.c));
    if let Err(h) = store_site(st, i.imm as usize, idx, ty_of::<T>(), v) {
        return h;
    }
    sw!(
        st,
        i.a,
        RVal::from_i(rg!(st, i.d).i().wrapping_add(rg!(st, i.e).i()))
    );
    ip + 1
}

/// Sited float load + multiply-add `c + a * b`:
/// `a = [site][b]; c = d + e * g` (the inner-product hot pair).
fn h_ld_madrf(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    let idx = rg!(st, i.b).i();
    match load_site(st, i.imm as usize, idx, ElemTy::F32) {
        Ok(v) => sw!(st, i.a, v),
        Err(h) => return h,
    }
    sw!(
        st,
        i.c,
        RVal::from_f(rg!(st, i.d).f() + rg!(st, i.e).f() * rg!(st, i.g).f())
    );
    ip + 1
}

/// Sited float load + multiply-add `a * b + c`.
fn h_ld_mad(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    let idx = rg!(st, i.b).i();
    match load_site(st, i.imm as usize, idx, ElemTy::F32) {
        Ok(v) => sw!(st, i.a, v),
        Err(h) => return h,
    }
    sw!(
        st,
        i.c,
        RVal::from_f(rg!(st, i.d).f() * rg!(st, i.e).f() + rg!(st, i.g).f())
    );
    ip + 1
}

/// Sited float load + float binary op (selected by `B`: 0=add 1=sub
/// 2=mul): `a = [site][b]; c = d op e`.
fn h_ld_fbin_c<const B: u8>(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    let idx = rg!(st, i.b).i();
    match load_site(st, i.imm as usize, idx, ElemTy::F32) {
        Ok(v) => sw!(st, i.a, v),
        Err(h) => return h,
    }
    let (x, y) = (rg!(st, i.d).f(), rg!(st, i.e).f());
    let v = match B {
        0 => x + y,
        1 => x - y,
        _ => x * y,
    };
    sw!(st, i.c, RVal::from_f(v));
    ip + 1
}

/// Float multiply-add (either operand order, selected by `M`) followed by
/// an integer add: `a = mad(b, c, d); e = g + imm`.
fn h_madf_addi_c<const M: bool>(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    let v = if M {
        rg!(st, i.b).f() * rg!(st, i.c).f() + rg!(st, i.d).f()
    } else {
        rg!(st, i.b).f() + rg!(st, i.c).f() * rg!(st, i.d).f()
    };
    sw!(st, i.a, RVal::from_f(v));
    sw!(
        st,
        i.e,
        RVal::from_i(rg!(st, i.g).i().wrapping_add(rg!(st, imm_reg(i)).i()))
    );
    ip + 1
}

/// Float multiply + multiply-add (order selected by `M`):
/// `a = b * c; d = mad(e, g, imm)`.
fn h_mulf_madf_c<const M: bool>(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    sw!(st, i.a, RVal::from_f(rg!(st, i.b).f() * rg!(st, i.c).f()));
    let v = if M {
        rg!(st, i.e).f() * rg!(st, i.g).f() + rg!(st, imm_reg(i)).f()
    } else {
        rg!(st, i.e).f() + rg!(st, i.g).f() * rg!(st, imm_reg(i)).f()
    };
    sw!(st, i.d, RVal::from_f(v));
    ip + 1
}

/// Integer multiply-add followed by an integer add.
fn h_madi_addi(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    sw!(
        st,
        i.a,
        RVal::from_i(
            rg!(st, i.b)
                .i()
                .wrapping_mul(rg!(st, i.c).i())
                .wrapping_add(rg!(st, i.d).i())
        )
    );
    sw!(
        st,
        i.e,
        RVal::from_i(rg!(st, i.g).i().wrapping_add(rg!(st, imm_reg(i)).i()))
    );
    ip + 1
}

/// Register copy + integer add: `a = b; c = d + e`.
fn h_mov_addi(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
    chgt!(st, i);
    sw!(st, i.a, rg!(st, i.b));
    sw!(
        st,
        i.c,
        RVal::from_i(rg!(st, i.d).i().wrapping_add(rg!(st, i.e).i()))
    );
    ip + 1
}

/// Seventh register operand, packed into the low 16 bits of `imm` when
/// the six named fields are exhausted.
#[inline(always)]
fn imm_reg(i: &NInstr) -> u16 {
    i.imm as u16
}

/// Two adjacent float binary ops: `a = b op1 c; d = e op2 g`.
macro_rules! hff {
    ($name:ident, $x:ident, $y:ident, $e1:expr, $u:ident, $v:ident, $e2:expr) => {
        fn $name(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
            chgt!(st, i);
            let ($x, $y) = (rg!(st, i.b).f(), rg!(st, i.c).f());
            sw!(st, i.a, RVal::from_f($e1));
            let ($u, $v) = (rg!(st, i.e).f(), rg!(st, i.g).f());
            sw!(st, i.d, RVal::from_f($e2));
            ip + 1
        }
    };
}
hff!(h_ff_aa, x, y, x + y, u, v, u + v);
hff!(h_ff_as, x, y, x + y, u, v, u - v);
hff!(h_ff_am, x, y, x + y, u, v, u * v);
hff!(h_ff_sa, x, y, x - y, u, v, u + v);
hff!(h_ff_ss, x, y, x - y, u, v, u - v);
hff!(h_ff_sm, x, y, x - y, u, v, u * v);
hff!(h_ff_ma, x, y, x * y, u, v, u + v);
hff!(h_ff_ms, x, y, x * y, u, v, u - v);
hff!(h_ff_mm, x, y, x * y, u, v, u * v);

/// Two adjacent integer binary ops: `a = b op1 c; d = e op2 g`.
macro_rules! hii {
    ($name:ident, $x:ident, $y:ident, $e1:expr, $u:ident, $v:ident, $e2:expr) => {
        fn $name(st: &mut NState, i: &NInstr, ip: u32) -> u32 {
            chgt!(st, i);
            let ($x, $y) = (rg!(st, i.b).i(), rg!(st, i.c).i());
            sw!(st, i.a, RVal::from_i($e1));
            let ($u, $v) = (rg!(st, i.e).i(), rg!(st, i.g).i());
            sw!(st, i.d, RVal::from_i($e2));
            ip + 1
        }
    };
}
hii!(h_ii_aa, x, y, x.wrapping_add(y), u, v, u.wrapping_add(v));
hii!(h_ii_as, x, y, x.wrapping_add(y), u, v, u.wrapping_sub(v));
hii!(h_ii_am, x, y, x.wrapping_add(y), u, v, u.wrapping_mul(v));
hii!(h_ii_sa, x, y, x.wrapping_sub(y), u, v, u.wrapping_add(v));
hii!(h_ii_ss, x, y, x.wrapping_sub(y), u, v, u.wrapping_sub(v));
hii!(h_ii_sm, x, y, x.wrapping_sub(y), u, v, u.wrapping_mul(v));
hii!(h_ii_ma, x, y, x.wrapping_mul(y), u, v, u.wrapping_add(v));
hii!(h_ii_ms, x, y, x.wrapping_mul(y), u, v, u.wrapping_sub(v));
hii!(h_ii_mm, x, y, x.wrapping_mul(y), u, v, u.wrapping_mul(v));

fn addi_jci_h(c: Cmp) -> H {
    match cmp_code(c) {
        0 => h_addi_jci_c::<0>,
        1 => h_addi_jci_c::<1>,
        2 => h_addi_jci_c::<2>,
        3 => h_addi_jci_c::<3>,
        4 => h_addi_jci_c::<4>,
        _ => h_addi_jci_c::<5>,
    }
}

fn subi_jci_h(c: Cmp) -> H {
    match cmp_code(c) {
        0 => h_subi_jci_c::<0>,
        1 => h_subi_jci_c::<1>,
        2 => h_subi_jci_c::<2>,
        3 => h_subi_jci_c::<3>,
        4 => h_subi_jci_c::<4>,
        _ => h_subi_jci_c::<5>,
    }
}

// ---------------------------------------------------------------------------
// Flattening: inline every call, assign absolute register windows
// ---------------------------------------------------------------------------

/// Flattened op: register IR with absolute registers, calls expanded to
/// prologue pseudo-ops plus the callee body, returns rewritten to jumps.
#[derive(Debug, Clone)]
enum FOp {
    R(ROp),
    /// Inline-call prologue: copy `n` argument registers `src.. -> dst..`.
    CopyArgs { dst: u16, src: u16, n: u16 },
    /// Inline-call prologue: zero `n` callee locals starting at `at`.
    ZeroLocals { at: u16, n: u16 },
    /// Kernel-main return: halt the work item.
    Done,
}

#[derive(Clone, Copy)]
enum RetCtx {
    /// Returns halt the item.
    Main,
    /// Returns jump past the inlined body; `RetV` first moves the value
    /// into the caller's `args_at` slot (the same absolute register the
    /// register engine's frame machinery writes).
    Inline { dst: u16 },
}

struct Flattener<'p> {
    prog: &'p RegProgram,
    out: Vec<FOp>,
    /// Main frame plus every window allocated so far.
    total_regs: u32,
    /// Static register template for `[prog.nregs, total_regs)`: zeroed
    /// locals/stack then the constant pool, per window in order.
    tail: Vec<RVal>,
    /// `(absolute register, value)` of every constant-pool register.
    known_consts: Vec<(u32, RVal)>,
    /// Absolute `[lo, hi)` ranges that must never be written.
    const_regions: Vec<(u32, u32)>,
}

/// Add `w` to every register operand of a non-control op; returns the
/// op and its original jump target (to be fixed once the range's layout
/// is known). `Call`/`Ret`/`RetV` are handled by the flattener itself.
fn remap(op: ROp, w: u16) -> (ROp, Option<u32>) {
    use ROp::*;
    let op = match op {
        Ops(n) => Ops(n),
        Mov { dst, src } => Mov { dst: dst + w, src: src + w },
        Swap { a, b } => Swap { a: a + w, b: b + w },
        AddI { dst, a, b } => AddI { dst: dst + w, a: a + w, b: b + w },
        SubI { dst, a, b } => SubI { dst: dst + w, a: a + w, b: b + w },
        MulI { dst, a, b } => MulI { dst: dst + w, a: a + w, b: b + w },
        DivI { dst, a, b } => DivI { dst: dst + w, a: a + w, b: b + w },
        RemI { dst, a, b } => RemI { dst: dst + w, a: a + w, b: b + w },
        Shl { dst, a, b } => Shl { dst: dst + w, a: a + w, b: b + w },
        Shr { dst, a, b } => Shr { dst: dst + w, a: a + w, b: b + w },
        BAnd { dst, a, b } => BAnd { dst: dst + w, a: a + w, b: b + w },
        BOr { dst, a, b } => BOr { dst: dst + w, a: a + w, b: b + w },
        BXor { dst, a, b } => BXor { dst: dst + w, a: a + w, b: b + w },
        NegI { dst, src } => NegI { dst: dst + w, src: src + w },
        BNot { dst, src } => BNot { dst: dst + w, src: src + w },
        LNot { dst, src } => LNot { dst: dst + w, src: src + w },
        AddF { dst, a, b } => AddF { dst: dst + w, a: a + w, b: b + w },
        SubF { dst, a, b } => SubF { dst: dst + w, a: a + w, b: b + w },
        MulF { dst, a, b } => MulF { dst: dst + w, a: a + w, b: b + w },
        DivF { dst, a, b } => DivF { dst: dst + w, a: a + w, b: b + w },
        NegF { dst, src } => NegF { dst: dst + w, src: src + w },
        I2F { dst, src } => I2F { dst: dst + w, src: src + w },
        F2I { dst, src } => F2I { dst: dst + w, src: src + w },
        AddF4 { dst, a, b } => AddF4 { dst: dst + w, a: a + w, b: b + w },
        SubF4 { dst, a, b } => SubF4 { dst: dst + w, a: a + w, b: b + w },
        MulF4 { dst, a, b } => MulF4 { dst: dst + w, a: a + w, b: b + w },
        DivF4 { dst, a, b } => DivF4 { dst: dst + w, a: a + w, b: b + w },
        SplatF4 { dst, src } => SplatF4 { dst: dst + w, src: src + w },
        MakeF4 { dst, src } => MakeF4 {
            dst: dst + w,
            src: [src[0] + w, src[1] + w, src[2] + w, src[3] + w],
        },
        GetComp { dst, src, c } => GetComp { dst: dst + w, src: src + w, c },
        SetComp { dst, vec, scl, c } => SetComp {
            dst: dst + w,
            vec: vec + w,
            scl: scl + w,
            c,
        },
        CmpI { cmp, dst, a, b } => CmpI { cmp, dst: dst + w, a: a + w, b: b + w },
        CmpF { cmp, dst, a, b } => CmpF { cmp, dst: dst + w, a: a + w, b: b + w },
        Jmp { t } => return (Jmp { t: 0 }, Some(t)),
        Jz { c, t } => return (Jz { c: c + w, t: 0 }, Some(t)),
        Jnz { c, t } => return (Jnz { c: c + w, t: 0 }, Some(t)),
        JcI { cmp, a, b, t, when } => {
            return (JcI { cmp, a: a + w, b: b + w, t: 0, when }, Some(t))
        }
        JcF { cmp, a, b, t, when } => {
            return (JcF { cmp, a: a + w, b: b + w, t: 0, when }, Some(t))
        }
        Load { ty, dst, ptr, idx } => Load {
            ty,
            dst: dst + w,
            ptr: ptr + w,
            idx: idx + w,
        },
        Store { ty, ptr, idx, val } => Store {
            ty,
            ptr: ptr + w,
            idx: idx + w,
            val: val + w,
        },
        Id { b, dst, src } => Id { b, dst: dst + w, src: src + w },
        Math1 { b, dst, src } => Math1 { b, dst: dst + w, src: src + w },
        Math2F { b, dst, a, b2 } => Math2F { b, dst: dst + w, a: a + w, b2: b2 + w },
        Math2I { b, dst, a, b2 } => Math2I { b, dst: dst + w, a: a + w, b2: b2 + w },
        AbsI { dst, src } => AbsI { dst: dst + w, src: src + w },
        Clamp { dst, v, lo, hi } => Clamp {
            dst: dst + w,
            v: v + w,
            lo: lo + w,
            hi: hi + w,
        },
        Mad { dst, a, b, c } => Mad { dst: dst + w, a: a + w, b: b + w, c: c + w },
        MadRF { dst, c, a, b } => MadRF { dst: dst + w, c: c + w, a: a + w, b: b + w },
        MadI { dst, a, b, c } => MadI { dst: dst + w, a: a + w, b: b + w, c: c + w },
        Dot { dst, a, b } => Dot { dst: dst + w, a: a + w, b: b + w },
        Barrier => Barrier,
        Call { .. } | Ret | RetV { .. } => unreachable!("handled by the flattener"),
    };
    (op, None)
}

/// Rewrite a placeholder jump target.
fn set_target(op: &mut FOp, t: u32) {
    match op {
        FOp::R(ROp::Jmp { t: x })
        | FOp::R(ROp::Jz { t: x, .. })
        | FOp::R(ROp::Jnz { t: x, .. })
        | FOp::R(ROp::JcI { t: x, .. })
        | FOp::R(ROp::JcF { t: x, .. }) => *x = t,
        _ => unreachable!("not a jump"),
    }
}

fn target_of(op: &FOp) -> Option<u32> {
    match op {
        FOp::R(ROp::Jmp { t })
        | FOp::R(ROp::Jz { t, .. })
        | FOp::R(ROp::Jnz { t, .. })
        | FOp::R(ROp::JcI { t, .. })
        | FOp::R(ROp::JcF { t, .. }) => Some(*t),
        _ => None,
    }
}

impl Flattener<'_> {
    /// Flatten `prog.code[s..e]` with register window `w`, expanding calls
    /// recursively. Returns the flat index of every original instruction.
    fn emit_range(
        &mut self,
        s: usize,
        e: usize,
        w: u16,
        ret: RetCtx,
        stack: &mut Vec<u16>,
    ) -> Option<Vec<u32>> {
        let mut map = vec![u32::MAX; e - s];
        let mut fixups: Vec<(usize, u32)> = Vec::new();
        let mut ret_jumps: Vec<usize> = Vec::new();
        for k in s..e {
            map[k - s] = u32::try_from(self.out.len()).ok()?;
            if self.out.len() > (1 << 22) {
                return None; // runaway inline expansion
            }
            match self.prog.code.get(k)?.clone() {
                ROp::Call { func, args_at } => {
                    if stack.contains(&func) || stack.len() >= 48 {
                        return None; // recursive or pathologically deep
                    }
                    let f: RFunc = self.prog.funcs.get(func as usize)?.clone();
                    if !f.compiled {
                        return None;
                    }
                    let win = self.total_regs;
                    if win + f.nregs as u32 > u16::MAX as u32 {
                        return None; // register file exhausted
                    }
                    self.total_regs += f.nregs as u32;
                    self.tail
                        .extend(std::iter::repeat_n(RVal::default(), f.const_base as usize));
                    for (ci, c) in f.consts.iter().enumerate() {
                        self.known_consts
                            .push((win + f.const_base as u32 + ci as u32, *c));
                    }
                    self.tail.extend_from_slice(&f.consts);
                    self.const_regions
                        .push((win + f.const_base as u32, win + f.nregs as u32));
                    // The caller's `args_at` slot doubles as the return
                    // destination — the same absolute register the register
                    // engine's frame machinery uses.
                    let dst = w.checked_add(args_at)?;
                    if f.nargs > 0 {
                        self.out.push(FOp::CopyArgs {
                            dst: win as u16,
                            src: dst,
                            n: f.nargs as u16,
                        });
                    }
                    if f.nlocals > f.nargs as u16 {
                        self.out.push(FOp::ZeroLocals {
                            at: (win + f.nargs as u32) as u16,
                            n: f.nlocals - f.nargs as u16,
                        });
                    }
                    let entry_jmp = if f.entry != f.start {
                        self.out.push(FOp::R(ROp::Jmp { t: 0 }));
                        Some(self.out.len() - 1)
                    } else {
                        None
                    };
                    stack.push(func);
                    let cmap = self.emit_range(
                        f.start as usize,
                        f.end as usize,
                        win as u16,
                        RetCtx::Inline { dst },
                        stack,
                    )?;
                    stack.pop();
                    if let Some(j) = entry_jmp {
                        let t = *cmap.get((f.entry - f.start) as usize)?;
                        set_target(&mut self.out[j], t);
                    }
                }
                ROp::Ret => match ret {
                    RetCtx::Main => self.out.push(FOp::Done),
                    RetCtx::Inline { .. } => {
                        self.out.push(FOp::R(ROp::Jmp { t: 0 }));
                        ret_jumps.push(self.out.len() - 1);
                    }
                },
                ROp::RetV { src } => match ret {
                    // A top-level `RetV` discards the value, like the
                    // register engine's frameless return.
                    RetCtx::Main => self.out.push(FOp::Done),
                    RetCtx::Inline { dst } => {
                        self.out.push(FOp::R(ROp::Mov { dst, src: src + w }));
                        self.out.push(FOp::R(ROp::Jmp { t: 0 }));
                        ret_jumps.push(self.out.len() - 1);
                    }
                },
                other => {
                    let (op, target) = remap(other, w);
                    if let Some(t) = target {
                        if (t as usize) < s || (t as usize) >= e {
                            return None; // cross-function jump: malformed
                        }
                        fixups.push((self.out.len(), t));
                    }
                    self.out.push(FOp::R(op));
                }
            }
        }
        for (at, t) in fixups {
            let nt = map[t as usize - s];
            if nt == u32::MAX {
                return None;
            }
            set_target(&mut self.out[at], nt);
        }
        let after = u32::try_from(self.out.len()).ok()?;
        for j in ret_jumps {
            set_target(&mut self.out[j], after);
        }
        Some(map)
    }
}

/// A register range as `(start, len)`.
type RegRange = (u16, u16);

/// Every register range an op reads and writes; used to bounds-check
/// operands (licensing the unchecked handler accesses) and to find
/// never-written registers.
fn op_regs(op: &FOp) -> (Vec<RegRange>, Vec<RegRange>) {
    use ROp::*;
    let one = |r: u16| (r, 1);
    match op {
        FOp::R(r) => match *r {
            Ops(_) | Barrier | Jmp { .. } => (vec![], vec![]),
            Mov { dst, src } => (vec![one(src)], vec![one(dst)]),
            Swap { a, b } => (vec![one(a), one(b)], vec![one(a), one(b)]),
            AddI { dst, a, b }
            | SubI { dst, a, b }
            | MulI { dst, a, b }
            | DivI { dst, a, b }
            | RemI { dst, a, b }
            | Shl { dst, a, b }
            | Shr { dst, a, b }
            | BAnd { dst, a, b }
            | BOr { dst, a, b }
            | BXor { dst, a, b }
            | AddF { dst, a, b }
            | SubF { dst, a, b }
            | MulF { dst, a, b }
            | DivF { dst, a, b }
            | AddF4 { dst, a, b }
            | SubF4 { dst, a, b }
            | MulF4 { dst, a, b }
            | DivF4 { dst, a, b }
            | Dot { dst, a, b } => (vec![one(a), one(b)], vec![one(dst)]),
            NegI { dst, src }
            | BNot { dst, src }
            | LNot { dst, src }
            | NegF { dst, src }
            | I2F { dst, src }
            | F2I { dst, src }
            | SplatF4 { dst, src }
            | AbsI { dst, src } => (vec![one(src)], vec![one(dst)]),
            MakeF4 { dst, src } => (
                vec![one(src[0]), one(src[1]), one(src[2]), one(src[3])],
                vec![one(dst)],
            ),
            GetComp { dst, src, .. } => (vec![one(src)], vec![one(dst)]),
            SetComp { dst, vec, scl, .. } => (vec![one(vec), one(scl)], vec![one(dst)]),
            CmpI { dst, a, b, .. } | CmpF { dst, a, b, .. } => {
                (vec![one(a), one(b)], vec![one(dst)])
            }
            Jz { c, .. } | Jnz { c, .. } => (vec![one(c)], vec![]),
            JcI { a, b, .. } | JcF { a, b, .. } => (vec![one(a), one(b)], vec![]),
            Load { dst, ptr, idx, .. } => (vec![one(ptr), one(idx)], vec![one(dst)]),
            Store { ptr, idx, val, .. } => (vec![one(ptr), one(idx), one(val)], vec![]),
            Id { dst, src, .. } | Math1 { dst, src, .. } => (vec![one(src)], vec![one(dst)]),
            Math2F { dst, a, b2, .. } | Math2I { dst, a, b2, .. } => {
                (vec![one(a), one(b2)], vec![one(dst)])
            }
            Clamp { dst, v, lo, hi } => (vec![one(v), one(lo), one(hi)], vec![one(dst)]),
            Mad { dst, a, b, c } | MadI { dst, a, b, c } => {
                (vec![one(a), one(b), one(c)], vec![one(dst)])
            }
            MadRF { dst, c, a, b } => (vec![one(c), one(a), one(b)], vec![one(dst)]),
            Call { .. } | Ret | RetV { .. } => (vec![], vec![]),
        },
        FOp::CopyArgs { dst, src, n } => (vec![(*src, *n)], vec![(*dst, *n)]),
        FOp::ZeroLocals { at, n } => (vec![], vec![(*at, *n)]),
        FOp::Done => (vec![], vec![]),
    }
}

// ---------------------------------------------------------------------------
// Lowering to native instructions
// ---------------------------------------------------------------------------

const fn ni(f: H) -> NInstr {
    NInstr {
        f,
        imm: 0,
        t: 0,
        a: 0,
        b: 0,
        c: 0,
        d: 0,
        e: 0,
        g: 0,
    }
}

/// Dedupe memory sites by pointer register; returns the site index.
fn site_for(ptr: u16, sites: &mut HashMap<u16, u32>, specs: &mut Vec<u16>) -> u32 {
    *sites.entry(ptr).or_insert_with(|| {
        specs.push(ptr);
        (specs.len() - 1) as u32
    })
}

struct Lower<'a> {
    written: &'a [bool],
    known: &'a [Option<RVal>],
    sites: HashMap<u16, u32>,
    specs: Vec<u16>,
}

impl Lower<'_> {
    fn stable(&self, ptr: u16) -> bool {
        !self.written[ptr as usize]
    }

    /// Lower one flat op to a single native instruction.
    fn one(&mut self, op: &FOp) -> Option<NInstr> {
        use ROp::*;
        Some(match op {
            FOp::Done => ni(h_done),
            FOp::CopyArgs { dst, src, n } => NInstr {
                a: *dst,
                b: *src,
                c: *n,
                ..ni(h_copyargs)
            },
            FOp::ZeroLocals { at, n } => NInstr {
                a: *at,
                b: *n,
                ..ni(h_zerolocals)
            },
            FOp::R(r) => match *r {
                Ops(n) => NInstr {
                    imm: n,
                    ..ni(h_ops)
                },
                Mov { dst, src } => NInstr {
                    a: dst,
                    b: src,
                    ..ni(h_mov)
                },
                Swap { a, b } => NInstr {
                    a,
                    b,
                    ..ni(h_swap)
                },
                AddI { dst, a, b } => bin3(h_addi, dst, a, b),
                SubI { dst, a, b } => bin3(h_subi, dst, a, b),
                MulI { dst, a, b } => bin3(h_muli, dst, a, b),
                DivI { dst, a, b } => bin3(h_divi, dst, a, b),
                RemI { dst, a, b } => bin3(h_remi, dst, a, b),
                Shl { dst, a, b } => bin3(h_shl, dst, a, b),
                Shr { dst, a, b } => bin3(h_shr, dst, a, b),
                BAnd { dst, a, b } => bin3(h_band, dst, a, b),
                BOr { dst, a, b } => bin3(h_bor, dst, a, b),
                BXor { dst, a, b } => bin3(h_bxor, dst, a, b),
                NegI { dst, src } => un2(h_negi, dst, src),
                BNot { dst, src } => un2(h_bnot, dst, src),
                LNot { dst, src } => un2(h_lnot, dst, src),
                AbsI { dst, src } => un2(h_absi, dst, src),
                AddF { dst, a, b } => bin3(h_addf, dst, a, b),
                SubF { dst, a, b } => bin3(h_subf, dst, a, b),
                MulF { dst, a, b } => bin3(h_mulf, dst, a, b),
                DivF { dst, a, b } => bin3(h_divf, dst, a, b),
                NegF { dst, src } => un2(h_negf, dst, src),
                I2F { dst, src } => un2(h_i2f, dst, src),
                F2I { dst, src } => un2(h_f2i, dst, src),
                AddF4 { dst, a, b } => bin3(h_addf4, dst, a, b),
                SubF4 { dst, a, b } => bin3(h_subf4, dst, a, b),
                MulF4 { dst, a, b } => bin3(h_mulf4, dst, a, b),
                DivF4 { dst, a, b } => bin3(h_divf4, dst, a, b),
                SplatF4 { dst, src } => un2(h_splatf4, dst, src),
                MakeF4 { dst, src } => NInstr {
                    a: dst,
                    b: src[0],
                    c: src[1],
                    d: src[2],
                    e: src[3],
                    ..ni(h_makef4)
                },
                GetComp { dst, src, c } => NInstr {
                    a: dst,
                    b: src,
                    g: c as u16,
                    ..ni(h_getcomp)
                },
                SetComp { dst, vec, scl, c } => NInstr {
                    a: dst,
                    b: vec,
                    c: scl,
                    g: c as u16,
                    ..ni(h_setcomp)
                },
                CmpI { cmp, dst, a, b } => bin3(cmpi_h(cmp), dst, a, b),
                CmpF { cmp, dst, a, b } => bin3(cmpf_h(cmp), dst, a, b),
                Jmp { t } => NInstr { t, ..ni(h_jmp) },
                Jz { c, t } => NInstr {
                    a: c,
                    t,
                    ..ni(h_jz)
                },
                Jnz { c, t } => NInstr {
                    a: c,
                    t,
                    ..ni(h_jnz)
                },
                // `when == true` after canonicalisation.
                JcI { cmp, a, b, t, .. } => NInstr {
                    a,
                    b,
                    t,
                    ..ni(jci_h(cmp))
                },
                JcF { cmp, a, b, t, when } => NInstr {
                    a,
                    b,
                    t,
                    ..ni(jcf_h(cmp, when))
                },
                Load { ty, dst, ptr, idx } => {
                    if self.stable(ptr) {
                        NInstr {
                            a: dst,
                            b: idx,
                            imm: site_for(ptr, &mut self.sites, &mut self.specs) as u64,
                            ..ni(ld_h(ty))
                        }
                    } else {
                        NInstr {
                            a: dst,
                            b: idx,
                            c: ptr,
                            g: ty_code(ty) as u16,
                            ..ni(h_ld_dyn)
                        }
                    }
                }
                Store { ty, ptr, idx, val } => {
                    if self.stable(ptr) {
                        NInstr {
                            b: idx,
                            c: val,
                            imm: site_for(ptr, &mut self.sites, &mut self.specs) as u64,
                            ..ni(st_h(ty))
                        }
                    } else {
                        NInstr {
                            b: idx,
                            c: val,
                            d: ptr,
                            g: ty_code(ty) as u16,
                            ..ni(h_st_dyn)
                        }
                    }
                }
                Id { b, dst, src } => {
                    let (fc, fd, default): (H, H, u64) = match b {
                        Builtin::GetGlobalId => (h_gid_c, h_gid_d, 0),
                        Builtin::GetLocalId => (h_lid_c, h_lid_d, 0),
                        Builtin::GetGroupId => (h_grp_c, h_grp_d, 0),
                        Builtin::GetGlobalSize => (h_gsz_c, h_gsz_d, 1),
                        Builtin::GetLocalSize => (h_lsz_c, h_lsz_d, 1),
                        Builtin::GetNumGroups => (h_ngr_c, h_ngr_d, 1),
                        // The register engine evaluates every other
                        // builtin in `Id` position to 0 for any dimension.
                        _ => {
                            return Some(NInstr {
                                a: dst,
                                imm: 0,
                                ..ni(h_const_i)
                            })
                        }
                    };
                    match self.known[src as usize] {
                        Some(v) => {
                            let d = v.i();
                            if (0..=2).contains(&d) {
                                NInstr {
                                    a: dst,
                                    imm: d as u64,
                                    ..ni(fc)
                                }
                            } else {
                                NInstr {
                                    a: dst,
                                    imm: default,
                                    ..ni(h_const_i)
                                }
                            }
                        }
                        None => NInstr {
                            a: dst,
                            b: src,
                            imm: default,
                            ..ni(fd)
                        },
                    }
                }
                Math1 { b, dst, src } => {
                    let f: H = match b {
                        Builtin::Sqrt => h_sqrt,
                        Builtin::Rsqrt => h_rsqrt,
                        Builtin::Fabs => h_fabs,
                        Builtin::Floor => h_floor,
                        Builtin::Ceil => h_ceil,
                        Builtin::Exp => h_exp,
                        Builtin::Log => h_log,
                        Builtin::Sin => h_sin,
                        Builtin::Cos => h_cos,
                        _ => h_m1_other,
                    };
                    un2(f, dst, src)
                }
                Math2F { b, dst, a, b2 } => {
                    let f: H = match b {
                        Builtin::Pow => h_pow,
                        Builtin::Fmin => h_fmin,
                        Builtin::Fmax => h_fmax,
                        _ => h_m2f_other,
                    };
                    bin3(f, dst, a, b2)
                }
                Math2I { b, dst, a, b2 } => {
                    bin3(if b == Builtin::MinI { h_mini } else { h_maxi }, dst, a, b2)
                }
                Clamp { dst, v, lo, hi } => NInstr {
                    a: dst,
                    b: v,
                    c: lo,
                    d: hi,
                    ..ni(h_clamp)
                },
                Mad { dst, a, b, c } => NInstr {
                    a: dst,
                    b: a,
                    c: b,
                    d: c,
                    ..ni(h_mad)
                },
                MadRF { dst, c, a, b } => NInstr {
                    a: dst,
                    b: c,
                    c: a,
                    d: b,
                    ..ni(h_madrf)
                },
                MadI { dst, a, b, c } => NInstr {
                    a: dst,
                    b: a,
                    c: b,
                    d: c,
                    ..ni(h_madi)
                },
                Dot { dst, a, b } => bin3(h_dot, dst, a, b),
                Barrier => ni(h_barrier),
                Call { .. } | Ret | RetV { .. } => return None,
            },
        })
    }

    /// Try to fuse two adjacent flat ops into one superinstruction.
    /// `x` executes first; the pair occupies a single compacted slot.
    /// Only attempted when `y`'s slot is not a jump target. Block-entry
    /// `Ops` charges are not fused here — the unit builder in
    /// [`compile_native`] folds them into any successor's charge field.
    fn fuse(&mut self, x: &FOp, y: &FOp) -> Option<NInstr> {
        use ROp::*;
        // Loop increment + compare-branch, or + load.
        if let FOp::R(AddI { dst, a, b }) = x {
            match y {
                FOp::R(JcI { cmp, a: a2, b: b2, t, .. }) => {
                    return Some(NInstr {
                        a: *dst,
                        b: *a,
                        c: *b,
                        d: *a2,
                        e: *b2,
                        t: *t,
                        ..ni(addi_jci_h(*cmp))
                    })
                }
                FOp::R(Load { ty, dst: d2, ptr, idx })
                    if matches!(ty, ElemTy::F32 | ElemTy::I32) && self.stable(*ptr) =>
                {
                    let site = site_for(*ptr, &mut self.sites, &mut self.specs);
                    let f: H = if *ty == ElemTy::F32 {
                        h_addi_ld_c::<2>
                    } else {
                        h_addi_ld_c::<0>
                    };
                    return Some(NInstr {
                        a: *dst,
                        b: *a,
                        c: *b,
                        d: *d2,
                        e: *idx,
                        imm: site as u64,
                        ..ni(f)
                    });
                }
                _ => {}
            }
        }
        // Loop decrement + compare-branch (count-down loop headers).
        if let (FOp::R(SubI { dst, a, b }), FOp::R(JcI { cmp, a: a2, b: b2, t, .. })) = (x, y) {
            return Some(NInstr {
                a: *dst,
                b: *a,
                c: *b,
                d: *a2,
                e: *b2,
                t: *t,
                ..ni(subi_jci_h(*cmp))
            });
        }
        // Address compute + fetch (row/column indexing).
        if let (FOp::R(MadI { dst, a, b, c }), FOp::R(Load { ty, dst: d2, ptr, idx })) = (x, y) {
            if matches!(ty, ElemTy::F32 | ElemTy::I32) && self.stable(*ptr) {
                let site = site_for(*ptr, &mut self.sites, &mut self.specs);
                let f: H = if *ty == ElemTy::F32 {
                    h_madi_ld_c::<2>
                } else {
                    h_madi_ld_c::<0>
                };
                return Some(NInstr {
                    a: *dst,
                    b: *a,
                    c: *b,
                    d: *c,
                    e: *d2,
                    g: *idx,
                    imm: site as u64,
                    ..ni(f)
                });
            }
        }
        // Store + index bump.
        if let (FOp::R(Store { ty, ptr, idx, val }), FOp::R(AddI { dst, a, b })) = (x, y) {
            if matches!(ty, ElemTy::F32 | ElemTy::I32) && self.stable(*ptr) {
                let site = site_for(*ptr, &mut self.sites, &mut self.specs);
                let f: H = if *ty == ElemTy::F32 {
                    h_st_addi_c::<2>
                } else {
                    h_st_addi_c::<0>
                };
                return Some(NInstr {
                    a: *dst,
                    b: *idx,
                    c: *val,
                    d: *a,
                    e: *b,
                    imm: site as u64,
                    ..ni(f)
                });
            }
        }
        // Register copy + integer add (loop-carried rotation).
        if let (FOp::R(Mov { dst, src }), FOp::R(AddI { dst: d2, a, b })) = (x, y) {
            return Some(NInstr {
                a: *dst,
                b: *src,
                c: *d2,
                d: *a,
                e: *b,
                ..ni(h_mov_addi)
            });
        }
        // Load + load / multiply-add / float binary.
        if let FOp::R(Load { ty, dst, ptr, idx }) = x {
            if matches!(ty, ElemTy::F32 | ElemTy::I32) && self.stable(*ptr) {
                match y {
                    FOp::R(Load { ty: t2, dst: d2, ptr: p2, idx: i2 })
                        if t2 == ty && self.stable(*p2) =>
                    {
                        let s1 = site_for(*ptr, &mut self.sites, &mut self.specs);
                        let s2 = site_for(*p2, &mut self.sites, &mut self.specs);
                        let f: H = if *ty == ElemTy::F32 {
                            h_ld_ld_c::<2>
                        } else {
                            h_ld_ld_c::<0>
                        };
                        return Some(NInstr {
                            imm: s1 as u64 | (s2 as u64) << 32,
                            a: *dst,
                            b: *idx,
                            c: *d2,
                            d: *i2,
                            ..ni(f)
                        });
                    }
                    FOp::R(MadRF { dst: d2, c, a, b }) if *ty == ElemTy::F32 => {
                        let site = site_for(*ptr, &mut self.sites, &mut self.specs);
                        return Some(NInstr {
                            imm: site as u64,
                            a: *dst,
                            b: *idx,
                            c: *d2,
                            d: *c,
                            e: *a,
                            g: *b,
                            ..ni(h_ld_madrf)
                        });
                    }
                    FOp::R(Mad { dst: d2, a, b, c }) if *ty == ElemTy::F32 => {
                        let site = site_for(*ptr, &mut self.sites, &mut self.specs);
                        return Some(NInstr {
                            imm: site as u64,
                            a: *dst,
                            b: *idx,
                            c: *d2,
                            d: *a,
                            e: *b,
                            g: *c,
                            ..ni(h_ld_mad)
                        });
                    }
                    _ => {
                        if *ty == ElemTy::F32 {
                            if let Some((o2, d2, a2, b2)) = fbin(y) {
                                let site = site_for(*ptr, &mut self.sites, &mut self.specs);
                                let f: H = match o2 {
                                    0 => h_ld_fbin_c::<0>,
                                    1 => h_ld_fbin_c::<1>,
                                    _ => h_ld_fbin_c::<2>,
                                };
                                return Some(NInstr {
                                    imm: site as u64,
                                    a: *dst,
                                    b: *idx,
                                    c: d2,
                                    d: a2,
                                    e: b2,
                                    ..ni(f)
                                });
                            }
                        }
                    }
                }
            }
        }
        // Float multiply feeding a multiply-add (polynomial / dot chains).
        if let FOp::R(MulF { dst, a, b }) = x {
            match y {
                FOp::R(Mad { dst: d2, a: a2, b: b2, c: c2 }) => {
                    return Some(NInstr {
                        a: *dst,
                        b: *a,
                        c: *b,
                        d: *d2,
                        e: *a2,
                        g: *b2,
                        imm: *c2 as u64,
                        ..ni(h_mulf_madf_c::<true>)
                    });
                }
                FOp::R(MadRF { dst: d2, c: c2, a: a2, b: b2 }) => {
                    return Some(NInstr {
                        a: *dst,
                        b: *a,
                        c: *b,
                        d: *d2,
                        e: *c2,
                        g: *a2,
                        imm: *b2 as u64,
                        ..ni(h_mulf_madf_c::<false>)
                    });
                }
                _ => {}
            }
        }
        // Multiply-add + loop increment.
        if let FOp::R(AddI { dst: d2, a: a2, b: b2 }) = y {
            match x {
                FOp::R(Mad { dst, a, b, c }) => {
                    return Some(NInstr {
                        a: *dst,
                        b: *a,
                        c: *b,
                        d: *c,
                        e: *d2,
                        g: *a2,
                        imm: *b2 as u64,
                        ..ni(h_madf_addi_c::<true>)
                    })
                }
                FOp::R(MadRF { dst, c, a, b }) => {
                    return Some(NInstr {
                        a: *dst,
                        b: *c,
                        c: *a,
                        d: *b,
                        e: *d2,
                        g: *a2,
                        imm: *b2 as u64,
                        ..ni(h_madf_addi_c::<false>)
                    })
                }
                FOp::R(MadI { dst, a, b, c }) => {
                    return Some(NInstr {
                        a: *dst,
                        b: *a,
                        c: *b,
                        d: *c,
                        e: *d2,
                        g: *a2,
                        imm: *b2 as u64,
                        ..ni(h_madi_addi)
                    })
                }
                _ => {}
            }
        }
        // Generic adjacent float / integer binary pairs.
        if let (Some((o1, d1, a1, b1)), Some((o2, d2, a2, b2))) = (fbin(x), fbin(y)) {
            const FF: [[H; 3]; 3] = [
                [h_ff_aa, h_ff_as, h_ff_am],
                [h_ff_sa, h_ff_ss, h_ff_sm],
                [h_ff_ma, h_ff_ms, h_ff_mm],
            ];
            return Some(NInstr {
                a: d1,
                b: a1,
                c: b1,
                d: d2,
                e: a2,
                g: b2,
                ..ni(FF[o1 as usize][o2 as usize])
            });
        }
        if let (Some((o1, d1, a1, b1)), Some((o2, d2, a2, b2))) = (ibin(x), ibin(y)) {
            const II: [[H; 3]; 3] = [
                [h_ii_aa, h_ii_as, h_ii_am],
                [h_ii_sa, h_ii_ss, h_ii_sm],
                [h_ii_ma, h_ii_ms, h_ii_mm],
            ];
            return Some(NInstr {
                a: d1,
                b: a1,
                c: b1,
                d: d2,
                e: a2,
                g: b2,
                ..ni(II[o1 as usize][o2 as usize])
            });
        }
        None
    }
}

const fn bin3(f: H, dst: u16, a: u16, b: u16) -> NInstr {
    NInstr {
        a: dst,
        b: a,
        c: b,
        ..ni(f)
    }
}

const fn un2(f: H, dst: u16, src: u16) -> NInstr {
    NInstr {
        a: dst,
        b: src,
        ..ni(f)
    }
}

/// Classify a float add/sub/mul (0/1/2) as `(op, dst, a, b)`.
fn fbin(op: &FOp) -> Option<(u8, u16, u16, u16)> {
    match op {
        FOp::R(ROp::AddF { dst, a, b }) => Some((0, *dst, *a, *b)),
        FOp::R(ROp::SubF { dst, a, b }) => Some((1, *dst, *a, *b)),
        FOp::R(ROp::MulF { dst, a, b }) => Some((2, *dst, *a, *b)),
        _ => None,
    }
}

/// Classify an integer add/sub/mul (0/1/2) as `(op, dst, a, b)`.
fn ibin(op: &FOp) -> Option<(u8, u16, u16, u16)> {
    match op {
        FOp::R(ROp::AddI { dst, a, b }) => Some((0, *dst, *a, *b)),
        FOp::R(ROp::SubI { dst, a, b }) => Some((1, *dst, *a, *b)),
        FOp::R(ROp::MulI { dst, a, b }) => Some((2, *dst, *a, *b)),
        _ => None,
    }
}

/// Lower a validated register program to the native engine.
///
/// Returns `None` — and the dispatcher falls back to the register engine —
/// for programs the inliner cannot flatten: recursive or uncompiled device
/// functions, pathological inline depth or code growth, or a register file
/// larger than the 16-bit operand encoding. Everything the register
/// compiler emits for real kernels lowers.
///
/// ```
/// use oclsim::minicl::{self, native, regir};
/// let unit = minicl::parse(
///     "__kernel void id(__global float* a) { a[get_global_id(0)] = 1.0f; }",
/// ).unwrap();
/// let compiled = minicl::compile(&unit).unwrap();
/// let info = compiled.kernels.get("id").unwrap();
/// let reg = regir::compile_kernel(&compiled, info).unwrap();
/// let native = native::compile_native(&reg, info).expect("lowerable");
/// assert!(native.len() > 0);
/// ```
pub fn compile_native(prog: &RegProgram, kernel: &KernelInfo) -> Option<NativeProgram> {
    // Defensive: the per-item reset span must cover every kernel local.
    if kernel.nlocals > prog.const_base {
        return None;
    }
    let mut fl = Flattener {
        prog,
        out: Vec::new(),
        total_regs: prog.nregs as u32,
        tail: Vec::new(),
        known_consts: prog
            .consts
            .iter()
            .enumerate()
            .map(|(k, c)| (prog.const_base as u32 + k as u32, *c))
            .collect(),
        const_regions: vec![(prog.const_base as u32, prog.nregs as u32)],
    };
    let mut stack = Vec::new();
    let map = fl.emit_range(0, prog.main_end as usize, 0, RetCtx::Main, &mut stack)?;
    let entry = *map.get(prog.entry as usize)?;
    let Flattener {
        mut out,
        total_regs,
        tail,
        known_consts,
        const_regions,
        ..
    } = fl;
    if out.is_empty() || out.len() >= IP_TRAP as usize {
        return None;
    }
    // The last instruction must never fall through (it is a `Done` or an
    // unconditional `Jmp` — `validate` proved every range ends in one).
    match out.last() {
        Some(FOp::Done) | Some(FOp::R(ROp::Jmp { .. })) => {}
        _ => return None,
    }

    // Canonicalise integer branch polarity: invert the comparison instead
    // of carrying `when` (exact for integers; floats keep both).
    for op in &mut out {
        if let FOp::R(ROp::JcI { cmp, when, .. }) = op {
            if !*when {
                *cmp = cmp_inv(*cmp);
                *when = true;
            }
        }
    }

    // Operand bounds check (licenses the unchecked handler accesses) and
    // never-written analysis (licenses site pre-resolution and the partial
    // per-item reset).
    let mut written = vec![false; total_regs as usize];
    for op in &out {
        let (reads, writes) = op_regs(op);
        for &(r, n) in reads.iter().chain(writes.iter()) {
            if r as u32 + n as u32 > total_regs {
                return None;
            }
        }
        for (r, n) in writes {
            written[r as usize..(r + n) as usize].fill(true);
        }
    }
    // A write into a constant region would break both the known-constant
    // specialisation and the no-reset-needed invariant; `validate` makes
    // this impossible, but the lowering re-checks rather than trusts.
    for &(lo, hi) in &const_regions {
        if written[lo as usize..hi as usize].iter().any(|&w| w) {
            return None;
        }
    }
    let mut known: Vec<Option<RVal>> = vec![None; total_regs as usize];
    for &(r, v) in &known_consts {
        known[r as usize] = Some(v);
    }

    // Jump targets, for the fusion barrier and the fetch-safety check.
    let mut is_target = vec![false; out.len()];
    for op in &out {
        if let Some(t) = target_of(op) {
            if t as usize >= out.len() {
                return None;
            }
            is_target[t as usize] = true;
        }
    }

    let mut lo = Lower {
        written: &written,
        known: &known,
        sites: HashMap::new(),
        specs: Vec::new(),
    };
    // The entry must start a unit: mark it like a jump target so the unit
    // builder below can never absorb it into a preceding charge or pair.
    is_target[entry as usize] = true;

    // Unit builder: tile the flat op stream with compacted units. Each
    // unit is one native instruction covering 1-3 flat ops: an optional
    // leading block-entry `Ops` charge (folded into the charge field, see
    // `chgt!`/`chgi!`), then either a fused pair or a single op. Every
    // unit falls through to `ip + 1`, so jump targets — which always land
    // on unit starts, enforced by the `is_target` barriers — are remapped
    // through `map` afterwards.
    let mut code: Vec<NInstr> = Vec::with_capacity(out.len());
    let mut spans: Vec<(usize, usize)> = Vec::with_capacity(out.len());
    let mut old_targets: Vec<Option<u32>> = Vec::with_capacity(out.len());
    let mut map = vec![u32::MAX; out.len()];
    let mut i = 0usize;
    while i < out.len() {
        let start = i;
        let mut charge: u64 = 0;
        if let FOp::R(ROp::Ops(n)) = &out[i] {
            // `t` is a u32, so only charges that fit are absorbed; larger
            // (never seen in practice) stay as standalone `h_ops` units.
            if *n <= u32::MAX as u64 && i + 1 < out.len() && !is_target[i + 1] {
                charge = *n;
                i += 1;
            }
        }
        let fused = if i + 1 < out.len() && !is_target[i + 1] {
            lo.fuse(&out[i], &out[i + 1])
        } else {
            None
        };
        let (mut instr, last) = match fused {
            Some(f) => (f, i + 1),
            None => (lo.one(&out[i])?, i),
        };
        // A fused pair falls through to the next unit, which must exist:
        // `fuse` never takes a terminator (`Done` / `Jmp`) as its second
        // op, and the final flat op is always a terminator.
        debug_assert!(fused.is_none() || last + 1 < out.len());
        let old_t = target_of(&out[last]);
        if charge > 0 {
            // Branch handlers read the folded charge from `imm` (their
            // `t` is the jump target); everything else reads it from `t`.
            if old_t.is_some() {
                instr.imm = charge;
            } else {
                instr.t = charge as u32;
            }
        }
        map[start] = code.len() as u32;
        code.push(instr);
        spans.push((start, last + 1 - start));
        old_targets.push(old_t);
        i = last + 1;
    }
    // Remap jump targets and the entry from flat-op indices to unit
    // indices. Every target is marked in `is_target`, so it starts a unit
    // and has a valid `map` entry.
    for (u, ot) in old_targets.iter().enumerate() {
        if let Some(t) = ot {
            code[u].t = map[*t as usize];
        }
    }
    let entry = map[entry as usize];
    if std::env::var("OCLSIM_NATIVE_DUMP").is_ok() {
        for (u, &(start, n)) in spans.iter().enumerate() {
            let ops: Vec<String> = out[start..start + n]
                .iter()
                .map(|o| format!("{o:?}"))
                .collect();
            eprintln!("{u:4}: {}", ops.join("  +  "));
        }
    }

    let mut template_static = prog.consts.clone();
    template_static.extend_from_slice(&tail);
    if prog.const_base as usize + template_static.len() != total_regs as usize {
        return None;
    }
    Some(NativeProgram {
        code,
        entry,
        total_regs,
        main_const_base: prog.const_base,
        template_static,
        site_specs: lo.specs,
    })
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Decode a pointer register's dispatch-time value into a [`Site`].
/// Unknown slots become `Bad*` sites that trap on first *execution* —
/// resolving eagerly here must not change when (or whether) a kernel
/// traps.
fn resolve_site(p: PtrV, nbufs: usize, read_only: &[bool], nregions: usize) -> Site {
    let slot = p.slot as u32;
    match p.space {
        Space::Private => Site {
            kind: SiteKind::Priv,
            slot: 0,
            base: p.base,
            ro: false,
        },
        Space::Global | Space::Constant => {
            if (slot as usize) < nbufs {
                Site {
                    kind: SiteKind::Global,
                    slot,
                    base: p.base,
                    ro: read_only[slot as usize] || p.space == Space::Constant,
                }
            } else {
                Site {
                    kind: SiteKind::BadGlobal,
                    slot,
                    base: p.base,
                    ro: false,
                }
            }
        }
        Space::Local => {
            if (slot as usize) < nregions {
                Site {
                    kind: SiteKind::Local,
                    slot,
                    base: p.base,
                    ro: false,
                }
            } else {
                Site {
                    kind: SiteKind::BadLocal,
                    slot,
                    base: p.base,
                    ro: false,
                }
            }
        }
    }
}

fn rval_of(v: Val) -> RVal {
    match v {
        Val::I(x) => RVal::from_i(x),
        Val::F(x) => RVal::from_f(x),
        Val::F4(x) => RVal::from_f4(x),
        Val::Ptr(p) => RVal::from_ptr(p),
    }
}

/// Per-dispatch context shared by every work item of the ND-range.
struct NCtx<'a> {
    bufs: &'a mut Vec<Vec<u8>>,
    read_only: &'a [bool],
    local_regions: Vec<Vec<u8>>,
    sites: Vec<Site>,
    group_id: [usize; 3],
    global_size: [usize; 3],
    local_size: [usize; 3],
    num_groups: [usize; 3],
}

fn item_gid(ctx: &NCtx<'_>, lid: [usize; 3]) -> [usize; 3] {
    [
        ctx.group_id[0] * ctx.local_size[0] + lid[0],
        ctx.group_id[1] * ctx.local_size[1] + lid[1],
        ctx.group_id[2] * ctx.local_size[2] + lid[2],
    ]
}

/// Barrier-free work-group: every item runs straight through one reused
/// register arena — per-item set-up is one copy of the locals/stack span
/// and a `fill(0)` of private memory.
fn run_group_fast(
    prog: &NativeProgram,
    template: &[RVal],
    ctx: &mut NCtx<'_>,
    regs: &mut [RVal],
    priv_mem: &mut [u8],
) -> Result<u64, Trap> {
    let reset = prog.main_const_base as usize;
    let mut group_ops = 0u64;
    let [lx, ly, lz] = ctx.local_size;
    for iz in 0..lz {
        for iy in 0..ly {
            for ix in 0..lx {
                let lid = [ix, iy, iz];
                let gid = item_gid(ctx, lid);
                regs[..reset].copy_from_slice(&template[..reset]);
                if !priv_mem.is_empty() {
                    priv_mem.fill(0);
                }
                let mut st = NState {
                    regs,
                    priv_mem,
                    bufs: ctx.bufs,
                    read_only: ctx.read_only,
                    local_regions: &mut ctx.local_regions,
                    sites: &ctx.sites,
                    gid,
                    lid,
                    group_id: ctx.group_id,
                    global_size: ctx.global_size,
                    local_size: ctx.local_size,
                    num_groups: ctx.num_groups,
                    ops: 0,
                    resume: 0,
                    trap: None,
                };
                match exec(&prog.code, prog.entry, &mut st) {
                    IP_DONE => group_ops += st.ops,
                    IP_TRAP => return Err(st.trap.take().expect("trap halt sets a trap")),
                    _ => {
                        return Err(Trap {
                            message: "barrier reached in kernel compiled without barriers"
                                .to_string(),
                            global_id: gid,
                        })
                    }
                }
            }
        }
    }
    Ok(group_ops)
}

/// One work item of a lockstep (barrier-carrying) group.
struct NItem {
    regs: Vec<RVal>,
    priv_mem: Vec<u8>,
    ip: u32,
    gid: [usize; 3],
    lid: [usize; 3],
    ops: u64,
    done: bool,
}

/// Work-group with barriers: the same lockstep sweep as the register
/// engine — run every live item to its next barrier (or completion),
/// trap on divergence, repeat.
fn run_group_lockstep(
    prog: &NativeProgram,
    kernel: &KernelInfo,
    template: &[RVal],
    ctx: &mut NCtx<'_>,
    items_per_group: usize,
    items: &mut Vec<NItem>,
) -> Result<u64, Trap> {
    let reset = prog.main_const_base as usize;
    let [lx, ly, lz] = ctx.local_size;
    while items.len() < items_per_group {
        items.push(NItem {
            regs: template.to_vec(),
            priv_mem: vec![0u8; kernel.priv_bytes],
            ip: 0,
            gid: [0; 3],
            lid: [0; 3],
            ops: 0,
            done: false,
        });
    }
    let items = &mut items[..items_per_group];
    let mut at = 0usize;
    for iz in 0..lz {
        for iy in 0..ly {
            for ix in 0..lx {
                let item = &mut items[at];
                at += 1;
                item.regs[..reset].copy_from_slice(&template[..reset]);
                if !item.priv_mem.is_empty() {
                    item.priv_mem.fill(0);
                }
                item.ip = prog.entry;
                item.lid = [ix, iy, iz];
                item.gid = item_gid(ctx, item.lid);
                item.ops = 0;
                item.done = false;
            }
        }
    }
    loop {
        let mut at_barrier = 0usize;
        let mut running = 0usize;
        for item in items.iter_mut() {
            if item.done {
                continue;
            }
            running += 1;
            let mut st = NState {
                regs: &mut item.regs,
                priv_mem: &mut item.priv_mem,
                bufs: ctx.bufs,
                read_only: ctx.read_only,
                local_regions: &mut ctx.local_regions,
                sites: &ctx.sites,
                gid: item.gid,
                lid: item.lid,
                group_id: ctx.group_id,
                global_size: ctx.global_size,
                local_size: ctx.local_size,
                num_groups: ctx.num_groups,
                ops: item.ops,
                resume: 0,
                trap: None,
            };
            let halt = exec(&prog.code, item.ip, &mut st);
            item.ops = st.ops;
            match halt {
                IP_DONE => item.done = true,
                IP_BARRIER => {
                    item.ip = st.resume;
                    at_barrier += 1;
                }
                _ => return Err(st.trap.take().expect("trap halt sets a trap")),
            }
        }
        if running == 0 {
            break;
        }
        if at_barrier == 0 {
            continue;
        }
        if at_barrier != running {
            let culprit = items
                .iter()
                .find(|i| !i.done)
                .map(|i| i.gid)
                .unwrap_or([0; 3]);
            return Err(Trap {
                message: format!(
                    "divergent barrier: {at_barrier} of {running} running items reached barrier"
                ),
                global_id: culprit,
            });
        }
    }
    Ok(items.iter().map(|i| i.ops).sum())
}

/// Execute a full ND-range on the native engine. Same contract, traps and
/// statistics as [`super::regir::run_ndrange`] and
/// [`super::interp::run_ndrange`]: byte-identical buffers, identical
/// `group_ops` (virtual clock) and identical trap messages/global-ids.
/// See [`NativeProgram`] for a lower-and-dispatch example.
pub fn run_ndrange(
    prog: &NativeProgram,
    kernel: &KernelInfo,
    args: &[RtArg],
    pool: &mut MemPool,
    global: [usize; 3],
    local: [usize; 3],
) -> Result<NdStats, Trap> {
    let num_groups = [
        global[0] / local[0].max(1),
        global[1] / local[1].max(1),
        global[2] / local[2].max(1),
    ];
    let window = [0..num_groups[0], 0..num_groups[1], 0..num_groups[2]];
    run_ndrange_window(prog, kernel, args, pool, global, local, window)
}

/// Execute a *window* of group indices of a larger ND-range — the native
/// engine's counterpart of [`super::interp::run_ndrange_window`]: ids and
/// query functions report the full range, only `window`'s groups run. Site
/// pre-resolution is unchanged (sites depend on the template, not on which
/// groups run).
pub fn run_ndrange_window(
    prog: &NativeProgram,
    kernel: &KernelInfo,
    args: &[RtArg],
    pool: &mut MemPool,
    global: [usize; 3],
    local: [usize; 3],
    window: [std::ops::Range<usize>; 3],
) -> Result<NdStats, Trap> {
    let num_groups = [
        global[0] / local[0].max(1),
        global[1] / local[1].max(1),
        global[2] / local[2].max(1),
    ];
    let region_bytes = local_region_sizes(kernel, args)?;
    // Dispatch template: bound locals, zeroed canonical stack slots, then
    // the static tail (main constant pool + every inline window).
    let mut template: Vec<RVal> = locals_template(kernel, args)
        .into_iter()
        .map(rval_of)
        .collect();
    template.resize(prog.main_const_base as usize, RVal::default());
    template.extend_from_slice(&prog.template_static);
    debug_assert_eq!(template.len(), prog.total_regs as usize);

    let bufs = &mut pool.bufs;
    let read_only = pool.read_only.as_slice();
    let local_regions: Vec<Vec<u8>> = region_bytes.iter().map(|&b| vec![0u8; b]).collect();
    // Pre-resolve every stable memory site from the same template bits the
    // register engine would decode at run time.
    let sites: Vec<Site> = prog
        .site_specs
        .iter()
        .map(|&r| {
            resolve_site(
                template[r as usize].ptr(),
                bufs.len(),
                read_only,
                local_regions.len(),
            )
        })
        .collect();
    let mut ctx = NCtx {
        bufs,
        read_only,
        local_regions,
        sites,
        group_id: [0; 3],
        global_size: global,
        local_size: local,
        num_groups,
    };

    let mut stats = NdStats::default();
    let items_per_group = local[0] * local[1] * local[2];
    // Work-item arenas, reused across every group of the dispatch.
    let mut regs: Vec<RVal> = template.clone();
    let mut priv_mem = vec![0u8; kernel.priv_bytes];
    let mut items: Vec<NItem> = Vec::new();
    let mut first_group = true;
    for gz in window[2].clone() {
        for gy in window[1].clone() {
            for gx in window[0].clone() {
                ctx.group_id = [gx, gy, gz];
                if !first_group && !ctx.local_regions.is_empty() {
                    for r in &mut ctx.local_regions {
                        r.fill(0);
                    }
                }
                first_group = false;
                let ops = if kernel.has_barrier {
                    run_group_lockstep(
                        prog,
                        kernel,
                        &template,
                        &mut ctx,
                        items_per_group,
                        &mut items,
                    )?
                } else {
                    run_group_fast(prog, &template, &mut ctx, &mut regs, &mut priv_mem)?
                };
                stats.group_ops.push(ops);
                stats.items += items_per_group as u64;
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minicl::codegen::compile;
    use crate::minicl::interp;
    use crate::minicl::parser::parse;
    use crate::minicl::regir;

    type EngineRun = Result<(NdStats, Vec<Vec<u8>>), Trap>;

    /// Run `kernel` from `src` on all three engines with identical pools
    /// and assert identical outcomes pairwise.
    fn triangle(
        src: &str,
        kernel: &str,
        args: &[RtArg],
        pool_init: (Vec<Vec<u8>>, Vec<bool>),
        global: [usize; 3],
        local: [usize; 3],
    ) {
        let ast = parse(src).expect("parse");
        let unit = compile(&ast).expect("compile");
        let info = unit.kernels.get(kernel).expect("kernel").clone();
        let reg = regir::compile_kernel(&unit, &info).expect("register compile");
        let nat = compile_native(&reg, &info).expect("native compile");

        let run = |engine: u8| -> EngineRun {
            let mut pool = MemPool {
                bufs: pool_init.0.clone(),
                read_only: pool_init.1.clone(),
            };
            match engine {
                0 => interp::run_ndrange(&unit, &info, args, &mut pool, global, local)
                    .map(|stats| (stats, pool.bufs)),
                1 => regir::run_ndrange(&reg, &info, args, &mut pool, global, local)
                    .map(|stats| (stats, pool.bufs)),
                _ => run_ndrange(&nat, &info, args, &mut pool, global, local)
                    .map(|stats| (stats, pool.bufs)),
            }
        };
        let stack = run(0);
        let register = run(1);
        let native = run(2);
        for (label, other) in [("register", &register), ("native", &native)] {
            match (&stack, other) {
                (Ok((s_stats, s_bufs)), Ok((o_stats, o_bufs))) => {
                    assert_eq!(s_bufs, o_bufs, "{label}: buffer contents differ");
                    assert_eq!(
                        s_stats.group_ops, o_stats.group_ops,
                        "{label}: group_ops differ"
                    );
                    assert_eq!(s_stats.items, o_stats.items, "{label}: item counts differ");
                }
                (Err(s), Err(o)) => {
                    assert_eq!(s.message, o.message, "{label}: trap messages differ");
                    assert_eq!(s.global_id, o.global_id, "{label}: trap global ids differ");
                }
                (s, o) => panic!("{label} disagrees on success: stack={s:?} other={o:?}"),
            }
        }
    }

    fn f32_buf(vals: &[f32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn square_kernel_triangle() {
        triangle(
            r#"
            __kernel void square(__global float* in, __global float* out, const int n) {
                int i = get_global_id(0);
                if (i < n) { out[i] = in[i] * in[i]; }
            }
            "#,
            "square",
            &[
                RtArg::Buf { pool_slot: 0 },
                RtArg::Buf { pool_slot: 1 },
                RtArg::Scalar(Val::I(4)),
            ],
            (
                vec![f32_buf(&[1.0, 2.0, 3.0, 4.0]), vec![0u8; 16]],
                vec![false, false],
            ),
            [4, 1, 1],
            [2, 1, 1],
        );
    }

    #[test]
    fn inner_product_loop_triangle() {
        triangle(
            r#"
            __kernel void dotk(__global float* a, __global float* b, __global float* out, const int n) {
                int i = get_global_id(0);
                float acc = 0.0f;
                for (int k = 0; k < n; k++) {
                    acc = acc + a[i * n + k] * b[k * n + i];
                }
                out[i] = acc;
            }
            "#,
            "dotk",
            &[
                RtArg::Buf { pool_slot: 0 },
                RtArg::Buf { pool_slot: 1 },
                RtArg::Buf { pool_slot: 2 },
                RtArg::Scalar(Val::I(4)),
            ],
            (
                vec![
                    f32_buf(&(0..16).map(|i| i as f32 * 0.25).collect::<Vec<_>>()),
                    f32_buf(&(0..16).map(|i| (16 - i) as f32 * 0.5).collect::<Vec<_>>()),
                    vec![0u8; 16],
                ],
                vec![false, false, false],
            ),
            [4, 1, 1],
            [2, 1, 1],
        );
    }

    #[test]
    fn barrier_reduction_triangle() {
        let data: Vec<f32> = (0..16).map(|i| (16 - i) as f32).collect();
        triangle(
            r#"
            __kernel void rmin(__global float* in, __global float* out, __local float* s) {
                int l = get_local_id(0);
                s[l] = in[get_global_id(0)];
                barrier(CLK_LOCAL_MEM_FENCE);
                for (int st = get_local_size(0) / 2; st > 0; st = st / 2) {
                    if (l < st) { s[l] = fmin(s[l], s[l + st]); }
                    barrier(CLK_LOCAL_MEM_FENCE);
                }
                if (l == 0) { out[get_group_id(0)] = s[0]; }
            }
            "#,
            "rmin",
            &[
                RtArg::Buf { pool_slot: 0 },
                RtArg::Buf { pool_slot: 1 },
                RtArg::Local { bytes: 32 },
            ],
            (vec![f32_buf(&data), vec![0u8; 8]], vec![false, false]),
            [16, 1, 1],
            [8, 1, 1],
        );
    }

    #[test]
    fn nested_device_functions_triangle() {
        triangle(
            r#"
            float g(float x) { return x * 2.0f; }
            float f(float x) { return g(x) + 1.0f; }
            __kernel void k(__global float* a) {
                int i = get_global_id(0);
                a[i] = f(a[i]) + g(3.0f);
            }
            "#,
            "k",
            &[RtArg::Buf { pool_slot: 0 }],
            (vec![f32_buf(&[3.0, 5.0, -1.0, 0.5])], vec![false]),
            [4, 1, 1],
            [2, 1, 1],
        );
    }

    #[test]
    fn call_in_loop_reinitialises_window_locals() {
        // The callee's window locals must behave as freshly zeroed on
        // every activation, not inherit the previous iteration's values.
        triangle(
            r#"
            float acc3(float x) {
                float t = 0.0f;
                for (int j = 0; j < 3; j++) { t = t + x; }
                return t;
            }
            __kernel void k(__global float* a) {
                int i = get_global_id(0);
                float s = 0.0f;
                for (int r = 0; r < 4; r++) { s = s + acc3(a[i] + (float)r); }
                a[i] = s;
            }
            "#,
            "k",
            &[RtArg::Buf { pool_slot: 0 }],
            (vec![f32_buf(&[1.0, -2.0, 0.25, 8.0])], vec![false]),
            [4, 1, 1],
            [2, 1, 1],
        );
    }

    #[test]
    fn float4_and_private_memory_triangle() {
        triangle(
            r#"
            __kernel void v(__global float4* a, __global float* out) {
                float4 x = a[0];
                float4 y = (float4)(2.0f);
                float tmp[4];
                int i = get_global_id(0);
                tmp[i % 4] = dot(x, y);
                out[i] = tmp[i % 4] + x.y;
                a[1] = x * y;
            }
            "#,
            "v",
            &[RtArg::Buf { pool_slot: 0 }, RtArg::Buf { pool_slot: 1 }],
            (
                vec![f32_buf(&[1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0]), vec![0u8; 16]],
                vec![false, false],
            ),
            [4, 1, 1],
            [2, 1, 1],
        );
    }

    #[test]
    fn oob_trap_triangle() {
        triangle(
            "__kernel void oob(__global float* a) { a[get_global_id(0) + 1000000] = 1.0f; }",
            "oob",
            &[RtArg::Buf { pool_slot: 0 }],
            (vec![vec![0u8; 64]], vec![false]),
            [4, 1, 1],
            [2, 1, 1],
        );
    }

    #[test]
    fn div_zero_trap_triangle() {
        triangle(
            "__kernel void divz(__global int* a) { int z = (int)(get_global_id(0) * 0); a[0] = 1 / z; }",
            "divz",
            &[RtArg::Buf { pool_slot: 0 }],
            (vec![vec![0u8; 64]], vec![false]),
            [4, 1, 1],
            [2, 1, 1],
        );
    }

    #[test]
    fn readonly_store_trap_triangle() {
        triangle(
            "__kernel void w(__global float* a) { a[get_global_id(0)] = 2.0f; }",
            "w",
            &[RtArg::Buf { pool_slot: 0 }],
            (vec![vec![0u8; 64]], vec![true]),
            [4, 1, 1],
            [2, 1, 1],
        );
    }

    #[test]
    fn divergent_barrier_trap_triangle() {
        triangle(
            r#"
            __kernel void diverge(__global float* a) {
                if (get_local_id(0) == 0) { barrier(CLK_LOCAL_MEM_FENCE); }
                a[get_global_id(0)] = 1.0f;
            }
            "#,
            "diverge",
            &[RtArg::Buf { pool_slot: 0 }],
            (vec![vec![0u8; 64]], vec![false]),
            [4, 1, 1],
            [2, 1, 1],
        );
    }
}

#[cfg(test)]
mod microbench {
    use super::*;
    use crate::minicl::codegen::compile;
    use crate::minicl::parser::parse;
    use crate::minicl::regir;

    #[test]
    #[ignore]
    fn kernel_micro() {
        let src = r#"
            __kernel void mm(__global float* a, __global float* b, __global float* c, const int n) {
                int i = get_global_id(1); int j = get_global_id(0);
                float acc = 0.0f;
                for (int k = 0; k < n; k++) { acc = acc + a[i*n+k]*b[k*n+j]; }
                c[i*n+j] = acc;
            }
        "#;
        let n = 128usize;
        let ast = parse(src).unwrap();
        let unit = compile(&ast).unwrap();
        let info = unit.kernels.get("mm").unwrap().clone();
        let reg = regir::compile_kernel(&unit, &info).unwrap();
        let nat = compile_native(&reg, &info).unwrap();
        let args = [
            RtArg::Buf { pool_slot: 0 },
            RtArg::Buf { pool_slot: 1 },
            RtArg::Buf { pool_slot: 2 },
            RtArg::Scalar(Val::I(n as i64)),
        ];
        let mk = || MemPool {
            bufs: vec![vec![1u8; n * n * 4], vec![2u8; n * n * 4], vec![0u8; n * n * 4]],
            read_only: vec![false, false, false],
        };
        let global = [n, n, 1];
        let local = [8, 8, 1];
        let mut best_r = u128::MAX;
        let mut best_n = u128::MAX;
        for _ in 0..5 {
            let mut pool = mk();
            let t = std::time::Instant::now();
            regir::run_ndrange(&reg, &info, &args, &mut pool, global, local).unwrap();
            best_r = best_r.min(t.elapsed().as_micros());
            let mut pool = mk();
            let t = std::time::Instant::now();
            run_ndrange(&nat, &info, &args, &mut pool, global, local).unwrap();
            best_n = best_n.min(t.elapsed().as_micros());
        }
        eprintln!("register {best_r}us native {best_n}us speedup {:.2}x", best_r as f64 / best_n as f64);
    }

    #[test]
    #[ignore]
    fn barrier_micro() {
        let src = r#"
            __kernel void red(__global float* in, __global float* out, __local float* s, const int n) {
                int gid = get_global_id(0);
                int l = get_local_id(0);
                if (gid < n) { s[l] = in[gid]; } else { s[l] = 3.0e38f; }
                barrier(CLK_LOCAL_MEM_FENCE);
                for (int st = get_local_size(0) / 2; st > 0; st = st / 2) {
                    if (l < st) { if (s[l + st] < s[l]) { s[l] = s[l + st]; } }
                    barrier(CLK_LOCAL_MEM_FENCE);
                }
                if (l == 0) { out[get_group_id(0)] = s[0]; }
            }
        "#;
        let n = 1usize << 20;
        let group = 256usize;
        let ast = parse(src).unwrap();
        let unit = compile(&ast).unwrap();
        let info = unit.kernels.get("red").unwrap().clone();
        let reg = regir::compile_kernel(&unit, &info).unwrap();
        let nat = compile_native(&reg, &info).unwrap();
        let args = [
            RtArg::Buf { pool_slot: 0 },
            RtArg::Buf { pool_slot: 1 },
            RtArg::Local { bytes: group * 4 },
            RtArg::Scalar(Val::I(n as i64)),
        ];
        let mk = || MemPool {
            bufs: vec![vec![1u8; n * 4], vec![0u8; (n / group) * 4]],
            read_only: vec![false, false],
        };
        let global = [n, 1, 1];
        let local = [group, 1, 1];
        let mut best_r = u128::MAX;
        let mut best_n = u128::MAX;
        for _ in 0..5 {
            let mut pool = mk();
            let t = std::time::Instant::now();
            regir::run_ndrange(&reg, &info, &args, &mut pool, global, local).unwrap();
            best_r = best_r.min(t.elapsed().as_micros());
            let mut pool = mk();
            let t = std::time::Instant::now();
            run_ndrange(&nat, &info, &args, &mut pool, global, local).unwrap();
            best_n = best_n.min(t.elapsed().as_micros());
        }
        eprintln!("register {best_r}us native {best_n}us speedup {:.2}x", best_r as f64 / best_n as f64);
    }
}
