//! Register-IR execution engine for compiled mini OpenCL-C kernels.
//!
//! [`compile_kernel`] lowers the stack bytecode of [`super::bytecode`] to a
//! typed-by-construction register IR. The lowering tracks a *symbolic*
//! operand stack per basic block: pushed constants and loads of locals are
//! not copied anywhere — they are remembered as "this stack slot is literal
//! `v`" / "this stack slot aliases local `r`" and folded straight into the
//! operand fields of the consuming instruction. Constants are deduplicated
//! into a per-function constant pool that occupies registers above the
//! operand-stack region, so a loop body re-reads them for free. Adjacent
//! multiply/add pairs fuse into `Mad`/`MadI` superinstructions, compare
//! results feeding a conditional branch fuse into compare-and-branch
//! instructions, and a store to a local patches the destination of the
//! producing instruction instead of emitting a move. Op-budget accounting
//! happens once per basic block instead of once per op.
//!
//! Frame layout (register indices within one frame):
//!
//! ```text
//! 0 .. nlocals            parameters + named locals (Ld/St slots)
//! nlocals .. const_base   canonical operand-stack slots (depth d -> nlocals+d)
//! const_base .. nregs     constant pool (written once per frame)
//! ```
//!
//! The emitted program is checked by `validate` — every register operand
//! in range, every jump target inside its function, every function ending
//! in an unconditional terminator, every call shape consistent — and only a
//! validated program is returned. That proof lets the inner interpreter
//! loop use unchecked register/code accesses (see the SAFETY notes in
//! `step_until_stop`).
//!
//! The lowering is *total* only for depth-consistent bytecode; anything else
//! (a hand-built unit with mismatched stack depths at a join, a device
//! function with both `ret;` and `return x;` paths) makes [`compile_kernel`]
//! return `None` and the dispatcher falls back to the reference stack
//! interpreter in [`super::interp`]. Both engines produce byte-identical
//! buffer contents, identical `group_ops` (block-entry charging sums the
//! same per-op costs the stack engine charges one at a time) and identical
//! trap messages/global-ids — the differential suite pins them together.

use super::ast::Space;
use super::bytecode::{Builtin, Cmp, CompiledUnit, ElemTy, FuncInfo, KernelInfo, Op};
use super::interp::{
    checked_offset, local_region_sizes, locals_template, oob, MemPool, NdStats, PtrV, RtArg, Trap,
    Val, MAX_ITEM_OPS,
};
use std::collections::{BTreeSet, HashMap};

/// Frame-relative register index.
type R = u16;

/// A raw 16-byte register. Untyped: the compiler proved the producing and
/// consuming ops agree on the interpretation, so the accessors just
/// reinterpret bits (no `unsafe` — everything goes through `to_bits`).
/// Shared with the native engine (`super::native`), which executes the
/// same register file layout.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(super) struct RVal(pub(super) [u64; 2]);

impl RVal {
    #[inline(always)]
    pub(super) fn from_i(v: i64) -> Self {
        RVal([v as u64, 0])
    }
    #[inline(always)]
    pub(super) fn i(self) -> i64 {
        self.0[0] as i64
    }
    #[inline(always)]
    pub(super) fn from_f(v: f64) -> Self {
        RVal([v.to_bits(), 0])
    }
    #[inline(always)]
    pub(super) fn f(self) -> f64 {
        f64::from_bits(self.0[0])
    }
    #[inline(always)]
    pub(super) fn from_f4(v: [f32; 4]) -> Self {
        RVal([
            (v[0].to_bits() as u64) | ((v[1].to_bits() as u64) << 32),
            (v[2].to_bits() as u64) | ((v[3].to_bits() as u64) << 32),
        ])
    }
    #[inline(always)]
    pub(super) fn f4(self) -> [f32; 4] {
        [
            f32::from_bits(self.0[0] as u32),
            f32::from_bits((self.0[0] >> 32) as u32),
            f32::from_bits(self.0[1] as u32),
            f32::from_bits((self.0[1] >> 32) as u32),
        ]
    }
    pub(super) fn from_ptr(p: PtrV) -> Self {
        let space = match p.space {
            Space::Global => 0u64,
            Space::Local => 1,
            Space::Constant => 2,
            Space::Private => 3,
        };
        RVal([space | ((p.slot as u64) << 8) | ((p.base as u64) << 32), 0])
    }
    #[inline(always)]
    pub(super) fn ptr(self) -> PtrV {
        let w = self.0[0];
        PtrV {
            space: match w & 0xff {
                0 => Space::Global,
                1 => Space::Local,
                2 => Space::Constant,
                _ => Space::Private,
            },
            slot: (w >> 8) as u16,
            base: (w >> 32) as u32,
        }
    }
    fn from_val(v: Val) -> Self {
        match v {
            Val::I(x) => RVal::from_i(x),
            Val::F(x) => RVal::from_f(x),
            Val::F4(x) => RVal::from_f4(x),
            Val::Ptr(p) => RVal::from_ptr(p),
        }
    }
}

/// One register-IR instruction. Register operands are frame-relative.
/// Shared with the native engine, which lowers this stream further.
#[derive(Debug, Clone, PartialEq)]
pub(super) enum ROp {
    /// Charge `n` abstract ops (the block's summed stack-op costs) and
    /// check the per-item budget. Emitted at every basic-block entry.
    Ops(u64),
    Mov { dst: R, src: R },
    Swap { a: R, b: R },
    AddI { dst: R, a: R, b: R },
    SubI { dst: R, a: R, b: R },
    MulI { dst: R, a: R, b: R },
    DivI { dst: R, a: R, b: R },
    RemI { dst: R, a: R, b: R },
    Shl { dst: R, a: R, b: R },
    Shr { dst: R, a: R, b: R },
    BAnd { dst: R, a: R, b: R },
    BOr { dst: R, a: R, b: R },
    BXor { dst: R, a: R, b: R },
    NegI { dst: R, src: R },
    BNot { dst: R, src: R },
    LNot { dst: R, src: R },
    AddF { dst: R, a: R, b: R },
    SubF { dst: R, a: R, b: R },
    MulF { dst: R, a: R, b: R },
    DivF { dst: R, a: R, b: R },
    NegF { dst: R, src: R },
    I2F { dst: R, src: R },
    F2I { dst: R, src: R },
    AddF4 { dst: R, a: R, b: R },
    SubF4 { dst: R, a: R, b: R },
    MulF4 { dst: R, a: R, b: R },
    DivF4 { dst: R, a: R, b: R },
    SplatF4 { dst: R, src: R },
    MakeF4 { dst: R, src: [R; 4] },
    GetComp { dst: R, src: R, c: u8 },
    SetComp { dst: R, vec: R, scl: R, c: u8 },
    CmpI { cmp: Cmp, dst: R, a: R, b: R },
    CmpF { cmp: Cmp, dst: R, a: R, b: R },
    Jmp { t: u32 },
    Jz { c: R, t: u32 },
    Jnz { c: R, t: u32 },
    /// Fused integer compare-and-branch: jump when `(a cmp b) == when`.
    JcI { cmp: Cmp, a: R, b: R, t: u32, when: bool },
    /// Fused float compare-and-branch: jump when `(a cmp b) == when`.
    JcF { cmp: Cmp, a: R, b: R, t: u32, when: bool },
    Load { ty: ElemTy, dst: R, ptr: R, idx: R },
    Store { ty: ElemTy, ptr: R, idx: R, val: R },
    Call { func: u16, args_at: R },
    Id { b: Builtin, dst: R, src: R },
    Math1 { b: Builtin, dst: R, src: R },
    Math2F { b: Builtin, dst: R, a: R, b2: R },
    Math2I { b: Builtin, dst: R, a: R, b2: R },
    AbsI { dst: R, src: R },
    Clamp { dst: R, v: R, lo: R, hi: R },
    /// `(a * b) + c` — fused multiply-on-the-left add; also `mad(a, b, c)`.
    Mad { dst: R, a: R, b: R, c: R },
    /// `c + (a * b)` — fused multiply-on-the-right add. A separate variant
    /// so the float operand order (and thus NaN payloads / rounding order)
    /// matches the stack engine exactly.
    MadRF { dst: R, c: R, a: R, b: R },
    /// Wrapping `a * b + c` (add commutes bit-exactly, one variant covers
    /// both operand orders).
    MadI { dst: R, a: R, b: R, c: R },
    Dot { dst: R, a: R, b: R },
    Barrier,
    Ret,
    RetV { src: R },
}

/// A lowered device function.
#[derive(Debug, Clone)]
pub(super) struct RFunc {
    pub(super) entry: u32,
    pub(super) nargs: u8,
    pub(super) nlocals: u16,
    /// First constant-pool register; operand stack spans `nlocals..const_base`.
    pub(super) const_base: u16,
    pub(super) nregs: u16,
    /// Constant pool, written into `const_base..nregs` on frame entry.
    pub(super) consts: Vec<RVal>,
    pub(super) compiled: bool,
    /// Code range `[start, end)` of this function inside [`RegProgram::code`]
    /// (zero for uncompiled functions). Retained for the native inliner.
    pub(super) start: u32,
    pub(super) end: u32,
}

/// A kernel lowered to register IR, ready to dispatch any number of times.
///
/// Produced by [`compile_kernel`], executed by [`run_ndrange`], and lowered
/// further by the native engine ([`super::native::compile_native`]). The
/// program is *validated*: every register operand is inside its frame,
/// every jump target inside its function, every function ends in an
/// unconditional terminator — which is what licenses the unchecked
/// interpreter loop (and the native lowering built on top of it).
///
/// ```
/// use oclsim::minicl::{self, regir};
/// use oclsim::minicl::interp::{MemPool, RtArg};
///
/// // Lower a tiny kernel end-to-end: source -> AST -> stack bytecode ->
/// // register IR, then dispatch it over a 4-item range.
/// let unit = minicl::parse("__kernel void dbl(__global float* a) {
///     int i = get_global_id(0);
///     a[i] = a[i] * 2.0f;
/// }").unwrap();
/// let compiled = minicl::compile(&unit).unwrap();
/// let info = compiled.kernels.get("dbl").unwrap().clone();
/// let prog = regir::compile_kernel(&compiled, &info).expect("lowerable");
/// assert!(!prog.is_empty());
///
/// let mut pool = MemPool {
///     bufs: vec![[1.0f32, 2.0, 3.0, 4.0].iter().flat_map(|v| v.to_le_bytes()).collect()],
///     read_only: vec![false],
/// };
/// let stats = regir::run_ndrange(
///     &prog, &info, &[RtArg::Buf { pool_slot: 0 }], &mut pool, [4, 1, 1], [2, 1, 1],
/// ).unwrap();
/// assert_eq!(stats.items, 4);
/// let out: Vec<f32> = pool.bufs[0].chunks(4)
///     .map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
/// assert_eq!(out, vec![2.0, 4.0, 6.0, 8.0]);
/// ```
#[derive(Debug, Clone)]
pub struct RegProgram {
    pub(super) code: Vec<ROp>,
    pub(super) entry: u32,
    pub(super) nregs: u16,
    /// First constant-pool register of the kernel frame.
    pub(super) const_base: u16,
    /// Kernel-frame constant pool (baked into the dispatch template).
    pub(super) consts: Vec<RVal>,
    pub(super) funcs: Vec<RFunc>,
    /// End of the kernel-main code range (`code[..main_end]` is the kernel
    /// body; device functions follow). Retained for the native inliner.
    pub(super) main_end: u32,
}

impl RegProgram {
    /// Number of register-IR instructions (compiler diagnostics / tests).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program is empty (never true for a compiled kernel).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Compilation: stack bytecode -> register IR
// ---------------------------------------------------------------------------

/// `(pops, pushes)` of one stack op. `None` marks an op whose effect can't
/// be determined (a call to a function with ambiguous return arity).
fn effect(op: &Op, rets: &[Option<bool>]) -> Option<(u16, u16)> {
    Some(match op {
        Op::PushI(_) | Op::PushF(_) | Op::PushPtr { .. } | Op::Ld(_) => (0, 1),
        Op::Pop | Op::St(_) | Op::Jz(_) | Op::Jnz(_) | Op::RetV => (1, 0),
        Op::Dup => (1, 2),
        Op::Dup2 => (2, 4),
        Op::Swap => (2, 2),
        Op::AddI
        | Op::SubI
        | Op::MulI
        | Op::DivI
        | Op::RemI
        | Op::AddF
        | Op::SubF
        | Op::MulF
        | Op::DivF
        | Op::AddF4
        | Op::SubF4
        | Op::MulF4
        | Op::DivF4
        | Op::SetComp(_)
        | Op::Shl
        | Op::Shr
        | Op::BAnd
        | Op::BOr
        | Op::BXor
        | Op::CmpI(_)
        | Op::CmpF(_)
        | Op::LdElem(_) => (2, 1),
        Op::NegI
        | Op::NegF
        | Op::BNot
        | Op::LNot
        | Op::I2F
        | Op::F2I
        | Op::SplatF4
        | Op::GetComp(_) => (1, 1),
        Op::MakeF4 => (4, 1),
        Op::StElem(_) => (3, 0),
        Op::Call { func, nargs } => {
            let returns = (*rets.get(*func as usize)?)?;
            (*nargs as u16, returns as u16)
        }
        Op::CallB(_, argc) => (*argc as u16, 1),
        Op::Jmp(_) | Op::Barrier | Op::Ret => (0, 0),
    })
}

/// Whether the function starting at `entry` returns a value: walks the
/// reachable control flow and checks which of `Ret`/`RetV` terminate it.
/// `None` if both are reachable (ambiguous — the codegen never emits this,
/// so it only appears in hand-built units and triggers stack fallback).
fn func_returns(code: &[Op], entry: u32) -> Option<bool> {
    let mut seen = vec![false; code.len()];
    let mut work = vec![entry as usize];
    let (mut has_ret, mut has_retv) = (false, false);
    while let Some(ip) = work.pop() {
        if ip >= code.len() || seen[ip] {
            continue;
        }
        seen[ip] = true;
        match &code[ip] {
            Op::Jmp(t) => work.push(*t as usize),
            Op::Jz(t) | Op::Jnz(t) => {
                work.push(*t as usize);
                work.push(ip + 1);
            }
            Op::Ret => has_ret = true,
            Op::RetV => has_retv = true,
            _ => work.push(ip + 1),
        }
    }
    match (has_ret, has_retv) {
        (true, true) => None,
        (_, retv) => Some(retv),
    }
}

/// Per-function lowering analysis: the abstract stack depth before every
/// reachable instruction, the basic-block leaders, and the canonical
/// operand-stack registers the frame needs (locals + max depth; constants
/// are allocated above this by the emitter).
struct FnAnalysis {
    depth: HashMap<u32, u16>,
    leaders: BTreeSet<u32>,
    nregs: u16,
    calls: Vec<u16>,
}

fn analyze(code: &[Op], rets: &[Option<bool>], entry: u32, nlocals: u16) -> Option<FnAnalysis> {
    let mut depth: HashMap<u32, u16> = HashMap::new();
    let mut leaders: BTreeSet<u32> = BTreeSet::new();
    let mut calls: Vec<u16> = Vec::new();
    let mut max_depth: u16 = 0;
    leaders.insert(entry);
    let mut work: Vec<(u32, u16)> = vec![(entry, 0)];
    while let Some((ip, d)) = work.pop() {
        match depth.get(&ip) {
            Some(&prev) if prev == d => continue,
            // A control-flow join where the two paths disagree on stack
            // depth: not lowerable to fixed registers. Stack fallback.
            Some(_) => return None,
            None => {}
        }
        let op = code.get(ip as usize)?;
        depth.insert(ip, d);
        let (pops, pushes) = effect(op, rets)?;
        if d < pops {
            return None;
        }
        let after = d - pops + pushes;
        max_depth = max_depth.max(after).max(d);
        match op {
            Op::Jmp(t) => {
                leaders.insert(*t);
                work.push((*t, after));
            }
            Op::Jz(t) | Op::Jnz(t) => {
                leaders.insert(*t);
                leaders.insert(ip + 1);
                work.push((*t, after));
                work.push((ip + 1, after));
            }
            Op::Ret | Op::RetV => {}
            Op::Call { func, .. } => {
                calls.push(*func);
                work.push((ip + 1, after));
            }
            _ => {
                work.push((ip + 1, after));
            }
        }
    }
    let nregs = (nlocals as u32).checked_add(max_depth as u32)?;
    if nregs > u16::MAX as u32 {
        return None;
    }
    Some(FnAnalysis {
        depth,
        leaders,
        nregs: nregs as u16,
        calls,
    })
}

/// How many arguments each builtin takes. Used to reject hand-built units
/// whose `CallB` argc disagrees (the symbolic lowering folds operands into
/// the instruction, so a mismatched arity can't be lowered faithfully).
fn builtin_arity(b: Builtin) -> u8 {
    use Builtin::*;
    match b {
        GetGlobalId | GetLocalId | GetGroupId | GetGlobalSize | GetLocalSize | GetNumGroups
        | Sqrt | Rsqrt | Fabs | Floor | Ceil | Exp | Log | Sin | Cos | AbsI => 1,
        Pow | Fmin | Fmax | MinI | MaxI | Dot => 2,
        Clamp | Mad => 3,
    }
}

/// The register an instruction writes, when that write is its only effect
/// on machine state (no control flow, no memory store, no frame change —
/// traps and op accounting aside). Used to forward a result straight into
/// a local variable: patching `dst` is sound because source operands are
/// always read before `dst` is written.
fn pure_dst(op: &mut ROp) -> Option<&mut R> {
    match op {
        ROp::Mov { dst, .. }
        | ROp::AddI { dst, .. }
        | ROp::SubI { dst, .. }
        | ROp::MulI { dst, .. }
        | ROp::DivI { dst, .. }
        | ROp::RemI { dst, .. }
        | ROp::Shl { dst, .. }
        | ROp::Shr { dst, .. }
        | ROp::BAnd { dst, .. }
        | ROp::BOr { dst, .. }
        | ROp::BXor { dst, .. }
        | ROp::NegI { dst, .. }
        | ROp::BNot { dst, .. }
        | ROp::LNot { dst, .. }
        | ROp::AddF { dst, .. }
        | ROp::SubF { dst, .. }
        | ROp::MulF { dst, .. }
        | ROp::DivF { dst, .. }
        | ROp::NegF { dst, .. }
        | ROp::I2F { dst, .. }
        | ROp::F2I { dst, .. }
        | ROp::AddF4 { dst, .. }
        | ROp::SubF4 { dst, .. }
        | ROp::MulF4 { dst, .. }
        | ROp::DivF4 { dst, .. }
        | ROp::SplatF4 { dst, .. }
        | ROp::MakeF4 { dst, .. }
        | ROp::GetComp { dst, .. }
        | ROp::SetComp { dst, .. }
        | ROp::CmpI { dst, .. }
        | ROp::CmpF { dst, .. }
        | ROp::Load { dst, .. }
        | ROp::Id { dst, .. }
        | ROp::Math1 { dst, .. }
        | ROp::Math2F { dst, .. }
        | ROp::Math2I { dst, .. }
        | ROp::AbsI { dst, .. }
        | ROp::Clamp { dst, .. }
        | ROp::Mad { dst, .. }
        | ROp::MadRF { dst, .. }
        | ROp::MadI { dst, .. }
        | ROp::Dot { dst, .. } => Some(dst),
        _ => None,
    }
}

/// A symbolic operand-stack entry tracked during lowering.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ent {
    /// The value lives in its canonical stack register `s(depth)`.
    Canon,
    /// The value aliases local register `r` (always `r < nlocals` — a lazy
    /// entry never aliases a canonical stack register, which is what makes
    /// materialisation a plain loop with no move cycles).
    Loc(R),
    /// The value is a literal not yet in any register; consumers read it
    /// from a deduplicated constant-pool register.
    Imm(RVal),
}

/// Per-function emitter: the output stream, the constant pool, and the
/// current block's symbolic stack.
struct Emitter<'a> {
    out: &'a mut Vec<ROp>,
    nlocals: u16,
    /// First constant-pool register (the analysis' canonical `nregs`).
    cbase: u16,
    consts: Vec<RVal>,
    cmap: HashMap<[u64; 2], R>,
    /// Symbolic entries above `lb`; entry `i` sits at abstract depth `lb + i`.
    lazy: Vec<Ent>,
    /// Depth below which every stack slot is canonical.
    lb: u16,
    /// Output index of the current block's first instruction (after the
    /// `Ops` header): fusion and dst-patching never look past it.
    fuse_from: usize,
}

impl Emitter<'_> {
    /// Canonical register of abstract stack depth `x`.
    #[inline]
    fn s(&self, x: u16) -> R {
        self.nlocals + x
    }

    #[inline]
    fn depth(&self) -> u16 {
        self.lb + self.lazy.len() as u16
    }

    fn push(&mut self, e: Ent) {
        self.lazy.push(e);
    }

    /// Pop one symbolic entry; returns it with its abstract depth.
    fn pop(&mut self) -> Option<(Ent, u16)> {
        match self.lazy.pop() {
            Some(e) => Some((e, self.lb + self.lazy.len() as u16)),
            None => {
                self.lb = self.lb.checked_sub(1)?;
                Some((Ent::Canon, self.lb))
            }
        }
    }

    /// Register holding a deduplicated constant (allocating if new).
    fn const_reg(&mut self, v: RVal) -> Option<R> {
        if let Some(&r) = self.cmap.get(&v.0) {
            return Some(r);
        }
        let r = u16::try_from(self.cbase as u32 + self.consts.len() as u32).ok()?;
        self.consts.push(v);
        self.cmap.insert(v.0, r);
        Some(r)
    }

    /// The register an entry's value can be read from right now.
    fn reg_of(&mut self, e: Ent, depth: u16) -> Option<R> {
        match e {
            Ent::Canon => Some(self.s(depth)),
            Ent::Loc(r) => Some(r),
            Ent::Imm(v) => self.const_reg(v),
        }
    }

    /// Force lazy entry `i` into its canonical register.
    fn mat_entry(&mut self, i: usize) -> Option<()> {
        let e = self.lazy[i];
        let dst = self.s(self.lb + i as u16);
        match e {
            Ent::Canon => {}
            Ent::Loc(src) => {
                self.out.push(ROp::Mov { dst, src });
                self.lazy[i] = Ent::Canon;
            }
            Ent::Imm(v) => {
                let src = self.const_reg(v)?;
                self.out.push(ROp::Mov { dst, src });
                self.lazy[i] = Ent::Canon;
            }
        }
        Some(())
    }

    /// Force the whole stack canonical (required before any branch, since
    /// every predecessor of a block must leave the same register state).
    fn mat_all(&mut self) -> Option<()> {
        for i in 0..self.lazy.len() {
            self.mat_entry(i)?;
        }
        self.lb += self.lazy.len() as u16;
        self.lazy.clear();
        Some(())
    }

    /// Force the top `n` entries canonical (call arguments form a
    /// contiguous register window).
    fn mat_top(&mut self, n: u16) -> Option<()> {
        let from = self.lazy.len().saturating_sub(n as usize);
        for i in from..self.lazy.len() {
            self.mat_entry(i)?;
        }
        Some(())
    }

    /// The last emitted instruction, if it belongs to the current block and
    /// is a `MulF`/`MulI`: `(is_float, dst, a, b)`.
    fn last_mul(&self) -> Option<(bool, R, R, R)> {
        if self.out.len() <= self.fuse_from {
            return None;
        }
        match self.out.last() {
            Some(&ROp::MulF { dst, a, b }) => Some((true, dst, a, b)),
            Some(&ROp::MulI { dst, a, b }) => Some((false, dst, a, b)),
            _ => None,
        }
    }

    /// Try to retarget the last instruction's pure destination from `from`
    /// to `to`. Sound because sources are read before the destination is
    /// written, and `from` (a dead canonical slot above the stack top) is
    /// never read afterwards.
    fn try_patch_dst(&mut self, from: R, to: R) -> bool {
        if self.out.len() <= self.fuse_from {
            return false;
        }
        if let Some(op) = self.out.last_mut() {
            if let Some(d) = pure_dst(op) {
                if *d == from {
                    *d = to;
                    return true;
                }
            }
        }
        false
    }

    /// `St(slot)`: store the popped value into local `slot`.
    fn st_local(&mut self, slot: R) -> Option<()> {
        let (e, d) = self.pop()?;
        // Remaining lazy aliases of this local must capture its old value
        // before the overwrite.
        for i in 0..self.lazy.len() {
            if self.lazy[i] == Ent::Loc(slot) {
                self.mat_entry(i)?;
            }
        }
        match e {
            Ent::Loc(r) if r == slot => {}
            Ent::Loc(src) => self.out.push(ROp::Mov { dst: slot, src }),
            Ent::Imm(v) => {
                let src = self.const_reg(v)?;
                self.out.push(ROp::Mov { dst: slot, src });
            }
            Ent::Canon => {
                let sd = self.s(d);
                if !self.try_patch_dst(sd, slot) {
                    self.out.push(ROp::Mov { dst: slot, src: sd });
                }
            }
        }
        Some(())
    }

    fn dup(&mut self) -> Option<()> {
        let (e, d) = self.pop()?;
        match e {
            Ent::Canon => {
                self.push(Ent::Canon);
                self.out.push(ROp::Mov {
                    dst: self.s(d + 1),
                    src: self.s(d),
                });
                self.push(Ent::Canon);
            }
            other => {
                self.push(other);
                self.push(other);
            }
        }
        Some(())
    }

    fn dup2(&mut self) -> Option<()> {
        let (eb, db) = self.pop()?;
        let (ea, da) = self.pop()?;
        self.push(ea);
        self.push(eb);
        for (e, from) in [(ea, da), (eb, db)] {
            match e {
                Ent::Canon => {
                    let dst = self.s(self.depth());
                    self.out.push(ROp::Mov { dst, src: self.s(from) });
                    self.push(Ent::Canon);
                }
                other => self.push(other),
            }
        }
        Some(())
    }

    fn swap(&mut self) -> Option<()> {
        let (eb, db) = self.pop()?;
        let (ea, da) = self.pop()?;
        match (ea, eb) {
            (Ent::Canon, Ent::Canon) => {
                self.out.push(ROp::Swap {
                    a: self.s(da),
                    b: self.s(db),
                });
                self.push(Ent::Canon);
                self.push(Ent::Canon);
            }
            (Ent::Canon, eb) => {
                // `a` moves up into the old top slot; `b` stays lazy below.
                self.out.push(ROp::Mov {
                    dst: self.s(db),
                    src: self.s(da),
                });
                self.push(eb);
                self.push(Ent::Canon);
            }
            (ea, Ent::Canon) => {
                // `b` moves down into the old second slot; `a` stays lazy.
                self.out.push(ROp::Mov {
                    dst: self.s(da),
                    src: self.s(db),
                });
                self.push(Ent::Canon);
                self.push(ea);
            }
            (ea, eb) => {
                self.push(eb);
                self.push(ea);
            }
        }
        Some(())
    }

    /// Float add with multiply fusion (both operand orders, kept distinct
    /// so the evaluation matches the stack engine bit-for-bit).
    fn add_f(&mut self) -> Option<()> {
        let (eb, db) = self.pop()?;
        let (ea, da) = self.pop()?;
        let dst = self.s(da);
        if ea == Ent::Canon {
            if let Some((true, md, ma, mb)) = self.last_mul() {
                if md == self.s(da) {
                    let c = self.reg_of(eb, db)?;
                    *self.out.last_mut()? = ROp::Mad { dst, a: ma, b: mb, c };
                    self.push(Ent::Canon);
                    return Some(());
                }
            }
        }
        if eb == Ent::Canon {
            if let Some((true, md, ma, mb)) = self.last_mul() {
                if md == self.s(db) {
                    let c = self.reg_of(ea, da)?;
                    *self.out.last_mut()? = ROp::MadRF { dst, c, a: ma, b: mb };
                    self.push(Ent::Canon);
                    return Some(());
                }
            }
        }
        let b = self.reg_of(eb, db)?;
        let a = self.reg_of(ea, da)?;
        self.out.push(ROp::AddF { dst, a, b });
        self.push(Ent::Canon);
        Some(())
    }

    /// Integer add with multiply fusion (wrapping add commutes, so one
    /// `MadI` covers both operand orders).
    fn add_i(&mut self) -> Option<()> {
        let (eb, db) = self.pop()?;
        let (ea, da) = self.pop()?;
        let dst = self.s(da);
        for (e, dep, other, odep) in [(ea, da, eb, db), (eb, db, ea, da)] {
            if e == Ent::Canon {
                if let Some((false, md, ma, mb)) = self.last_mul() {
                    if md == self.s(dep) {
                        let c = self.reg_of(other, odep)?;
                        *self.out.last_mut()? = ROp::MadI { dst, a: ma, b: mb, c };
                        self.push(Ent::Canon);
                        return Some(());
                    }
                }
            }
        }
        let b = self.reg_of(eb, db)?;
        let a = self.reg_of(ea, da)?;
        self.out.push(ROp::AddI { dst, a, b });
        self.push(Ent::Canon);
        Some(())
    }
}

/// Lower one builtin call whose operands are already in registers.
fn lower_builtin(b: Builtin, dst: R, a: &[R; 3]) -> ROp {
    use Builtin::*;
    match b {
        GetGlobalId | GetLocalId | GetGroupId | GetGlobalSize | GetLocalSize | GetNumGroups => {
            ROp::Id { b, dst, src: a[0] }
        }
        Sqrt | Rsqrt | Fabs | Floor | Ceil | Exp | Log | Sin | Cos => ROp::Math1 { b, dst, src: a[0] },
        Pow | Fmin | Fmax => ROp::Math2F {
            b,
            dst,
            a: a[0],
            b2: a[1],
        },
        MinI | MaxI => ROp::Math2I {
            b,
            dst,
            a: a[0],
            b2: a[1],
        },
        AbsI => ROp::AbsI { dst, src: a[0] },
        Clamp => ROp::Clamp {
            dst,
            v: a[0],
            lo: a[1],
            hi: a[2],
        },
        Mad => ROp::Mad {
            dst,
            a: a[0],
            b: a[1],
            c: a[2],
        },
        Dot => ROp::Dot {
            dst,
            a: a[0],
            b: a[1],
        },
    }
}

/// Lower one function's blocks into `out` via the symbolic-stack emitter.
/// Jump targets are emitted as *stack* instruction indices and rewritten by
/// the caller once every block's register index is known (`labels`);
/// `jumps` records which emitted instructions need patching. Returns the
/// function's constant pool (its registers start at `an.nregs`).
fn emit_fn(
    code: &[Op],
    an: &FnAnalysis,
    rets: &[Option<bool>],
    nlocals: u16,
    out: &mut Vec<ROp>,
    labels: &mut HashMap<u32, u32>,
    jumps: &mut Vec<usize>,
) -> Option<Vec<RVal>> {
    let mut em = Emitter {
        out,
        nlocals,
        cbase: an.nregs,
        consts: Vec::new(),
        cmap: HashMap::new(),
        lazy: Vec::new(),
        lb: 0,
        fuse_from: 0,
    };
    for &leader in &an.leaders {
        if !an.depth.contains_key(&leader) {
            continue; // unreachable target of an unreachable jump
        }
        labels.insert(leader, em.out.len() as u32);
        // Pass 1: the block's total abstract cost, charged at entry.
        let mut ops = 0u64;
        let mut cip = leader as usize;
        loop {
            let op = &code[cip];
            ops += op.cost();
            if matches!(op, Op::Jmp(_) | Op::Jz(_) | Op::Jnz(_) | Op::Ret | Op::RetV) {
                break;
            }
            cip += 1;
            if an.leaders.contains(&(cip as u32)) {
                break;
            }
        }
        em.out.push(ROp::Ops(ops));
        // Pass 2: lower each op against the symbolic stack.
        em.lazy.clear();
        em.lb = *an.depth.get(&leader)?;
        em.fuse_from = em.out.len();
        let mut ip = leader as usize;
        loop {
            let op = &code[ip];
            let mut terminated = false;
            match op {
                Op::PushI(v) => em.push(Ent::Imm(RVal::from_i(*v))),
                Op::PushF(v) => em.push(Ent::Imm(RVal::from_f(*v))),
                Op::PushPtr { space, slot, base } => em.push(Ent::Imm(RVal::from_ptr(PtrV {
                    space: *space,
                    slot: *slot,
                    base: *base,
                }))),
                Op::Pop => {
                    em.pop()?;
                }
                Op::Dup => em.dup()?,
                Op::Dup2 => em.dup2()?,
                Op::Swap => em.swap()?,
                Op::Ld(slot) => {
                    if *slot >= nlocals {
                        return None; // malformed hand-built unit
                    }
                    em.push(Ent::Loc(*slot));
                }
                Op::St(slot) => {
                    if *slot >= nlocals {
                        return None;
                    }
                    em.st_local(*slot)?;
                }
                Op::AddI => em.add_i()?,
                Op::AddF => em.add_f()?,
                Op::SubI | Op::MulI | Op::DivI | Op::RemI | Op::Shl | Op::Shr | Op::BAnd
                | Op::BOr | Op::BXor | Op::SubF | Op::MulF | Op::DivF | Op::AddF4 | Op::SubF4
                | Op::MulF4 | Op::DivF4 => {
                    let (eb, db) = em.pop()?;
                    let (ea, da) = em.pop()?;
                    let b = em.reg_of(eb, db)?;
                    let a = em.reg_of(ea, da)?;
                    let dst = em.s(da);
                    em.out.push(match op {
                        Op::SubI => ROp::SubI { dst, a, b },
                        Op::MulI => ROp::MulI { dst, a, b },
                        Op::DivI => ROp::DivI { dst, a, b },
                        Op::RemI => ROp::RemI { dst, a, b },
                        Op::Shl => ROp::Shl { dst, a, b },
                        Op::Shr => ROp::Shr { dst, a, b },
                        Op::BAnd => ROp::BAnd { dst, a, b },
                        Op::BOr => ROp::BOr { dst, a, b },
                        Op::BXor => ROp::BXor { dst, a, b },
                        Op::SubF => ROp::SubF { dst, a, b },
                        Op::MulF => ROp::MulF { dst, a, b },
                        Op::DivF => ROp::DivF { dst, a, b },
                        Op::AddF4 => ROp::AddF4 { dst, a, b },
                        Op::SubF4 => ROp::SubF4 { dst, a, b },
                        Op::MulF4 => ROp::MulF4 { dst, a, b },
                        _ => ROp::DivF4 { dst, a, b },
                    });
                    em.push(Ent::Canon);
                }
                Op::NegI | Op::NegF | Op::BNot | Op::LNot | Op::I2F | Op::F2I | Op::SplatF4 => {
                    let (e, d) = em.pop()?;
                    let src = em.reg_of(e, d)?;
                    let dst = em.s(d);
                    em.out.push(match op {
                        Op::NegI => ROp::NegI { dst, src },
                        Op::NegF => ROp::NegF { dst, src },
                        Op::BNot => ROp::BNot { dst, src },
                        Op::LNot => ROp::LNot { dst, src },
                        Op::I2F => ROp::I2F { dst, src },
                        Op::F2I => ROp::F2I { dst, src },
                        _ => ROp::SplatF4 { dst, src },
                    });
                    em.push(Ent::Canon);
                }
                Op::MakeF4 => {
                    let mut src = [0 as R; 4];
                    let mut dd = 0u16;
                    for k in (0..4).rev() {
                        let (e, dep) = em.pop()?;
                        src[k] = em.reg_of(e, dep)?;
                        dd = dep;
                    }
                    em.out.push(ROp::MakeF4 { dst: em.s(dd), src });
                    em.push(Ent::Canon);
                }
                Op::GetComp(c) => {
                    let (e, d) = em.pop()?;
                    let src = em.reg_of(e, d)?;
                    em.out.push(ROp::GetComp {
                        dst: em.s(d),
                        src,
                        c: *c,
                    });
                    em.push(Ent::Canon);
                }
                Op::SetComp(c) => {
                    let (es, ds) = em.pop()?;
                    let (ev, dv) = em.pop()?;
                    let scl = em.reg_of(es, ds)?;
                    let vec = em.reg_of(ev, dv)?;
                    em.out.push(ROp::SetComp {
                        dst: em.s(dv),
                        vec,
                        scl,
                        c: *c,
                    });
                    em.push(Ent::Canon);
                }
                Op::CmpI(cmp) | Op::CmpF(cmp) => {
                    let float = matches!(op, Op::CmpF(_));
                    // Fuse with an immediately following conditional branch
                    // when no jump lands in between (the compare result is
                    // always only consumed by that branch).
                    let next = ip + 1;
                    let fused = if !an.leaders.contains(&(next as u32)) {
                        match code.get(next) {
                            Some(Op::Jz(t)) => Some((*t, false)),
                            Some(Op::Jnz(t)) => Some((*t, true)),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    let (eb, db) = em.pop()?;
                    let (ea, da) = em.pop()?;
                    let b = em.reg_of(eb, db)?;
                    let a = em.reg_of(ea, da)?;
                    if let Some((t, when)) = fused {
                        em.mat_all()?;
                        jumps.push(em.out.len());
                        em.out.push(if float {
                            ROp::JcF { cmp: *cmp, a, b, t, when }
                        } else {
                            ROp::JcI { cmp: *cmp, a, b, t, when }
                        });
                        terminated = true;
                        ip = next; // consumed the branch too
                    } else {
                        let dst = em.s(da);
                        em.out.push(if float {
                            ROp::CmpF { cmp: *cmp, dst, a, b }
                        } else {
                            ROp::CmpI { cmp: *cmp, dst, a, b }
                        });
                        em.push(Ent::Canon);
                    }
                }
                Op::Jmp(t) => {
                    em.mat_all()?;
                    jumps.push(em.out.len());
                    em.out.push(ROp::Jmp { t: *t });
                    terminated = true;
                }
                Op::Jz(t) | Op::Jnz(t) => {
                    let (e, d) = em.pop()?;
                    let c = em.reg_of(e, d)?;
                    em.mat_all()?;
                    jumps.push(em.out.len());
                    em.out.push(if matches!(op, Op::Jz(_)) {
                        ROp::Jz { c, t: *t }
                    } else {
                        ROp::Jnz { c, t: *t }
                    });
                    terminated = true;
                }
                Op::LdElem(ty) => {
                    let (ei, di) = em.pop()?;
                    let (ep, dp) = em.pop()?;
                    let idx = em.reg_of(ei, di)?;
                    let ptr = em.reg_of(ep, dp)?;
                    em.out.push(ROp::Load {
                        ty: *ty,
                        dst: em.s(dp),
                        ptr,
                        idx,
                    });
                    em.push(Ent::Canon);
                }
                Op::StElem(ty) => {
                    let (ev, dv) = em.pop()?;
                    let (ei, di) = em.pop()?;
                    let (ep, dp) = em.pop()?;
                    let val = em.reg_of(ev, dv)?;
                    let idx = em.reg_of(ei, di)?;
                    let ptr = em.reg_of(ep, dp)?;
                    em.out.push(ROp::Store {
                        ty: *ty,
                        ptr,
                        idx,
                        val,
                    });
                }
                Op::Call { func, nargs } => {
                    let n = *nargs as u16;
                    em.mat_top(n)?;
                    for _ in 0..n {
                        em.pop()?;
                    }
                    let d = em.depth();
                    em.out.push(ROp::Call {
                        func: *func,
                        args_at: em.s(d),
                    });
                    if (*rets.get(*func as usize)?)? {
                        em.push(Ent::Canon);
                    }
                }
                Op::CallB(b, argc) => {
                    if *argc != builtin_arity(*b) {
                        return None;
                    }
                    let mut regs = [0 as R; 3];
                    let mut dd = 0u16;
                    for k in (0..*argc as usize).rev() {
                        let (e, dep) = em.pop()?;
                        regs[k] = em.reg_of(e, dep)?;
                        dd = dep;
                    }
                    em.out.push(lower_builtin(*b, em.s(dd), &regs));
                    em.push(Ent::Canon);
                }
                Op::Barrier => em.out.push(ROp::Barrier),
                Op::Ret => {
                    em.out.push(ROp::Ret);
                    terminated = true;
                }
                Op::RetV => {
                    let (e, d) = em.pop()?;
                    let src = em.reg_of(e, d)?;
                    em.out.push(ROp::RetV { src });
                    terminated = true;
                }
            }
            if terminated {
                break;
            }
            ip += 1;
            if an.leaders.contains(&(ip as u32)) {
                // Fall through into the next block: its other predecessors
                // expect the whole stack in canonical registers.
                em.mat_all()?;
                break;
            }
        }
    }
    Some(em.consts)
}

/// Every register operand of `op` is inside the `nregs`-register frame.
fn regs_ok(op: &ROp, nregs: u16) -> bool {
    let ok = |r: R| r < nregs;
    match *op {
        ROp::Ops(_) | ROp::Barrier | ROp::Ret | ROp::Jmp { .. } => true,
        ROp::Mov { dst, src }
        | ROp::NegI { dst, src }
        | ROp::BNot { dst, src }
        | ROp::LNot { dst, src }
        | ROp::NegF { dst, src }
        | ROp::I2F { dst, src }
        | ROp::F2I { dst, src }
        | ROp::SplatF4 { dst, src }
        | ROp::GetComp { dst, src, .. }
        | ROp::Id { dst, src, .. }
        | ROp::Math1 { dst, src, .. }
        | ROp::AbsI { dst, src } => ok(dst) && ok(src),
        ROp::Swap { a, b } => ok(a) && ok(b),
        ROp::AddI { dst, a, b }
        | ROp::SubI { dst, a, b }
        | ROp::MulI { dst, a, b }
        | ROp::DivI { dst, a, b }
        | ROp::RemI { dst, a, b }
        | ROp::Shl { dst, a, b }
        | ROp::Shr { dst, a, b }
        | ROp::BAnd { dst, a, b }
        | ROp::BOr { dst, a, b }
        | ROp::BXor { dst, a, b }
        | ROp::AddF { dst, a, b }
        | ROp::SubF { dst, a, b }
        | ROp::MulF { dst, a, b }
        | ROp::DivF { dst, a, b }
        | ROp::AddF4 { dst, a, b }
        | ROp::SubF4 { dst, a, b }
        | ROp::MulF4 { dst, a, b }
        | ROp::DivF4 { dst, a, b }
        | ROp::Dot { dst, a, b }
        | ROp::CmpI { dst, a, b, .. }
        | ROp::CmpF { dst, a, b, .. }
        | ROp::Math2F { dst, a, b2: b, .. }
        | ROp::Math2I { dst, a, b2: b, .. } => ok(dst) && ok(a) && ok(b),
        ROp::MakeF4 { dst, src } => ok(dst) && src.iter().all(|&r| ok(r)),
        ROp::SetComp { dst, vec, scl, .. } => ok(dst) && ok(vec) && ok(scl),
        ROp::Jz { c, .. } | ROp::Jnz { c, .. } => ok(c),
        ROp::JcI { a, b, .. } | ROp::JcF { a, b, .. } => ok(a) && ok(b),
        ROp::Load { dst, ptr, idx, .. } => ok(dst) && ok(ptr) && ok(idx),
        ROp::Store { ptr, idx, val, .. } => ok(ptr) && ok(idx) && ok(val),
        // args_at == nregs is legal for a 0-arg call (nothing is copied).
        ROp::Call { args_at, .. } => args_at <= nregs,
        ROp::Clamp { dst, v, lo, hi } => ok(dst) && ok(v) && ok(lo) && ok(hi),
        ROp::Mad { dst, a, b, c } | ROp::MadI { dst, a, b, c } | ROp::MadRF { dst, c, a, b } => {
            ok(dst) && ok(a) && ok(b) && ok(c)
        }
        ROp::RetV { src } => ok(src),
    }
}

/// Static check that makes the unchecked interpreter loop sound: every
/// register operand is inside its function's frame, every jump target is
/// inside its function's instruction range, every function range ends in an
/// unconditional terminator (sequential execution can never run off the
/// end), and every call site's argument window and callee metadata are
/// consistent. Returns `None` (→ stack fallback) on any violation.
fn validate(prog: &RegProgram, main_end: usize, franges: &[Option<(usize, usize)>]) -> Option<()> {
    let code = &prog.code;
    if prog.const_base as u32 + prog.consts.len() as u32 != prog.nregs as u32
        || prog.entry as usize >= main_end
    {
        return None;
    }
    let mut ranges: Vec<(usize, usize, u16)> = vec![(0, main_end, prog.nregs)];
    for (fi, f) in prog.funcs.iter().enumerate() {
        if !f.compiled {
            continue;
        }
        let (s, e) = (*franges.get(fi)?)?;
        if (f.nargs as u16) > f.nlocals
            || f.nlocals > f.const_base
            || f.const_base as u32 + f.consts.len() as u32 != f.nregs as u32
            || (f.entry as usize) < s
            || (f.entry as usize) >= e
        {
            return None;
        }
        ranges.push((s, e, f.nregs));
    }
    for &(start, end, nregs) in &ranges {
        if start >= end || end > code.len() {
            return None;
        }
        for op in &code[start..end] {
            if !regs_ok(op, nregs) {
                return None;
            }
            match op {
                ROp::Jmp { t }
                | ROp::Jz { t, .. }
                | ROp::Jnz { t, .. }
                | ROp::JcI { t, .. }
                | ROp::JcF { t, .. } => {
                    let t = *t as usize;
                    if t < start || t >= end {
                        return None;
                    }
                }
                ROp::Call { func, args_at } => {
                    let f = prog.funcs.get(*func as usize)?;
                    if !f.compiled || *args_at as u32 + f.nargs as u32 > nregs as u32 {
                        return None;
                    }
                }
                _ => {}
            }
        }
        if !matches!(code[end - 1], ROp::Jmp { .. } | ROp::Ret | ROp::RetV { .. }) {
            return None;
        }
    }
    Some(())
}

/// Lower one kernel (and every device function it transitively calls) to
/// register IR. `None` means the bytecode uses a shape the lowering does
/// not cover (depth-inconsistent joins, ambiguous function returns, a
/// malformed hand-built unit); the dispatcher then falls back to the stack
/// interpreter.
///
/// ```
/// use oclsim::minicl::{self, regir};
///
/// let unit = minicl::parse(
///     "__kernel void id(__global int* a) { a[get_global_id(0)] = get_global_id(0); }",
/// ).unwrap();
/// let compiled = minicl::compile(&unit).unwrap();
/// let info = compiled.kernels.get("id").unwrap();
/// let prog = regir::compile_kernel(&compiled, info).expect("codegen output always lowers");
/// // The symbolic-stack lowering folds pushes and moves away, so the
/// // register program stays close to the stack bytecode in size.
/// assert!(prog.len() <= compiled.code.len() + 8);
/// ```
///
/// See [`RegProgram`] for a full lower-and-dispatch example.
pub fn compile_kernel(unit: &CompiledUnit, kernel: &KernelInfo) -> Option<RegProgram> {
    let rets: Vec<Option<bool>> = unit
        .funcs
        .iter()
        .map(|f| func_returns(&unit.code, f.entry))
        .collect();

    let kmain = analyze(&unit.code, &rets, kernel.entry, kernel.nlocals)?;

    // Transitively analyze every called device function.
    let mut fn_an: Vec<Option<FnAnalysis>> = unit.funcs.iter().map(|_| None).collect();
    let mut queue: Vec<u16> = kmain.calls.clone();
    while let Some(fi) = queue.pop() {
        let fi = fi as usize;
        if fi >= unit.funcs.len() || fn_an[fi].is_some() {
            continue;
        }
        let f: &FuncInfo = &unit.funcs[fi];
        let an = analyze(&unit.code, &rets, f.entry, f.nlocals)?;
        queue.extend_from_slice(&an.calls);
        fn_an[fi] = Some(an);
    }

    let mut code: Vec<ROp> = Vec::new();
    let mut labels: HashMap<u32, u32> = HashMap::new();
    let mut jumps: Vec<usize> = Vec::new();
    let main_consts = emit_fn(
        &unit.code,
        &kmain,
        &rets,
        kernel.nlocals,
        &mut code,
        &mut labels,
        &mut jumps,
    )?;
    let main_end = code.len();
    let main_nregs = u16::try_from(kmain.nregs as u32 + main_consts.len() as u32).ok()?;

    let mut funcs: Vec<RFunc> = unit
        .funcs
        .iter()
        .map(|f| RFunc {
            entry: 0,
            nargs: f.nargs,
            nlocals: f.nlocals,
            const_base: 0,
            nregs: 0,
            consts: Vec::new(),
            compiled: false,
            start: 0,
            end: 0,
        })
        .collect();
    let mut franges: Vec<Option<(usize, usize)>> = vec![None; unit.funcs.len()];
    for (fi, an) in fn_an.iter().enumerate() {
        if let Some(an) = an {
            let f = &unit.funcs[fi];
            let start = code.len();
            let fconsts = emit_fn(
                &unit.code,
                an,
                &rets,
                f.nlocals,
                &mut code,
                &mut labels,
                &mut jumps,
            )?;
            franges[fi] = Some((start, code.len()));
            funcs[fi].entry = *labels.get(&f.entry)?;
            funcs[fi].const_base = an.nregs;
            funcs[fi].nregs = u16::try_from(an.nregs as u32 + fconsts.len() as u32).ok()?;
            funcs[fi].consts = fconsts;
            funcs[fi].compiled = true;
            funcs[fi].start = u32::try_from(start).ok()?;
            funcs[fi].end = u32::try_from(code.len()).ok()?;
        }
    }
    // Rewrite stack-ip jump targets into register-code indices.
    for &j in &jumps {
        let t = match &code[j] {
            ROp::Jmp { t }
            | ROp::Jz { t, .. }
            | ROp::Jnz { t, .. }
            | ROp::JcI { t, .. }
            | ROp::JcF { t, .. } => *t,
            _ => return None,
        };
        let new_t = *labels.get(&t)?;
        match &mut code[j] {
            ROp::Jmp { t }
            | ROp::Jz { t, .. }
            | ROp::Jnz { t, .. }
            | ROp::JcI { t, .. }
            | ROp::JcF { t, .. } => *t = new_t,
            _ => return None,
        }
    }
    let entry = *labels.get(&kernel.entry)?;
    let prog = RegProgram {
        code,
        entry,
        nregs: main_nregs,
        const_base: kmain.nregs,
        consts: main_consts,
        funcs,
        main_end: u32::try_from(main_end).ok()?,
    };
    validate(&prog, main_end, &franges)?;
    Some(prog)
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

struct RFrame {
    ret_ip: usize,
    prev_base: usize,
    prev_nregs: usize,
    /// Absolute register receiving the callee's return value.
    dst: usize,
}

struct RItem {
    ip: usize,
    base: usize,
    nregs: usize,
    regs: Vec<RVal>,
    frames: Vec<RFrame>,
    priv_mem: Vec<u8>,
    gid: [usize; 3],
    lid: [usize; 3],
    ops: u64,
    done: bool,
}

impl RItem {
    fn new() -> Self {
        RItem {
            ip: 0,
            base: 0,
            nregs: 0,
            regs: Vec::new(),
            frames: Vec::new(),
            priv_mem: Vec::new(),
            gid: [0; 3],
            lid: [0; 3],
            ops: 0,
            done: false,
        }
    }

    /// (Re-)initialise for one work item. Afterwards
    /// `regs.len() == prog.nregs == base + nregs` — the frame invariant the
    /// unchecked interpreter relies on (calls only ever grow `regs`).
    fn init(&mut self, prog: &RegProgram, kernel: &KernelInfo, template: &[RVal]) {
        self.ip = prog.entry as usize;
        self.base = 0;
        self.nregs = prog.nregs as usize;
        self.regs.clear();
        self.regs.extend_from_slice(template);
        self.frames.clear();
        self.priv_mem.clear();
        self.priv_mem.resize(kernel.priv_bytes, 0);
        self.ops = 0;
        self.done = false;
    }
}

enum StopReason {
    Done,
    Barrier,
}

struct RCtx<'a> {
    pool: &'a mut MemPool,
    local_regions: Vec<Vec<u8>>,
    group_id: [usize; 3],
    global_size: [usize; 3],
    local_size: [usize; 3],
    num_groups: [usize; 3],
}

/// Execute a full ND-range on the register engine. Same contract, traps and
/// statistics as [`super::interp::run_ndrange`]: byte-identical buffers,
/// identical `group_ops` (virtual clock) and identical trap
/// messages/global-ids. See [`RegProgram`] for a lower-and-dispatch
/// example.
pub fn run_ndrange(
    prog: &RegProgram,
    kernel: &KernelInfo,
    args: &[RtArg],
    pool: &mut MemPool,
    global: [usize; 3],
    local: [usize; 3],
) -> Result<NdStats, Trap> {
    let num_groups = [
        global[0] / local[0].max(1),
        global[1] / local[1].max(1),
        global[2] / local[2].max(1),
    ];
    let window = [0..num_groups[0], 0..num_groups[1], 0..num_groups[2]];
    run_ndrange_window(prog, kernel, args, pool, global, local, window)
}

/// Execute a *window* of group indices of a larger ND-range — the register
/// engine's counterpart of [`super::interp::run_ndrange_window`]: ids and
/// query functions report the full range, only `window`'s groups run.
pub fn run_ndrange_window(
    prog: &RegProgram,
    kernel: &KernelInfo,
    args: &[RtArg],
    pool: &mut MemPool,
    global: [usize; 3],
    local: [usize; 3],
    window: [std::ops::Range<usize>; 3],
) -> Result<NdStats, Trap> {
    let num_groups = [
        global[0] / local[0].max(1),
        global[1] / local[1].max(1),
        global[2] / local[2].max(1),
    ];
    let region_bytes = local_region_sizes(kernel, args)?;
    // Dispatch template: bound locals, zeroed canonical stack slots, then
    // the kernel's constant pool. `len == prog.nregs` by construction.
    let mut template: Vec<RVal> = locals_template(kernel, args)
        .into_iter()
        .map(RVal::from_val)
        .collect();
    template.resize(prog.const_base as usize, RVal::default());
    template.extend_from_slice(&prog.consts);
    debug_assert_eq!(template.len(), prog.nregs as usize);

    let mut stats = NdStats::default();
    let items_per_group = local[0] * local[1] * local[2];
    let mut ctx = RCtx {
        pool,
        local_regions: region_bytes.iter().map(|&b| vec![0u8; b]).collect(),
        group_id: [0; 3],
        global_size: global,
        local_size: local,
        num_groups,
    };

    // Work-item arenas, reused across every group of the dispatch.
    let mut item = RItem::new();
    let mut items: Vec<RItem> = Vec::new();
    let mut first_group = true;
    for gz in window[2].clone() {
        for gy in window[1].clone() {
            for gx in window[0].clone() {
                ctx.group_id = [gx, gy, gz];
                if !first_group && !ctx.local_regions.is_empty() {
                    for r in &mut ctx.local_regions {
                        r.fill(0);
                    }
                }
                first_group = false;
                let ops = if kernel.has_barrier {
                    run_group_lockstep(prog, kernel, &template, &mut ctx, items_per_group, &mut items)?
                } else {
                    run_group_fast(prog, kernel, &template, &mut ctx, &mut item)?
                };
                stats.group_ops.push(ops);
                stats.items += items_per_group as u64;
            }
        }
    }
    Ok(stats)
}

fn item_gid(ctx: &RCtx<'_>, lid: [usize; 3]) -> [usize; 3] {
    [
        ctx.group_id[0] * ctx.local_size[0] + lid[0],
        ctx.group_id[1] * ctx.local_size[1] + lid[1],
        ctx.group_id[2] * ctx.local_size[2] + lid[2],
    ]
}

fn run_group_fast(
    prog: &RegProgram,
    kernel: &KernelInfo,
    template: &[RVal],
    ctx: &mut RCtx<'_>,
    item: &mut RItem,
) -> Result<u64, Trap> {
    let mut group_ops = 0u64;
    let [lx, ly, lz] = ctx.local_size;
    for iz in 0..lz {
        for iy in 0..ly {
            for ix in 0..lx {
                item.init(prog, kernel, template);
                item.lid = [ix, iy, iz];
                item.gid = item_gid(ctx, item.lid);
                match step_until_stop(item, ctx, prog)? {
                    StopReason::Done => {}
                    StopReason::Barrier => {
                        return Err(Trap {
                            message: "barrier reached in kernel compiled without barriers"
                                .to_string(),
                            global_id: item.gid,
                        })
                    }
                }
                group_ops += item.ops;
            }
        }
    }
    Ok(group_ops)
}

fn run_group_lockstep(
    prog: &RegProgram,
    kernel: &KernelInfo,
    template: &[RVal],
    ctx: &mut RCtx<'_>,
    items_per_group: usize,
    items: &mut Vec<RItem>,
) -> Result<u64, Trap> {
    let [lx, ly, lz] = ctx.local_size;
    while items.len() < items_per_group {
        items.push(RItem::new());
    }
    let items = &mut items[..items_per_group];
    let mut at = 0usize;
    for iz in 0..lz {
        for iy in 0..ly {
            for ix in 0..lx {
                let item = &mut items[at];
                at += 1;
                item.init(prog, kernel, template);
                item.lid = [ix, iy, iz];
                item.gid = item_gid(ctx, item.lid);
            }
        }
    }
    loop {
        let mut at_barrier = 0usize;
        let mut running = 0usize;
        for item in items.iter_mut() {
            if item.done {
                continue;
            }
            running += 1;
            match step_until_stop(item, ctx, prog)? {
                StopReason::Done => item.done = true,
                StopReason::Barrier => at_barrier += 1,
            }
        }
        if running == 0 {
            break;
        }
        if at_barrier == 0 {
            continue;
        }
        if at_barrier != running {
            let culprit = items
                .iter()
                .find(|i| !i.done)
                .map(|i| i.gid)
                .unwrap_or([0; 3]);
            return Err(Trap {
                message: format!(
                    "divergent barrier: {at_barrier} of {running} running items reached barrier"
                ),
                global_id: culprit,
            });
        }
    }
    Ok(items.iter().map(|i| i.ops).sum())
}

#[inline(always)]
pub(super) fn cmp_i(cmp: Cmp, a: i64, b: i64) -> bool {
    match cmp {
        Cmp::Eq => a == b,
        Cmp::Ne => a != b,
        Cmp::Lt => a < b,
        Cmp::Le => a <= b,
        Cmp::Gt => a > b,
        Cmp::Ge => a >= b,
    }
}

#[inline(always)]
pub(super) fn cmp_f(cmp: Cmp, a: f64, b: f64) -> bool {
    match cmp {
        Cmp::Eq => a == b,
        Cmp::Ne => a != b,
        Cmp::Lt => a < b,
        Cmp::Le => a <= b,
        Cmp::Gt => a > b,
        Cmp::Ge => a >= b,
    }
}

fn region_mut<'c>(
    gid: [usize; 3],
    ctx: &'c mut RCtx<'_>,
    ptr: PtrV,
) -> Result<(&'c mut [u8], bool), Trap> {
    match ptr.space {
        Space::Global | Space::Constant => {
            let slot = ptr.slot as usize;
            if slot >= ctx.pool.bufs.len() {
                return Err(Trap {
                    message: format!("pointer to unknown buffer slot {slot}"),
                    global_id: gid,
                });
            }
            let ro = ctx.pool.read_only[slot] || ptr.space == Space::Constant;
            Ok((ctx.pool.bufs[slot].as_mut_slice(), ro))
        }
        Space::Local => {
            let slot = ptr.slot as usize;
            if slot >= ctx.local_regions.len() {
                return Err(Trap {
                    message: format!("pointer to unknown local region {slot}"),
                    global_id: gid,
                });
            }
            Ok((ctx.local_regions[slot].as_mut_slice(), false))
        }
        Space::Private => Err(Trap {
            message: "private pointers are resolved by the caller".to_string(),
            global_id: gid,
        }),
    }
}

#[inline(always)]
pub(super) fn read_reg(bytes: &[u8], at: usize, ty: ElemTy) -> Option<RVal> {
    let slice = bytes.get(at..at + ty.byte_size())?;
    Some(match ty {
        ElemTy::I32 => RVal::from_i(i32::from_le_bytes(slice.try_into().ok()?) as i64),
        ElemTy::I64 => RVal::from_i(i64::from_le_bytes(slice.try_into().ok()?)),
        ElemTy::F32 => RVal::from_f(f32::from_le_bytes(slice.try_into().ok()?) as f64),
        ElemTy::F4 => RVal([
            u64::from_le_bytes(slice[0..8].try_into().ok()?),
            u64::from_le_bytes(slice[8..16].try_into().ok()?),
        ]),
    })
}

#[inline(always)]
pub(super) fn write_reg(bytes: &mut [u8], at: usize, ty: ElemTy, v: RVal) -> Option<()> {
    let slice = bytes.get_mut(at..at + ty.byte_size())?;
    match ty {
        ElemTy::I32 => slice.copy_from_slice(&(v.i() as i32).to_le_bytes()),
        ElemTy::I64 => slice.copy_from_slice(&v.i().to_le_bytes()),
        ElemTy::F32 => slice.copy_from_slice(&(v.f() as f32).to_le_bytes()),
        ElemTy::F4 => {
            slice[0..8].copy_from_slice(&v.0[0].to_le_bytes());
            slice[8..16].copy_from_slice(&v.0[1].to_le_bytes());
        }
    }
    Some(())
}

fn load(
    item: &mut RItem,
    ctx: &mut RCtx<'_>,
    ptr: PtrV,
    idx: i64,
    ty: ElemTy,
) -> Result<RVal, Trap> {
    let size = ty.byte_size();
    let gid = item.gid;
    let byte = checked_offset(gid, ptr.base, idx, size)?;
    if ptr.space == Space::Private {
        let bytes = &item.priv_mem;
        return read_reg(bytes, byte, ty).ok_or_else(|| oob(gid, byte, size, bytes.len()));
    }
    let (bytes, _) = region_mut(gid, ctx, ptr)?;
    let len = bytes.len();
    read_reg(bytes, byte, ty).ok_or_else(|| oob(gid, byte, size, len))
}

fn store(
    item: &mut RItem,
    ctx: &mut RCtx<'_>,
    ptr: PtrV,
    idx: i64,
    ty: ElemTy,
    v: RVal,
) -> Result<(), Trap> {
    let size = ty.byte_size();
    let gid = item.gid;
    let byte = checked_offset(gid, ptr.base, idx, size)?;
    if ptr.space == Space::Private {
        let len = item.priv_mem.len();
        return write_reg(&mut item.priv_mem, byte, ty, v).ok_or_else(|| oob(gid, byte, size, len));
    }
    let (bytes, read_only) = region_mut(gid, ctx, ptr)?;
    if read_only {
        return Err(Trap {
            message: "write through const/__constant pointer".to_string(),
            global_id: gid,
        });
    }
    let len = bytes.len();
    write_reg(bytes, byte, ty, v).ok_or_else(|| oob(gid, byte, size, len))
}

fn step_until_stop(
    item: &mut RItem,
    ctx: &mut RCtx<'_>,
    prog: &RegProgram,
) -> Result<StopReason, Trap> {
    // SAFETY argument for the unchecked accesses below (all of them):
    //
    // * Register reads/writes: `validate` proved every register operand of
    //   every instruction is `< nregs` of the function it belongs to
    //   (`args_at` of a 0-arg call may equal `nregs` but is never
    //   dereferenced then), and the frame invariant
    //   `item.regs.len() >= item.base + item.nregs` always holds:
    //   `RItem::init` sets `len == prog.nregs` with `base == 0`; `Call`
    //   grows `regs` to cover the callee frame *before* switching to it;
    //   `Ret`/`RetV` only restore an older frame (and `regs` never shrinks).
    // * Instruction fetch: `validate` proved every jump target lies inside
    //   its function's range and every range ends in `Jmp`/`Ret`/`RetV`, so
    //   sequential execution cannot run past a range and `item.ip` is
    //   always a valid index into `prog.code` (a call site is never the
    //   last instruction of a range, so its return ip is in range too).
    macro_rules! rg {
        ($x:expr) => {
            // SAFETY: see the frame invariant above.
            unsafe { *item.regs.get_unchecked(item.base + $x as usize) }
        };
    }
    macro_rules! st {
        ($dst:expr, $v:expr) => {{
            let v = $v;
            // SAFETY: see the frame invariant above.
            unsafe { *item.regs.get_unchecked_mut(item.base + $dst as usize) = v };
        }};
    }
    loop {
        // SAFETY: `item.ip` is always in bounds, see above.
        let op = unsafe { prog.code.get_unchecked(item.ip) };
        item.ip += 1;
        match *op {
            ROp::Ops(n) => {
                item.ops += n;
                if item.ops > MAX_ITEM_OPS {
                    return Err(Trap {
                        message: "work-item exceeded the op budget (infinite loop?)".to_string(),
                        global_id: item.gid,
                    });
                }
            }
            ROp::Mov { dst, src } => st!(dst, rg!(src)),
            ROp::Swap { a, b } => item
                .regs
                .swap(item.base + a as usize, item.base + b as usize),
            ROp::AddI { dst, a, b } => st!(dst, RVal::from_i(rg!(a).i().wrapping_add(rg!(b).i()))),
            ROp::SubI { dst, a, b } => st!(dst, RVal::from_i(rg!(a).i().wrapping_sub(rg!(b).i()))),
            ROp::MulI { dst, a, b } => st!(dst, RVal::from_i(rg!(a).i().wrapping_mul(rg!(b).i()))),
            ROp::DivI { dst, a, b } => {
                let (x, y) = (rg!(a).i(), rg!(b).i());
                if y == 0 {
                    return Err(Trap {
                        message: "integer division by zero".to_string(),
                        global_id: item.gid,
                    });
                }
                st!(dst, RVal::from_i(x.wrapping_div(y)));
            }
            ROp::RemI { dst, a, b } => {
                let (x, y) = (rg!(a).i(), rg!(b).i());
                if y == 0 {
                    return Err(Trap {
                        message: "integer remainder by zero".to_string(),
                        global_id: item.gid,
                    });
                }
                st!(dst, RVal::from_i(x.wrapping_rem(y)));
            }
            ROp::Shl { dst, a, b } => {
                st!(dst, RVal::from_i(rg!(a).i().wrapping_shl(rg!(b).i() as u32)))
            }
            ROp::Shr { dst, a, b } => {
                st!(dst, RVal::from_i(rg!(a).i().wrapping_shr(rg!(b).i() as u32)))
            }
            ROp::BAnd { dst, a, b } => st!(dst, RVal::from_i(rg!(a).i() & rg!(b).i())),
            ROp::BOr { dst, a, b } => st!(dst, RVal::from_i(rg!(a).i() | rg!(b).i())),
            ROp::BXor { dst, a, b } => st!(dst, RVal::from_i(rg!(a).i() ^ rg!(b).i())),
            ROp::NegI { dst, src } => st!(dst, RVal::from_i(rg!(src).i().wrapping_neg())),
            ROp::BNot { dst, src } => st!(dst, RVal::from_i(!rg!(src).i())),
            ROp::LNot { dst, src } => st!(dst, RVal::from_i((rg!(src).i() == 0) as i64)),
            ROp::AddF { dst, a, b } => st!(dst, RVal::from_f(rg!(a).f() + rg!(b).f())),
            ROp::SubF { dst, a, b } => st!(dst, RVal::from_f(rg!(a).f() - rg!(b).f())),
            ROp::MulF { dst, a, b } => st!(dst, RVal::from_f(rg!(a).f() * rg!(b).f())),
            ROp::DivF { dst, a, b } => st!(dst, RVal::from_f(rg!(a).f() / rg!(b).f())),
            ROp::NegF { dst, src } => st!(dst, RVal::from_f(-rg!(src).f())),
            ROp::I2F { dst, src } => st!(dst, RVal::from_f(rg!(src).i() as f64)),
            ROp::F2I { dst, src } => {
                let x = rg!(src).f();
                st!(dst, RVal::from_i(if x.is_nan() { 0 } else { x as i64 }));
            }
            ROp::AddF4 { dst, a, b } => {
                let (x, y) = (rg!(a).f4(), rg!(b).f4());
                st!(dst, RVal::from_f4([x[0] + y[0], x[1] + y[1], x[2] + y[2], x[3] + y[3]]));
            }
            ROp::SubF4 { dst, a, b } => {
                let (x, y) = (rg!(a).f4(), rg!(b).f4());
                st!(dst, RVal::from_f4([x[0] - y[0], x[1] - y[1], x[2] - y[2], x[3] - y[3]]));
            }
            ROp::MulF4 { dst, a, b } => {
                let (x, y) = (rg!(a).f4(), rg!(b).f4());
                st!(dst, RVal::from_f4([x[0] * y[0], x[1] * y[1], x[2] * y[2], x[3] * y[3]]));
            }
            ROp::DivF4 { dst, a, b } => {
                let (x, y) = (rg!(a).f4(), rg!(b).f4());
                st!(dst, RVal::from_f4([x[0] / y[0], x[1] / y[1], x[2] / y[2], x[3] / y[3]]));
            }
            ROp::SplatF4 { dst, src } => {
                let x = rg!(src).f() as f32;
                st!(dst, RVal::from_f4([x; 4]));
            }
            ROp::MakeF4 { dst, src } => {
                let v = [
                    rg!(src[0]).f() as f32,
                    rg!(src[1]).f() as f32,
                    rg!(src[2]).f() as f32,
                    rg!(src[3]).f() as f32,
                ];
                st!(dst, RVal::from_f4(v));
            }
            ROp::GetComp { dst, src, c } => {
                st!(dst, RVal::from_f(rg!(src).f4()[c as usize] as f64))
            }
            ROp::SetComp { dst, vec, scl, c } => {
                let mut v = rg!(vec).f4();
                v[c as usize] = rg!(scl).f() as f32;
                st!(dst, RVal::from_f4(v));
            }
            ROp::CmpI { cmp, dst, a, b } => {
                st!(dst, RVal::from_i(cmp_i(cmp, rg!(a).i(), rg!(b).i()) as i64))
            }
            ROp::CmpF { cmp, dst, a, b } => {
                st!(dst, RVal::from_i(cmp_f(cmp, rg!(a).f(), rg!(b).f()) as i64))
            }
            ROp::Jmp { t } => item.ip = t as usize,
            ROp::Jz { c, t } => {
                if rg!(c).i() == 0 {
                    item.ip = t as usize;
                }
            }
            ROp::Jnz { c, t } => {
                if rg!(c).i() != 0 {
                    item.ip = t as usize;
                }
            }
            ROp::JcI { cmp, a, b, t, when } => {
                if cmp_i(cmp, rg!(a).i(), rg!(b).i()) == when {
                    item.ip = t as usize;
                }
            }
            ROp::JcF { cmp, a, b, t, when } => {
                if cmp_f(cmp, rg!(a).f(), rg!(b).f()) == when {
                    item.ip = t as usize;
                }
            }
            ROp::Load { ty, dst, ptr, idx } => {
                let (p, i) = (rg!(ptr).ptr(), rg!(idx).i());
                let v = load(item, ctx, p, i, ty)?;
                st!(dst, v);
            }
            ROp::Store { ty, ptr, idx, val } => {
                let (p, i, v) = (rg!(ptr).ptr(), rg!(idx).i(), rg!(val));
                store(item, ctx, p, i, ty, v)?;
            }
            ROp::Call { func, args_at } => {
                // Cold relative to the arithmetic ops: plain checked
                // indexing throughout.
                let f = &prog.funcs[func as usize];
                debug_assert!(f.compiled);
                if item.frames.len() >= 192 {
                    return Err(Trap {
                        message: "call stack overflow".to_string(),
                        global_id: item.gid,
                    });
                }
                let new_base = item.base + item.nregs;
                let need = new_base + f.nregs as usize;
                if item.regs.len() < need {
                    item.regs.resize(need, RVal::default());
                }
                let src = item.base + args_at as usize;
                for k in 0..f.nargs as usize {
                    item.regs[new_base + k] = item.regs[src + k];
                }
                for k in f.nargs as usize..f.nlocals as usize {
                    item.regs[new_base + k] = RVal::default();
                }
                for (k, c) in f.consts.iter().enumerate() {
                    item.regs[new_base + f.const_base as usize + k] = *c;
                }
                item.frames.push(RFrame {
                    ret_ip: item.ip,
                    prev_base: item.base,
                    prev_nregs: item.nregs,
                    dst: src,
                });
                item.base = new_base;
                item.nregs = f.nregs as usize;
                item.ip = f.entry as usize;
            }
            ROp::Id { b, dst, src } => {
                let d = rg!(src).i();
                let v = if !(0..=2).contains(&d) {
                    match b {
                        Builtin::GetGlobalSize | Builtin::GetLocalSize | Builtin::GetNumGroups => 1,
                        _ => 0,
                    }
                } else {
                    let d = d as usize;
                    match b {
                        Builtin::GetGlobalId => item.gid[d],
                        Builtin::GetLocalId => item.lid[d],
                        Builtin::GetGroupId => ctx.group_id[d],
                        Builtin::GetGlobalSize => ctx.global_size[d],
                        Builtin::GetLocalSize => ctx.local_size[d],
                        Builtin::GetNumGroups => ctx.num_groups[d],
                        _ => 0,
                    }
                };
                st!(dst, RVal::from_i(v as i64));
            }
            ROp::Math1 { b, dst, src } => {
                let x = rg!(src).f();
                let v = match b {
                    Builtin::Sqrt => x.sqrt(),
                    Builtin::Rsqrt => 1.0 / x.sqrt(),
                    Builtin::Fabs => x.abs(),
                    Builtin::Floor => x.floor(),
                    Builtin::Ceil => x.ceil(),
                    Builtin::Exp => x.exp(),
                    Builtin::Log => x.ln(),
                    Builtin::Sin => x.sin(),
                    Builtin::Cos => x.cos(),
                    _ => x,
                };
                st!(dst, RVal::from_f(v));
            }
            ROp::Math2F { b, dst, a, b2 } => {
                let (x, y) = (rg!(a).f(), rg!(b2).f());
                let v = match b {
                    Builtin::Pow => x.powf(y),
                    Builtin::Fmin => x.min(y),
                    Builtin::Fmax => x.max(y),
                    _ => x,
                };
                st!(dst, RVal::from_f(v));
            }
            ROp::Math2I { b, dst, a, b2 } => {
                let (x, y) = (rg!(a).i(), rg!(b2).i());
                st!(dst, RVal::from_i(if b == Builtin::MinI { x.min(y) } else { x.max(y) }));
            }
            ROp::AbsI { dst, src } => st!(dst, RVal::from_i(rg!(src).i().abs())),
            ROp::Clamp { dst, v, lo, hi } => {
                let (x, l, h) = (rg!(v).f(), rg!(lo).f(), rg!(hi).f());
                st!(dst, RVal::from_f(x.max(l).min(h)));
            }
            ROp::Mad { dst, a, b, c } => {
                st!(dst, RVal::from_f(rg!(a).f() * rg!(b).f() + rg!(c).f()))
            }
            ROp::MadRF { dst, c, a, b } => {
                st!(dst, RVal::from_f(rg!(c).f() + rg!(a).f() * rg!(b).f()))
            }
            ROp::MadI { dst, a, b, c } => st!(
                dst,
                RVal::from_i(rg!(a).i().wrapping_mul(rg!(b).i()).wrapping_add(rg!(c).i()))
            ),
            ROp::Dot { dst, a, b } => {
                let (x, y) = (rg!(a).f4(), rg!(b).f4());
                let mut acc = 0f64;
                for k in 0..4 {
                    acc += x[k] as f64 * y[k] as f64;
                }
                st!(dst, RVal::from_f(acc));
            }
            ROp::Barrier => return Ok(StopReason::Barrier),
            ROp::Ret => match item.frames.pop() {
                Some(fr) => {
                    item.base = fr.prev_base;
                    item.nregs = fr.prev_nregs;
                    item.ip = fr.ret_ip;
                }
                None => return Ok(StopReason::Done),
            },
            ROp::RetV { src } => {
                let v = rg!(src);
                match item.frames.pop() {
                    Some(fr) => {
                        item.regs[fr.dst] = v;
                        item.base = fr.prev_base;
                        item.nregs = fr.prev_nregs;
                        item.ip = fr.ret_ip;
                    }
                    None => return Ok(StopReason::Done),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minicl::codegen::compile;
    use crate::minicl::interp;
    use crate::minicl::parser::parse;

    type EngineRun = Result<(NdStats, Vec<Vec<u8>>), Trap>;

    /// Run `kernel` from `src` on both engines with identical pools and
    /// return both results.
    fn both_engines(
        src: &str,
        kernel: &str,
        args: &[RtArg],
        pool_init: (Vec<Vec<u8>>, Vec<bool>),
        global: [usize; 3],
        local: [usize; 3],
    ) -> (EngineRun, EngineRun) {
        let ast = parse(src).expect("parse");
        let unit = compile(&ast).expect("compile");
        let info = unit.kernels.get(kernel).expect("kernel").clone();

        let run = |register: bool| -> EngineRun {
            let mut pool = MemPool {
                bufs: pool_init.0.clone(),
                read_only: pool_init.1.clone(),
            };
            if register {
                let prog = compile_kernel(&unit, &info).expect("register compile");
                run_ndrange(&prog, &info, args, &mut pool, global, local)
                    .map(|stats| (stats, pool.bufs))
            } else {
                interp::run_ndrange(&unit, &info, args, &mut pool, global, local)
                    .map(|stats| (stats, pool.bufs))
            }
        };
        (run(false), run(true))
    }

    fn assert_engines_agree(stack: EngineRun, register: EngineRun) {
        match (stack, register) {
            (Ok((s_stats, s_bufs)), Ok((r_stats, r_bufs))) => {
                assert_eq!(s_bufs, r_bufs, "buffer contents differ");
                assert_eq!(s_stats.group_ops, r_stats.group_ops, "group_ops differ");
                assert_eq!(s_stats.items, r_stats.items, "item counts differ");
            }
            (Err(s), Err(r)) => {
                assert_eq!(s.message, r.message, "trap messages differ");
                assert_eq!(s.global_id, r.global_id, "trap global ids differ");
            }
            (s, r) => panic!("engines disagree on success: stack={s:?} register={r:?}"),
        }
    }

    fn f32_buf(vals: &[f32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn square_kernel_matches_stack_engine() {
        let src = r#"
            __kernel void square(__global float* in, __global float* out, const int n) {
                int i = get_global_id(0);
                if (i < n) { out[i] = in[i] * in[i]; }
            }
        "#;
        let (s, r) = both_engines(
            src,
            "square",
            &[
                RtArg::Buf { pool_slot: 0 },
                RtArg::Buf { pool_slot: 1 },
                RtArg::Scalar(Val::I(4)),
            ],
            (
                vec![f32_buf(&[1.0, 2.0, 3.0, 4.0]), vec![0u8; 16]],
                vec![false, false],
            ),
            [4, 1, 1],
            [2, 1, 1],
        );
        assert_engines_agree(s, r);
    }

    #[test]
    fn barrier_reduction_matches_stack_engine() {
        let src = r#"
            __kernel void rmin(__global float* in, __global float* out, __local float* s) {
                int l = get_local_id(0);
                s[l] = in[get_global_id(0)];
                barrier(CLK_LOCAL_MEM_FENCE);
                for (int st = get_local_size(0) / 2; st > 0; st = st / 2) {
                    if (l < st) { s[l] = fmin(s[l], s[l + st]); }
                    barrier(CLK_LOCAL_MEM_FENCE);
                }
                if (l == 0) { out[get_group_id(0)] = s[0]; }
            }
        "#;
        let data: Vec<f32> = (0..16).map(|i| (16 - i) as f32).collect();
        let (s, r) = both_engines(
            src,
            "rmin",
            &[
                RtArg::Buf { pool_slot: 0 },
                RtArg::Buf { pool_slot: 1 },
                RtArg::Local { bytes: 32 },
            ],
            (vec![f32_buf(&data), vec![0u8; 8]], vec![false, false]),
            [16, 1, 1],
            [8, 1, 1],
        );
        assert_engines_agree(s, r);
    }

    #[test]
    fn device_function_call_matches() {
        let src = r#"
            float sq(float x) { return x * x; }
            __kernel void k(__global float* a) {
                int i = get_global_id(0);
                a[i] = sq(a[i]) + sq(2.0f);
            }
        "#;
        let (s, r) = both_engines(
            src,
            "k",
            &[RtArg::Buf { pool_slot: 0 }],
            (vec![f32_buf(&[3.0, 5.0])], vec![false]),
            [2, 1, 1],
            [1, 1, 1],
        );
        assert_engines_agree(s, r);
    }

    #[test]
    fn float4_ops_match() {
        let src = r#"
            __kernel void v(__global float4* a, __global float* out) {
                float4 x = a[0];
                float4 y = (float4)(2.0f);
                out[0] = dot(x, y);
                a[1] = x * y;
            }
        "#;
        let (s, r) = both_engines(
            src,
            "v",
            &[RtArg::Buf { pool_slot: 0 }, RtArg::Buf { pool_slot: 1 }],
            (
                vec![
                    f32_buf(&[1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0]),
                    vec![0u8; 4],
                ],
                vec![false, false],
            ),
            [1, 1, 1],
            [1, 1, 1],
        );
        assert_engines_agree(s, r);
    }

    #[test]
    fn private_array_matches() {
        let src = r#"
            __kernel void p(__global float* out) {
                int i = get_global_id(0);
                float tmp[4];
                for (int k = 0; k < 4; k++) { tmp[k] = (float)(i * 10 + k); }
                out[i] = tmp[3];
            }
        "#;
        let (s, r) = both_engines(
            src,
            "p",
            &[RtArg::Buf { pool_slot: 0 }],
            (vec![vec![0u8; 8]], vec![false]),
            [2, 1, 1],
            [1, 1, 1],
        );
        assert_engines_agree(s, r);
    }

    #[test]
    fn oob_trap_matches() {
        let src = r#"
            __kernel void w(__global float* a) {
                a[get_global_id(0) + 100] = 1.0f;
            }
        "#;
        let (s, r) = both_engines(
            src,
            "w",
            &[RtArg::Buf { pool_slot: 0 }],
            (vec![vec![0u8; 16]], vec![false]),
            [4, 1, 1],
            [4, 1, 1],
        );
        assert!(s.is_err() && r.is_err(), "both engines must trap");
        assert_engines_agree(s, r);
    }

    #[test]
    fn division_by_zero_trap_matches() {
        let src = r#"
            __kernel void d(__global int* a) {
                a[0] = 1 / a[1];
            }
        "#;
        let (s, r) = both_engines(
            src,
            "d",
            &[RtArg::Buf { pool_slot: 0 }],
            (vec![vec![0u8; 8]], vec![false]),
            [1, 1, 1],
            [1, 1, 1],
        );
        assert!(s.is_err() && r.is_err(), "both engines must trap");
        assert_engines_agree(s, r);
    }

    #[test]
    fn divergent_barrier_trap_matches() {
        let src = r#"
            __kernel void b(__global float* a) {
                if (get_local_id(0) == 0) { barrier(CLK_LOCAL_MEM_FENCE); }
                a[get_global_id(0)] = 1.0f;
            }
        "#;
        let (s, r) = both_engines(
            src,
            "b",
            &[RtArg::Buf { pool_slot: 0 }],
            (vec![vec![0u8; 16]], vec![false]),
            [4, 1, 1],
            [4, 1, 1],
        );
        assert!(s.is_err() && r.is_err(), "both engines must trap");
        assert_engines_agree(s, r);
    }

    #[test]
    fn constant_write_trap_matches() {
        let src = r#"
            __kernel void c(__global float* a) {
                a[0] = 1.0f;
            }
        "#;
        let (s, r) = both_engines(
            src,
            "c",
            &[RtArg::Buf { pool_slot: 0 }],
            (vec![f32_buf(&[5.0])], vec![true]),
            [1, 1, 1],
            [1, 1, 1],
        );
        assert!(s.is_err() && r.is_err(), "both engines must trap");
        assert_engines_agree(s, r);
    }

    #[test]
    fn two_dimensional_ids_match() {
        let src = r#"
            __kernel void t(__global int* out) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                out[y * get_global_size(0) + x] = y * 100 + x;
            }
        "#;
        let (s, r) = both_engines(
            src,
            "t",
            &[RtArg::Buf { pool_slot: 0 }],
            (vec![vec![0u8; 64]], vec![false]),
            [4, 4, 1],
            [2, 2, 1],
        );
        assert_engines_agree(s, r);
    }

    #[test]
    fn mad_fusion_matches_both_operand_orders() {
        // `a*x + b` fuses into Mad, `b + a*x` into MadRF; both must match
        // the stack engine byte for byte (IEEE operand order preserved).
        let src = r#"
            __kernel void saxpy(__global float* a, __global float* b,
                                __global float* out, __global float* out2,
                                const float x) {
                int i = get_global_id(0);
                out[i] = a[i] * x + b[i];
                out2[i] = b[i] + a[i] * x;
            }
        "#;
        let (s, r) = both_engines(
            src,
            "saxpy",
            &[
                RtArg::Buf { pool_slot: 0 },
                RtArg::Buf { pool_slot: 1 },
                RtArg::Buf { pool_slot: 2 },
                RtArg::Buf { pool_slot: 3 },
                RtArg::Scalar(Val::F(1.5)),
            ],
            (
                vec![
                    f32_buf(&[1.0, -2.5, 3.25, 0.0]),
                    f32_buf(&[0.5, 4.0, -1.0, 7.0]),
                    vec![0u8; 16],
                    vec![0u8; 16],
                ],
                vec![false, false, false, false],
            ),
            [4, 1, 1],
            [2, 1, 1],
        );
        assert_engines_agree(s, r);
    }

    #[test]
    fn device_function_constants_match() {
        // Device functions get their own constant pool written on Call.
        let src = r#"
            float poly(float x) { return 2.0f * x + 3.0f; }
            __kernel void k(__global float* a) {
                int i = get_global_id(0);
                float acc = 0.0f;
                for (int j = 0; j < 3; j++) { acc = acc + poly(a[i] + (float)j); }
                a[i] = acc;
            }
        "#;
        let (s, r) = both_engines(
            src,
            "k",
            &[RtArg::Buf { pool_slot: 0 }],
            (vec![f32_buf(&[0.5, -1.5])], vec![false]),
            [2, 1, 1],
            [1, 1, 1],
        );
        assert_engines_agree(s, r);
    }

    #[test]
    fn depth_inconsistent_unit_falls_back() {
        use crate::minicl::bytecode::{CompiledUnit, KernelInfo, Op};
        use std::collections::HashMap;
        // Jump target 4 is reached with depth 1 from ip 1 (after Jnz pops)
        // and depth 1 vs 2 mismatch via the fallthrough — the analyzer must
        // reject it and compile_kernel must return None (stack fallback).
        let unit = CompiledUnit {
            code: vec![
                Op::PushI(1),
                Op::Jnz(4),
                Op::PushI(7),
                Op::Jmp(4),
                Op::Ret,
            ],
            kernels: HashMap::new(),
            funcs: vec![],
        };
        let info = KernelInfo {
            name: "bad".to_string(),
            entry: 0,
            nlocals: 0,
            params: vec![],
            local_decl_bytes: vec![],
            has_barrier: false,
            priv_bytes: 0,
        };
        assert!(compile_kernel(&unit, &info).is_none());
    }

    #[test]
    fn compiled_program_is_smaller_than_naive_lowering() {
        let src = r#"
            __kernel void loopy(__global int* a) {
                int acc = 0;
                for (int i = 0; i < 100; i++) { acc = acc + i; }
                a[get_global_id(0)] = acc;
            }
        "#;
        let ast = parse(src).expect("parse");
        let unit = compile(&ast).expect("compile");
        let info = unit.kernels.get("loopy").expect("kernel").clone();
        let prog = compile_kernel(&unit, &info).expect("register compile");
        assert!(!prog.code.is_empty());
        // The symbolic-stack lowering folds pushes/moves away; the register
        // program must not blow up relative to the stack bytecode.
        assert!(
            prog.code.len() <= unit.code.len() + 8,
            "register program ({} ops) much larger than bytecode ({} ops)",
            prog.code.len(),
            unit.code.len()
        );
    }
}
