//! Abstract syntax tree for the mini OpenCL-C dialect.

use super::token::Pos;

/// Address spaces, mirroring OpenCL's memory hierarchy (§2.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// `__global`: visible to every work-item, backed by a device buffer.
    Global,
    /// `__local`: shared by the work-items of one work-group.
    Local,
    /// `__constant`: read-only global memory.
    Constant,
    /// `__private`: per-work-item memory (the default for locals).
    Private,
}

/// Scalar and vector types of the dialect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// No value (function return only).
    Void,
    /// Boolean (result of comparisons; storable in `int`).
    Bool,
    /// 32-bit signed integer. The simulator evaluates integer arithmetic at
    /// 64-bit width; the paper's applications stay well inside i32 range.
    Int,
    /// 32-bit unsigned integer (alias of `Int` in the simulator; documented
    /// in the crate root).
    Uint,
    /// 64-bit signed integer.
    Long,
    /// 32-bit IEEE float (computed at f64 internally, stored as f32).
    Float,
    /// OpenCL short-vector of four floats, used by the C-OpenCL document
    /// ranking kernel (the Ensemble path lacks it — a paper finding).
    Float4,
    /// Pointer into an address space: `__global float*`.
    Ptr(Space, Box<Type>),
}

impl Type {
    /// True for `Int`, `Uint`, `Long`, `Bool` (integer-register types).
    pub fn is_integer(&self) -> bool {
        matches!(self, Type::Int | Type::Uint | Type::Long | Type::Bool)
    }

    /// True for `Float`.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::Float)
    }

    /// Size of one element of this type in bytes when stored in a buffer.
    pub fn byte_size(&self) -> usize {
        match self {
            Type::Void => 0,
            Type::Bool | Type::Int | Type::Uint | Type::Float => 4,
            Type::Long => 8,
            Type::Float4 => 16,
            Type::Ptr(..) => 8,
        }
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Bool => write!(f, "bool"),
            Type::Int => write!(f, "int"),
            Type::Uint => write!(f, "uint"),
            Type::Long => write!(f, "long"),
            Type::Float => write!(f, "float"),
            Type::Float4 => write!(f, "float4"),
            Type::Ptr(space, inner) => {
                let s = match space {
                    Space::Global => "__global",
                    Space::Local => "__local",
                    Space::Constant => "__constant",
                    Space::Private => "__private",
                };
                write!(f, "{s} {inner}*")
            }
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // operator variants are self-describing
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LAnd,
    LOr,
    BAnd,
    BOr,
    BXor,
    Shl,
    Shr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // operator variants are self-describing
pub enum UnOp {
    Neg,
    LNot,
    BNot,
}

/// Compound-assignment operators (`x op= e`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // operator variants are self-describing
pub enum AssignOp {
    Set,
    Add,
    Sub,
    Mul,
    Div,
    Shl,
    Shr,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64, Pos),
    /// Float literal.
    FloatLit(f64, Pos),
    /// `true` / `false`.
    BoolLit(bool, Pos),
    /// Variable reference.
    Var(String, Pos),
    /// Unary operation.
    Unary(UnOp, Box<Expr>, Pos),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>, Pos),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>, Pos),
    /// `base[index]` (base must be a pointer or array variable).
    Index(Box<Expr>, Box<Expr>, Pos),
    /// Function or builtin call.
    Call(String, Vec<Expr>, Pos),
    /// `(type) expr`.
    Cast(Type, Box<Expr>, Pos),
    /// `(float4)(a, b, c, d)` constructor (or `(float4)(s)` splat).
    MakeF4(Vec<Expr>, Pos),
    /// Vector component read: `v.x` (component 0..3).
    Comp(Box<Expr>, u8, Pos),
}

impl Expr {
    /// Source position of the expression (for diagnostics).
    pub fn pos(&self) -> Pos {
        match self {
            Expr::IntLit(_, p)
            | Expr::FloatLit(_, p)
            | Expr::BoolLit(_, p)
            | Expr::Var(_, p)
            | Expr::Unary(_, _, p)
            | Expr::Binary(_, _, _, p)
            | Expr::Ternary(_, _, _, p)
            | Expr::Index(_, _, p)
            | Expr::Call(_, _, p)
            | Expr::Cast(_, _, p)
            | Expr::MakeF4(_, p)
            | Expr::Comp(_, _, p) => *p,
        }
    }
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Plain variable.
    Var(String, Pos),
    /// Element of a pointer/array: `a[i]`.
    Index(String, Expr, Pos),
    /// Vector component: `v.x`.
    Comp(String, u8, Pos),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Variable declaration, optionally an array, optionally initialised.
    Decl {
        /// Declared name.
        name: String,
        /// Element type.
        ty: Type,
        /// Address space (`Private` unless `__local` was written).
        space: Space,
        /// `Some(n)` when declared as `T name[n]`.
        array_len: Option<usize>,
        /// Optional initialiser expression.
        init: Option<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// Assignment (including compound assignment and `x++`/`x--`).
    Assign {
        /// The target being written.
        target: LValue,
        /// Which compound operator.
        op: AssignOp,
        /// The right-hand side.
        value: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `if (...) {...} else {...}`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_blk: Vec<Stmt>,
        /// Else-branch (empty if absent).
        else_blk: Vec<Stmt>,
    },
    /// `while (...) {...}`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) {...}`.
    For {
        /// Optional init statement.
        init: Option<Box<Stmt>>,
        /// Optional condition (absent means `true`).
        cond: Option<Expr>,
        /// Optional step statement.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return expr?;`
    Return {
        /// Optional return value.
        value: Option<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `barrier(CLK_LOCAL_MEM_FENCE);` — work-group synchronisation.
    Barrier {
        /// Source position.
        pos: Pos,
    },
    /// Expression evaluated for effect (function call).
    ExprStmt(Expr),
    /// Nested block.
    Block(Vec<Stmt>),
}

/// Function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type (pointers carry their address space).
    pub ty: Type,
    /// Declared `const` (constant buffers may only be read).
    pub is_const: bool,
    /// Source position.
    pub pos: Pos,
}

/// A function — either a `__kernel` entry point or a device function.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Function name.
    pub name: String,
    /// True for `__kernel void ...`.
    pub is_kernel: bool,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source position of the definition.
    pub pos: Pos,
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Unit {
    /// All functions (kernels and device functions) in source order.
    pub funcs: Vec<Func>,
    /// `#pragma` lines found in the source (line number, text).
    pub pragmas: Vec<(u32, String)>,
}

impl Unit {
    /// Names of the `__kernel` functions in the unit.
    pub fn kernel_names(&self) -> Vec<&str> {
        self.funcs
            .iter()
            .filter(|f| f.is_kernel)
            .map(|f| f.name.as_str())
            .collect()
    }
}
