//! Recursive-descent parser for the mini OpenCL-C dialect.

use super::ast::*;
use super::token::{lex, Pos, Spanned, Tok};

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Where the error occurred.
    pub pos: Pos,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: parse error: {}", self.pos, self.message)
    }
}

/// Parse a full translation unit.
pub fn parse(src: &str) -> Result<Unit, ParseError> {
    let (tokens, pragmas) = lex(src).map_err(|e| ParseError {
        message: e.message,
        pos: e.pos,
    })?;
    let mut p = Parser { tokens, i: 0 };
    let mut funcs = Vec::new();
    while !p.at_eof() {
        funcs.push(p.func()?);
    }
    Ok(Unit { funcs, pragmas })
}

/// Parse a single expression (used by the OpenACC pragma engine for clause
/// arguments like `copyin(a[0:n*n])`).
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let (tokens, _) = lex(src).map_err(|e| ParseError {
        message: e.message,
        pos: e.pos,
    })?;
    let mut p = Parser { tokens, i: 0 };
    let e = p.expr()?;
    p.expect(Tok::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Spanned>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.i].tok
    }

    fn peek2(&self) -> &Tok {
        if self.i + 1 < self.tokens.len() {
            &self.tokens[self.i + 1].tok
        } else {
            &Tok::Eof
        }
    }

    fn pos(&self) -> Pos {
        self.tokens[self.i].pos
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.i].tok.clone();
        if self.i + 1 < self.tokens.len() {
            self.i += 1;
        }
        t
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            message,
            pos: self.pos(),
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if let Tok::Ident(s) = self.peek() {
            if s == kw {
                self.bump();
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn is_type_kw(s: &str) -> bool {
        matches!(
            s,
            "void" | "bool" | "int" | "uint" | "long" | "float" | "float4" | "size_t"
        )
    }

    fn base_type(&mut self) -> Result<Type, ParseError> {
        let name = self.ident()?;
        match name.as_str() {
            "void" => Ok(Type::Void),
            "bool" => Ok(Type::Bool),
            "int" => Ok(Type::Int),
            "uint" | "size_t" | "unsigned" => Ok(Type::Uint),
            "long" => Ok(Type::Long),
            "float" => Ok(Type::Float),
            "float4" => Ok(Type::Float4),
            other => Err(self.err(format!("unknown type `{other}`"))),
        }
    }

    fn space_qualifier(&mut self) -> Option<Space> {
        if let Tok::Ident(s) = self.peek() {
            let sp = match s.as_str() {
                "__global" | "global" => Some(Space::Global),
                "__local" | "local" => Some(Space::Local),
                "__constant" | "constant" => Some(Space::Constant),
                "__private" | "private" => Some(Space::Private),
                _ => None,
            };
            if sp.is_some() {
                self.bump();
            }
            sp
        } else {
            None
        }
    }

    fn func(&mut self) -> Result<Func, ParseError> {
        let pos = self.pos();
        let is_kernel = self.eat_ident("__kernel") || self.eat_ident("kernel");
        let ret = self.base_type()?;
        if is_kernel && ret != Type::Void {
            return Err(self.err("__kernel functions must return void".to_string()));
        }
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                params.push(self.param()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::LBrace)?;
        let body = self.block_body()?;
        Ok(Func {
            name,
            is_kernel,
            ret,
            params,
            body,
            pos,
        })
    }

    fn param(&mut self) -> Result<Param, ParseError> {
        let pos = self.pos();
        let mut space = self.space_qualifier();
        let mut is_const = self.eat_ident("const");
        if space.is_none() {
            space = self.space_qualifier();
        }
        let base = self.base_type()?;
        if self.eat_ident("const") {
            is_const = true;
        }
        let ty = if *self.peek() == Tok::Star {
            self.bump();
            let sp = space.unwrap_or(Space::Global);
            if sp == Space::Constant {
                is_const = true;
            }
            Type::Ptr(sp, Box::new(base))
        } else {
            base
        };
        let name = self.ident()?;
        Ok(Param {
            name,
            ty,
            is_const,
            pos,
        })
    }

    fn block_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            if self.at_eof() {
                return Err(self.err("unterminated block".to_string()));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(stmts)
    }

    fn looks_like_decl(&self) -> bool {
        match self.peek() {
            Tok::Ident(s) => {
                matches!(
                    s.as_str(),
                    "__local" | "local" | "__private" | "private" | "const"
                ) || (Self::is_type_kw(s) && matches!(self.peek2(), Tok::Ident(_)))
            }
            _ => false,
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::LBrace => {
                self.bump();
                Ok(Stmt::Block(self.block_body()?))
            }
            Tok::Ident(kw) if kw == "if" => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_blk = self.stmt_as_block()?;
                let else_blk = if self.eat_ident("else") {
                    self.stmt_as_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                })
            }
            Tok::Ident(kw) if kw == "while" => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::Ident(kw) if kw == "for" => {
                self.bump();
                self.expect(Tok::LParen)?;
                let init = if *self.peek() == Tok::Semi {
                    self.bump();
                    None
                } else {
                    let s = self.simple_stmt_no_semi()?;
                    self.expect(Tok::Semi)?;
                    Some(Box::new(s))
                };
                let cond = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                let step = if *self.peek() == Tok::RParen {
                    None
                } else {
                    Some(Box::new(self.simple_stmt_no_semi()?))
                };
                self.expect(Tok::RParen)?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::Ident(kw) if kw == "return" => {
                self.bump();
                let value = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return { value, pos })
            }
            Tok::Ident(kw) if kw == "barrier" => {
                self.bump();
                self.expect(Tok::LParen)?;
                // Accept any fence-flag expression: CLK_LOCAL_MEM_FENCE etc.
                while *self.peek() != Tok::RParen {
                    if self.at_eof() {
                        return Err(self.err("unterminated barrier()".to_string()));
                    }
                    self.bump();
                }
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Barrier { pos })
            }
            _ => {
                if self.looks_like_decl() {
                    let s = self.decl()?;
                    self.expect(Tok::Semi)?;
                    Ok(s)
                } else {
                    let s = self.simple_stmt_no_semi()?;
                    self.expect(Tok::Semi)?;
                    Ok(s)
                }
            }
        }
    }

    fn stmt_as_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if *self.peek() == Tok::LBrace {
            self.bump();
            self.block_body()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn decl(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.pos();
        let space = self.space_qualifier().unwrap_or(Space::Private);
        let _ = self.eat_ident("const");
        let ty = self.base_type()?;
        let name = self.ident()?;
        let array_len = if *self.peek() == Tok::LBracket {
            self.bump();
            let n = match self.bump() {
                Tok::IntLit(v) if v > 0 => v as usize,
                other => {
                    return Err(self.err(format!(
                        "array length must be a positive integer literal, found {other}"
                    )))
                }
            };
            self.expect(Tok::RBracket)?;
            Some(n)
        } else {
            None
        };
        let init = if *self.peek() == Tok::Assign {
            self.bump();
            Some(self.expr()?)
        } else {
            None
        };
        if array_len.is_some() && init.is_some() {
            return Err(self.err("array declarations cannot have initialisers".to_string()));
        }
        Ok(Stmt::Decl {
            name,
            ty,
            space,
            array_len,
            init,
            pos,
        })
    }

    /// Assignment, increment, call, or declaration — without the trailing
    /// semicolon (used in `for` headers).
    fn simple_stmt_no_semi(&mut self) -> Result<Stmt, ParseError> {
        if self.looks_like_decl() {
            return self.decl();
        }
        let pos = self.pos();
        let e = self.expr()?;
        // Postfix ++/-- as statements.
        if matches!(self.peek(), Tok::PlusPlus | Tok::MinusMinus) {
            let inc = matches!(self.bump(), Tok::PlusPlus);
            let target = self.expr_to_lvalue(&e)?;
            return Ok(Stmt::Assign {
                target,
                op: if inc { AssignOp::Add } else { AssignOp::Sub },
                value: Expr::IntLit(1, pos),
                pos,
            });
        }
        let op = match self.peek() {
            Tok::Assign => Some(AssignOp::Set),
            Tok::PlusAssign => Some(AssignOp::Add),
            Tok::MinusAssign => Some(AssignOp::Sub),
            Tok::StarAssign => Some(AssignOp::Mul),
            Tok::SlashAssign => Some(AssignOp::Div),
            Tok::ShlAssign => Some(AssignOp::Shl),
            Tok::ShrAssign => Some(AssignOp::Shr),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let value = self.expr()?;
            let target = self.expr_to_lvalue(&e)?;
            Ok(Stmt::Assign {
                target,
                op,
                value,
                pos,
            })
        } else {
            Ok(Stmt::ExprStmt(e))
        }
    }

    fn expr_to_lvalue(&self, e: &Expr) -> Result<LValue, ParseError> {
        match e {
            Expr::Var(n, p) => Ok(LValue::Var(n.clone(), *p)),
            Expr::Index(base, idx, p) => {
                if let Expr::Var(n, _) = base.as_ref() {
                    Ok(LValue::Index(n.clone(), (**idx).clone(), *p))
                } else {
                    Err(ParseError {
                        message: "only `name[index]` may be assigned".to_string(),
                        pos: *p,
                    })
                }
            }
            Expr::Comp(base, c, p) => {
                if let Expr::Var(n, _) = base.as_ref() {
                    Ok(LValue::Comp(n.clone(), *c, *p))
                } else {
                    Err(ParseError {
                        message: "only `name.component` may be assigned".to_string(),
                        pos: *p,
                    })
                }
            }
            other => Err(ParseError {
                message: "expression is not assignable".to_string(),
                pos: other.pos(),
            }),
        }
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(0)?;
        if *self.peek() == Tok::Question {
            let pos = self.pos();
            self.bump();
            let a = self.expr()?;
            self.expect(Tok::Colon)?;
            let b = self.ternary()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b), pos))
        } else {
            Ok(cond)
        }
    }

    fn bin_op_prec(t: &Tok) -> Option<(BinOp, u8)> {
        Some(match t {
            Tok::OrOr => (BinOp::LOr, 1),
            Tok::AndAnd => (BinOp::LAnd, 2),
            Tok::Pipe => (BinOp::BOr, 3),
            Tok::Caret => (BinOp::BXor, 4),
            Tok::Amp => (BinOp::BAnd, 5),
            Tok::Eq => (BinOp::Eq, 6),
            Tok::Ne => (BinOp::Ne, 6),
            Tok::Lt => (BinOp::Lt, 7),
            Tok::Le => (BinOp::Le, 7),
            Tok::Gt => (BinOp::Gt, 7),
            Tok::Ge => (BinOp::Ge, 7),
            Tok::Shl => (BinOp::Shl, 8),
            Tok::Shr => (BinOp::Shr, 8),
            Tok::Plus => (BinOp::Add, 9),
            Tok::Minus => (BinOp::Sub, 9),
            Tok::Star => (BinOp::Mul, 10),
            Tok::Slash => (BinOp::Div, 10),
            Tok::Percent => (BinOp::Rem, 10),
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = Self::bin_op_prec(self.peek()) {
            if prec < min_prec {
                break;
            }
            let pos = self.pos();
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), pos);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?), pos))
            }
            Tok::Not => {
                self.bump();
                Ok(Expr::Unary(UnOp::LNot, Box::new(self.unary()?), pos))
            }
            Tok::Tilde => {
                self.bump();
                Ok(Expr::Unary(UnOp::BNot, Box::new(self.unary()?), pos))
            }
            Tok::LParen => {
                // Possible cast: `(type) expr` or `(float4)(a,b,c,d)`.
                if let Tok::Ident(s) = self.peek2() {
                    if Self::is_type_kw(s) {
                        self.bump(); // (
                        let ty = self.base_type()?;
                        self.expect(Tok::RParen)?;
                        if ty == Type::Float4 {
                            self.expect(Tok::LParen)?;
                            let mut comps = vec![self.expr()?];
                            while *self.peek() == Tok::Comma {
                                self.bump();
                                comps.push(self.expr()?);
                            }
                            self.expect(Tok::RParen)?;
                            if comps.len() != 1 && comps.len() != 4 {
                                return Err(self.err(
                                    "(float4)(...) takes one (splat) or four components"
                                        .to_string(),
                                ));
                            }
                            return Ok(Expr::MakeF4(comps, pos));
                        }
                        let inner = self.unary()?;
                        return Ok(Expr::Cast(ty, Box::new(inner), pos));
                    }
                }
                self.postfix()
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            let pos = self.pos();
            match self.peek().clone() {
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(idx), pos);
                }
                Tok::Dot => {
                    self.bump();
                    let comp = self.ident()?;
                    let c = match comp.as_str() {
                        "x" | "s0" => 0u8,
                        "y" | "s1" => 1,
                        "z" | "s2" => 2,
                        "w" | "s3" => 3,
                        other => {
                            return Err(self.err(format!("unknown vector component `.{other}`")))
                        }
                    };
                    e = Expr::Comp(Box::new(e), c, pos);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::IntLit(v) => {
                self.bump();
                Ok(Expr::IntLit(v, pos))
            }
            Tok::FloatLit(v) => {
                self.bump();
                Ok(Expr::FloatLit(v, pos))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if Self::is_type_kw(&name) {
                    return Err(self.err(format!(
                        "type keyword `{name}` is not valid in an expression"
                    )));
                }
                self.bump();
                match name.as_str() {
                    "true" => return Ok(Expr::BoolLit(true, pos)),
                    "false" => return Ok(Expr::BoolLit(false, pos)),
                    _ => {}
                }
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Call(name, args, pos))
                } else {
                    Ok(Expr::Var(name, pos))
                }
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SQUARE: &str = r#"
        __kernel void square(__global float* input,
                             __global float* output,
                             const int count) {
            int i = get_global_id(0);
            if (i < count) {
                output[i] = input[i] * input[i];
            }
        }
    "#;

    #[test]
    fn parses_listing1_square_kernel() {
        let unit = parse(SQUARE).unwrap();
        assert_eq!(unit.kernel_names(), vec!["square"]);
        let f = &unit.funcs[0];
        assert_eq!(f.params.len(), 3);
        assert_eq!(
            f.params[0].ty,
            Type::Ptr(Space::Global, Box::new(Type::Float))
        );
        assert!(f.params[2].is_const);
    }

    #[test]
    fn parses_for_loop_with_compound_step() {
        let unit = parse(
            "__kernel void k(__global float* a) {
                float c = 0.0f;
                for (int i = 0; i < 10; i++) { c += a[i]; }
                a[0] = c;
            }",
        )
        .unwrap();
        assert_eq!(unit.funcs[0].body.len(), 3);
    }

    #[test]
    fn parses_barrier_and_local() {
        let unit = parse(
            "__kernel void r(__global float* a, __local float* s) {
                int l = get_local_id(0);
                s[l] = a[l];
                barrier(CLK_LOCAL_MEM_FENCE);
                for (uint st = 64; st > 0; st >>= 1) {
                    if (l < st) { s[l] = fmin(s[l], s[l + st]); }
                    barrier(CLK_LOCAL_MEM_FENCE);
                }
            }",
        )
        .unwrap();
        let barriers = count_barriers(&unit.funcs[0].body);
        assert_eq!(barriers, 2);
    }

    fn count_barriers(stmts: &[Stmt]) -> usize {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::Barrier { .. } => 1,
                Stmt::Block(b) => count_barriers(b),
                Stmt::If {
                    then_blk, else_blk, ..
                } => count_barriers(then_blk) + count_barriers(else_blk),
                Stmt::For { body, .. } | Stmt::While { body, .. } => count_barriers(body),
                _ => 0,
            })
            .sum()
    }

    #[test]
    fn parses_float4_constructor_and_swizzle() {
        let unit = parse(
            "__kernel void v(__global float4* a) {
                float4 t = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
                a[0] = t;
                float s = t.x + a[0].w;
                a[1] = (float4)(s);
            }",
        )
        .unwrap();
        assert_eq!(unit.funcs[0].name, "v");
    }

    #[test]
    fn parses_device_function_and_ternary() {
        let unit = parse(
            "float clampf(float v, float lo, float hi) {
                return v < lo ? lo : (v > hi ? hi : v);
            }
            __kernel void k(__global float* a) { a[0] = clampf(a[0], 0.0f, 1.0f); }",
        )
        .unwrap();
        assert_eq!(unit.funcs.len(), 2);
        assert!(!unit.funcs[0].is_kernel);
        assert!(unit.funcs[1].is_kernel);
    }

    #[test]
    fn rejects_non_void_kernel() {
        assert!(parse("__kernel int k() { return 1; }").is_err());
    }

    #[test]
    fn rejects_assignment_to_call() {
        assert!(parse("__kernel void k() { f() = 3; }").is_err());
    }

    #[test]
    fn keeps_pragmas() {
        let unit =
            parse("#pragma acc parallel loop\n__kernel void k(__global float* a) { }").unwrap();
        assert_eq!(unit.pragmas.len(), 1);
    }

    #[test]
    fn parses_local_array_decl() {
        let unit = parse(
            "__kernel void k(__global float* a) {
                __local float scratch[128];
                scratch[get_local_id(0)] = a[get_global_id(0)];
                barrier(CLK_LOCAL_MEM_FENCE);
            }",
        )
        .unwrap();
        match &unit.funcs[0].body[0] {
            Stmt::Decl {
                space, array_len, ..
            } => {
                assert_eq!(*space, Space::Local);
                assert_eq!(*array_len, Some(128));
            }
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn error_carries_position() {
        let err = parse("__kernel void k() {\n  int = 3;\n}").unwrap_err();
        assert_eq!(err.pos.line, 2);
    }
}
