//! Events with profiling timestamps, mirroring `cl_event` +
//! `clGetEventProfilingInfo`.
//!
//! Timestamps are *virtual nanoseconds* from the owning queue's clock (see
//! [`crate::timing`]); they are deterministic and machine-independent, which
//! is what lets the figure harness reproduce the paper's stacked bars.

use std::sync::Arc;

/// What kind of command an event describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandKind {
    /// Host→device transfer.
    WriteBuffer,
    /// Device→host transfer.
    ReadBuffer,
    /// Kernel execution; carries the kernel name.
    NdRange(String),
    /// Queue marker (used by `finish`).
    Marker,
}

#[derive(Debug)]
struct EventInner {
    kind: CommandKind,
    queued_ns: f64,
    submit_ns: f64,
    start_ns: f64,
    end_ns: f64,
    bytes: usize,
    items: u64,
    ops: u64,
    engine: Option<&'static str>,
}

/// A completed command. The simulator executes commands eagerly, so events
/// are always in the "complete" state — `wait()` exists for API fidelity.
#[derive(Debug, Clone)]
pub struct Event {
    inner: Arc<EventInner>,
}

impl Event {
    pub(crate) fn new(
        kind: CommandKind,
        queued_ns: f64,
        start_ns: f64,
        end_ns: f64,
        bytes: usize,
        items: u64,
    ) -> Event {
        Event {
            inner: Arc::new(EventInner {
                kind,
                queued_ns,
                submit_ns: queued_ns,
                start_ns,
                end_ns,
                bytes,
                items,
                ops: 0,
                engine: None,
            }),
        }
    }

    /// A kernel-launch event carrying execution statistics: retired
    /// abstract ops and the engine that ran the dispatch.
    pub(crate) fn new_kernel(
        name: String,
        queued_ns: f64,
        start_ns: f64,
        end_ns: f64,
        items: u64,
        ops: u64,
        engine: &'static str,
    ) -> Event {
        Event {
            inner: Arc::new(EventInner {
                kind: CommandKind::NdRange(name),
                queued_ns,
                submit_ns: queued_ns,
                start_ns,
                end_ns,
                bytes: 0,
                items,
                ops,
                engine: Some(engine),
            }),
        }
    }

    /// Command kind.
    pub fn kind(&self) -> &CommandKind {
        &self.inner.kind
    }

    /// `CL_PROFILING_COMMAND_QUEUED` in virtual ns.
    pub fn queued_ns(&self) -> f64 {
        self.inner.queued_ns
    }

    /// `CL_PROFILING_COMMAND_SUBMIT` in virtual ns.
    pub fn submit_ns(&self) -> f64 {
        self.inner.submit_ns
    }

    /// `CL_PROFILING_COMMAND_START` in virtual ns.
    pub fn start_ns(&self) -> f64 {
        self.inner.start_ns
    }

    /// `CL_PROFILING_COMMAND_END` in virtual ns.
    pub fn end_ns(&self) -> f64 {
        self.inner.end_ns
    }

    /// Execution duration (`end - start`) in virtual ns.
    pub fn duration_ns(&self) -> f64 {
        self.inner.end_ns - self.inner.start_ns
    }

    /// Bytes moved (transfers) — 0 for kernel launches.
    pub fn bytes(&self) -> usize {
        self.inner.bytes
    }

    /// Work-items executed (kernels) — 0 for transfers.
    pub fn items(&self) -> u64 {
        self.inner.items
    }

    /// Abstract ops retired by the dispatch (kernels) — 0 for transfers.
    /// Identical on all three execution engines for the same dispatch.
    pub fn ops(&self) -> u64 {
        self.inner.ops
    }

    /// Label of the engine that executed the dispatch (`"stack"` /
    /// `"register"` / `"native"`), or `None` for non-kernel commands.
    pub fn engine(&self) -> Option<&'static str> {
        self.inner.engine
    }

    /// Block until the command completes. Commands execute eagerly in the
    /// simulator, so this returns immediately; it exists so host code reads
    /// like real OpenCL host code.
    pub fn wait(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_is_end_minus_start() {
        let e = Event::new(CommandKind::WriteBuffer, 0.0, 10.0, 35.0, 128, 0);
        assert_eq!(e.duration_ns(), 25.0);
        assert_eq!(e.bytes(), 128);
        e.wait();
    }

    #[test]
    fn kind_carries_kernel_name() {
        let e = Event::new(CommandKind::NdRange("mm".into()), 0.0, 0.0, 1.0, 0, 64);
        assert_eq!(e.kind(), &CommandKind::NdRange("mm".into()));
        assert_eq!(e.items(), 64);
    }
}
