//! Programs and kernels, mirroring `cl_program` / `cl_kernel`.

use crate::buffer::{Buffer, MemFlags};
use crate::context::Context;
use crate::engine::{default_engine, Engine};
use crate::error::{ClError, ClResult};
use crate::minicl::ast::{Space, Type};
use crate::minicl::interp::RtArg;
use crate::minicl::native::{self, NativeProgram};
use crate::minicl::regir::{self, RegProgram};
use crate::minicl::{self, CompiledUnit, KernelInfo, Val};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An argument bound to a kernel slot.
#[derive(Debug, Clone)]
pub(crate) enum ArgSpec {
    /// A device buffer.
    Buf(Buffer),
    /// Immediate scalar.
    Scalar(Val),
    /// `__local` allocation size (mirrors `clSetKernelArg(size, NULL)`).
    LocalBytes(usize),
}

/// A compiled program: the result of runtime compilation of mini OpenCL-C
/// source, mirroring `clCreateProgramWithSource` + `clBuildProgram`.
#[derive(Debug, Clone)]
pub struct Program {
    ctx_id: u64,
    unit: Arc<CompiledUnit>,
    source: Arc<String>,
}

impl Program {
    /// Compile `source` for the given context. On failure, the error carries
    /// the full build log (every diagnostic, with line/column positions).
    pub fn build(ctx: &Context, source: &str) -> ClResult<Program> {
        ctx.build_fault_check()?;
        let unit =
            minicl::parse(source).map_err(|e| ClError::BuildFailure { log: e.to_string() })?;
        let compiled = minicl::compile(&unit).map_err(|diags| ClError::BuildFailure {
            log: diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n"),
        })?;
        Ok(Program {
            ctx_id: ctx.id(),
            unit: Arc::new(compiled),
            source: Arc::new(source.to_string()),
        })
    }

    /// The kernel names available in this program.
    pub fn kernel_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.unit.kernels.keys().cloned().collect();
        names.sort();
        names
    }

    /// Original source text (what `clGetProgramInfo(CL_PROGRAM_SOURCE)`
    /// would return).
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Create a kernel object for entry point `name`, mirroring
    /// `clCreateKernel`.
    pub fn create_kernel(&self, name: &str) -> ClResult<Kernel> {
        let info = self
            .unit
            .kernels
            .get(name)
            .cloned()
            .ok_or_else(|| ClError::KernelNotFound(name.to_string()))?;
        let nargs = info.params.len();
        Ok(Kernel {
            ctx_id: self.ctx_id,
            unit: Arc::clone(&self.unit),
            info,
            args: Arc::new(Mutex::new(vec![None; nargs])),
            cache: Arc::new(KernelCache::default()),
        })
    }
}

/// The per-dispatch state that only depends on the kernel's bound
/// arguments: resolved runtime args with deduplicated pool slots, the
/// unique buffers to check out (in slot order), their effective read-only
/// flags, and the total local-memory requirement. Built once per argument
/// binding and reused by every dispatch until an argument changes.
#[derive(Debug)]
pub(crate) struct DispatchPlan {
    /// Argument-binding generation this plan was built from.
    pub(crate) generation: u64,
    /// Resolved runtime arguments (pool slots already assigned).
    pub(crate) rt_args: Vec<RtArg>,
    /// Unique buffers in pool-slot order.
    pub(crate) pooled: Vec<Buffer>,
    /// Per-pool-slot effective read-only flag (const across all bindings).
    pub(crate) read_only: Vec<bool>,
    /// Host-set `__local` args + in-body declarations, in bytes.
    pub(crate) local_bytes: usize,
}

/// Lazily compiled register program for a kernel.
#[derive(Debug, Default)]
enum RegSlot {
    /// Not attempted yet.
    #[default]
    NotCompiled,
    /// Lowering declined the kernel; always use the stack engine.
    Unsupported,
    /// Ready to dispatch.
    Ready(Arc<RegProgram>),
}

/// Lazily compiled native program for a kernel (third rung of the engine
/// ladder, lowered from the register program).
#[derive(Debug, Default)]
enum NativeSlot {
    /// Not attempted yet.
    #[default]
    NotCompiled,
    /// Lowering declined the kernel; fall back to the register engine.
    Unsupported,
    /// Ready to dispatch.
    Ready(Arc<NativeProgram>),
}

/// Dispatch-state cache shared by all clones of a kernel: the argument
/// generation counter, the cached [`DispatchPlan`], the lazily compiled
/// register and native programs and the per-kernel engine override.
#[derive(Debug, Default)]
pub(crate) struct KernelCache {
    /// Bumped on every argument rebind; invalidates the plan.
    generation: AtomicU64,
    plan: Mutex<Option<Arc<DispatchPlan>>>,
    reg: Mutex<RegSlot>,
    native: Mutex<NativeSlot>,
    engine: Mutex<Option<Engine>>,
}

/// A kernel object: an entry point plus its bound arguments.
#[derive(Debug, Clone)]
pub struct Kernel {
    pub(crate) ctx_id: u64,
    pub(crate) unit: Arc<CompiledUnit>,
    pub(crate) info: KernelInfo,
    pub(crate) args: Arc<Mutex<Vec<Option<ArgSpec>>>>,
    pub(crate) cache: Arc<KernelCache>,
}

impl Kernel {
    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.info.name
    }

    /// Number of declared parameters.
    pub fn num_args(&self) -> usize {
        self.info.params.len()
    }

    /// True when the kernel contains a work-group barrier.
    pub fn has_barrier(&self) -> bool {
        self.info.has_barrier
    }

    fn param(&self, index: usize) -> ClResult<&crate::minicl::bytecode::KParam> {
        self.info.params.get(index).ok_or_else(|| {
            ClError::InvalidKernelArgs(format!(
                "kernel `{}` has {} parameters; index {index} is out of range",
                self.info.name,
                self.info.params.len()
            ))
        })
    }

    /// Bind a buffer to parameter `index` (must be a `__global` or
    /// `__constant` pointer of any element type).
    pub fn set_arg_buffer(&self, index: usize, buf: &Buffer) -> ClResult<()> {
        let p = self.param(index)?;
        match &p.ty {
            Type::Ptr(Space::Global | Space::Constant, _) => {}
            other => {
                return Err(ClError::InvalidKernelArgs(format!(
                    "parameter `{}` is `{other}`, not a global pointer",
                    p.name
                )))
            }
        }
        if buf.context_id() != self.ctx_id {
            return Err(ClError::InvalidContext(format!(
                "buffer {} belongs to a different context than kernel `{}`",
                buf.id(),
                self.info.name
            )));
        }
        self.args.lock()[index] = Some(ArgSpec::Buf(buf.clone()));
        self.cache.generation.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Bind a `__local` allocation of `bytes` bytes to parameter `index`.
    pub fn set_arg_local(&self, index: usize, bytes: usize) -> ClResult<()> {
        let p = self.param(index)?;
        if !matches!(p.ty, Type::Ptr(Space::Local, _)) {
            return Err(ClError::InvalidKernelArgs(format!(
                "parameter `{}` is not a __local pointer",
                p.name
            )));
        }
        self.args.lock()[index] = Some(ArgSpec::LocalBytes(bytes));
        self.cache.generation.fetch_add(1, Ordering::Release);
        Ok(())
    }

    fn set_scalar(&self, index: usize, v: Val, want_int: bool) -> ClResult<()> {
        let p = self.param(index)?;
        let ok = match &p.ty {
            t if t.is_integer() => want_int,
            Type::Float => !want_int,
            _ => false,
        };
        if !ok {
            return Err(ClError::InvalidKernelArgs(format!(
                "parameter `{}` has type `{}`; scalar of the wrong kind supplied",
                p.name, p.ty
            )));
        }
        self.args.lock()[index] = Some(ArgSpec::Scalar(v));
        self.cache.generation.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Bind an `int`/`uint` scalar.
    pub fn set_arg_i32(&self, index: usize, v: i32) -> ClResult<()> {
        self.set_scalar(index, Val::I(v as i64), true)
    }

    /// Bind a `long` scalar.
    pub fn set_arg_i64(&self, index: usize, v: i64) -> ClResult<()> {
        self.set_scalar(index, Val::I(v), true)
    }

    /// Bind a `float` scalar.
    pub fn set_arg_f32(&self, index: usize, v: f32) -> ClResult<()> {
        self.set_scalar(index, Val::F(v as f64), false)
    }

    /// Override the execution engine for this kernel's dispatches, or
    /// `None` to follow the process-wide default
    /// ([`crate::engine::default_engine`]). Shared by all clones of the
    /// kernel. The override selects a rung only when the corresponding
    /// lowering supports the kernel; otherwise dispatch silently falls
    /// down the ladder (native → register → stack), visible in the
    /// event's `engine()`.
    pub fn set_engine(&self, engine: Option<Engine>) {
        *self.cache.engine.lock() = engine;
    }

    /// The engine this kernel's next dispatch will *request* (the dispatch
    /// may still fall down the ladder if a lowering declined the kernel).
    pub fn engine(&self) -> Engine {
        self.cache.engine.lock().unwrap_or_else(default_engine)
    }

    /// The lazily compiled register program, or `None` when the lowering
    /// does not cover this kernel (→ stack fallback). Compiled at most
    /// once per kernel object; all clones share the result.
    pub(crate) fn reg_program(&self) -> Option<Arc<RegProgram>> {
        let mut slot = self.cache.reg.lock();
        match &*slot {
            RegSlot::Ready(p) => Some(Arc::clone(p)),
            RegSlot::Unsupported => None,
            RegSlot::NotCompiled => match regir::compile_kernel(&self.unit, &self.info) {
                Some(prog) => {
                    let prog = Arc::new(prog);
                    *slot = RegSlot::Ready(Arc::clone(&prog));
                    Some(prog)
                }
                None => {
                    *slot = RegSlot::Unsupported;
                    None
                }
            },
        }
    }

    /// The lazily compiled native program, or `None` when either lowering
    /// rung declines this kernel (→ register or stack fallback). Compiled
    /// at most once per kernel object; all clones share the result.
    pub(crate) fn native_program(&self) -> Option<Arc<NativeProgram>> {
        {
            let slot = self.cache.native.lock();
            match &*slot {
                NativeSlot::Ready(p) => return Some(Arc::clone(p)),
                NativeSlot::Unsupported => return None,
                NativeSlot::NotCompiled => {}
            }
        }
        // Compile outside the native lock: reg_program takes its own lock.
        let compiled = self
            .reg_program()
            .and_then(|reg| native::compile_native(&reg, &self.info));
        let mut slot = self.cache.native.lock();
        if let NativeSlot::Ready(p) = &*slot {
            return Some(Arc::clone(p));
        }
        match compiled {
            Some(prog) => {
                let prog = Arc::new(prog);
                *slot = NativeSlot::Ready(Arc::clone(&prog));
                Some(prog)
            }
            None => {
                *slot = NativeSlot::Unsupported;
                None
            }
        }
    }

    /// The cached dispatch plan for the current argument binding, building
    /// it if no plan exists or an argument changed since the last build.
    pub(crate) fn dispatch_plan(&self) -> ClResult<Arc<DispatchPlan>> {
        let generation = self.cache.generation.load(Ordering::Acquire);
        {
            let plan = self.cache.plan.lock();
            if let Some(p) = plan.as_ref() {
                if p.generation == generation {
                    return Ok(Arc::clone(p));
                }
            }
        }
        let specs = self.collect_args()?;
        // Total local memory: host-set __local args + in-body declarations.
        let local_bytes: usize = specs
            .iter()
            .map(|s| match s {
                ArgSpec::LocalBytes(b) => *b,
                _ => 0,
            })
            .sum::<usize>()
            + self.info.local_decl_bytes.iter().sum::<usize>();
        // A buffer bound to several parameters is writable if *any* of
        // them is writable: decide const-ness across all bindings first.
        let mut writable_ids: Vec<u64> = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            if let ArgSpec::Buf(b) = spec {
                let via_const = matches!(self.info.params[i].ty, Type::Ptr(Space::Constant, _));
                if !via_const && !matches!(b.flags(), MemFlags::ReadOnly) {
                    writable_ids.push(b.id());
                }
            }
        }
        // Assign pool slots: unique buffers only, so aliased parameters
        // share one checkout. The linear scan happens once per rebind
        // here instead of once per dispatch.
        let mut pooled: Vec<Buffer> = Vec::new();
        let mut read_only: Vec<bool> = Vec::new();
        let mut rt_args: Vec<RtArg> = Vec::with_capacity(specs.len());
        for spec in specs.iter() {
            match spec {
                ArgSpec::Buf(b) => {
                    let slot = match pooled.iter().position(|p| p.id() == b.id()) {
                        Some(s) => s,
                        None => {
                            pooled.push(b.clone());
                            read_only.push(!writable_ids.contains(&b.id()));
                            pooled.len() - 1
                        }
                    };
                    rt_args.push(RtArg::Buf { pool_slot: slot });
                }
                ArgSpec::Scalar(v) => rt_args.push(RtArg::Scalar(*v)),
                ArgSpec::LocalBytes(b) => rt_args.push(RtArg::Local { bytes: *b }),
            }
        }
        let plan = Arc::new(DispatchPlan {
            generation,
            rt_args,
            pooled,
            read_only,
            local_bytes,
        });
        *self.cache.plan.lock() = Some(Arc::clone(&plan));
        Ok(plan)
    }

    /// Validate that every parameter has an argument; returns the specs.
    pub(crate) fn collect_args(&self) -> ClResult<Vec<ArgSpec>> {
        let args = self.args.lock();
        let mut out = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            match a {
                Some(spec) => out.push(spec.clone()),
                None => {
                    return Err(ClError::InvalidKernelArgs(format!(
                        "parameter {i} (`{}`) of kernel `{}` was never set",
                        self.info.params[i].name, self.info.name
                    )))
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::MemFlags;
    use crate::platform::Platform;

    fn ctx() -> Context {
        Context::new(&Platform::all()[0].devices(None)).unwrap()
    }

    const SRC: &str = "__kernel void k(__global float* a, const int n, __local float* s) {
        s[get_local_id(0)] = a[get_global_id(0)] + (float)n;
        barrier(CLK_LOCAL_MEM_FENCE);
        a[get_global_id(0)] = s[get_local_id(0)];
    }";

    #[test]
    fn build_and_introspect() {
        let c = ctx();
        let p = Program::build(&c, SRC).unwrap();
        assert_eq!(p.kernel_names(), vec!["k".to_string()]);
        let k = p.create_kernel("k").unwrap();
        assert_eq!(k.num_args(), 3);
        assert!(k.has_barrier());
    }

    #[test]
    fn build_failure_carries_log() {
        let c = ctx();
        let err =
            Program::build(&c, "__kernel void k(__global float* a) { a[0] = nope; }").unwrap_err();
        match err {
            ClError::BuildFailure { log } => assert!(log.contains("nope")),
            other => panic!("expected BuildFailure, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kernel_name() {
        let c = ctx();
        let p = Program::build(&c, SRC).unwrap();
        assert!(matches!(
            p.create_kernel("missing"),
            Err(ClError::KernelNotFound(_))
        ));
    }

    #[test]
    fn arg_type_validation() {
        let c = ctx();
        let p = Program::build(&c, SRC).unwrap();
        let k = p.create_kernel("k").unwrap();
        let buf = c.create_buffer(MemFlags::ReadWrite, 64).unwrap();
        assert!(k.set_arg_buffer(0, &buf).is_ok());
        assert!(k.set_arg_buffer(1, &buf).is_err()); // n is an int
        assert!(k.set_arg_i32(1, 5).is_ok());
        assert!(k.set_arg_f32(1, 5.0).is_err());
        assert!(k.set_arg_local(2, 256).is_ok());
        assert!(k.set_arg_local(0, 256).is_err());
    }

    #[test]
    fn cross_context_buffer_is_rejected() {
        let c1 = ctx();
        let c2 = ctx();
        let p = Program::build(&c1, SRC).unwrap();
        let k = p.create_kernel("k").unwrap();
        let foreign = c2.create_buffer(MemFlags::ReadWrite, 64).unwrap();
        assert!(matches!(
            k.set_arg_buffer(0, &foreign),
            Err(ClError::InvalidContext(_))
        ));
    }

    #[test]
    fn missing_arg_detected_at_collect() {
        let c = ctx();
        let p = Program::build(&c, SRC).unwrap();
        let k = p.create_kernel("k").unwrap();
        k.set_arg_i32(1, 1).unwrap();
        assert!(matches!(
            k.collect_args(),
            Err(ClError::InvalidKernelArgs(_))
        ));
    }
}
