//! Programs and kernels, mirroring `cl_program` / `cl_kernel`.

use crate::buffer::Buffer;
use crate::context::Context;
use crate::error::{ClError, ClResult};
use crate::minicl::ast::{Space, Type};
use crate::minicl::{self, CompiledUnit, KernelInfo, Val};
use parking_lot::Mutex;
use std::sync::Arc;

/// An argument bound to a kernel slot.
#[derive(Debug, Clone)]
pub(crate) enum ArgSpec {
    /// A device buffer.
    Buf(Buffer),
    /// Immediate scalar.
    Scalar(Val),
    /// `__local` allocation size (mirrors `clSetKernelArg(size, NULL)`).
    LocalBytes(usize),
}

/// A compiled program: the result of runtime compilation of mini OpenCL-C
/// source, mirroring `clCreateProgramWithSource` + `clBuildProgram`.
#[derive(Debug, Clone)]
pub struct Program {
    ctx_id: u64,
    unit: Arc<CompiledUnit>,
    source: Arc<String>,
}

impl Program {
    /// Compile `source` for the given context. On failure, the error carries
    /// the full build log (every diagnostic, with line/column positions).
    pub fn build(ctx: &Context, source: &str) -> ClResult<Program> {
        ctx.build_fault_check()?;
        let unit =
            minicl::parse(source).map_err(|e| ClError::BuildFailure { log: e.to_string() })?;
        let compiled = minicl::compile(&unit).map_err(|diags| ClError::BuildFailure {
            log: diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n"),
        })?;
        Ok(Program {
            ctx_id: ctx.id(),
            unit: Arc::new(compiled),
            source: Arc::new(source.to_string()),
        })
    }

    /// The kernel names available in this program.
    pub fn kernel_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.unit.kernels.keys().cloned().collect();
        names.sort();
        names
    }

    /// Original source text (what `clGetProgramInfo(CL_PROGRAM_SOURCE)`
    /// would return).
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Create a kernel object for entry point `name`, mirroring
    /// `clCreateKernel`.
    pub fn create_kernel(&self, name: &str) -> ClResult<Kernel> {
        let info = self
            .unit
            .kernels
            .get(name)
            .cloned()
            .ok_or_else(|| ClError::KernelNotFound(name.to_string()))?;
        let nargs = info.params.len();
        Ok(Kernel {
            ctx_id: self.ctx_id,
            unit: Arc::clone(&self.unit),
            info,
            args: Arc::new(Mutex::new(vec![None; nargs])),
        })
    }
}

/// A kernel object: an entry point plus its bound arguments.
#[derive(Debug, Clone)]
pub struct Kernel {
    pub(crate) ctx_id: u64,
    pub(crate) unit: Arc<CompiledUnit>,
    pub(crate) info: KernelInfo,
    pub(crate) args: Arc<Mutex<Vec<Option<ArgSpec>>>>,
}

impl Kernel {
    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.info.name
    }

    /// Number of declared parameters.
    pub fn num_args(&self) -> usize {
        self.info.params.len()
    }

    /// True when the kernel contains a work-group barrier.
    pub fn has_barrier(&self) -> bool {
        self.info.has_barrier
    }

    fn param(&self, index: usize) -> ClResult<&crate::minicl::bytecode::KParam> {
        self.info.params.get(index).ok_or_else(|| {
            ClError::InvalidKernelArgs(format!(
                "kernel `{}` has {} parameters; index {index} is out of range",
                self.info.name,
                self.info.params.len()
            ))
        })
    }

    /// Bind a buffer to parameter `index` (must be a `__global` or
    /// `__constant` pointer of any element type).
    pub fn set_arg_buffer(&self, index: usize, buf: &Buffer) -> ClResult<()> {
        let p = self.param(index)?;
        match &p.ty {
            Type::Ptr(Space::Global | Space::Constant, _) => {}
            other => {
                return Err(ClError::InvalidKernelArgs(format!(
                    "parameter `{}` is `{other}`, not a global pointer",
                    p.name
                )))
            }
        }
        if buf.context_id() != self.ctx_id {
            return Err(ClError::InvalidContext(format!(
                "buffer {} belongs to a different context than kernel `{}`",
                buf.id(),
                self.info.name
            )));
        }
        self.args.lock()[index] = Some(ArgSpec::Buf(buf.clone()));
        Ok(())
    }

    /// Bind a `__local` allocation of `bytes` bytes to parameter `index`.
    pub fn set_arg_local(&self, index: usize, bytes: usize) -> ClResult<()> {
        let p = self.param(index)?;
        if !matches!(p.ty, Type::Ptr(Space::Local, _)) {
            return Err(ClError::InvalidKernelArgs(format!(
                "parameter `{}` is not a __local pointer",
                p.name
            )));
        }
        self.args.lock()[index] = Some(ArgSpec::LocalBytes(bytes));
        Ok(())
    }

    fn set_scalar(&self, index: usize, v: Val, want_int: bool) -> ClResult<()> {
        let p = self.param(index)?;
        let ok = match &p.ty {
            t if t.is_integer() => want_int,
            Type::Float => !want_int,
            _ => false,
        };
        if !ok {
            return Err(ClError::InvalidKernelArgs(format!(
                "parameter `{}` has type `{}`; scalar of the wrong kind supplied",
                p.name, p.ty
            )));
        }
        self.args.lock()[index] = Some(ArgSpec::Scalar(v));
        Ok(())
    }

    /// Bind an `int`/`uint` scalar.
    pub fn set_arg_i32(&self, index: usize, v: i32) -> ClResult<()> {
        self.set_scalar(index, Val::I(v as i64), true)
    }

    /// Bind a `long` scalar.
    pub fn set_arg_i64(&self, index: usize, v: i64) -> ClResult<()> {
        self.set_scalar(index, Val::I(v), true)
    }

    /// Bind a `float` scalar.
    pub fn set_arg_f32(&self, index: usize, v: f32) -> ClResult<()> {
        self.set_scalar(index, Val::F(v as f64), false)
    }

    /// Validate that every parameter has an argument; returns the specs.
    pub(crate) fn collect_args(&self) -> ClResult<Vec<ArgSpec>> {
        let args = self.args.lock();
        let mut out = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            match a {
                Some(spec) => out.push(spec.clone()),
                None => {
                    return Err(ClError::InvalidKernelArgs(format!(
                        "parameter {i} (`{}`) of kernel `{}` was never set",
                        self.info.params[i].name, self.info.name
                    )))
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::MemFlags;
    use crate::platform::Platform;

    fn ctx() -> Context {
        Context::new(&Platform::all()[0].devices(None)).unwrap()
    }

    const SRC: &str = "__kernel void k(__global float* a, const int n, __local float* s) {
        s[get_local_id(0)] = a[get_global_id(0)] + (float)n;
        barrier(CLK_LOCAL_MEM_FENCE);
        a[get_global_id(0)] = s[get_local_id(0)];
    }";

    #[test]
    fn build_and_introspect() {
        let c = ctx();
        let p = Program::build(&c, SRC).unwrap();
        assert_eq!(p.kernel_names(), vec!["k".to_string()]);
        let k = p.create_kernel("k").unwrap();
        assert_eq!(k.num_args(), 3);
        assert!(k.has_barrier());
    }

    #[test]
    fn build_failure_carries_log() {
        let c = ctx();
        let err =
            Program::build(&c, "__kernel void k(__global float* a) { a[0] = nope; }").unwrap_err();
        match err {
            ClError::BuildFailure { log } => assert!(log.contains("nope")),
            other => panic!("expected BuildFailure, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kernel_name() {
        let c = ctx();
        let p = Program::build(&c, SRC).unwrap();
        assert!(matches!(
            p.create_kernel("missing"),
            Err(ClError::KernelNotFound(_))
        ));
    }

    #[test]
    fn arg_type_validation() {
        let c = ctx();
        let p = Program::build(&c, SRC).unwrap();
        let k = p.create_kernel("k").unwrap();
        let buf = c.create_buffer(MemFlags::ReadWrite, 64).unwrap();
        assert!(k.set_arg_buffer(0, &buf).is_ok());
        assert!(k.set_arg_buffer(1, &buf).is_err()); // n is an int
        assert!(k.set_arg_i32(1, 5).is_ok());
        assert!(k.set_arg_f32(1, 5.0).is_err());
        assert!(k.set_arg_local(2, 256).is_ok());
        assert!(k.set_arg_local(0, 256).is_err());
    }

    #[test]
    fn cross_context_buffer_is_rejected() {
        let c1 = ctx();
        let c2 = ctx();
        let p = Program::build(&c1, SRC).unwrap();
        let k = p.create_kernel("k").unwrap();
        let foreign = c2.create_buffer(MemFlags::ReadWrite, 64).unwrap();
        assert!(matches!(
            k.set_arg_buffer(0, &foreign),
            Err(ClError::InvalidContext(_))
        ));
    }

    #[test]
    fn missing_arg_detected_at_collect() {
        let c = ctx();
        let p = Program::build(&c, SRC).unwrap();
        let k = p.create_kernel("k").unwrap();
        k.set_arg_i32(1, 1).unwrap();
        assert!(matches!(
            k.collect_args(),
            Err(ClError::InvalidKernelArgs(_))
        ));
    }
}
