//! Platform discovery, mirroring `clGetPlatformIDs` / `clGetDeviceIDs`.

use crate::device::{Device, DeviceType};

/// A vendor platform: a driver exposing one or more devices.
///
/// The simulator exposes two platforms, mirroring a typical workstation
/// where a GPU vendor's driver carries the GPU and CPU devices and a second
/// vendor's runtime carries a co-processor.
#[derive(Debug, Clone)]
pub struct Platform {
    name: String,
    vendor: String,
    devices: Vec<Device>,
}

impl Platform {
    /// Enumerate every platform on the (simulated) machine.
    ///
    /// Deterministic: platform 0 is the primary "SimCL" platform with the
    /// GPU (device 0) and CPU (device 1); platform 1 carries the
    /// accelerator (device 2).
    pub fn all() -> Vec<Platform> {
        vec![
            Platform {
                name: "SimCL Primary".to_string(),
                vendor: "SimCL Project".to_string(),
                devices: vec![Device::sim_gpu(0), Device::sim_cpu(1)],
            },
            Platform {
                name: "SimCL Coprocessor Runtime".to_string(),
                vendor: "SimCL Project".to_string(),
                devices: vec![Device::sim_phi(2)],
            },
        ]
    }

    /// Platform display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Platform vendor string.
    pub fn vendor(&self) -> &str {
        &self.vendor
    }

    /// All devices of this platform, optionally filtered by type.
    pub fn devices(&self, ty: Option<DeviceType>) -> Vec<Device> {
        self.devices
            .iter()
            .filter(|d| ty.is_none_or(|t| d.device_type() == t))
            .cloned()
            .collect()
    }

    /// Convenience: first device of the given type across all platforms,
    /// mirroring the common `clGetDeviceIDs(..., type, 1, &dev, NULL)` call.
    pub fn default_device(ty: DeviceType) -> Option<Device> {
        Platform::all()
            .iter()
            .flat_map(|p| p.devices(Some(ty)))
            .next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_is_deterministic() {
        let a = Platform::all();
        let b = Platform::all();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].devices(None).len(), 2);
        assert_eq!(a[1].devices(None).len(), 1);
    }

    #[test]
    fn filtering_by_type() {
        let p = &Platform::all()[0];
        assert_eq!(p.devices(Some(DeviceType::Gpu)).len(), 1);
        assert_eq!(p.devices(Some(DeviceType::Cpu)).len(), 1);
        assert_eq!(p.devices(Some(DeviceType::Accelerator)).len(), 0);
    }

    #[test]
    fn default_device_lookup() {
        assert_eq!(
            Platform::default_device(DeviceType::Gpu)
                .unwrap()
                .device_type(),
            DeviceType::Gpu
        );
        assert_eq!(
            Platform::default_device(DeviceType::Accelerator)
                .unwrap()
                .device_type(),
            DeviceType::Accelerator
        );
    }

    #[test]
    fn device_ids_are_distinct() {
        let mut ids: Vec<usize> = Platform::all()
            .iter()
            .flat_map(|p| p.devices(None))
            .map(|d| d.id())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }
}
