//! ND-range descriptions: global and local work sizes (§2.2).

use crate::error::{ClError, ClResult};

/// Global/local work sizes for a kernel dispatch.
///
/// As in OpenCL, the local size must evenly divide the global size in every
/// dimension; validation happens at enqueue time against the target device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdRange {
    /// Number of meaningful dimensions (1–3).
    pub dims: u8,
    /// Global work size per dimension (unused dimensions are 1).
    pub global: [usize; 3],
    /// Local work size per dimension (unused dimensions are 1).
    pub local: [usize; 3],
}

impl NdRange {
    /// One-dimensional range.
    pub fn d1(global: usize, local: usize) -> NdRange {
        NdRange {
            dims: 1,
            global: [global, 1, 1],
            local: [local, 1, 1],
        }
    }

    /// Two-dimensional range.
    pub fn d2(global: [usize; 2], local: [usize; 2]) -> NdRange {
        NdRange {
            dims: 2,
            global: [global[0], global[1], 1],
            local: [local[0], local[1], 1],
        }
    }

    /// Three-dimensional range.
    pub fn d3(global: [usize; 3], local: [usize; 3]) -> NdRange {
        NdRange {
            dims: 3,
            global,
            local,
        }
    }

    /// Total number of work-items.
    pub fn total_items(&self) -> usize {
        self.global[0] * self.global[1] * self.global[2]
    }

    /// Work-items per work-group.
    pub fn group_size(&self) -> usize {
        self.local[0] * self.local[1] * self.local[2]
    }

    /// Number of work-groups.
    pub fn num_groups(&self) -> usize {
        self.total_items() / self.group_size().max(1)
    }

    /// Validate against a device's limits, mirroring the checks behind
    /// `CL_INVALID_WORK_GROUP_SIZE`.
    pub fn validate(&self, max_work_group_size: usize) -> ClResult<()> {
        for d in 0..3 {
            if self.global[d] == 0 || self.local[d] == 0 {
                return Err(ClError::InvalidWorkGroupSize(format!(
                    "dimension {d} has zero size (global {:?}, local {:?})",
                    self.global, self.local
                )));
            }
            if !self.global[d].is_multiple_of(self.local[d]) {
                return Err(ClError::InvalidWorkGroupSize(format!(
                    "local size {} does not divide global size {} in dimension {d}",
                    self.local[d], self.global[d]
                )));
            }
        }
        if self.group_size() > max_work_group_size {
            return Err(ClError::InvalidWorkGroupSize(format!(
                "work-group of {} items exceeds the device limit of {max_work_group_size}",
                self.group_size()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d1_counts() {
        let nd = NdRange::d1(1024, 64);
        assert_eq!(nd.total_items(), 1024);
        assert_eq!(nd.group_size(), 64);
        assert_eq!(nd.num_groups(), 16);
        assert!(nd.validate(256).is_ok());
    }

    #[test]
    fn d2_counts() {
        let nd = NdRange::d2([64, 64], [8, 8]);
        assert_eq!(nd.total_items(), 4096);
        assert_eq!(nd.num_groups(), 64);
    }

    #[test]
    fn indivisible_local_size_is_rejected() {
        let nd = NdRange::d1(100, 8);
        assert!(nd.validate(256).is_err());
    }

    #[test]
    fn oversized_group_is_rejected() {
        let nd = NdRange::d2([64, 64], [32, 32]);
        assert!(nd.validate(256).is_err());
        assert!(nd.validate(1024).is_ok());
    }

    #[test]
    fn zero_size_is_rejected() {
        assert!(NdRange::d1(0, 1).validate(256).is_err());
    }
}
